//! Bi-side pruning: `BFCore` (Definition 13, Lemma 3) and `BCFCore`
//! (§IV-A of the paper).
//!
//! The *bi-fair α-β core* strengthens the fair α-β core symmetrically:
//! upper vertices need ≥ β neighbors of each lower attribute value *and*
//! lower vertices need ≥ α neighbors of each upper attribute value.
//! Every bi-side fair biclique lives inside it (Lemma 3).
//!
//! `BCFCore` additionally applies the colorful machinery to **both**
//! sides, using the bi-side 2-hop projection
//! ([`bigraph::twohop::construct_2hop_biside`], Algorithm 8): two fair-
//! side vertices are 2-hop adjacent only if they share ≥ α common
//! neighbors of *every* opposite attribute value. The upper side is
//! pruned symmetrically with parameters `(β, α)` swapped.

use crate::cfcore::ego_colorful_core;
use crate::config::{FairParams, PrepareCtl, StopReason};
use crate::fcore::{compose, stats_of, PruneOutcome, CTL_PROBE_INTERVAL};
use crate::obs::SpanRecorder;
use bigraph::subgraph::induce;
use bigraph::twohop::construct_2hop_biside;
use bigraph::{BipartiteGraph, Side, VertexId};

/// Compute bi-fair α-β core membership masks.
///
/// Returns `(keep_upper, keep_lower)`.
pub fn bfcore_masks(g: &BipartiteGraph, alpha: u32, beta: u32) -> (Vec<bool>, Vec<bool>) {
    bfcore_masks_ctl(g, alpha, beta, &PrepareCtl::UNBOUNDED)
        .expect("unbounded prepare is never interrupted")
}

/// [`bfcore_masks`] with cooperative interruption (probed every
/// [`CTL_PROBE_INTERVAL`] peel steps, as in
/// [`crate::fcore::fcore_masks_ctl`]).
pub fn bfcore_masks_ctl(
    g: &BipartiteGraph,
    alpha: u32,
    beta: u32,
    ctl: &PrepareCtl,
) -> Result<(Vec<bool>, Vec<bool>), StopReason> {
    if let Some(r) = ctl.interrupted() {
        return Err(r);
    }
    let probe = !ctl.is_unbounded();
    let n_u = g.n_upper();
    let n_v = g.n_lower();
    let na_upper = (g.n_attr_values(Side::Upper) as usize).max(1);
    let na_lower = (g.n_attr_values(Side::Lower) as usize).max(1);
    let upper_attrs = g.attrs(Side::Upper);
    let lower_attrs = g.attrs(Side::Lower);

    // attr degrees of upper vertices over lower attrs, and vice versa.
    let mut ad_u = vec![0u32; n_u * na_lower];
    for u in 0..n_u as VertexId {
        for &v in g.neighbors(Side::Upper, u) {
            ad_u[u as usize * na_lower + lower_attrs[v as usize] as usize] += 1;
        }
    }
    let mut ad_v = vec![0u32; n_v * na_upper];
    for v in 0..n_v as VertexId {
        for &u in g.neighbors(Side::Lower, v) {
            ad_v[v as usize * na_upper + upper_attrs[u as usize] as usize] += 1;
        }
    }

    let mut alive_u = vec![true; n_u];
    let mut alive_v = vec![true; n_v];
    let mut stack: Vec<(Side, VertexId)> = Vec::new();

    for u in 0..n_u {
        if ad_u[u * na_lower..(u + 1) * na_lower]
            .iter()
            .any(|&d| d < beta)
        {
            alive_u[u] = false;
            stack.push((Side::Upper, u as VertexId));
        }
    }
    for v in 0..n_v {
        if ad_v[v * na_upper..(v + 1) * na_upper]
            .iter()
            .any(|&d| d < alpha)
        {
            alive_v[v] = false;
            stack.push((Side::Lower, v as VertexId));
        }
    }

    let mut steps: u32 = 0;
    while let Some((side, x)) = stack.pop() {
        steps = steps.wrapping_add(1);
        if probe && steps % CTL_PROBE_INTERVAL == 0 {
            if let Some(r) = ctl.interrupted() {
                return Err(r);
            }
        }
        match side {
            Side::Upper => {
                let a = upper_attrs[x as usize] as usize;
                for &v in g.neighbors(Side::Upper, x) {
                    if alive_v[v as usize] {
                        let s = v as usize * na_upper + a;
                        ad_v[s] -= 1;
                        if ad_v[s] < alpha {
                            alive_v[v as usize] = false;
                            stack.push((Side::Lower, v));
                        }
                    }
                }
            }
            Side::Lower => {
                let a = lower_attrs[x as usize] as usize;
                for &u in g.neighbors(Side::Lower, x) {
                    if alive_u[u as usize] {
                        let s = u as usize * na_lower + a;
                        ad_u[s] -= 1;
                        if ad_u[s] < beta {
                            alive_u[u as usize] = false;
                            stack.push((Side::Upper, u));
                        }
                    }
                }
            }
        }
    }
    Ok((alive_u, alive_v))
}

/// `BFCore`: peel to the bi-fair α-β core and compact.
pub fn bfcore(g: &BipartiteGraph, params: FairParams) -> PruneOutcome {
    bfcore_ctl(g, params, &PrepareCtl::UNBOUNDED).expect("unbounded prepare is never interrupted")
}

/// [`bfcore`] with cooperative interruption.
pub fn bfcore_ctl(
    g: &BipartiteGraph,
    params: FairParams,
    ctl: &PrepareCtl,
) -> Result<PruneOutcome, StopReason> {
    let (ku, kv) = bfcore_masks_ctl(g, params.alpha, params.beta, ctl)?;
    let sub = induce(g, &ku, &kv);
    let stats = stats_of(g, &sub);
    Ok(PruneOutcome { sub, stats })
}

/// `BCFCore`: bi-colorful fair α-β core pruning.
///
/// Stages: `BFCore` → colorful pruning of the lower side (bi-side
/// 2-hop with per-attribute threshold α, ego colorful β-core) →
/// colorful pruning of the upper side (flipped graph, threshold β, ego
/// colorful α-core) → final `BFCore`.
pub fn bcfcore(g: &BipartiteGraph, params: FairParams) -> PruneOutcome {
    bcfcore_ctl(g, params, &PrepareCtl::UNBOUNDED).expect("unbounded prepare is never interrupted")
}

/// [`bcfcore`] with cooperative interruption: `ctl` is threaded into
/// the `BFCore` peels and probed before each colorful stage (each
/// builds a 2-hop projection, the dominant cost of the cascade).
pub fn bcfcore_ctl(
    g: &BipartiteGraph,
    params: FairParams,
    ctl: &PrepareCtl,
) -> Result<PruneOutcome, StopReason> {
    bcfcore_rec(g, params, ctl, &mut SpanRecorder::disabled())
}

/// [`bcfcore_ctl`] with a [`SpanRecorder`] attributing wall time to the
/// cascade's stages (`core-peel`, `colorful-lower`, `colorful-upper`,
/// `re-peel`). A disabled recorder makes this identical to
/// [`bcfcore_ctl`].
pub fn bcfcore_rec(
    g: &BipartiteGraph,
    params: FairParams,
    ctl: &PrepareCtl,
    rec: &mut SpanRecorder,
) -> Result<PruneOutcome, StopReason> {
    // Stage 1: bi-fair core.
    let s1 = rec.timed("core-peel", || bfcore_ctl(g, params, ctl))?;
    let g1 = &s1.sub.graph;
    if let Some(r) = ctl.interrupted() {
        return Err(r);
    }

    // Stage 2: colorful pruning of the lower (fair-β) side.
    let s2 = rec.timed("colorful-lower", || {
        let keep_lower = biside_colorful_mask(g1, Side::Lower, params.alpha, params.beta);
        induce(g1, &vec![true; g1.n_upper()], &keep_lower)
    });
    let g2 = &s2.graph;
    if let Some(r) = ctl.interrupted() {
        return Err(r);
    }

    // Stage 3: colorful pruning of the upper side: thresholds swap
    // (two upper vertices must share >= beta common neighbors of every
    // lower attribute; the fair clique needs alpha per upper attr).
    let s3 = rec.timed("colorful-upper", || {
        let keep_upper = biside_colorful_mask(g2, Side::Upper, params.beta, params.alpha);
        induce(g2, &keep_upper, &vec![true; g2.n_lower()])
    });

    // Stage 4: final bi-fair core.
    let s4 = rec.timed("re-peel", || bfcore_ctl(&s3.graph, params, ctl))?;

    let total = compose(&s1.sub, compose(&s2, compose(&s3, s4.sub)));
    let stats = stats_of(g, &total);
    Ok(PruneOutcome { sub: total, stats })
}

/// Colorful mask of one side: bi-side 2-hop projection with common-
/// neighbor threshold `common_k` per opposite attribute value, degree
/// filter `A_n·core_k − 1`, then ego colorful `core_k`-core.
fn biside_colorful_mask(g: &BipartiteGraph, side: Side, common_k: u32, core_k: u32) -> Vec<bool> {
    let h = construct_2hop_biside(g, side, common_k as usize);
    let n_attrs = g.n_attr_values(side) as i64;
    let deg_thresh = n_attrs * core_k as i64 - 1;
    let keep_deg: Vec<bool> = (0..h.n() as VertexId)
        .map(|v| h.degree(v) as i64 >= deg_thresh)
        .collect();
    let (h2, map2) = h.induce(&keep_deg);
    let ego_alive = ego_colorful_core(&h2, core_k);
    let mut keep = vec![false; g.n(side)];
    for (i, &old) in map2.iter().enumerate() {
        if ego_alive[i] {
            keep[old as usize] = true;
        }
    }
    keep
}

/// Test helper: does the kept subgraph satisfy the bi-fair core
/// constraints?
pub fn is_bifair_core(
    g: &BipartiteGraph,
    keep_upper: &[bool],
    keep_lower: &[bool],
    alpha: u32,
    beta: u32,
) -> bool {
    let na_u = (g.n_attr_values(Side::Upper) as usize).max(1);
    let na_l = (g.n_attr_values(Side::Lower) as usize).max(1);
    for u in 0..g.n_upper() as VertexId {
        if !keep_upper[u as usize] {
            continue;
        }
        let mut ad = vec![0u32; na_l];
        for &v in g.neighbors(Side::Upper, u) {
            if keep_lower[v as usize] {
                ad[g.attr(Side::Lower, v) as usize] += 1;
            }
        }
        if ad.iter().any(|&d| d < beta) {
            return false;
        }
    }
    for v in 0..g.n_lower() as VertexId {
        if !keep_lower[v as usize] {
            continue;
        }
        let mut ad = vec![0u32; na_u];
        for &u in g.neighbors(Side::Lower, v) {
            if keep_upper[u as usize] {
                ad[g.attr(Side::Upper, u) as usize] += 1;
            }
        }
        if ad.iter().any(|&d| d < alpha) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fcore::fcore_masks;
    use bigraph::generate::{plant_bicliques, random_uniform};
    use bigraph::GraphBuilder;

    fn balanced_block() -> BipartiteGraph {
        // 4x6 complete block with balanced attrs on both sides + fringe.
        let mut b = GraphBuilder::new(2, 2);
        for u in 0..4 {
            for v in 0..6 {
                b.add_edge(u, v);
            }
        }
        b.add_edge(4, 0); // fringe upper
        b.add_edge(0, 6); // fringe lower
        b.set_attrs_upper(&[0, 1, 0, 1, 0]);
        b.set_attrs_lower(&[0, 0, 0, 1, 1, 1, 1]);
        b.build().unwrap()
    }

    #[test]
    fn bfcore_keeps_balanced_block() {
        let g = balanced_block();
        let out = bfcore(&g, FairParams::unchecked(2, 2, 1));
        assert_eq!(out.stats.upper_after, 4);
        assert_eq!(out.stats.lower_after, 6);
        assert!(is_bifair_core(
            &g,
            &{
                let (ku, _) = bfcore_masks(&g, 2, 2);
                ku
            },
            &{
                let (_, kv) = bfcore_masks(&g, 2, 2);
                kv
            },
            2,
            2
        ));
    }

    #[test]
    fn bfcore_stricter_than_fcore() {
        for seed in 0..6u64 {
            let g = random_uniform(30, 35, 280, 2, 2, seed);
            for (a, b) in [(2, 2), (2, 3), (3, 2)] {
                let (fu, fv) = fcore_masks(&g, a, b);
                let (bu, bv) = bfcore_masks(&g, a, b);
                // BFCore subset of FCore on both sides.
                for i in 0..g.n_upper() {
                    assert!(!bu[i] || fu[i], "seed {seed} upper {i}");
                }
                for i in 0..g.n_lower() {
                    assert!(!bv[i] || fv[i], "seed {seed} lower {i}");
                }
                assert!(is_bifair_core(&g, &bu, &bv, a, b));
            }
        }
    }

    #[test]
    fn bfcore_maximality() {
        let g = random_uniform(25, 25, 180, 2, 2, 13);
        let (ku, kv) = bfcore_masks(&g, 2, 2);
        // Any removed vertex violates its constraint against the kept set.
        for v in 0..25u32 {
            if kv[v as usize] {
                continue;
            }
            let mut ad = [0u32; 2];
            for &u in g.neighbors(Side::Lower, v) {
                if ku[u as usize] {
                    ad[g.attr(Side::Upper, u) as usize] += 1;
                }
            }
            assert!(ad.iter().any(|&d| d < 2), "lower {v} wrongly peeled");
        }
        for u in 0..25u32 {
            if ku[u as usize] {
                continue;
            }
            let mut ad = [0u32; 2];
            for &v in g.neighbors(Side::Upper, u) {
                if kv[v as usize] {
                    ad[g.attr(Side::Lower, v) as usize] += 1;
                }
            }
            assert!(ad.iter().any(|&d| d < 2), "upper {u} wrongly peeled");
        }
    }

    #[test]
    fn bcfcore_prunes_at_least_as_much_as_bfcore() {
        for seed in 0..5u64 {
            let base = random_uniform(40, 45, 300, 2, 2, seed);
            let g = plant_bicliques(&base, 2, 4, 6, 1.0, seed + 50);
            for (a, b) in [(1, 2), (2, 2)] {
                let p = FairParams::unchecked(a, b, 1);
                let bf = bfcore(&g, p);
                let bc = bcfcore(&g, p);
                assert!(
                    bc.stats.remaining_vertices() <= bf.stats.remaining_vertices(),
                    "seed={seed} a={a} b={b}"
                );
            }
        }
    }

    #[test]
    fn bcfcore_keeps_balanced_block() {
        let g = balanced_block();
        let out = bcfcore(&g, FairParams::unchecked(2, 2, 1));
        assert_eq!(out.stats.upper_after, 4, "block uppers survive");
        assert_eq!(out.stats.lower_after, 6, "block lowers survive");
        // Edge/attr mapping consistent.
        for (u, v) in out.sub.graph.edges() {
            let pu = out.sub.upper_to_parent[u as usize];
            let pv = out.sub.lower_to_parent[v as usize];
            assert!(g.has_edge(pu, pv));
        }
    }

    #[test]
    fn bcfcore_empty_when_impossible() {
        let g = balanced_block();
        let out = bcfcore(&g, FairParams::unchecked(5, 5, 1));
        assert_eq!(out.stats.remaining_vertices(), 0);
    }
}
