//! Findings: what a rule reports, and how it is rendered.

use std::fmt;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path (`crates/service/src/engine.rs`).
    pub path: String,
    /// 1-indexed line.
    pub line: usize,
    /// Rule identifier (`no-panic-paths`, ...).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// A finding for `rule` at `path:line`.
    pub fn new(rule: &'static str, path: &str, line: usize, message: impl Into<String>) -> Finding {
        Finding {
            path: path.to_string(),
            line,
            rule,
            message: message.into(),
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Escape `s` for a JSON string literal body.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render findings as a stable machine-readable JSON document:
/// one object per finding, sorted by (path, line, rule), with a
/// schema-version field so consumers can detect format changes.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"fbe_lint_schema\": 1,\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            json_escape(f.rule),
            json_escape(&f.path),
            f.line,
            json_escape(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!("],\n  \"total\": {}\n}}\n", findings.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_path_line_rule_message() {
        let f = Finding::new("no-panic-paths", "crates/x/src/a.rs", 7, "msg");
        assert_eq!(f.to_string(), "crates/x/src/a.rs:7: [no-panic-paths] msg");
    }

    #[test]
    fn json_is_stable_and_escaped() {
        let fs = vec![
            Finding::new("r1", "a.rs", 1, "say \"hi\"\nline2"),
            Finding::new("r2", "b.rs", 2, "plain"),
        ];
        let j = render_json(&fs);
        assert!(j.contains("\"fbe_lint_schema\": 1"));
        assert!(j.contains("say \\\"hi\\\"\\nline2"));
        assert!(j.contains("\"total\": 2"));
        // Empty set still renders a complete document.
        let j = render_json(&[]);
        assert!(j.contains("\"total\": 0"));
        assert!(j.contains("\"findings\": []"));
    }
}
