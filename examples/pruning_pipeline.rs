//! Walk through the pruning pipeline on a scaled benchmark graph:
//! fair α-β core (`FCore`) vs colorful fair α-β core (`CFCore`), then
//! enumerate on the pruned remainder — the paper's Exp-1 in miniature.
//!
//! ```text
//! cargo run --release -p fbe-examples --example pruning_pipeline
//! ```

use fair_biclique::bfcore::{bcfcore, bfcore};
use fair_biclique::cfcore::cfcore;
use fair_biclique::fcore::fcore;
use fair_biclique::prelude::*;
use fbe_datasets::corpus::{spec, Dataset};
use std::time::Instant;

fn main() {
    let spec = spec(Dataset::Youtube);
    let g = spec.build();
    println!(
        "dataset {}: {}",
        spec.dataset,
        bigraph::stats::graph_stats(&g)
    );
    let params = spec.single_params();
    println!("single-side params: {params}");

    // FCore vs CFCore (Fig. 3's two curves).
    let t = Instant::now();
    let f = fcore(&g, params);
    let f_time = t.elapsed();
    let t = Instant::now();
    let c = cfcore(&g, params);
    let c_time = t.elapsed();
    println!(
        "FCore : kept {:>6} vertices ({} edges) in {:?}",
        f.stats.remaining_vertices(),
        f.stats.edges_after,
        f_time
    );
    println!(
        "CFCore: kept {:>6} vertices ({} edges) in {:?}",
        c.stats.remaining_vertices(),
        c.stats.edges_after,
        c_time
    );

    // Bi-side pruning (Fig. 4's two curves).
    let bi = spec.bi_params();
    let bf = bfcore(&g, bi);
    let bc = bcfcore(&g, bi);
    println!(
        "BFCore : kept {:>6} vertices | BCFCore: kept {:>6} vertices ({bi})",
        bf.stats.remaining_vertices(),
        bc.stats.remaining_vertices()
    );

    // Enumerate on the pruned graph with both algorithms.
    for (name, algo) in [
        ("FairBCEM  ", fair_biclique::pipeline::SsAlgorithm::FairBcem),
        (
            "FairBCEM++",
            fair_biclique::pipeline::SsAlgorithm::FairBcemPP,
        ),
    ] {
        let mut sink = CountSink::default();
        let t = Instant::now();
        let (_, stats) =
            fair_biclique::pipeline::run_ssfbc(&g, params, algo, &RunConfig::default(), &mut sink);
        println!(
            "{name}: {} SSFBCs, {} search nodes, {:?}",
            sink.count,
            stats.nodes,
            t.elapsed()
        );
    }
}
