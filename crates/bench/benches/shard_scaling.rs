//! Scatter-gather shard scaling: partition planning cost, and
//! coordinator ENUM latency across shard counts versus a
//! single-process server, over real loopback TCP.
//!
//! Run: `cargo bench --bench shard_scaling` (`-- --quick` for a
//! reduced iteration count).

use fbe_service::engine::Engine;
use fbe_service::ServiceConfig;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut c = Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: BufWriter::new(stream),
        };
        c.read_block(); // greeting
        c
    }

    /// Send one command, drain the reply block, return (status, lines).
    fn cmd(&mut self, line: &str) -> (String, u64) {
        writeln!(self.writer, "{line}").expect("send");
        self.writer.flush().expect("flush");
        self.read_block()
    }

    fn read_block(&mut self) -> (String, u64) {
        let mut status = String::new();
        self.reader.read_line(&mut status).expect("status");
        let status = status.trim_end().to_string();
        let mut lines = 0;
        loop {
            let mut l = String::new();
            self.reader.read_line(&mut l).expect("payload");
            if l.trim_end() == "." {
                break;
            }
            lines += 1;
        }
        (status, lines)
    }
}

fn start_server(cfg: ServiceConfig) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let engine = Engine::new(cfg);
    let server = fbe_service::server::Server::bind("127.0.0.1:0", Arc::clone(&engine))
        .expect("bind ephemeral");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let iters: u32 = if quick { 5 } else { 40 };
    // Sparse enough that the 2-hop structure splits into many
    // components — otherwise every shard but one is empty and the
    // fan-out measures only coordination overhead.
    let gen = "GEN g uniform:600,600,1400,11";
    let query = "ENUM g ssfbc alpha=1 beta=1 delta=1 count-only";

    // Partition planning alone (no sockets): components + LPT packing.
    let g = bigraph::generate::random_uniform(600, 600, 1400, 2, 2, 11);
    let t0 = Instant::now();
    let plan = bigraph::partition::plan_shards(&g, bigraph::Side::Lower, 1, 4);
    let plan_us = t0.elapsed().as_micros() as f64;
    println!("=== Shard scaling (2-hop-component scatter-gather) ===");
    println!(
        "partition plan: {} components -> 4 shards in {plan_us:.0}us",
        plan.n_components
    );
    fbe_bench::export_json_record(
        "shard_scaling/partition_plan",
        &[
            ("components", plan.n_components as f64),
            ("plan_us", plan_us),
        ],
    );

    println!(
        "{:<24} {:>10} {:>12} {:>10}",
        "topology", "results", "mean ms/q", "q/s"
    );
    for shards in [0usize, 1, 2, 4] {
        // 0 = single process (no coordinator hop).
        let mut handles = Vec::new();
        let coord_addr = if shards == 0 {
            let (addr, h) = start_server(ServiceConfig::default());
            handles.push(h);
            addr
        } else {
            let mut shard_addrs = Vec::new();
            for _ in 0..shards {
                let (addr, h) = start_server(ServiceConfig::default());
                shard_addrs.push(addr);
                handles.push(h);
            }
            let (addr, h) = start_server(ServiceConfig {
                shards: shard_addrs,
                ..ServiceConfig::default()
            });
            handles.push(h);
            addr
        };
        let count_of = |status: &str| -> u64 {
            status
                .split_whitespace()
                .find_map(|t| t.strip_prefix("count="))
                .and_then(|v| v.parse().ok())
                .expect("count field")
        };
        let mut c = Client::connect(&coord_addr);
        let (status, _) = c.cmd(gen);
        assert!(status.starts_with("OK"), "{status}");
        // Warm every shard's plan cache, then measure.
        let (status, _) = c.cmd(query);
        assert!(status.starts_with("OK"), "{status}");
        let warm_results = count_of(&status);
        let t0 = Instant::now();
        for _ in 0..iters {
            let (status, _) = c.cmd(query);
            assert!(status.starts_with("OK"), "{status}");
            assert_eq!(count_of(&status), warm_results, "result count drifted");
        }
        let total = t0.elapsed();
        let mean_ms = total.as_secs_f64() * 1e3 / iters as f64;
        let qps = iters as f64 / total.as_secs_f64().max(1e-9);
        let label = if shards == 0 {
            "single-process".to_string()
        } else {
            format!("coordinator+{shards}")
        };
        println!("{label:<24} {warm_results:>10} {mean_ms:>12.2} {qps:>10.1}");
        fbe_bench::export_json_record(
            &format!("shard_scaling/{label}"),
            &[
                ("results", warm_results as f64),
                ("mean_ms", mean_ms),
                ("qps", qps),
            ],
        );
        let (status, _) = c.cmd("SHUTDOWN");
        assert!(status.starts_with("OK"), "{status}");
        for h in handles {
            h.join().expect("join").expect("server");
        }
    }
}
