//! Quickstart: build a small attributed bipartite graph and enumerate
//! every flavor of fair biclique.
//!
//! ```text
//! cargo run -p fbe-examples --example quickstart
//! ```

use bigraph::GraphBuilder;
use fair_biclique::prelude::*;

fn main() {
    // A collaboration-style graph: 5 projects (upper side; attribute
    // 0 = research, 1 = engineering) and 8 people (lower side;
    // attribute 0 = senior, 1 = junior).
    let mut b = GraphBuilder::new(2, 2);
    b.set_attrs_upper(&[0, 1, 0, 1, 0]);
    b.set_attrs_lower(&[0, 0, 0, 1, 1, 1, 0, 1]);
    // A dense core: projects 0-3 share people 0-5.
    for u in 0..4 {
        for v in 0..6 {
            b.add_edge(u, v);
        }
    }
    // A fringe project with two extra people.
    b.add_edge(4, 6);
    b.add_edge(4, 7);
    b.add_edge(0, 6);
    let g = b.build().expect("valid graph");
    println!("graph: {}", bigraph::stats::graph_stats(&g));

    // Single-side fair bicliques: teams backed by >= 2 projects with
    // >= 2 seniors, >= 2 juniors, and senior/junior gap <= 1.
    let params = FairParams::new(2, 2, 1).expect("valid params");
    let report = enumerate_ssfbc(&g, params, &RunConfig::default());
    println!(
        "\nSSFBC ({params}): {} result(s); pruning kept {}/{} vertices; {} search nodes",
        report.bicliques.len(),
        report.prune.remaining_vertices(),
        report.prune.upper_before + report.prune.lower_before,
        report.stats.nodes,
    );
    for bc in &report.bicliques {
        println!("  {bc}");
    }

    // Bi-side fair bicliques additionally balance the project types.
    let bi = FairParams::new(1, 2, 1).expect("valid params");
    let report = enumerate_bsfbc(&g, bi, &RunConfig::default());
    println!("\nBSFBC ({bi}): {} result(s)", report.bicliques.len());
    for bc in &report.bicliques {
        println!("  {bc}");
    }

    // Proportion variant: every attribute must also hold >= 40% of its
    // side.
    let pro = ProParams::new(2, 2, 1, 0.4).expect("valid params");
    let report = enumerate_pssfbc(&g, pro, &RunConfig::default());
    println!("\nPSSFBC ({pro}): {} result(s)", report.bicliques.len());
    for bc in &report.bicliques {
        println!("  {bc}");
    }
}
