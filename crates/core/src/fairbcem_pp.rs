//! `FairBCEM++` (Algorithm 6): combinatorial enumeration of all
//! single-side fair bicliques.
//!
//! Instead of branching on every fair-side subset, `FairBCEM++` walks
//! only the *maximal bicliques* with `|L| ≥ α` (their number is orders
//! of magnitude smaller than the number of fair bicliques) and then
//! expands each into its single-side fair bicliques combinatorially:
//!
//! * if the maximal biclique's `R` is already a fair set, `(L, R)` is
//!   itself an SSFBC (nothing fully connected to `L` remains outside);
//! * otherwise `Combination` (Algorithm 7) produces every *maximal fair
//!   subset* `r' ⊆ R`, and `(L, r')` is an SSFBC iff `N(r') = L`
//!   exactly (a larger common neighborhood means the pair belongs to —
//!   and is produced from — a different maximal biclique, which also
//!   makes the output duplicate-free).
//!
//! Completeness: for any SSFBC `(L*, R*)`, `(L*, N(L*))` is a maximal
//! biclique (a vertex adjacent to all of `N(L*)` is adjacent to all of
//! `R*`, hence in `N(R*) = L*`), and `R*` is one of its maximal fair
//! subsets with `N(R*) = L*`.

use crate::biclique::{BicliqueSink, EnumStats};
use crate::config::{
    Budget, BudgetClock, BudgetLane, FairParams, SharedBudget, Substrate, VertexOrder,
};
use crate::fairset::{for_each_max_fair_subset, is_fair, AttrCounts};
use crate::mbea::{root_task, RBound, Walker};
use bigraph::candidate::{AdjOps, CandidateOps, CandidatePlan};
use bigraph::{BipartiteGraph, Side, VertexId};
use std::sync::Arc;

/// Run `FairBCEM++` on `g` (assumed already pruned; fair side = lower)
/// on the adaptive candidate substrate.
pub fn fairbcem_pp_on_pruned(
    g: &BipartiteGraph,
    params: FairParams,
    order: VertexOrder,
    budget: Budget,
    sink: &mut dyn BicliqueSink,
) -> EnumStats {
    fairbcem_pp_on_pruned_with(g, params, order, budget, Substrate::Auto, sink)
}

/// [`fairbcem_pp_on_pruned`] with an explicit candidate substrate
/// (results are identical across substrates).
pub fn fairbcem_pp_on_pruned_with(
    g: &BipartiteGraph,
    params: FairParams,
    order: VertexOrder,
    budget: Budget,
    substrate: Substrate,
    sink: &mut dyn BicliqueSink,
) -> EnumStats {
    let plan = CandidatePlan::build(g, substrate, false);
    fairbcem_pp_shared(
        g,
        params,
        order,
        &SharedBudget::new(budget),
        false,
        &plan,
        sink,
    )
}

/// `FairBCEM++` with walker and expander clocks drawn from one shared
/// budget, so *any* exhausted limit — including the result cap, which
/// only the expander's clock consumes — stops the whole walk.
/// `intermediate` exempts emissions from the result budget (bi-side
/// chains: SSFBCs feeding an upper-side expansion are not final
/// results). Walker and expander both draw candidate ops from `plan`.
pub(crate) fn fairbcem_pp_shared(
    g: &BipartiteGraph,
    params: FairParams,
    order: VertexOrder,
    shared: &Arc<SharedBudget>,
    intermediate: bool,
    plan: &CandidatePlan,
    sink: &mut dyn BicliqueSink,
) -> EnumStats {
    let expand_clock = if intermediate {
        shared.clock(BudgetLane::Expand).exempt_results()
    } else {
        shared.clock(BudgetLane::Expand)
    };
    let mut expander = SsExpander::with_clock(g, params, plan.ops(g, Side::Lower), expand_clock);
    let mut walker = Walker::new(
        g,
        params.alpha as usize,
        RBound::AttrBeta {
            attrs: g.attrs(Side::Lower),
            beta: params.beta,
        },
        plan.ops(g, Side::Lower),
        shared.clock(BudgetLane::Walk),
    );
    walker.run(root_task(g, order, plan.choice()), &mut |l, r| {
        expander.expand(l, r, sink)
    });
    let mut stats = walker.stats();
    stats.emitted = expander.emitted;
    stats.aborted |= expander.aborted();
    stats.stop = stats.stop.or_else(|| expander.stop_reason());
    stats
}

/// The expansion step of Algorithm 6 (lines 23–28), factored out so
/// the serial and parallel drivers share it: given a maximal biclique
/// `(L, R)` with `|L| ≥ α`, emit the SSFBCs it contains.
pub(crate) struct SsExpander<'a> {
    params: FairParams,
    attrs: &'a [bigraph::AttrValueId],
    groups: Vec<Vec<VertexId>>,
    /// Attribute-count scratch, recounted per expansion (no per-call
    /// allocation on the hot path).
    counts: AttrCounts,
    /// Lower-side candidate ops (closure checks intersect the fair
    /// side's adjacency).
    ops: AdjOps<'a>,
    /// Budget over expansion steps: a single `Combination` can produce
    /// binomially many subsets, so the walker's node budget alone
    /// cannot bound a run.
    clock: BudgetClock,
    /// SSFBCs emitted so far.
    pub(crate) emitted: u64,
}

impl<'a> SsExpander<'a> {
    /// Constructor taking explicit candidate ops and clock — the
    /// parallel engine hands every worker its own handles drawing from
    /// the shared rows and countdown.
    pub(crate) fn with_clock(
        g: &'a BipartiteGraph,
        params: FairParams,
        ops: AdjOps<'a>,
        clock: BudgetClock,
    ) -> Self {
        let n_attrs = (g.n_attr_values(Side::Lower) as usize).max(1);
        SsExpander {
            params,
            attrs: g.attrs(Side::Lower),
            groups: vec![Vec::new(); n_attrs],
            counts: AttrCounts::zeros(n_attrs),
            ops,
            clock,
            emitted: 0,
        }
    }

    /// True when the expansion budget expired mid-run (results are a
    /// correct subset).
    pub(crate) fn aborted(&self) -> bool {
        self.clock.exhausted
    }

    /// Why the expansion stage stopped (None while unexhausted).
    pub(crate) fn stop_reason(&self) -> Option<crate::config::StopReason> {
        self.clock.stop_reason()
    }

    pub(crate) fn expand(&mut self, l: &[VertexId], r: &[VertexId], sink: &mut dyn BicliqueSink) {
        if self.clock.exhausted {
            return;
        }
        self.counts.recount(r, self.attrs);
        if is_fair(self.counts.as_slice(), self.params.beta, self.params.delta) {
            if self.clock.try_result() {
                sink.emit(l, r);
                self.emitted += 1;
            }
            self.clock.tick();
            return;
        }
        // Expand into maximal fair subsets (Algorithm 7). The
        // per-attribute groups are long-lived scratch, passed to the
        // combination driver directly (no slice-of-slices rebuild).
        for g_attr in self.groups.iter_mut() {
            g_attr.clear();
        }
        for &v in r {
            self.groups[self.attrs[v as usize] as usize].push(v);
        }
        let ops = &mut self.ops;
        let emitted = &mut self.emitted;
        let clock = &mut self.clock;
        for_each_max_fair_subset(
            &self.groups,
            self.params.beta,
            self.params.delta,
            &mut |r_sub| {
                // With beta = 0 the unique maximal fair subset can be
                // empty (e.g. counts (3,0) at delta 0); an empty fair
                // side is a degenerate non-result in every model.
                // `(L, r')` is an SSFBC iff `N(r') = L` exactly;
                // `l ⊆ N(r_sub)` holds by construction, so comparing
                // closure size against `|l|` suffices.
                if !r_sub.is_empty() && ops.closure_matches(r_sub, l.len()) && clock.try_result() {
                    sink.emit(l, r_sub);
                    *emitted += 1;
                }
                clock.tick()
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::biclique::{Biclique, CollectSink};
    use crate::verify::oracle_ssfbc;
    use bigraph::generate::{plant_bicliques, random_uniform};
    use bigraph::GraphBuilder;
    use std::collections::BTreeSet;

    fn run(g: &BipartiteGraph, params: FairParams, order: VertexOrder) -> BTreeSet<Biclique> {
        let mut sink = CollectSink::default();
        let stats = fairbcem_pp_on_pruned(g, params, order, Budget::UNLIMITED, &mut sink);
        assert!(!stats.aborted);
        let set: BTreeSet<Biclique> = sink.bicliques.iter().cloned().collect();
        assert_eq!(set.len(), sink.bicliques.len(), "no duplicate emissions");
        assert_eq!(stats.emitted as usize, set.len());
        set
    }

    #[test]
    fn matches_oracle_on_random_graphs() {
        for seed in 0..30u64 {
            let g = random_uniform(8, 10, 32, 2, 2, seed);
            for params in [
                FairParams::unchecked(1, 1, 1),
                FairParams::unchecked(2, 1, 0),
                FairParams::unchecked(2, 2, 1),
                FairParams::unchecked(1, 0, 3),
                FairParams::unchecked(3, 1, 2),
            ] {
                let want = oracle_ssfbc(&g, params);
                for order in [VertexOrder::IdAsc, VertexOrder::DegreeDesc] {
                    let got = run(&g, params, order);
                    assert_eq!(got, want, "seed {seed} params {params} order {order:?}");
                }
            }
        }
    }

    #[test]
    fn matches_oracle_on_planted_blocks() {
        for seed in 0..8u64 {
            let base = random_uniform(9, 11, 20, 2, 2, seed);
            let g = plant_bicliques(&base, 2, 3, 4, 1.0, seed + 40);
            for params in [
                FairParams::unchecked(2, 1, 1),
                FairParams::unchecked(2, 2, 2),
            ] {
                let want = oracle_ssfbc(&g, params);
                let got = run(&g, params, VertexOrder::DegreeDesc);
                assert_eq!(got, want, "seed {seed} params {params}");
            }
        }
    }

    #[test]
    fn agrees_with_fairbcem() {
        use crate::fairbcem::fairbcem_on_pruned;
        for seed in 50..65u64 {
            let g = random_uniform(10, 12, 55, 2, 2, seed);
            let params = FairParams::unchecked(2, 1, 1);
            let mut a = CollectSink::default();
            fairbcem_on_pruned(
                &g,
                params,
                VertexOrder::DegreeDesc,
                Budget::UNLIMITED,
                &mut a,
            );
            let b = run(&g, params, VertexOrder::DegreeDesc);
            let a: BTreeSet<Biclique> = a.bicliques.into_iter().collect();
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn three_attribute_values() {
        for seed in 0..10u64 {
            let g = random_uniform(8, 9, 30, 2, 3, seed);
            let params = FairParams::unchecked(1, 1, 1);
            let want = oracle_ssfbc(&g, params);
            let got = run(&g, params, VertexOrder::DegreeDesc);
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn closure_check() {
        use bigraph::candidate::CandidateOps;
        let mut b = GraphBuilder::new(1, 1);
        for u in 0..3 {
            for v in 0..3 {
                b.add_edge(u, v);
            }
        }
        b.add_edge(0, 3); // v3 only sees u0
        let g = b.build().unwrap();
        for substrate in [Substrate::SortedVec, Substrate::Bitset] {
            let plan = CandidatePlan::build(&g, substrate, false);
            let mut ops = plan.ops(&g, Side::Lower);
            // N({0,1,2}) = {0,1,2}; N({3}) = {0}
            assert!(ops.closure_matches(&[0, 1, 2], 3));
            assert!(!ops.closure_matches(&[0, 1], 2)); // N({0,1}) = {0,1,2}
            assert!(ops.closure_matches(&[3], 1));
        }
    }

    #[test]
    fn budget_bounds_single_combination_blowup() {
        // A complete 3 x 26 block with unbalanced attributes (16 vs
        // 10) at delta 0 forces Combination to emit C(16,10) = 8008
        // subsets from ONE maximal biclique; the expansion budget must
        // cut that off even though the walker visits only one node.
        let mut b = GraphBuilder::new(1, 2);
        let mut lattrs = Vec::new();
        for v in 0..26u32 {
            for u in 0..3u32 {
                b.add_edge(u, v);
            }
            lattrs.push(u16::from(v >= 16));
        }
        b.set_attrs_lower(&lattrs);
        let g = b.build().unwrap();
        let params = FairParams::unchecked(3, 1, 0);
        let mut sink = CollectSink::default();
        let stats =
            fairbcem_pp_on_pruned(&g, params, VertexOrder::IdAsc, Budget::nodes(50), &mut sink);
        assert!(stats.aborted, "expansion budget must fire");
        assert!(
            sink.bicliques.len() <= 60,
            "emission is bounded by the budget, got {}",
            sink.bicliques.len()
        );
        // And the unbounded run really is big (sanity check of the
        // setup): C(16,10) closure-filtered results still number
        // thousands.
        let mut full = CollectSink::default();
        let full_stats =
            fairbcem_pp_on_pruned(&g, params, VertexOrder::IdAsc, Budget::UNLIMITED, &mut full);
        assert!(!full_stats.aborted);
        assert!(full.bicliques.len() > 1000);
    }

    #[test]
    fn budget_abort_subset() {
        let g = random_uniform(12, 14, 90, 2, 2, 7);
        let params = FairParams::unchecked(1, 1, 2);
        let mut capped = CollectSink::default();
        let stats = fairbcem_pp_on_pruned(
            &g,
            params,
            VertexOrder::IdAsc,
            Budget::nodes(8),
            &mut capped,
        );
        assert!(stats.aborted);
        let full = oracle_ssfbc(&g, params);
        for b in capped.bicliques {
            assert!(full.contains(&b));
        }
    }
}
