//! Differential certification of the incremental fair-core
//! maintenance behind the dynamic-graph verbs
//! (`fair_biclique::incremental`): after every update in a random
//! edit script, the incrementally repaired state must equal a
//! rebuild-from-scratch —
//!
//! * core membership masks (and hence the per-`(α, β)` core numbers),
//! * the update effect's staleness verdict vs a direct core diff,
//! * full enumeration over the mutated graph, byte-for-byte, at 1 and
//!   4 threads, against the same graph rebuilt from its edge list.
//!
//! The last point is what licenses the service's surgical plan
//! invalidation: a clean verdict must imply byte-identical output.

use bigraph::generate::random_uniform;
use bigraph::{BipartiteGraph, GraphBuilder, Side, VertexId};
use fair_biclique::config::{FairParams, RunConfig};
use fair_biclique::fcore::fcore_masks;
use fair_biclique::incremental::CoreTracker;
use fair_biclique::pipeline::{enumerate_bsfbc, enumerate_ssfbc};
use proptest::prelude::*;

/// Rebuild the graph from scratch out of its edge list — the oracle
/// the incremental CSR splices must agree with.
fn rebuilt(g: &BipartiteGraph) -> BipartiteGraph {
    let mut b = GraphBuilder::new(g.n_attr_values(Side::Upper), g.n_attr_values(Side::Lower));
    b.ensure_vertices(g.n_upper(), g.n_lower());
    for (u, v) in g.edges() {
        b.add_edge(u, v);
    }
    b.set_attrs_upper(g.attrs(Side::Upper));
    b.set_attrs_lower(g.attrs(Side::Lower));
    b.build().expect("mutated graph stays valid")
}

fn cfg(threads: usize) -> RunConfig {
    RunConfig {
        threads,
        sorted: true,
        ..RunConfig::default()
    }
}

/// Deterministic xorshift so each proptest case derives its own edit
/// script from one seed.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random 30-step edit scripts (edge flips + occasional vertex
    /// appends) over random graphs, tracked at four `(α, β)` pairs.
    #[test]
    fn incremental_state_equals_rebuild_from_scratch(
        seed in 0u64..10_000,
        m in 40usize..70,
    ) {
        let mut g = random_uniform(11, 12, m, 2, 2, seed);
        let pairs = [(1u32, 1u32), (2, 1), (2, 2), (3, 2)];
        let mut trackers: Vec<CoreTracker> =
            pairs.iter().map(|&(a, b)| CoreTracker::new(&g, a, b)).collect();
        let mut rng = seed.wrapping_mul(2_654_435_761).wrapping_add(97);
        for step in 0..30 {
            // Mostly edge flips; every 10th step appends a vertex.
            if step % 10 == 9 {
                let side = if xorshift(&mut rng) % 2 == 0 { Side::Upper } else { Side::Lower };
                let attr = if xorshift(&mut rng) % 2 == 0 { 0 } else { 1 };
                let (g2, id) = g.with_vertex(side, attr).expect("vertex append");
                for t in &mut trackers {
                    t.add_vertex(&g2, side, id);
                }
                g = g2;
            } else {
                let u = (xorshift(&mut rng) % g.n_upper() as u64) as VertexId;
                let v = (xorshift(&mut rng) % g.n_lower() as u64) as VertexId;
                if g.has_edge(u, v) {
                    let g2 = g.without_edge(u, v).expect("edge removal");
                    for t in &mut trackers {
                        let before = t.masks().0.to_vec();
                        let before_v = t.masks().1.to_vec();
                        let eff = t.remove_edge(&g2, u, v);
                        prop_assert_eq!(
                            eff.is_clean(),
                            (before == t.masks().0 && before_v == t.masks().1)
                                && !eff.core_edge_touched,
                            "clean verdict must match an actual no-op at {:?}",
                            t.params()
                        );
                    }
                    g = g2;
                } else {
                    let g2 = g.with_edge(u, v).expect("edge insertion");
                    for t in &mut trackers {
                        t.add_edge(&g2, u, v);
                    }
                    g = g2;
                }
            }
            // Core membership equals the one-shot peel of the mutated
            // graph at every tracked pair, every step.
            for t in &mut trackers {
                let (alpha, beta) = t.params();
                let (ku, kv) = fcore_masks(&g, alpha, beta);
                prop_assert_eq!(t.masks().0, &ku[..], "upper core diverges at ({}, {})", alpha, beta);
                prop_assert_eq!(t.masks().1, &kv[..], "lower core diverges at ({}, {})", alpha, beta);
            }
        }
        // Terminal certification: enumeration over the incrementally
        // mutated CSR is byte-identical to the rebuilt graph, serial
        // and parallel.
        let fresh = rebuilt(&g);
        let ss = FairParams::unchecked(2, 1, 1);
        let bi = FairParams::unchecked(1, 1, 1);
        for threads in [1usize, 4] {
            let c = cfg(threads);
            prop_assert_eq!(
                enumerate_ssfbc(&g, ss, &c).bicliques,
                enumerate_ssfbc(&fresh, ss, &c).bicliques,
                "ssfbc diverges at {} threads", threads
            );
            prop_assert_eq!(
                enumerate_bsfbc(&g, bi, &c).bicliques,
                enumerate_bsfbc(&fresh, bi, &c).bicliques,
                "bsfbc diverges at {} threads", threads
            );
        }
    }
}
