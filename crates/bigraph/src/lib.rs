//! # bigraph — attributed bipartite graph substrate
//!
//! This crate provides every graph-side building block required by the
//! fairness-aware maximal biclique enumeration algorithms of Yin et al.
//! (ICDE 2023):
//!
//! * [`BipartiteGraph`] — an immutable, CSR-backed, attributed bipartite
//!   graph `G = (U, V, E, A)` with one attribute value per vertex.
//! * [`GraphBuilder`] — validated, deduplicating construction.
//! * [`candidate`] — the pluggable candidate-set substrate
//!   ([`Substrate`]): sorted-vec merge intersections vs fixed-width
//!   `u64` bitset rows ([`BitRows`]) behind the [`CandidateOps`]
//!   trait, with an adaptive `Auto` policy for pruned dense cores.
//! * [`UniGraph`] — an attributed *unipartite* graph used for the 2-hop
//!   projections of Algorithms 3 and 8 of the paper.
//! * [`twohop`] — `Construct2HopGraph` / `BiConstruct2HopGraph`.
//! * [`coloring`] — degree-ordered greedy coloring (used by the colorful
//!   core pruning).
//! * [`butterfly`] — butterfly (2×2 biclique) counting, including the
//!   vertex-priority `BFC-VP` algorithm.
//! * [`cliques`] — maximal clique / weak fair clique enumeration on
//!   unipartite graphs (the substrate behind the colorful pruning).
//! * [`generate`] — seeded synthetic generators (uniform, Chung–Lu
//!   power-law, planted bicliques) standing in for the KONECT corpora.
//! * [`io`] — edge-list / attribute-file readers and writers.
//! * [`mutate`] — single-update CSR splices (`with_edge` /
//!   `without_edge` / `with_vertex`) backing the service's dynamic
//!   graph verbs.
//! * [`subgraph`] — induced subgraphs and edge sampling (scalability
//!   experiments).
//! * [`partition`] — sharding over connected components of the 2-hop
//!   structure (scatter-gather enumeration across processes).
//! * [`stats`] — degree and density statistics (Table I of the paper).
//!
//! ## Conventions
//!
//! Vertices on each side are dense `u32` indices `0..n_side`. The two
//! sides are disjoint index spaces: an upper vertex `3` and a lower
//! vertex `3` are different vertices, distinguished by [`Side`].
//! Adjacency lists are always sorted ascending, which the enumeration
//! crate relies on for linear-time sorted intersections.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod butterfly;
pub mod candidate;
pub mod cliques;
pub mod coloring;
pub mod generate;
pub mod graph;
pub mod io;
pub mod mutate;
pub mod partition;
pub mod stats;
pub mod subgraph;
pub mod twohop;
pub mod unigraph;

pub use builder::{BuildError, GraphBuilder};
pub use candidate::{AdjOps, BitRows, CandidateOps, CandidatePlan, Substrate};
pub use graph::{AttrValueId, BipartiteGraph, Side, VertexId};
pub use mutate::MutateError;
pub use unigraph::UniGraph;

/// Intersect two ascending-sorted slices, appending the common elements
/// to `out` (which is cleared first).
///
/// This is the workhorse primitive of every enumerator in the companion
/// crate; it runs in `O(|a| + |b|)`.
pub fn intersect_sorted_into(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    out.clear();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Count the size of the intersection of two ascending-sorted slices
/// without materialising it.
pub fn intersect_sorted_count(a: &[VertexId], b: &[VertexId]) -> usize {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Test whether ascending-sorted `needle` is a subset of ascending-sorted
/// `haystack` in `O(|needle| + |haystack|)`.
pub fn is_sorted_subset(needle: &[VertexId], haystack: &[VertexId]) -> bool {
    let mut j = 0usize;
    for &x in needle {
        while j < haystack.len() && haystack[j] < x {
            j += 1;
        }
        if j >= haystack.len() || haystack[j] != x {
            return false;
        }
        j += 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_basic() {
        let mut out = Vec::new();
        intersect_sorted_into(&[1, 3, 5, 7], &[2, 3, 4, 5, 8], &mut out);
        assert_eq!(out, vec![3, 5]);
        assert_eq!(intersect_sorted_count(&[1, 3, 5, 7], &[2, 3, 4, 5, 8]), 2);
    }

    #[test]
    fn intersect_empty_sides() {
        let mut out = vec![99];
        intersect_sorted_into(&[], &[1, 2], &mut out);
        assert!(out.is_empty());
        intersect_sorted_into(&[1, 2], &[], &mut out);
        assert!(out.is_empty());
        assert_eq!(intersect_sorted_count(&[], &[]), 0);
    }

    #[test]
    fn intersect_disjoint_and_identical() {
        let mut out = Vec::new();
        intersect_sorted_into(&[1, 2], &[3, 4], &mut out);
        assert!(out.is_empty());
        intersect_sorted_into(&[1, 2, 3], &[1, 2, 3], &mut out);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn subset_checks() {
        assert!(is_sorted_subset(&[], &[]));
        assert!(is_sorted_subset(&[], &[1]));
        assert!(is_sorted_subset(&[2, 4], &[1, 2, 3, 4]));
        assert!(!is_sorted_subset(&[2, 5], &[1, 2, 3, 4]));
        assert!(!is_sorted_subset(&[0], &[]));
        assert!(is_sorted_subset(&[1, 2, 3], &[1, 2, 3]));
    }
}
