//! Regenerates Fig. 5 (BSFBC runtimes) of the paper. Run: `cargo bench --bench fig5_bsfbc`
//! (add `-- --quick` for a reduced sweep).

fn main() {
    let opts = fbe_bench::Opts::from_args();
    println!(
        "=== Fig. 5 (BSFBC runtimes) (budget {:?}/run, quick={}) ===",
        opts.budget, opts.quick
    );
    for (i, t) in fbe_bench::experiments::exp3_fig5(&opts)
        .into_iter()
        .enumerate()
    {
        t.print();
        t.save(&format!("fig5_bsfbc_{i}"));
    }
}
