//! Regenerates Fig. 11-12 (proportion models) of the paper. Run: `cargo bench --bench fig11_12_proportion`
//! (add `-- --quick` for a reduced sweep).

fn main() {
    let opts = fbe_bench::Opts::from_args();
    println!(
        "=== Fig. 11-12 (proportion models) (budget {:?}/run, quick={}) ===",
        opts.budget, opts.quick
    );
    for (i, t) in fbe_bench::experiments::exp7_fig11_12(&opts)
        .into_iter()
        .enumerate()
    {
        t.print();
        t.save(&format!("fig11_12_proportion_{i}"));
    }
}
