//! Work-stealing parallel enumeration engine shared by every miner.
//!
//! The paper's extension section parallelizes only single-side
//! `FairBCEM++`; this module generalizes that into one engine that
//! drives `FairBCEM++`, `BFairBCEM++`, the proportion enumerators
//! (`FairBCEMPro++` / `BFairBCEMPro++`), and maximum fair biclique
//! search. The serial enumerators are untouched — the engine reuses
//! their [`Walker`](crate::mbea) and expander components verbatim.
//!
//! # Design
//!
//! * **Shared branch deque.** Work units are [`BranchTask`]s: exact
//!   search states `(L, R, P, Q)` of the serial enumeration tree,
//!   held in a shared deque that idle workers steal from. The whole
//!   run starts as one root task; a worker executing a task above
//!   `split_depth` runs only that task's top level and pushes each
//!   child subtree back onto the deque (subtree re-splitting), so
//!   skewed instances where a few top-level branches dominate still
//!   load-balance.
//! * **Correctness (Q-seeding under stealing).** A spawned task
//!   carries the same duplicate-suppression set `Q` the serial
//!   recursion would have passed down: when the splitting worker
//!   expands branch `i` of a level, the earlier branches' vertices
//!   (expanded or consumed) are already in the task's `q`. The
//!   fully-connected-`Q` check therefore kills exactly the subtrees
//!   the serial algorithm never enters — any maximal biclique
//!   reachable from a later branch that was already enumerated under
//!   an earlier one contains an earlier vertex, which sits in `Q`.
//!   Consequently the task set *is* the serial tree, partitioned:
//!   result sets are identical to serial runs, each result is emitted
//!   exactly once, and the summed per-worker node counts equal the
//!   serial node count (tested).
//! * **Global budget.** All workers draw node ticks and result slots
//!   from one [`SharedBudget`] — atomic countdowns acquired *before*
//!   work happens. A `Budget::results(K)` therefore yields exactly
//!   `min(K, total)` results regardless of thread count (the old
//!   per-worker budgets could emit `threads × K`), and node/time
//!   exhaustion in any worker stops all of them at their next tick.
//! * **Deterministic aggregation.** Per-worker [`EnumStats`] are
//!   merged in worker order: node and emission counts sum, abort
//!   flags OR, peak search bytes take the per-worker maximum (a
//!   per-worker peak, *not* comparable to the serial peak).
//! * **Sorted output.** Discovery order across workers is
//!   nondeterministic; with [`RunConfig::sorted`] the collected
//!   pipelines sort results into [`crate::results::canonical_order`],
//!   making output byte-identical across thread counts (and equal to
//!   a sorted serial run).
//!
//! # Cancellation semantics
//!
//! A run whose [`Budget`] carries a [`crate::config::CancelToken`]
//! ([`Budget::with_cancel`]) stops **cooperatively**: every worker's
//! clocks — the maximal-biclique walker's and each expansion stage's —
//! check the token at *branch granularity* (once per
//! `BudgetClock::tick`, i.e. per search-tree node or expansion step),
//! so cancellation latency is bounded by a handful of branch
//! expansions, not by subtree size. The first worker to observe the
//! token trips the run's [`SharedBudget`], which stops every sibling
//! worker at its next tick exactly like any other exhausted limit.
//! Consequences:
//!
//! * results already emitted are kept — a cancelled run returns a
//!   *correct subset*, never corrupt or duplicated output;
//! * `EnumStats::aborted` is set and `EnumStats::stop` (surfaced as
//!   `RunReport::truncated_by`) reports
//!   [`crate::config::StopReason::Cancelled`] — unless another limit
//!   (deadline, node or result cap) tripped first, in which case the
//!   first cause wins;
//! * cancellation is sticky and one-way: the token cannot be reset,
//!   and a cancelled run's workers drain the task deque without
//!   executing further work, so threads join promptly;
//! * tokens may be shared across runs (e.g. a server cancelling every
//!   in-flight query at shutdown) — each run observes it
//!   independently.

use crate::bfairbcem::{BiChainSink, BiSideExpander};
use crate::biclique::{Biclique, BicliqueSink, CollectSink, EnumStats, MappingSink};
use crate::config::{
    Budget, BudgetClock, BudgetLane, FairParams, ProParams, RunConfig, SharedBudget, Substrate,
    VertexOrder,
};
use crate::fairbcem_pp::SsExpander;
use crate::fcore::{PruneOutcome, PruneStats};
use crate::maximum::{MaxSink, SizeMetric};
use crate::mbea::{root_task, BranchTask, RBound, Walker};
use crate::pipeline::{prune_bi_side, prune_single_side, RunReport};
use crate::proportion::{ProBiChainSink, ProBiSideExpander, ProSsExpander};
use bigraph::candidate::CandidatePlan;
use bigraph::{BipartiteGraph, Side, VertexId};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Hard ceiling on engine worker threads (values beyond this waste
/// spawns and can hit OS thread limits long before they help).
const MAX_THREADS: usize = 512;

/// How a parallel run distributes work. The candidate substrate is no
/// longer part of the options — workers draw it from the
/// [`CandidatePlan`] the caller resolved (and possibly cached; see
/// [`crate::prepared`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct EngineOpts {
    /// Worker thread count (≥ 1).
    pub(crate) threads: usize,
    /// Depth down to which tasks re-split instead of running to
    /// completion (≥ 1; 1 = top-level branches only).
    pub(crate) split_depth: u32,
}

impl EngineOpts {
    pub(crate) fn from_run(cfg: &RunConfig) -> Self {
        EngineOpts {
            threads: cfg.threads.max(1),
            split_depth: cfg.split_depth.max(1),
        }
    }
}

/// Per-worker enumeration state driven by the engine: receives every
/// maximal biclique of the worker's stolen subtrees.
pub(crate) trait WalkVisitor: Send {
    /// One maximal biclique (both sides sorted; borrow only for the
    /// call).
    fn visit(&mut self, l: &[VertexId], r: &[VertexId]);
}

/// The shared branch deque plus termination tracking.
///
/// `active` counts tasks currently executing; workers block on the
/// condvar while the deque is empty but producers may still spawn,
/// and exit once the deque is empty with nothing in flight.
struct TaskQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
}

struct QueueState {
    deque: VecDeque<BranchTask>,
    active: usize,
}

impl TaskQueue {
    fn new(root: BranchTask) -> Self {
        let mut deque = VecDeque::new();
        deque.push_back(root);
        TaskQueue {
            state: Mutex::new(QueueState { deque, active: 0 }),
            cv: Condvar::new(),
        }
    }

    fn push(&self, task: BranchTask) {
        let mut st = self.state.lock().expect("task queue poisoned");
        st.deque.push_back(task);
        drop(st);
        self.cv.notify_one();
    }

    /// Steal the next task, blocking while producers are active.
    /// `None` means the run is complete.
    fn steal(&self) -> Option<BranchTask> {
        let mut st = self.state.lock().expect("task queue poisoned");
        loop {
            if let Some(task) = st.deque.pop_front() {
                st.active += 1;
                return Some(task);
            }
            if st.active == 0 {
                return None;
            }
            st = self.cv.wait(st).expect("task queue poisoned");
        }
    }

    /// Mark the last stolen task finished (children already pushed).
    fn finish(&self) {
        let mut st = self.state.lock().expect("task queue poisoned");
        st.active -= 1;
        if st.active == 0 && st.deque.is_empty() {
            drop(st);
            self.cv.notify_all();
        }
    }
}

/// Unwind guard for one stolen task: `finish()` must run even when the
/// task's sink or expander panics. Without it, `active` stays positive
/// forever, peer workers block on the queue condvar, and
/// `thread::scope` waits on those peers — so the panicked worker's
/// `join` (which would surface the panic) is never reached. Dropping
/// the guard during unwind releases the task slot and wakes every
/// waiter; the panic itself is re-raised after all workers joined.
struct TaskGuard<'q> {
    queue: &'q TaskQueue,
}

impl Drop for TaskGuard<'_> {
    fn drop(&mut self) {
        self.queue.finish();
    }
}

/// Run the maximal-biclique walk across `opts.threads` workers, each
/// owning a visitor built by `make` (which receives a clock drawing
/// from the run's shared expansion countdown).
///
/// Returns the visitors in worker order plus the deterministically
/// merged walk statistics (`emitted` counts *visited maximal
/// bicliques*; drivers overwrite it with their emission counts).
#[allow(clippy::too_many_arguments)]
pub(crate) fn parallel_walk<V: WalkVisitor>(
    g: &BipartiteGraph,
    min_l: usize,
    rbound: RBound<'_>,
    order: VertexOrder,
    budget: Budget,
    opts: EngineOpts,
    plan: &CandidatePlan,
    make: &(dyn Fn(BudgetClock) -> V + Sync),
) -> (Vec<V>, EnumStats) {
    let split_depth = opts.split_depth.max(1);
    let root = root_task(g, order, plan.choice());
    // Clamp the worker count: with top-level-only splitting no more
    // than one task per root candidate ever exists, and an absolute
    // cap keeps a huge `--threads` from hitting OS spawn limits.
    let task_bound = if split_depth == 1 {
        root.p.len().max(1)
    } else {
        MAX_THREADS
    };
    let threads = opts.threads.clamp(1, task_bound.min(MAX_THREADS));
    let shared = SharedBudget::new(budget);
    let queue = TaskQueue::new(root);

    let mut per_worker: Vec<(V, EnumStats)> = Vec::with_capacity(threads);
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            let queue = &queue;
            let shared = &shared;
            handles.push(s.spawn(move || {
                let mut visitor = make(shared.clock(BudgetLane::Expand));
                let mut walker = Walker::new(
                    g,
                    min_l,
                    rbound,
                    plan.ops(g, Side::Lower),
                    shared.clock(BudgetLane::Walk),
                );
                while let Some(task) = queue.steal() {
                    // Release the task slot even if the visitor panics
                    // (a stuck `active` count would deadlock peers).
                    let _guard = TaskGuard { queue };
                    // Drain without work once any global limit trips.
                    if !shared.is_exhausted() {
                        if task.depth < split_depth {
                            walker.split(task, &mut |l, r| visitor.visit(l, r), &mut |t| {
                                queue.push(t)
                            });
                        } else {
                            walker.run(task, &mut |l, r| visitor.visit(l, r));
                        }
                    }
                }
                (visitor, walker.stats())
            }));
        }
        // Join every worker before re-raising a panic: peers keep
        // draining the queue (the panicked task's subtree is simply
        // lost, which is fine — the run aborts anyway), so joins
        // complete promptly instead of deadlocking the scope.
        let mut panic_payload = None;
        for h in handles {
            match h.join() {
                Ok(res) => per_worker.push(res),
                Err(p) => panic_payload = Some(p),
            }
        }
        if let Some(p) = panic_payload {
            std::panic::resume_unwind(p);
        }
    });

    let mut agg = EnumStats::default();
    let mut visitors = Vec::with_capacity(per_worker.len());
    for (v, st) in per_worker {
        agg.nodes += st.nodes;
        agg.emitted += st.emitted;
        agg.aborted |= st.aborted;
        agg.stop = agg.stop.or(st.stop);
        agg.peak_search_bytes = agg.peak_search_bytes.max(st.peak_search_bytes);
        visitors.push(v);
    }
    agg.aborted |= shared.is_exhausted();
    // The shared budget records the run-wide first cause; prefer it
    // over whichever worker-local reason happened to merge first.
    agg.stop = shared.stop_reason().or(agg.stop);
    (visitors, agg)
}

fn fair_rbound(g: &BipartiteGraph, params: FairParams) -> RBound<'_> {
    RBound::AttrBeta {
        attrs: g.attrs(Side::Lower),
        beta: params.beta,
    }
}

// ---------------------------------------------------------------
// Per-miner workers, generic over the per-worker sink.
//
// Emissions are translated to original-graph ids inline (the engine
// runs on the compacted pruned graph), so every sink — counting,
// top-k, best-so-far, collecting — sees final ids, and streaming
// modes never materialize the result set.
// ---------------------------------------------------------------

struct SsWorker<'g, S> {
    expander: SsExpander<'g>,
    umap: &'g [VertexId],
    lmap: &'g [VertexId],
    sink: S,
}

impl<S: BicliqueSink + Send> WalkVisitor for SsWorker<'_, S> {
    fn visit(&mut self, l: &[VertexId], r: &[VertexId]) {
        let mut mapped = MappingSink::new(self.umap, self.lmap, &mut self.sink);
        self.expander.expand(l, r, &mut mapped);
    }
}

struct BiWorker<'g, S> {
    ss: SsExpander<'g>,
    bi: BiSideExpander<'g>,
    umap: &'g [VertexId],
    lmap: &'g [VertexId],
    sink: S,
}

impl<S: BicliqueSink + Send> WalkVisitor for BiWorker<'_, S> {
    fn visit(&mut self, l: &[VertexId], r: &[VertexId]) {
        let mut mapped = MappingSink::new(self.umap, self.lmap, &mut self.sink);
        let mut chain = BiChainSink {
            exp: &mut self.bi,
            sink: &mut mapped,
        };
        self.ss.expand(l, r, &mut chain);
    }
}

struct ProSsWorker<'g, S> {
    expander: ProSsExpander<'g>,
    umap: &'g [VertexId],
    lmap: &'g [VertexId],
    sink: S,
}

impl<S: BicliqueSink + Send> WalkVisitor for ProSsWorker<'_, S> {
    fn visit(&mut self, l: &[VertexId], r: &[VertexId]) {
        let mut mapped = MappingSink::new(self.umap, self.lmap, &mut self.sink);
        self.expander.expand(l, r, &mut mapped);
    }
}

struct ProBiWorker<'g, S> {
    ss: ProSsExpander<'g>,
    bi: ProBiSideExpander<'g>,
    umap: &'g [VertexId],
    lmap: &'g [VertexId],
    sink: S,
}

impl<S: BicliqueSink + Send> WalkVisitor for ProBiWorker<'_, S> {
    fn visit(&mut self, l: &[VertexId], r: &[VertexId]) {
        let mut mapped = MappingSink::new(self.umap, self.lmap, &mut self.sink);
        let mut chain = ProBiChainSink {
            exp: &mut self.bi,
            sink: &mut mapped,
        };
        self.ss.expand(l, r, &mut chain);
    }
}

// ---------------------------------------------------------------
// Parallel miners on an already-pruned graph. Each returns the
// per-worker sinks in worker order plus merged statistics.
// ---------------------------------------------------------------

/// The enumeration graph plus the id maps back to the caller's graph
/// (identity maps when the graph was not pruned).
pub(crate) struct MappedGraph<'g> {
    pub(crate) g: &'g BipartiteGraph,
    pub(crate) umap: &'g [VertexId],
    pub(crate) lmap: &'g [VertexId],
}

impl<'g> MappedGraph<'g> {
    pub(crate) fn of_pruned(pruned: &'g PruneOutcome) -> Self {
        MappedGraph {
            g: &pruned.sub.graph,
            umap: &pruned.sub.upper_to_parent,
            lmap: &pruned.sub.lower_to_parent,
        }
    }
}

pub(crate) fn par_ssfbc_workers<'g, S: BicliqueSink + Send>(
    mg: &MappedGraph<'g>,
    params: FairParams,
    order: VertexOrder,
    budget: Budget,
    opts: EngineOpts,
    plan: &CandidatePlan,
    make_sink: &(dyn Fn() -> S + Sync),
) -> (Vec<S>, EnumStats) {
    let MappedGraph { g, umap, lmap } = *mg;
    let (workers, mut stats) = parallel_walk(
        g,
        params.alpha as usize,
        fair_rbound(g, params),
        order,
        budget,
        opts,
        plan,
        &|clock| SsWorker {
            expander: SsExpander::with_clock(g, params, plan.ops(g, Side::Lower), clock),
            umap,
            lmap,
            sink: make_sink(),
        },
    );
    let mut sinks = Vec::with_capacity(workers.len());
    let mut emitted = 0u64;
    for w in workers {
        emitted += w.expander.emitted;
        stats.aborted |= w.expander.aborted();
        stats.stop = stats.stop.or_else(|| w.expander.stop_reason());
        sinks.push(w.sink);
    }
    stats.emitted = emitted;
    (sinks, stats)
}

pub(crate) fn par_bsfbc_workers<'g, S: BicliqueSink + Send>(
    mg: &MappedGraph<'g>,
    params: FairParams,
    order: VertexOrder,
    budget: Budget,
    opts: EngineOpts,
    plan: &CandidatePlan,
    make_sink: &(dyn Fn() -> S + Sync),
) -> (Vec<S>, EnumStats) {
    let MappedGraph { g, umap, lmap } = *mg;
    let (workers, mut stats) = parallel_walk(
        g,
        params.alpha as usize,
        fair_rbound(g, params),
        order,
        budget,
        opts,
        plan,
        &|clock| BiWorker {
            // The SSFBC stage is intermediate: exempt from the result
            // budget (only BSFBCs are final results).
            ss: SsExpander::with_clock(
                g,
                params,
                plan.ops(g, Side::Lower),
                clock.clone().exempt_results(),
            ),
            bi: BiSideExpander::with_clock(g, params, plan.ops(g, Side::Upper), clock),
            umap,
            lmap,
            sink: make_sink(),
        },
    );
    let mut sinks = Vec::with_capacity(workers.len());
    let mut emitted = 0u64;
    for w in workers {
        emitted += w.bi.emitted;
        stats.aborted |= w.ss.aborted() | w.bi.aborted();
        stats.stop = stats
            .stop
            .or_else(|| w.ss.stop_reason())
            .or_else(|| w.bi.stop_reason());
        sinks.push(w.sink);
    }
    stats.emitted = emitted;
    (sinks, stats)
}

pub(crate) fn par_pssfbc_workers<'g, S: BicliqueSink + Send>(
    mg: &MappedGraph<'g>,
    pro: ProParams,
    order: VertexOrder,
    budget: Budget,
    opts: EngineOpts,
    plan: &CandidatePlan,
    make_sink: &(dyn Fn() -> S + Sync),
) -> (Vec<S>, EnumStats) {
    let MappedGraph { g, umap, lmap } = *mg;
    let (workers, mut stats) = parallel_walk(
        g,
        pro.base.alpha as usize,
        fair_rbound(g, pro.base),
        order,
        budget,
        opts,
        plan,
        &|clock| ProSsWorker {
            expander: ProSsExpander::with_clock(g, pro, plan.ops(g, Side::Lower), clock),
            umap,
            lmap,
            sink: make_sink(),
        },
    );
    let mut sinks = Vec::with_capacity(workers.len());
    let mut emitted = 0u64;
    for w in workers {
        emitted += w.expander.emitted;
        stats.aborted |= w.expander.aborted();
        stats.stop = stats.stop.or_else(|| w.expander.stop_reason());
        sinks.push(w.sink);
    }
    stats.emitted = emitted;
    (sinks, stats)
}

pub(crate) fn par_pbsfbc_workers<'g, S: BicliqueSink + Send>(
    mg: &MappedGraph<'g>,
    pro: ProParams,
    order: VertexOrder,
    budget: Budget,
    opts: EngineOpts,
    plan: &CandidatePlan,
    make_sink: &(dyn Fn() -> S + Sync),
) -> (Vec<S>, EnumStats) {
    let MappedGraph { g, umap, lmap } = *mg;
    let (workers, mut stats) = parallel_walk(
        g,
        pro.base.alpha as usize,
        fair_rbound(g, pro.base),
        order,
        budget,
        opts,
        plan,
        &|clock| ProBiWorker {
            ss: ProSsExpander::with_clock(
                g,
                pro,
                plan.ops(g, Side::Lower),
                clock.clone().exempt_results(),
            ),
            bi: ProBiSideExpander::with_clock(g, pro, plan.ops(g, Side::Upper), clock),
            umap,
            lmap,
            sink: make_sink(),
        },
    );
    let mut sinks = Vec::with_capacity(workers.len());
    let mut emitted = 0u64;
    for w in workers {
        emitted += w.bi.emitted;
        stats.aborted |= w.ss.aborted() | w.bi.aborted();
        stats.stop = stats
            .stop
            .or_else(|| w.ss.stop_reason())
            .or_else(|| w.bi.stop_reason());
        sinks.push(w.sink);
    }
    stats.emitted = emitted;
    (sinks, stats)
}

// ---------------------------------------------------------------
// Public streaming pipelines: prune → parallel enumerate into
// per-worker sinks. The parallel analog of the `run_*` functions in
// `pipeline` — counting or top-k runs never materialize the full
// result set.
// ---------------------------------------------------------------

/// Parallel streaming SSFBC pipeline: prune, then enumerate across
/// `cfg.threads` workers, each emitting (original ids) into its own
/// sink from `make_sink`. Returns the sinks in worker order for the
/// caller to merge, plus pruning and merged search statistics
/// (`stats.emitted` is the total result count).
pub fn par_run_ssfbc<S: BicliqueSink + Send>(
    g: &BipartiteGraph,
    params: FairParams,
    cfg: &RunConfig,
    make_sink: &(dyn Fn() -> S + Sync),
) -> (Vec<S>, PruneStats, EnumStats) {
    let pruned = prune_single_side(g, params, cfg.prune);
    let plan = CandidatePlan::build(&pruned.sub.graph, cfg.substrate, false);
    let (sinks, stats) = par_ssfbc_workers(
        &MappedGraph::of_pruned(&pruned),
        params,
        cfg.order,
        cfg.budget.clone(),
        EngineOpts::from_run(cfg),
        &plan,
        make_sink,
    );
    (sinks, pruned.stats, stats)
}

/// Parallel streaming BSFBC pipeline (see [`par_run_ssfbc`]).
pub fn par_run_bsfbc<S: BicliqueSink + Send>(
    g: &BipartiteGraph,
    params: FairParams,
    cfg: &RunConfig,
    make_sink: &(dyn Fn() -> S + Sync),
) -> (Vec<S>, PruneStats, EnumStats) {
    let pruned = prune_bi_side(g, params, cfg.prune);
    let plan = CandidatePlan::build(&pruned.sub.graph, cfg.substrate, true);
    let (sinks, stats) = par_bsfbc_workers(
        &MappedGraph::of_pruned(&pruned),
        params,
        cfg.order,
        cfg.budget.clone(),
        EngineOpts::from_run(cfg),
        &plan,
        make_sink,
    );
    (sinks, pruned.stats, stats)
}

/// Parallel streaming PSSFBC pipeline (see [`par_run_ssfbc`]).
pub fn par_run_pssfbc<S: BicliqueSink + Send>(
    g: &BipartiteGraph,
    pro: ProParams,
    cfg: &RunConfig,
    make_sink: &(dyn Fn() -> S + Sync),
) -> (Vec<S>, PruneStats, EnumStats) {
    let pruned = prune_single_side(g, pro.base, cfg.prune);
    let plan = CandidatePlan::build(&pruned.sub.graph, cfg.substrate, false);
    let (sinks, stats) = par_pssfbc_workers(
        &MappedGraph::of_pruned(&pruned),
        pro,
        cfg.order,
        cfg.budget.clone(),
        EngineOpts::from_run(cfg),
        &plan,
        make_sink,
    );
    (sinks, pruned.stats, stats)
}

/// Parallel streaming PBSFBC pipeline (see [`par_run_ssfbc`]).
pub fn par_run_pbsfbc<S: BicliqueSink + Send>(
    g: &BipartiteGraph,
    pro: ProParams,
    cfg: &RunConfig,
    make_sink: &(dyn Fn() -> S + Sync),
) -> (Vec<S>, PruneStats, EnumStats) {
    let pruned = prune_bi_side(g, pro.base, cfg.prune);
    let plan = CandidatePlan::build(&pruned.sub.graph, cfg.substrate, true);
    let (sinks, stats) = par_pbsfbc_workers(
        &MappedGraph::of_pruned(&pruned),
        pro,
        cfg.order,
        cfg.budget.clone(),
        EngineOpts::from_run(cfg),
        &plan,
        make_sink,
    );
    (sinks, pruned.stats, stats)
}

// ---------------------------------------------------------------
// Maximum fair biclique search.
// ---------------------------------------------------------------

pub(crate) fn merge_max(metric: SizeMetric, sinks: impl IntoIterator<Item = MaxSink>) -> MaxSink {
    let mut merged = MaxSink::new(metric);
    let mut seen = 0u64;
    for s in sinks {
        seen += s.seen;
        if let Some(b) = s.best {
            merged.emit(&b.upper, &b.lower);
        }
    }
    merged.seen = seen;
    merged
}

/// Parallel maximum-SSFBC search over an already-pruned graph; the
/// returned sink holds the best biclique in *original* ids (the
/// per-worker sinks rank translated emissions, so the `(score,
/// lexicographic)` tie-break matches the serial pipeline).
pub(crate) fn par_max_ssfbc(
    pruned: &PruneOutcome,
    params: FairParams,
    metric: SizeMetric,
    cfg: &RunConfig,
) -> MaxSink {
    let plan = CandidatePlan::build(&pruned.sub.graph, cfg.substrate, false);
    let (sinks, _) = par_ssfbc_workers(
        &MappedGraph::of_pruned(pruned),
        params,
        cfg.order,
        cfg.budget.clone(),
        EngineOpts::from_run(cfg),
        &plan,
        &|| MaxSink::new(metric),
    );
    merge_max(metric, sinks)
}

/// Parallel maximum-BSFBC search over an already-pruned graph.
pub(crate) fn par_max_bsfbc(
    pruned: &PruneOutcome,
    params: FairParams,
    metric: SizeMetric,
    cfg: &RunConfig,
) -> MaxSink {
    let plan = CandidatePlan::build(&pruned.sub.graph, cfg.substrate, true);
    let (sinks, _) = par_bsfbc_workers(
        &MappedGraph::of_pruned(pruned),
        params,
        cfg.order,
        cfg.budget.clone(),
        EngineOpts::from_run(cfg),
        &plan,
        &|| MaxSink::new(metric),
    );
    merge_max(metric, sinks)
}

// ---------------------------------------------------------------
// Back-compat wrappers around the engine.
// ---------------------------------------------------------------

/// Run `FairBCEM++` on an already-pruned graph across `n_threads`
/// workers, returning the collected results (order unspecified) and
/// aggregated statistics.
///
/// The budget is **global**: all workers share one countdown (earlier
/// versions applied it per worker, allowing an `n_threads ×` overrun).
pub fn fairbcem_pp_par_on_pruned(
    g: &BipartiteGraph,
    params: FairParams,
    order: VertexOrder,
    n_threads: usize,
    budget: Budget,
) -> (Vec<Biclique>, EnumStats) {
    // The caller's graph is the enumeration graph: identity maps.
    let umap: Vec<VertexId> = (0..g.n_upper() as VertexId).collect();
    let lmap: Vec<VertexId> = (0..g.n_lower() as VertexId).collect();
    let mg = MappedGraph {
        g,
        umap: &umap,
        lmap: &lmap,
    };
    let plan = CandidatePlan::build(g, Substrate::Auto, false);
    let (sinks, stats) = par_ssfbc_workers(
        &mg,
        params,
        order,
        budget,
        EngineOpts {
            threads: n_threads.max(1),
            split_depth: 1,
        },
        &plan,
        &CollectSink::default,
    );
    let mut all = Vec::new();
    for s in sinks {
        all.extend(s.bicliques);
    }
    (all, stats)
}

/// Full parallel SSFBC pipeline: prune (serial — it is near-linear),
/// enumerate across `n_threads` workers, map ids back to the original
/// graph, and sort for determinism.
///
/// Equivalent to [`crate::pipeline::enumerate_ssfbc`] with
/// `cfg.threads = n_threads` and `cfg.sorted = true`.
pub fn par_enumerate_ssfbc(
    g: &BipartiteGraph,
    params: FairParams,
    cfg: &RunConfig,
    n_threads: usize,
) -> RunReport {
    let cfg = RunConfig {
        threads: n_threads.max(1),
        sorted: true,
        ..cfg.clone()
    };
    crate::pipeline::enumerate_ssfbc(g, params, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VertexOrder;
    use crate::pipeline::{enumerate_bsfbc, enumerate_pbsfbc, enumerate_pssfbc, enumerate_ssfbc};
    use bigraph::generate::{plant_bicliques, random_uniform};
    use std::collections::BTreeSet;

    #[test]
    fn parallel_matches_serial_on_random_graphs() {
        for seed in 0..10u64 {
            let g = random_uniform(12, 14, 70, 2, 2, seed);
            let params = FairParams::unchecked(2, 1, 1);
            let serial: BTreeSet<Biclique> = enumerate_ssfbc(&g, params, &RunConfig::default())
                .bicliques
                .into_iter()
                .collect();
            for threads in [1usize, 2, 4] {
                let par = par_enumerate_ssfbc(&g, params, &RunConfig::default(), threads);
                let got: BTreeSet<Biclique> = par.bicliques.iter().cloned().collect();
                assert_eq!(got.len(), par.bicliques.len(), "no duplicates");
                assert_eq!(got, serial, "seed {seed} threads {threads}");
                assert_eq!(par.stats.emitted as usize, serial.len());
                assert_eq!(par.threads, threads);
            }
        }
    }

    #[test]
    fn parallel_matches_serial_on_planted_structure() {
        let base = random_uniform(40, 45, 300, 2, 2, 3);
        let g = plant_bicliques(&base, 3, 5, 8, 1.0, 4);
        let params = FairParams::unchecked(3, 2, 1);
        let serial: BTreeSet<Biclique> = enumerate_ssfbc(&g, params, &RunConfig::default())
            .bicliques
            .into_iter()
            .collect();
        assert!(!serial.is_empty());
        for order in [VertexOrder::IdAsc, VertexOrder::DegreeDesc] {
            let cfg = RunConfig::with_order(order);
            let par = par_enumerate_ssfbc(&g, params, &cfg, 4);
            let got: BTreeSet<Biclique> = par.bicliques.into_iter().collect();
            assert_eq!(got, serial, "order {order:?}");
        }
    }

    #[test]
    fn parallel_output_is_sorted_and_deterministic() {
        let g = random_uniform(15, 15, 90, 2, 2, 8);
        let params = FairParams::unchecked(2, 1, 2);
        let a = par_enumerate_ssfbc(&g, params, &RunConfig::default(), 3);
        let b = par_enumerate_ssfbc(&g, params, &RunConfig::default(), 3);
        assert_eq!(a.bicliques, b.bicliques);
        assert!(a.bicliques.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn single_thread_equals_serial_stats_shape() {
        let g = random_uniform(10, 10, 50, 2, 2, 5);
        let params = FairParams::unchecked(2, 1, 1);
        let par = par_enumerate_ssfbc(&g, params, &RunConfig::default(), 1);
        let ser = enumerate_ssfbc(&g, params, &RunConfig::default());
        assert_eq!(par.bicliques.len(), ser.bicliques.len());
        assert_eq!(par.stats.nodes, ser.stats.nodes);
    }

    #[test]
    fn all_miners_match_serial_via_engine() {
        let g = random_uniform(10, 12, 55, 2, 2, 17);
        let params = FairParams::unchecked(2, 1, 1);
        let pro = ProParams::new(2, 1, 1, 0.3).unwrap();
        let serial = |cfg: &RunConfig| {
            (
                enumerate_ssfbc(&g, params, cfg).bicliques,
                enumerate_bsfbc(&g, params, cfg).bicliques,
                enumerate_pssfbc(&g, pro, cfg).bicliques,
                enumerate_pbsfbc(&g, pro, cfg).bicliques,
            )
        };
        let base = RunConfig {
            sorted: true,
            ..RunConfig::default()
        };
        let want = serial(&base);
        for threads in [2usize, 3, 7] {
            for split_depth in [1u32, 2] {
                let cfg = RunConfig {
                    threads,
                    split_depth,
                    ..base.clone()
                };
                let got = serial(&cfg);
                assert_eq!(got, want, "threads {threads} split {split_depth}");
            }
        }
    }

    #[test]
    fn node_stats_merge_to_serial_totals() {
        for seed in [1u64, 9, 23] {
            let g = random_uniform(14, 16, 95, 2, 2, seed);
            let params = FairParams::unchecked(2, 1, 1);
            let ser = enumerate_ssfbc(&g, params, &RunConfig::default());
            for threads in [2usize, 4, 7] {
                for split_depth in [1u32, 3] {
                    let cfg = RunConfig {
                        threads,
                        split_depth,
                        ..RunConfig::default()
                    };
                    let par = enumerate_ssfbc(&g, params, &cfg);
                    assert_eq!(
                        par.stats.nodes, ser.stats.nodes,
                        "seed {seed} threads {threads} split {split_depth}"
                    );
                    assert_eq!(par.stats.emitted, ser.stats.emitted);
                }
            }
        }
    }

    #[test]
    fn result_cap_stops_the_serial_walk_early() {
        // Serial and parallel budget semantics agree: once the result
        // cap trips, the maximal-biclique walk stops instead of
        // visiting the rest of the tree emitting nothing.
        let g = random_uniform(16, 18, 120, 2, 2, 4);
        let params = FairParams::unchecked(1, 1, 2);
        let full = enumerate_ssfbc(&g, params, &RunConfig::default());
        assert!(full.bicliques.len() > 10);
        let capped = enumerate_ssfbc(
            &g,
            params,
            &RunConfig {
                budget: Budget::results(1),
                ..RunConfig::default()
            },
        );
        assert_eq!(capped.bicliques.len(), 1);
        assert!(capped.stats.aborted);
        assert!(
            capped.stats.nodes < full.stats.nodes,
            "capped walk visited {} of {} nodes — it must stop early",
            capped.stats.nodes,
            full.stats.nodes
        );
        // Same for the bi-side chain, where the cap lives two stages
        // downstream of the walker.
        let full_bi = enumerate_bsfbc(&g, params, &RunConfig::default());
        assert!(full_bi.bicliques.len() > 1);
        let capped_bi = enumerate_bsfbc(
            &g,
            params,
            &RunConfig {
                budget: Budget::results(1),
                ..RunConfig::default()
            },
        );
        assert_eq!(capped_bi.bicliques.len(), 1);
        assert!(capped_bi.stats.nodes < full_bi.stats.nodes);
    }

    #[test]
    fn absurd_thread_counts_are_clamped_not_fatal() {
        let g = random_uniform(10, 10, 50, 2, 2, 3);
        let params = FairParams::unchecked(2, 1, 1);
        let want = enumerate_ssfbc(&g, params, &RunConfig::default())
            .bicliques
            .into_iter()
            .collect::<BTreeSet<_>>();
        for split_depth in [1u32, 2] {
            let cfg = RunConfig {
                threads: 1_000_000,
                split_depth,
                ..RunConfig::default()
            };
            let got: BTreeSet<Biclique> = enumerate_ssfbc(&g, params, &cfg)
                .bicliques
                .into_iter()
                .collect();
            assert_eq!(got, want, "split {split_depth}");
        }
    }

    #[test]
    fn streaming_sinks_match_collected_runs() {
        use crate::biclique::{CountSink, TopKSink};
        let g = random_uniform(12, 14, 80, 2, 2, 6);
        let params = FairParams::unchecked(2, 1, 1);
        let cfg = RunConfig::with_threads(4);
        let report = enumerate_ssfbc(&g, params, &cfg);
        let (counts, prune, stats) = par_run_ssfbc(&g, params, &cfg, &CountSink::default);
        assert_eq!(
            counts.iter().map(|c| c.count).sum::<u64>(),
            report.bicliques.len() as u64
        );
        assert_eq!(stats.emitted as usize, report.bicliques.len());
        assert_eq!(prune, report.prune);
        // Per-worker top-k sinks merge to the serial top-k set.
        let k = 5usize;
        let (tops, _, _) = par_run_ssfbc(&g, params, &cfg, &|| TopKSink::new(k));
        let mut merged = TopKSink::new(k);
        for t in tops {
            for bc in t.into_sorted() {
                crate::biclique::BicliqueSink::emit(&mut merged, &bc.upper, &bc.lower);
            }
        }
        let mut serial_top = TopKSink::new(k);
        for bc in &report.bicliques {
            crate::biclique::BicliqueSink::emit(&mut serial_top, &bc.upper, &bc.lower);
        }
        assert_eq!(merged.into_sorted(), serial_top.into_sorted());
    }

    #[test]
    fn worker_panic_surfaces_instead_of_deadlocking() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        /// Panics on the Nth emission across all workers (shared
        /// counter), exercising an unwind mid-task at 4 threads.
        struct PanicSink {
            emitted: Arc<AtomicU64>,
            nth: u64,
        }
        impl BicliqueSink for PanicSink {
            fn emit(&mut self, _l: &[VertexId], _r: &[VertexId]) {
                // lint: ordering: test-only shared counter; exact
                // interleaving is irrelevant, any emission may trip it.
                if self.emitted.fetch_add(1, Ordering::Relaxed) + 1 == self.nth {
                    panic!("injected sink panic");
                }
            }
        }

        let g = random_uniform(14, 16, 95, 2, 2, 21);
        let params = FairParams::unchecked(1, 1, 2);
        let total = enumerate_ssfbc(&g, params, &RunConfig::default())
            .bicliques
            .len() as u64;
        assert!(total > 4, "need enough results to panic mid-run");

        let cfg = RunConfig::with_threads(4);
        let emitted = Arc::new(AtomicU64::new(0));
        let result = catch_unwind(AssertUnwindSafe(|| {
            par_run_ssfbc(&g, params, &cfg, &|| PanicSink {
                emitted: emitted.clone(),
                nth: 3,
            })
        }));
        // The injected panic must come back to the caller (pre-fix this
        // deadlocked: the panicked worker never released its task slot,
        // peers blocked on the condvar, and thread::scope waited
        // forever). Peer workers drain the queue and join first.
        assert!(result.is_err(), "sink panic must propagate to the caller");
        assert!(emitted.load(Ordering::Relaxed) >= 3);

        // The engine stays usable after a panicked run.
        let again = par_enumerate_ssfbc(&g, params, &RunConfig::default(), 4);
        assert_eq!(again.bicliques.len() as u64, total);
    }

    #[test]
    fn global_result_budget_is_exact() {
        let g = random_uniform(14, 16, 100, 2, 2, 12);
        let params = FairParams::unchecked(1, 1, 2);
        let total = enumerate_ssfbc(&g, params, &RunConfig::default())
            .bicliques
            .len();
        assert!(total > 8, "need a graph with enough results, got {total}");
        for threads in [1usize, 2, 4, 7] {
            for k in [0usize, 1, 3, total, total + 5] {
                let cfg = RunConfig {
                    threads,
                    budget: Budget::results(k as u64),
                    ..RunConfig::default()
                };
                let report = enumerate_ssfbc(&g, params, &cfg);
                assert_eq!(
                    report.bicliques.len(),
                    k.min(total),
                    "threads {threads} k {k}"
                );
                assert_eq!(report.stats.aborted, k < total, "threads {threads} k {k}");
            }
        }
    }
}
