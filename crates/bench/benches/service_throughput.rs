//! Service throughput: cold (plan prepared per query) vs cached-plan
//! QPS through the in-process engine, plus loopback-TCP overhead.
//!
//! Run: `cargo bench --bench service_throughput` (`-- --quick` for a
//! reduced iteration count).

use fbe_service::engine::{Engine, Session};
use fbe_service::ServiceConfig;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

fn qps(n: u32, total: std::time::Duration) -> f64 {
    n as f64 / total.as_secs_f64().max(1e-9)
}

fn run_queries(engine: &Engine, query: &str, iters: u32, cold: bool) -> (f64, u64) {
    let mut count = 0;
    let t0 = Instant::now();
    for _ in 0..iters {
        if cold {
            engine.clear_plans();
        }
        let outcome = engine.handle_line(query);
        let reply = outcome.reply();
        assert!(reply.is_ok(), "{}", reply.status);
        count += 1;
    }
    (qps(count, t0.elapsed()), count as u64)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let iters: u32 = if quick { 20 } else { 200 };
    println!("=== Service throughput (cold vs cached prepared plans) ===");

    let engine = Engine::new(ServiceConfig::default());
    assert!(engine.handle_line("GEN yt youtube").reply().is_ok());
    assert!(engine
        .handle_line("GEN u uniform:300,300,9000,7")
        .reply()
        .is_ok());

    let cases = [
        (
            "youtube ssfbc a=8 b=8",
            "ENUM yt ssfbc alpha=8 beta=8 delta=2 count-only",
        ),
        (
            "youtube bsfbc a=5 b=5",
            "ENUM yt bsfbc alpha=5 beta=5 delta=2 count-only",
        ),
        (
            "uniform pssfbc a=3 b=2",
            "ENUM u pssfbc alpha=3 beta=2 delta=1 theta=0.3 count-only",
        ),
    ];
    println!(
        "{:<28} {:>12} {:>12} {:>8}",
        "case", "cold q/s", "cached q/s", "speedup"
    );
    for (label, query) in cases {
        // Warm the graph catalog path, then measure.
        let (cold_qps, _) = run_queries(&engine, query, iters.min(50), true);
        engine.clear_plans();
        let _ = engine.handle_line(query); // prime the cache
        let (cached_qps, _) = run_queries(&engine, query, iters, false);
        println!(
            "{label:<28} {cold_qps:>12.1} {cached_qps:>12.1} {:>7.1}x",
            cached_qps / cold_qps.max(1e-9)
        );
        fbe_bench::export_json_record(
            &format!("service_throughput/{label}"),
            &[("cold_qps", cold_qps), ("cached_qps", cached_qps)],
        );
    }

    // Tracing overhead: the identical cached-plan query with the span
    // recorder disabled vs enabled (tree recorded, rendered, and
    // appended to every reply). Gates "recording is effectively free
    // when off" — trace_off_qps must track the plain cached cell.
    {
        let query = "ENUM yt ssfbc alpha=8 beta=8 delta=2 count-only";
        let _ = engine.handle_line(query); // prime the cache
        let measure = |session: &mut Session| {
            let t0 = Instant::now();
            for _ in 0..iters {
                let outcome = engine.handle_line_in(query, session);
                assert!(outcome.reply().is_ok());
            }
            qps(iters, t0.elapsed())
        };
        let mut session = Session::new();
        let trace_off_qps = measure(&mut session);
        assert!(engine
            .handle_line_in("TRACE on", &mut session)
            .reply()
            .is_ok());
        let trace_on_qps = measure(&mut session);
        println!(
            "{:<28} {:>12.1} {:>12.1} {:>7.2}x",
            "trace off vs on (cached)",
            trace_off_qps,
            trace_on_qps,
            trace_on_qps / trace_off_qps.max(1e-9)
        );
        fbe_bench::export_json_record(
            "service_throughput/trace overhead (cached)",
            &[
                ("trace_off_qps", trace_off_qps),
                ("trace_on_qps", trace_on_qps),
            ],
        );
    }

    // Loopback TCP: cached-plan queries through a real socket.
    let server =
        fbe_service::server::Server::bind("127.0.0.1:0", Arc::clone(&engine)).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || server.run());
    {
        let stream = TcpStream::connect(&addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = BufWriter::new(stream);
        let read_block = |reader: &mut BufReader<TcpStream>| {
            let mut line = String::new();
            loop {
                line.clear();
                reader.read_line(&mut line).expect("read");
                if line.trim_end() == "." {
                    break;
                }
            }
        };
        read_block(&mut reader); // greeting
        let query = "ENUM yt ssfbc alpha=8 beta=8 delta=2 count-only";
        let t0 = Instant::now();
        for _ in 0..iters {
            writeln!(writer, "{query}").expect("send");
            writer.flush().expect("flush");
            read_block(&mut reader);
        }
        let loopback_qps = qps(iters, t0.elapsed());
        println!(
            "{:<28} {:>12} {:>12.1}",
            "loopback tcp (cached)", "-", loopback_qps
        );
        fbe_bench::export_json_record(
            "service_throughput/loopback tcp (cached)",
            &[("cached_qps", loopback_qps)],
        );
        writeln!(writer, "SHUTDOWN").expect("send");
        writer.flush().expect("flush");
        read_block(&mut reader);
    }
    handle.join().expect("join").expect("server");
}
