//! Loopback integration test of the resident query service: a real
//! TCP server on an ephemeral port, driven by scripted multi-client
//! sessions, cross-checked against the CLI pipelines.

use fbe_service::engine::Engine;
use fbe_service::server::Server;
use fbe_service::ServiceConfig;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// One protocol client over a real socket.
struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut c = Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: BufWriter::new(stream),
        };
        let (greet, _) = c.read_block();
        assert!(greet.contains("protocol=1"), "greeting: {greet}");
        c
    }

    fn read_block(&mut self) -> (String, Vec<String>) {
        let mut status = String::new();
        self.reader.read_line(&mut status).expect("status line");
        let status = status.trim_end().to_string();
        let mut payload = Vec::new();
        loop {
            let mut l = String::new();
            self.reader.read_line(&mut l).expect("payload line");
            let l = l.trim_end().to_string();
            if l == "." {
                break;
            }
            payload.push(l);
        }
        (status, payload)
    }

    fn cmd(&mut self, line: &str) -> (String, Vec<String>) {
        writeln!(self.writer, "{line}").expect("send");
        self.writer.flush().expect("flush");
        self.read_block()
    }

    /// Send and require an `OK` status.
    fn ok(&mut self, line: &str) -> (String, Vec<String>) {
        let (status, payload) = self.cmd(line);
        assert!(status.starts_with("OK"), "{line} -> {status}");
        (status, payload)
    }
}

fn field<'a>(status: &'a str, key: &str) -> Option<&'a str> {
    status
        .split_whitespace()
        .find_map(|t| t.strip_prefix(&format!("{key}=") as &str))
}

fn stat_value(payload: &[String], key: &str) -> u64 {
    payload
        .iter()
        .find_map(|l| l.strip_prefix(&format!("{key} ") as &str))
        .unwrap_or_else(|| panic!("missing stat {key}"))
        .parse()
        .unwrap()
}

fn start_server(cfg: ServiceConfig) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let engine = Engine::new(cfg);
    let server = Server::bind("127.0.0.1:0", Arc::clone(&engine)).expect("bind ephemeral");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn sv(args: &[&str]) -> Vec<String> {
    args.iter().map(|s| s.to_string()).collect()
}

/// Extract the `  L=[..] R=[..]` result lines from CLI enumerate
/// output, trimmed.
fn cli_bicliques(out: &str) -> Vec<String> {
    out.lines()
        .filter(|l| l.trim_start().starts_with("L=["))
        .map(|l| l.trim().to_string())
        .collect()
}

#[test]
fn scripted_session_matches_cli_caches_plans_and_survives_deadlines() {
    // A graph on disk, written by the CLI itself.
    let dir = std::env::temp_dir().join("fbe_service_loopback");
    std::fs::create_dir_all(&dir).unwrap();
    let stem = dir.join("g");
    let stem_s = stem.to_str().unwrap();
    fbe_cli::run(&sv(&[
        "generate",
        "--uniform",
        "20,20,120",
        "--seed",
        "7",
        "--out",
        stem_s,
    ]))
    .expect("generate");

    let (addr, handle) = start_server(ServiceConfig::default());
    let mut c = Client::connect(&addr);

    let (status, _) = c.ok("PING");
    assert_eq!(status, "OK pong");
    let (status, _) = c.ok(&format!("LOAD g {stem_s}"));
    assert!(status.contains("upper=20"), "{status}");

    // --- every miner: service results == CLI results, byte for byte.
    let cases = [
        ("ssfbc", vec![], "ENUM g ssfbc alpha=2 beta=1 delta=1"),
        ("bsfbc", vec!["--bi"], "ENUM g bsfbc alpha=2 beta=1 delta=1"),
        (
            "pssfbc",
            vec!["--theta", "0.3"],
            "ENUM g pssfbc alpha=2 beta=1 delta=1 theta=0.3",
        ),
        (
            "pbsfbc",
            vec!["--bi", "--theta", "0.3"],
            "ENUM g pbsfbc alpha=2 beta=1 delta=1 theta=0.3",
        ),
    ];
    for (name, cli_extra, service_cmd) in &cases {
        let mut argv = sv(&[
            "enumerate",
            stem_s,
            "--alpha",
            "2",
            "--beta",
            "1",
            "--delta",
            "1",
            "--sorted",
        ]);
        argv.extend(sv(cli_extra));
        let cli_out = fbe_cli::run(&argv).expect("cli enumerate");
        let want = cli_bicliques(&cli_out);
        let (status, payload) = c.ok(service_cmd);
        assert_eq!(payload, want, "{name}: service vs CLI");
        assert_eq!(
            field(&status, "count"),
            Some(want.len().to_string().as_str()),
            "{name}: {status}"
        );
        // Multi-threaded service execution agrees too.
        let (_, payload4) = c.ok(&format!("{service_cmd} threads=4"));
        assert_eq!(payload4, want, "{name} threads=4");
    }

    // Maximum search through the service matches the CLI's.
    let cli_max = fbe_cli::run(&sv(&[
        "maximum", stem_s, "--alpha", "2", "--beta", "1", "--delta", "1", "--metric", "edges",
    ]))
    .expect("cli maximum");
    let want_max = cli_bicliques(&cli_max);
    let (_, got_max) = c.ok("ENUM g ssfbc alpha=2 beta=1 delta=1 max=edges");
    assert_eq!(got_max, want_max, "maximum via service vs CLI");

    // --- plan cache: an identical repeat is served from cache.
    let q = "ENUM g ssfbc alpha=2 beta=1 delta=1";
    let (s1, p1) = c.ok(q);
    // (first run of this exact key happened above and was a miss;
    // by now it must be a hit)
    assert_eq!(field(&s1, "cached"), Some("true"), "{s1}");
    let (s2, p2) = c.ok(q);
    assert_eq!(field(&s2, "cached"), Some("true"), "{s2}");
    assert_eq!(p1, p2, "cached replay is identical");
    let (_, stats) = c.ok("STATS");
    assert!(stat_value(&stats, "plan_cache_hits") >= 2);
    assert!(stat_value(&stats, "plan_cache_misses") >= 1);
    assert!(stat_value(&stats, "latency_count") > 0);

    // --- deadline: a 1 ms deadline on a heavy query truncates...
    c.ok("GEN big uniform:400,400,40000,9");
    let (status, payload) = c.ok("ENUM big ssfbc alpha=1 beta=1 delta=1 deadline-ms=1 count-only");
    assert!(status.contains("truncated=deadline"), "{status}");
    assert!(payload.is_empty());
    // ...without poisoning the server: the next query is exact again.
    let (status, _) = c.ok(q);
    assert!(!status.contains("truncated"), "{status}");
    let (_, stats) = c.ok("STATS");
    assert!(stat_value(&stats, "truncated_deadline") >= 1);

    // --- deadline on the *cold-plan* path: an already-expired
    // deadline on an uncached (graph, params) key is admitted (workers
    // are free), reaches the prepare phase, and the prune cascade
    // aborts cooperatively — the reply reports the deadline instead of
    // overshooting by one un-cancellable prepare.
    // (α, β) = (40, 40) keeps the prepare non-trivial — the full
    // prune cascade runs — while the pruned core, and hence the
    // enumeration, is empty.
    let cold = "ENUM big ssfbc alpha=40 beta=40 delta=1";
    let (status, payload) = c.ok(&format!("{cold} deadline-ms=0"));
    assert!(status.contains("truncated=deadline"), "{status}");
    assert_eq!(field(&status, "cached"), Some("false"), "{status}");
    assert_eq!(field(&status, "count"), Some("0"), "{status}");
    assert!(payload.is_empty());
    // Nothing was cached by the aborted prepare: the retry without a
    // deadline prepares from scratch (miss), and only then caches.
    let (status, _) = c.ok(cold);
    assert!(!status.contains("truncated"), "{status}");
    assert_eq!(field(&status, "cached"), Some("false"), "{status}");
    let (status, _) = c.ok(cold);
    assert_eq!(field(&status, "cached"), Some("true"), "{status}");

    // --- multi-client: concurrent sessions on their own connections.
    let addr2 = addr.clone();
    let workers: Vec<_> = (0..3)
        .map(|i| {
            let addr = addr2.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr);
                let (status, payload) = c.ok(&format!(
                    "ENUM g ssfbc alpha=2 beta=1 delta=1 threads={}",
                    i + 1
                ));
                (status, payload)
            })
        })
        .collect();
    let results: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    for (status, payload) in &results {
        assert!(status.starts_with("OK"), "{status}");
        assert_eq!(payload, &results[0].1, "all clients see identical results");
    }

    // --- shutdown ends the server; the listener goes away.
    let (status, _) = c.ok("SHUTDOWN");
    assert_eq!(status, "OK bye");
    handle.join().unwrap().expect("server run");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_graphs_and_bad_commands_do_not_kill_the_session() {
    let (addr, handle) = start_server(ServiceConfig::default());
    let mut c = Client::connect(&addr);
    let (status, _) = c.cmd("ENUM nope ssfbc alpha=1 beta=1 delta=1");
    assert!(status.starts_with("ERR NOGRAPH"), "{status}");
    let (status, _) = c.cmd("FROBNICATE");
    assert!(status.starts_with("ERR BADCMD"), "{status}");
    let (status, _) = c.cmd("ENUM g ssfbc alpha=zero beta=1 delta=1");
    assert!(status.starts_with("ERR BADARG"), "{status}");
    // The connection still works.
    let (status, _) = c.ok("PING");
    assert_eq!(status, "OK pong");
    c.ok("SHUTDOWN");
    handle.join().unwrap().unwrap();
}

#[test]
fn result_limits_truncate_collecting_queries() {
    let (addr, handle) = start_server(ServiceConfig {
        default_result_limit: 3,
        ..ServiceConfig::default()
    });
    let mut c = Client::connect(&addr);
    c.ok("GEN g uniform:20,20,140,3");
    let (status, payload) = c.ok("ENUM g ssfbc alpha=1 beta=1 delta=2");
    assert_eq!(field(&status, "count"), Some("3"), "{status}");
    assert!(status.contains("truncated=result-cap"), "{status}");
    assert_eq!(payload.len(), 3);
    // An explicit limit overrides the default.
    let (status, payload) = c.ok("ENUM g ssfbc alpha=1 beta=1 delta=2 limit=5");
    assert_eq!(payload.len(), 5);
    assert!(status.contains("truncated=result-cap"), "{status}");
    // count-only is exempt from the default cap.
    let (status, _) = c.ok("ENUM g ssfbc alpha=1 beta=1 delta=2 count-only");
    let n: u64 = field(&status, "count").unwrap().parse().unwrap();
    assert!(n > 5, "{status}");
    assert!(!status.contains("truncated"), "{status}");
    c.ok("SHUTDOWN");
    handle.join().unwrap().unwrap();
}

#[test]
fn a_crashed_query_degrades_to_err_internal_without_wedging_the_server() {
    let (addr, handle) = start_server(ServiceConfig {
        debug_commands: true,
        ..ServiceConfig::default()
    });
    let mut c = Client::connect(&addr);
    c.ok("GEN g uniform:16,16,90,5");

    // A deliberately failed request panics inside the handler; the
    // engine catches it and answers on the same connection.
    let (status, payload) = c.cmd("CRASH");
    assert!(status.starts_with("ERR INTERNAL"), "{status}");
    assert!(payload.is_empty());

    // The same connection keeps working, and queries still execute:
    // the poisoned locks were recovered and no worker slot leaked.
    let (status, _) = c.ok("PING");
    assert_eq!(status, "OK pong");
    let (status, first) = c.ok("ENUM g ssfbc alpha=1 beta=1 delta=1");
    assert!(field(&status, "count").is_some(), "{status}");

    // Crash repeatedly: every one degrades, none wedges.
    for _ in 0..4 {
        let (status, _) = c.cmd("CRASH");
        assert!(status.starts_with("ERR INTERNAL"), "{status}");
    }
    let (_, again) = c.ok("ENUM g ssfbc alpha=1 beta=1 delta=1");
    assert_eq!(again, first, "results are unchanged after the crashes");

    // Other connections are unaffected too.
    let mut c2 = Client::connect(&addr);
    let (_, stats) = c2.ok("STATS");
    assert!(
        stat_value(&stats, "queries_err") >= 5,
        "crashes are counted"
    );

    c2.ok("SHUTDOWN");
    handle.join().unwrap().unwrap();
}

/// Pull one guaranteed core edge out of an enumeration result line:
/// every vertex pair inside a reported biclique is an edge of the
/// pruned core the plan was built on.
fn first_edge_of(line: &str) -> (String, String) {
    let l = line.trim_start().strip_prefix("L=[").expect("L list");
    let u = l
        .split([',', ']'])
        .next()
        .expect("upper id")
        .trim()
        .to_string();
    let r = line.split("R=[").nth(1).expect("R list");
    let v = r
        .split([',', ']'])
        .next()
        .expect("lower id")
        .trim()
        .to_string();
    (u, v)
}

/// Dynamic-graph session: a loaded graph is mutated in place through
/// the protocol. Updates outside the pruned core keep the cached plan
/// alive; a deletion inside it invalidates surgically; and the
/// post-update results match a fresh reload with the same edit script
/// replayed.
#[test]
fn update_sessions_repair_cores_and_invalidate_surgically() {
    let dir = std::env::temp_dir().join(format!("fbe-loopback-update-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let stem = dir.join("dyn");
    let stem_s = stem.to_str().expect("utf8 path");
    fbe_cli::run(&sv(&[
        "generate",
        "--uniform",
        "20,20,120",
        "--seed",
        "7",
        "--out",
        stem_s,
    ]))
    .expect("generate dataset");

    let (addr, handle) = start_server(ServiceConfig::default());
    let mut c = Client::connect(&addr);
    c.ok(&format!("LOAD g {stem_s}"));

    let query = "ENUM g ssfbc alpha=2 beta=1 delta=1";
    let (status, baseline) = c.ok(query);
    assert_eq!(field(&status, "cached"), Some("false"), "{status}");
    assert!(!baseline.is_empty(), "need results to locate a core edge");
    let (status, payload) = c.ok(query);
    assert_eq!(field(&status, "cached"), Some("true"), "{status}");
    assert_eq!(payload, baseline);

    // Grow the graph outside the pruned core: a fresh lower vertex and
    // a single pendant edge to it. Degree 1 can never meet alpha=2, so
    // the (2, 1) core is untouched and the cached plan must survive.
    let (status, _) = c.ok("ADDVERTEX g lower attr=0");
    assert_eq!(field(&status, "vertex"), Some("20"), "{status}");
    assert_eq!(field(&status, "plans_invalidated"), Some("0"), "{status}");
    let (status, _) = c.ok("ADDEDGE g 0 20");
    assert_eq!(field(&status, "edges"), Some("121"), "{status}");
    assert_eq!(field(&status, "cores_clean"), Some("1"), "{status}");
    assert_eq!(field(&status, "plans_invalidated"), Some("0"), "{status}");
    assert_eq!(field(&status, "plans_kept"), Some("1"), "{status}");
    let (status, payload) = c.ok(query);
    assert_eq!(
        field(&status, "cached"),
        Some("true"),
        "clean updates must not evict the plan: {status}"
    );
    assert_eq!(payload, baseline, "results unchanged by out-of-core growth");

    // Delete an edge that provably lies inside the pruned core — any
    // pair from a reported biclique qualifies — and watch the one
    // tracked plan drop while the repair stays localized.
    let (du, dv) = first_edge_of(&baseline[0]);
    let (status, _) = c.ok(&format!("DELEDGE g {du} {dv}"));
    assert_eq!(field(&status, "cores_stale"), Some("1"), "{status}");
    assert_eq!(field(&status, "plans_invalidated"), Some("1"), "{status}");
    assert_eq!(field(&status, "plans_kept"), Some("0"), "{status}");
    let (status, mutated) = c.ok(query);
    assert_eq!(
        field(&status, "cached"),
        Some("false"),
        "stale plan must be gone: {status}"
    );
    assert_ne!(mutated, baseline, "the deleted edge was load-bearing");

    // Cross-check: a fresh reload with the same edit script replayed
    // enumerates byte-for-byte the same bicliques.
    c.ok(&format!("LOAD h {stem_s}"));
    c.ok("ADDVERTEX h lower attr=0");
    c.ok("ADDEDGE h 0 20");
    c.ok(&format!("DELEDGE h {du} {dv}"));
    let (_, fresh) = c.ok("ENUM h ssfbc alpha=2 beta=1 delta=1");
    assert_eq!(fresh, mutated, "incremental repair diverges from reload");

    let (_, stats) = c.ok("STATS");
    assert_eq!(stat_value(&stats, "updates_applied"), 6);
    assert_eq!(stat_value(&stats, "plan_cache_invalidated"), 1);

    c.ok("SHUTDOWN");
    handle.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_exposition_follows_prometheus_text_grammar() {
    let (addr, handle) = start_server(ServiceConfig::default());
    let mut c = Client::connect(&addr);
    c.ok("GEN g uniform:16,16,90,11");
    c.ok("ENUM g ssfbc alpha=1 beta=1 delta=1 count-only");
    c.ok("ENUM g ssfbc alpha=1 beta=1 delta=1 count-only");

    let (status, payload) = c.ok("METRICS");
    assert!(status.contains("format=prometheus"), "{status}");

    // Every sample line's family carries a `# TYPE` declaration.
    let typed: Vec<&str> = payload
        .iter()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .map(|l| l.split_whitespace().next().unwrap())
        .collect();
    assert!(!typed.is_empty());
    for line in payload.iter().filter(|l| !l.starts_with('#')) {
        let name = line
            .split(['{', ' '])
            .next()
            .unwrap()
            .trim_end_matches("_bucket")
            .trim_end_matches("_sum")
            .trim_end_matches("_count");
        assert!(typed.contains(&name), "sample without # TYPE: {line}");
        // Sample values parse as integers (this registry is all-u64).
        let value = line.split_whitespace().last().unwrap();
        value
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("bad value: {line}"));
    }

    // Histogram buckets are cumulative: monotone non-decreasing and
    // terminated by a `+Inf` bucket equal to the family count.
    let buckets: Vec<u64> = payload
        .iter()
        .filter(|l| l.starts_with("fbe_query_latency_us_bucket"))
        .map(|l| l.split_whitespace().last().unwrap().parse().unwrap())
        .collect();
    assert_eq!(buckets.len(), 6, "five bounds plus +Inf");
    assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "{buckets:?}");
    let count: u64 = payload
        .iter()
        .find_map(|l| l.strip_prefix("fbe_query_latency_us_count "))
        .unwrap()
        .parse()
        .unwrap();
    let inf = payload
        .iter()
        .find(|l| l.contains("le=\"+Inf\"") && l.starts_with("fbe_query_latency_us"))
        .unwrap();
    assert_eq!(
        inf.split_whitespace()
            .last()
            .unwrap()
            .parse::<u64>()
            .unwrap(),
        count,
        "+Inf bucket equals _count"
    );

    // The counters agree with STATS (same registry, two renderings).
    let (_, stats) = c.ok("STATS");
    let prom_queries: u64 = payload
        .iter()
        .find_map(|l| l.strip_prefix("fbe_queries_total "))
        .unwrap()
        .parse()
        .unwrap();
    // STATS itself is not a query; METRICS/STATS may or may not be
    // counted depending on dispatch, so compare >= the ENUM count.
    assert!(prom_queries >= 2, "{prom_queries}");
    assert!(stat_value(&stats, "queries_total") >= prom_queries);

    c.ok("SHUTDOWN");
    handle.join().unwrap().unwrap();
}

#[test]
fn slowlog_is_bounded_sorted_and_evicts_the_fastest() {
    let (addr, handle) = start_server(ServiceConfig {
        slowlog_capacity: 2,
        ..ServiceConfig::default()
    });
    let mut c = Client::connect(&addr);
    c.ok("GEN g uniform:18,18,110,13");
    // Three OK enumerations offered to a capacity-2 log: one must be
    // evicted, and what remains are the two slowest.
    c.ok("ENUM g ssfbc alpha=1 beta=1 delta=1 count-only");
    c.ok("ENUM g ssfbc alpha=2 beta=2 delta=1 count-only");
    c.ok("ENUM g bsfbc alpha=1 beta=1 delta=1 count-only");

    let (status, payload) = c.ok("SLOWLOG");
    assert!(status.contains("entries=2"), "{status}");
    let headers: Vec<&String> = payload.iter().filter(|l| l.starts_with("query ")).collect();
    assert_eq!(headers.len(), 2);
    let us: Vec<u64> = headers
        .iter()
        .map(|h| {
            h.split_whitespace()
                .find_map(|t| t.strip_prefix("us="))
                .unwrap()
                .parse()
                .unwrap()
        })
        .collect();
    assert!(us[0] >= us[1], "slowest first: {us:?}");
    for h in &headers {
        assert!(h.contains("graph=g"), "{h}");
        assert!(h.contains("truncated=none"), "{h}");
        assert!(h.contains("q=ENUM g "), "original line retained: {h}");
    }
    // `SLOWLOG 1` returns only the single slowest entry.
    let (status, payload) = c.ok("SLOWLOG 1");
    assert!(status.contains("entries=1"), "{status}");
    assert!(payload[0].contains(&format!("us={}", us[0])), "{payload:?}");

    c.ok("SHUTDOWN");
    handle.join().unwrap().unwrap();
}

#[test]
fn traced_enumeration_is_byte_identical_to_untraced() {
    let (addr, handle) = start_server(ServiceConfig::default());
    let mut c = Client::connect(&addr);
    c.ok("GEN g uniform:20,20,130,17");

    for threads in [1u32, 4] {
        let q = format!("ENUM g ssfbc alpha=1 beta=1 delta=1 threads={threads}");

        c.ok("TRACE off");
        let (status_off, payload_off) = c.ok(&q);
        assert!(
            payload_off.iter().all(|l| !l.starts_with('#')),
            "untraced replies carry no span lines"
        );

        let (status, _) = c.ok("TRACE on");
        assert!(status.contains("trace=on"), "{status}");
        let (status_on, payload_on) = c.ok(&q);

        // The span block is appended, `# `-prefixed, and non-empty.
        let spans: Vec<&String> = payload_on
            .iter()
            .filter(|l| l.starts_with("# span "))
            .collect();
        assert!(!spans.is_empty(), "traced reply has a span tree");
        assert!(
            spans.iter().any(|l| l.contains("enumerate")),
            "span vocabulary includes enumerate: {spans:?}"
        );

        // Enumeration results are byte-identical with tracing on.
        let results_on: Vec<&String> = payload_on.iter().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(
            results_on,
            payload_off.iter().collect::<Vec<_>>(),
            "threads={threads}"
        );
        assert_eq!(
            field(&status_on, "count"),
            field(&status_off, "count"),
            "{status_on} vs {status_off}"
        );
    }

    // TRACE off restores span-free replies on the same connection.
    c.ok("TRACE off");
    let (_, payload) = c.ok("ENUM g ssfbc alpha=1 beta=1 delta=1");
    assert!(payload.iter().all(|l| !l.starts_with('#')));

    // sample=2 traces every second enumeration on this connection.
    let (status, _) = c.ok("TRACE sample=2");
    assert!(status.contains("trace=sample=2"), "{status}");
    let (_, p1) = c.ok("ENUM g ssfbc alpha=1 beta=1 delta=1 count-only");
    let (_, p2) = c.ok("ENUM g ssfbc alpha=1 beta=1 delta=1 count-only");
    let traced = [&p1, &p2]
        .iter()
        .filter(|p| p.iter().any(|l| l.starts_with("# span ")))
        .count();
    assert_eq!(traced, 1, "exactly one of two queries sampled");

    c.ok("SHUTDOWN");
    handle.join().unwrap().unwrap();
}
