//! Loopback tests of the scatter-gather coordinator and the service
//! transport hardening: N real shard servers plus a coordinator on
//! ephemeral ports, diffed against a single-process server; oversized
//! and non-UTF-8 request lines; `LOAD` confinement under a data root.

use fbe_service::engine::Engine;
use fbe_service::server::Server;
use fbe_service::ServiceConfig;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut c = Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: BufWriter::new(stream),
        };
        let (greet, _) = c.read_block();
        assert!(greet.contains("protocol=1"), "greeting: {greet}");
        c
    }

    fn read_block(&mut self) -> (String, Vec<String>) {
        let mut status = String::new();
        self.reader.read_line(&mut status).expect("status line");
        let status = status.trim_end().to_string();
        let mut payload = Vec::new();
        loop {
            let mut l = String::new();
            self.reader.read_line(&mut l).expect("payload line");
            let l = l.trim_end().to_string();
            if l == "." {
                break;
            }
            payload.push(l);
        }
        (status, payload)
    }

    fn cmd(&mut self, line: &str) -> (String, Vec<String>) {
        writeln!(self.writer, "{line}").expect("send");
        self.writer.flush().expect("flush");
        self.read_block()
    }

    fn ok(&mut self, line: &str) -> (String, Vec<String>) {
        let (status, payload) = self.cmd(line);
        assert!(status.starts_with("OK"), "{line} -> {status}");
        (status, payload)
    }
}

fn field<'a>(status: &'a str, key: &str) -> Option<&'a str> {
    status
        .split_whitespace()
        .find_map(|t| t.strip_prefix(&format!("{key}=") as &str))
}

fn stat_value(payload: &[String], key: &str) -> u64 {
    payload
        .iter()
        .find_map(|l| l.strip_prefix(&format!("{key} ") as &str))
        .unwrap_or_else(|| panic!("missing stat {key}"))
        .parse()
        .unwrap()
}

fn start_server(cfg: ServiceConfig) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let engine = Engine::new(cfg);
    let server = Server::bind("127.0.0.1:0", Arc::clone(&engine)).expect("bind ephemeral");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

/// Boot `n` shard servers plus a coordinator fanning out to them.
fn start_fleet(
    n: usize,
) -> (
    String,
    Vec<String>,
    Vec<std::thread::JoinHandle<std::io::Result<()>>>,
) {
    let mut shard_addrs = Vec::new();
    let mut handles = Vec::new();
    for _ in 0..n {
        let (addr, handle) = start_server(ServiceConfig::default());
        shard_addrs.push(addr);
        handles.push(handle);
    }
    let (coord, handle) = start_server(ServiceConfig {
        shards: shard_addrs.clone(),
        ..ServiceConfig::default()
    });
    handles.push(handle);
    (coord, shard_addrs, handles)
}

/// The coordinator's `--sorted` ENUM streams are byte-identical to a
/// single-process server for every miner, counts add up, maximum
/// agrees, and the global result budget binds across shards.
#[test]
fn coordinator_matches_single_process_for_every_miner() {
    let (coord, _shards, handles) = start_fleet(3);
    let (solo, solo_handle) = start_server(ServiceConfig::default());
    let mut cc = Client::connect(&coord);
    let mut sc = Client::connect(&solo);

    // GEN is deterministic, so the coordinator's fan-out (each shard
    // generates then self-restricts) and the solo server build the
    // same graph.
    let gen = "GEN g uniform:30,30,55,11";
    let (status, _) = cc.ok(gen);
    assert!(status.contains("shards=3"), "{status}");
    sc.ok(gen);

    let queries = [
        "ENUM g ssfbc alpha=1 beta=1 delta=1",
        "ENUM g ssfbc alpha=2 beta=1 delta=1",
        "ENUM g bsfbc alpha=1 beta=1 delta=1",
        "ENUM g pssfbc alpha=1 beta=1 delta=1 theta=0.3",
        "ENUM g pbsfbc alpha=1 beta=1 delta=1 theta=0.3",
    ];
    for q in &queries {
        let (solo_status, want) = sc.ok(q);
        let (coord_status, got) = cc.ok(q);
        assert_eq!(got, want, "{q}: coordinator vs single-process");
        assert_eq!(
            field(&coord_status, "count"),
            field(&solo_status, "count"),
            "{q}: {coord_status}"
        );
        // Counting mode sums shard counts to the same total.
        let (count_status, payload) = cc.ok(&format!("{q} count-only"));
        assert!(payload.is_empty());
        assert_eq!(
            field(&count_status, "count"),
            field(&solo_status, "count"),
            "{q} count-only: {count_status}"
        );
    }

    // Maximum-mode: the coordinator's pick has the same metric value
    // as the single-process winner (ties may break differently only
    // if Ord differs — it must not, so require exact agreement).
    let q = "ENUM g ssfbc alpha=1 beta=1 delta=1 max=edges";
    let (_, want) = sc.ok(q);
    let (_, got) = cc.ok(q);
    assert_eq!(got, want, "maximum via coordinator vs single-process");

    // Global result budget: exactly K results with truncation
    // reported. Which K survive depends on shard arrival order (the
    // shared budget races, exactly like `SharedBudget` across threads
    // in one process), but every one is a genuine result and the
    // merged output stays sorted.
    let (_, all) = cc.ok("ENUM g ssfbc alpha=1 beta=1 delta=1");
    assert!(all.len() > 4, "need enough results to truncate");
    let k = 3;
    let q = format!("ENUM g ssfbc alpha=1 beta=1 delta=1 limit={k}");
    let (status, got) = cc.ok(&q);
    assert_eq!(got.len(), k, "{status}");
    assert!(status.contains("truncated=result-cap"), "{status}");
    // `all` is canonically sorted, so an in-order subsequence check
    // covers both membership and sortedness of the merged output.
    let mut it = all.iter();
    for line in &got {
        assert!(
            it.any(|l| l == line),
            "{line}: not a whole-graph result in canonical position"
        );
    }

    // Mutations are refused in coordinator mode.
    let (status, _) = cc.cmd("ADDEDGE g 0 0");
    assert!(status.starts_with("ERR BADARG"), "{status}");
    let (status, _) = cc.cmd("SHARD g index=0 of=3");
    assert!(status.starts_with("ERR BADARG"), "{status}");

    // STATS surfaces the fan-out accounting and per-shard counters.
    let (status, stats) = cc.ok("STATS");
    assert!(status.contains("shards=3"), "{status}");
    assert!(stat_value(&stats, "shard_fanouts") > 0);
    for i in 0..3 {
        assert!(
            stats
                .iter()
                .any(|l| l.starts_with(&format!("shard{i}_queries_total ") as &str)),
            "missing shard{i} stats"
        );
    }

    // SHUTDOWN stops the coordinator and the shard servers.
    let (status, _) = cc.ok("SHUTDOWN");
    assert_eq!(status, "OK bye");
    for h in handles {
        h.join().unwrap().expect("server run");
    }
    sc.ok("SHUTDOWN");
    solo_handle.join().unwrap().unwrap();
}

/// A killed shard surfaces as a structured `ERR SHARD` within the
/// deadline — never a hang — and partial results are accounted.
#[test]
fn killed_shard_answers_err_shard_within_the_deadline() {
    let (coord, shard_addrs, mut handles) = start_fleet(2);
    let mut cc = Client::connect(&coord);
    cc.ok("GEN g uniform:20,20,60,7");

    // Kill shard 1 out from under the coordinator.
    let mut victim = Client::connect(&shard_addrs[1]);
    victim.ok("SHUTDOWN");
    handles.remove(1).join().unwrap().unwrap();

    let t0 = Instant::now();
    let (status, payload) = cc.cmd("ENUM g ssfbc alpha=1 beta=1 delta=1 deadline-ms=2000");
    let elapsed = t0.elapsed();
    assert!(status.starts_with("ERR SHARD"), "{status}");
    assert!(status.contains("shard=1"), "{status}");
    assert!(
        status.contains(&shard_addrs[1]),
        "failing address named: {status}"
    );
    assert!(payload.is_empty(), "no partial payload leaks to the client");
    assert!(
        elapsed < Duration::from_secs(10),
        "ERR SHARD took {elapsed:?}"
    );

    // The failure is accounted; the connection keeps working.
    let (_, stats) = cc.ok("STATS");
    assert!(stat_value(&stats, "shard_errors") >= 1);
    let (status, _) = cc.ok("PING");
    assert_eq!(status, "OK pong");

    cc.ok("SHUTDOWN");
    for h in handles {
        h.join().unwrap().unwrap();
    }
}

/// Satellite: an oversized request line is refused with `ERR PARSE`
/// and drained — the connection survives.
#[test]
fn oversized_request_lines_get_err_parse_and_the_connection_survives() {
    let (addr, handle) = start_server(ServiceConfig::default());
    let mut c = Client::connect(&addr);

    // Well over the 64 KiB cap, in one line.
    let big = format!("ENUM g ssfbc alpha=1 {}\n", "x".repeat(128 * 1024));
    c.writer.write_all(big.as_bytes()).expect("send oversized");
    c.writer.flush().expect("flush");
    let (status, payload) = c.read_block();
    assert!(status.starts_with("ERR PARSE"), "{status}");
    assert!(status.contains("exceeds"), "{status}");
    assert!(payload.is_empty());

    // Same connection, next command parses normally.
    let (status, _) = c.ok("PING");
    assert_eq!(status, "OK pong");

    c.ok("SHUTDOWN");
    handle.join().unwrap().unwrap();
}

/// Satellite: non-UTF-8 request bytes answer `ERR PARSE` instead of
/// killing the connection.
#[test]
fn non_utf8_request_bytes_get_err_parse_not_a_dead_connection() {
    let (addr, handle) = start_server(ServiceConfig::default());
    let mut c = Client::connect(&addr);

    c.writer
        .write_all(b"PING \xff\xfe\x80garbage\n")
        .expect("send bytes");
    c.writer.flush().expect("flush");
    let (status, _) = c.read_block();
    assert!(status.starts_with("ERR PARSE"), "{status}");
    assert!(status.contains("UTF-8"), "{status}");

    let (status, _) = c.ok("PING");
    assert_eq!(status, "OK pong");

    c.ok("SHUTDOWN");
    handle.join().unwrap().unwrap();
}

/// Satellite: with `--data-root`, absolute stems and `..` traversal
/// are refused with `ERR PARSE`; relative stems resolve inside the
/// root.
#[test]
fn data_root_confines_load_stems() {
    let dir = std::env::temp_dir().join(format!("fbe-data-root-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let stem = dir.join("g");
    fbe_cli::run(
        &["generate", "--uniform", "12,12,40", "--out"]
            .iter()
            .map(|s| s.to_string())
            .chain([stem.to_str().unwrap().to_string()])
            .collect::<Vec<_>>(),
    )
    .expect("generate");

    let (addr, handle) = start_server(ServiceConfig {
        data_root: Some(dir.clone()),
        ..ServiceConfig::default()
    });
    let mut c = Client::connect(&addr);

    // Relative stem under the root loads fine.
    let (status, _) = c.ok("LOAD g g");
    assert!(status.contains("upper=12"), "{status}");

    // Absolute stems and traversal are structured parse errors.
    for bad in [
        format!("LOAD h {}", stem.display()),
        "LOAD h ../escape".to_string(),
        "LOAD h a/../../escape".to_string(),
    ] {
        let (status, _) = c.cmd(&bad);
        assert!(status.starts_with("ERR PARSE"), "{bad} -> {status}");
        assert!(status.contains("escapes"), "{status}");
    }

    // The loaded graph is queryable; the session is unharmed.
    let (status, _) = c.ok("ENUM g ssfbc alpha=1 beta=1 delta=1 count-only");
    assert!(field(&status, "count").is_some(), "{status}");

    c.ok("SHUTDOWN");
    handle.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
