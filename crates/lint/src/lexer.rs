//! A lightweight Rust source scrubber.
//!
//! Every rule in this tool wants to reason about *code*, never about
//! the insides of string literals, char literals, or comments — a
//! `panic!` mentioned in a doc comment or an `unwrap()` inside an
//! error-message string must not fire a rule. Instead of a full
//! parser, [`scrub`] runs a small character-level state machine that
//! understands exactly the lexical features that matter:
//!
//! * line comments (`//`) and **nested** block comments (`/* /* */ */`),
//! * string literals with escapes (`"a \" b"`), byte strings (`b"…"`),
//! * raw strings with any hash depth (`r"…"`, `r#"…"#`, `br##"…"##`),
//! * char and byte-char literals (`'a'`, `'\n'`, `b'\x7f'`),
//!   disambiguated from lifetimes (`'a` in `&'a str` stays code).
//!
//! The output preserves the *shape* of the file: each line yields the
//! same number of columns, with every non-code byte replaced by a
//! space, so rule matches report accurate line numbers, plus the
//! comment text collected per line (rules use it for
//! `// fbe-lint: allow(...)` suppressions and justification
//! comments).

/// One source line after scrubbing.
#[derive(Debug, Clone, Default)]
pub struct ScrubbedLine {
    /// The line with every string/char/comment byte blanked to a
    /// space. Safe to substring-match for tokens.
    pub code: String,
    /// Comment text that appeared on this line (line and block
    /// comments, `//`/`/*` markers excluded).
    pub comment: String,
}

/// A whole file after scrubbing: scrubbed lines plus the raw source
/// lines (kept for rules that inspect human-facing text such as
/// `expect` messages).
#[derive(Debug, Default)]
pub struct ScrubbedFile {
    /// Scrubbed code + comments, one entry per source line.
    pub lines: Vec<ScrubbedLine>,
    /// The unmodified source lines.
    pub raw: Vec<String>,
}

impl ScrubbedFile {
    /// Scrubbed code of 1-indexed `line` (empty past EOF).
    pub fn code(&self, line: usize) -> &str {
        self.lines
            .get(line.wrapping_sub(1))
            .map_or("", |l| l.code.as_str())
    }

    /// Comment text of 1-indexed `line` (empty past EOF).
    pub fn comment(&self, line: usize) -> &str {
        self.lines
            .get(line.wrapping_sub(1))
            .map_or("", |l| l.comment.as_str())
    }

    /// Raw text of 1-indexed `line` (empty past EOF).
    pub fn raw(&self, line: usize) -> &str {
        self.raw
            .get(line.wrapping_sub(1))
            .map_or("", |l| l.as_str())
    }

    /// Number of lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True for an empty file.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// The scrubbed code joined with `\n`, for matches that span a
    /// rustfmt line break (e.g. `.lock()\n.unwrap()`). Byte offsets
    /// into the result map back to lines via [`ScrubbedFile::line_of`]
    /// with the offsets produced here.
    pub fn joined_code(&self) -> (String, Vec<usize>) {
        let mut text = String::new();
        let mut starts = Vec::with_capacity(self.lines.len());
        for l in &self.lines {
            starts.push(text.len());
            text.push_str(&l.code);
            text.push('\n');
        }
        (text, starts)
    }

    /// Map a byte offset in [`ScrubbedFile::joined_code`] output back
    /// to a 1-indexed line number.
    pub fn line_of(starts: &[usize], offset: usize) -> usize {
        match starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i, // first start > offset; offset is on line i
        }
    }

    /// Lines (1-indexed) covered by `#[cfg(test)]`-gated items: the
    /// attribute line through the matching close brace of the item
    /// that follows it. Rules scoped to "non-test code" skip these.
    pub fn test_region_mask(&self) -> Vec<bool> {
        let mut mask = vec![false; self.lines.len()];
        let (text, starts) = self.joined_code();
        let bytes = text.as_bytes();
        let mut search_from = 0;
        while let Some(pos) = text[search_from..].find("#[cfg(test)]") {
            let attr_at = search_from + pos;
            // Find the first `{` after the attribute and match braces.
            let Some(open_rel) = text[attr_at..].find('{') else {
                break;
            };
            let open = attr_at + open_rel;
            let mut depth = 0usize;
            let mut close = bytes.len().saturating_sub(1);
            for (i, &b) in bytes.iter().enumerate().skip(open) {
                match b {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            close = i;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            let first = Self::line_of(starts.as_slice(), attr_at);
            let last = Self::line_of(starts.as_slice(), close);
            for m in mask.iter_mut().take(last).skip(first.saturating_sub(1)) {
                *m = true;
            }
            search_from = close.max(attr_at + 1);
        }
        mask
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Nested depth.
    BlockComment(u32),
    /// Inside `"…"`; true after a backslash.
    Str(bool),
    /// Inside `r#*"…"#*`; hash count.
    RawStr(u32),
    /// Inside `'…'`; true after a backslash.
    Char(bool),
}

/// True when `c` can be part of an identifier (so a preceding `r`/`b`
/// is not a raw-string / byte-string prefix).
fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Scrub `src` into per-line code + comment channels.
pub fn scrub(src: &str) -> ScrubbedFile {
    let mut out = ScrubbedFile::default();
    let mut state = State::Code;
    for raw_line in src.lines() {
        let mut line = ScrubbedLine::default();
        let chars: Vec<char> = raw_line.chars().collect();
        let mut i = 0;
        // A line comment never continues onto the next line.
        if state == State::LineComment {
            state = State::Code;
        }
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match state {
                State::Code => {
                    let prev_ident = i > 0 && is_ident(chars[i - 1]);
                    if c == '/' && next == Some('/') {
                        state = State::LineComment;
                        line.code.push_str("  ");
                        i += 2;
                        continue;
                    }
                    if c == '/' && next == Some('*') {
                        state = State::BlockComment(1);
                        line.code.push_str("  ");
                        i += 2;
                        continue;
                    }
                    // Raw / byte-string prefixes: r", r#", br", b".
                    if !prev_ident && (c == 'r' || c == 'b') {
                        let mut j = i;
                        if c == 'b' && chars.get(j + 1) == Some(&'r') {
                            j += 1;
                        }
                        if c == 'b' && chars.get(j + 1) == Some(&'"') {
                            // b"..." — plain byte string.
                            for _ in i..=j {
                                line.code.push(' ');
                            }
                            i = j + 1;
                            state = State::Str(false);
                            line.code.push(' ');
                            i += 1;
                            continue;
                        }
                        if c == 'r' || chars.get(j) == Some(&'r') {
                            let mut hashes = 0;
                            let mut k = j + 1;
                            while chars.get(k) == Some(&'#') {
                                hashes += 1;
                                k += 1;
                            }
                            if chars.get(k) == Some(&'"') {
                                for _ in i..=k {
                                    line.code.push(' ');
                                }
                                i = k + 1;
                                state = State::RawStr(hashes);
                                continue;
                            }
                        }
                    }
                    if c == '"' {
                        state = State::Str(false);
                        line.code.push(' ');
                        i += 1;
                        continue;
                    }
                    if c == '\'' {
                        // Char literal vs lifetime. `'\…'` is always a
                        // char; `'x'` (any single char then a quote) is
                        // a char; otherwise it is a lifetime and stays
                        // code.
                        let is_char = match next {
                            Some('\\') => true,
                            Some(_) => chars.get(i + 2) == Some(&'\''),
                            None => false,
                        };
                        if is_char {
                            state = State::Char(false);
                            line.code.push(' ');
                            i += 1;
                            continue;
                        }
                        line.code.push(c);
                        i += 1;
                        continue;
                    }
                    line.code.push(c);
                    i += 1;
                }
                State::LineComment => {
                    line.comment.push(c);
                    line.code.push(' ');
                    i += 1;
                }
                State::BlockComment(depth) => {
                    if c == '/' && next == Some('*') {
                        state = State::BlockComment(depth + 1);
                        line.code.push_str("  ");
                        i += 2;
                        continue;
                    }
                    if c == '*' && next == Some('/') {
                        state = if depth == 1 {
                            State::Code
                        } else {
                            State::BlockComment(depth - 1)
                        };
                        line.code.push_str("  ");
                        i += 2;
                        continue;
                    }
                    line.comment.push(c);
                    line.code.push(' ');
                    i += 1;
                }
                State::Str(escaped) => {
                    line.code.push(' ');
                    state = match (escaped, c) {
                        (false, '"') => State::Code,
                        (false, '\\') => State::Str(true),
                        _ => State::Str(false),
                    };
                    i += 1;
                }
                State::RawStr(hashes) => {
                    if c == '"' {
                        let mut k = 0;
                        while k < hashes && chars.get(i + 1 + k as usize) == Some(&'#') {
                            k += 1;
                        }
                        if k == hashes {
                            for _ in 0..=(hashes as usize) {
                                line.code.push(' ');
                            }
                            i += 1 + hashes as usize;
                            state = State::Code;
                            continue;
                        }
                    }
                    line.code.push(' ');
                    i += 1;
                }
                State::Char(escaped) => {
                    line.code.push(' ');
                    state = match (escaped, c) {
                        (false, '\'') => State::Code,
                        (false, '\\') => State::Char(true),
                        _ => State::Char(false),
                    };
                    i += 1;
                }
            }
        }
        // Unterminated string states continue across lines (multiline
        // string literals); char literals never span lines.
        if let State::Char(_) = state {
            state = State::Code;
        }
        out.lines.push(line);
        out.raw.push(raw_line.to_string());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_lines(src: &str) -> Vec<String> {
        scrub(src).lines.into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn line_comments_inside_strings_stay_strings() {
        let s = scrub(r#"let url = "https://example.com"; x.unwrap();"#);
        assert!(!s.code(1).contains("https"));
        assert!(s.code(1).contains(".unwrap()"));
        assert!(s.comment(1).is_empty(), "no comment: {:?}", s.comment(1));
    }

    #[test]
    fn strings_inside_line_comments_stay_comments() {
        let s = scrub("let x = 1; // a \"quoted\" panic!() here");
        assert!(s.code(1).contains("let x = 1;"));
        assert!(!s.code(1).contains("panic!"));
        assert!(s.comment(1).contains("panic!"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r####"let p = r#"panic!("in a raw string")"#; q.unwrap();"####;
        let s = scrub(src);
        assert!(!s.code(1).contains("panic!"), "{:?}", s.code(1));
        assert!(s.code(1).contains("q.unwrap()"));
        // Raw string with an embedded quote-hash that is *shorter*
        // than the delimiter.
        let src = r####"let p = r##"end "# not yet"##; done();"####;
        let s = scrub(src);
        assert!(s.code(1).contains("done()"), "{:?}", s.code(1));
        assert!(!s.code(1).contains("not yet"));
    }

    #[test]
    fn multiline_raw_string() {
        let src = "let s = r#\"line one\nunwrap() inside\n\"#;\nreal.unwrap();";
        let lines = code_lines(src);
        assert!(!lines[1].contains("unwrap"), "{:?}", lines[1]);
        assert!(lines[3].contains("real.unwrap()"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a(); /* outer /* inner */ still comment */ b();";
        let s = scrub(src);
        assert!(s.code(1).contains("a();"));
        assert!(s.code(1).contains("b();"));
        assert!(!s.code(1).contains("still"));
        assert!(s.comment(1).contains("still comment"));
    }

    #[test]
    fn multiline_block_comment_tracks_lines() {
        let src = "x();\n/* one\ntwo unwrap()\nthree */\ny.unwrap();";
        let lines = code_lines(src);
        assert!(!lines[2].contains("unwrap"));
        assert!(lines[4].contains("y.unwrap()"));
    }

    #[test]
    fn comment_slashes_in_char_literals() {
        // '/' twice would start a line comment if chars were not
        // recognized.
        let s = scrub("let c = '/'; let d = '/'; still_code();");
        assert!(s.code(1).contains("still_code()"), "{:?}", s.code(1));
        // An escaped quote in a char literal.
        let s = scrub(r"let q = '\''; after();");
        assert!(s.code(1).contains("after()"), "{:?}", s.code(1));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let s = scrub("fn f<'a>(x: &'a str) -> &'a str { x } g();");
        assert!(s.code(1).contains("&'a str"), "{:?}", s.code(1));
        assert!(s.code(1).contains("g();"));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let s = scrub(r#"w.write_all(b"SHUTDOWN\n").ok(); let b = b'\n'; t();"#);
        assert!(!s.code(1).contains("SHUTDOWN"));
        assert!(s.code(1).contains(".ok()"));
        assert!(s.code(1).contains("t();"), "{:?}", s.code(1));
    }

    #[test]
    fn raw_string_prefix_requires_token_boundary() {
        // `var` ends in r-adjacent ident chars; `br`/`r` inside an
        // identifier must not open a raw string.
        let s = scrub("let decr = 1; let x = decr; y();");
        assert!(s.code(1).contains("y();"));
    }

    #[test]
    fn shape_is_preserved() {
        let src = r#"abc("str").unwrap(); // tail"#;
        let s = scrub(src);
        assert_eq!(s.code(1).chars().count(), src.chars().count());
        let at = s.code(1).find(".unwrap()").unwrap();
        assert_eq!(src.find(".unwrap()").unwrap(), at);
    }

    #[test]
    fn test_region_mask_covers_cfg_test_mods() {
        let src = "\
fn real() { a.unwrap(); }

#[cfg(test)]
mod tests {
    #[test]
    fn t() { b.unwrap(); }
}

fn also_real() {}
";
        let s = scrub(src);
        let mask = s.test_region_mask();
        assert!(!mask[0], "real code not masked");
        assert!(mask[2], "attribute line masked");
        assert!(mask[5], "test body masked");
        assert!(mask[6], "closing brace masked");
        assert!(!mask[8], "code after the mod not masked");
    }

    #[test]
    fn joined_code_maps_offsets_to_lines() {
        let s = scrub("one\ntwo\nthree");
        let (text, starts) = s.joined_code();
        let off = text.find("three").unwrap();
        assert_eq!(ScrubbedFile::line_of(&starts, off), 3);
        assert_eq!(ScrubbedFile::line_of(&starts, 0), 1);
    }
}
