#!/usr/bin/env bash
# Produce a BENCH_<n>.json perf-trajectory snapshot.
#
#   ./scripts/bench_snapshot.sh 6        # writes BENCH_6.json
#
# Runs the six trajectory bench targets (micro, substrate_compare,
# parallel_scaling, service_throughput, update_throughput,
# shard_scaling) in release mode with the
# vendored criterion stand-in's FBE_BENCH_JSON export enabled, then
# assembles one JSON document with machine/thread metadata. Medians
# are the headline statistic; mean/min ride along for context.
#
# Each target is run FBE_BENCH_RUNS times (default 3) and every
# numeric field is the per-case median across runs: on a shared box
# the dominant variance is minute-scale host load drift, which
# within-run sampling cannot average out but cross-run medians can.
#
# Snapshots are committed so ROADMAP re-anchors can compare numbers
# across PRs instead of trusting prose claims. They are measurements
# of *this* machine at *this* commit — compare trajectories, not
# absolute values across machines.

set -euo pipefail
cd "$(dirname "$0")/.."

n="${1:?usage: bench_snapshot.sh <snapshot-number>}"
out="BENCH_${n}.json"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

runs="${FBE_BENCH_RUNS:-3}"
targets=(micro substrate_compare parallel_scaling service_throughput update_throughput shard_scaling)
for r in $(seq 1 "$runs"); do
    for t in "${targets[@]}"; do
        echo "== bench $t (run $r/$runs) =="
        FBE_BENCH_JSON="$tmp/$t.$r.ndjson" cargo bench --bench "$t"
    done
done

SNAPSHOT_N="$n" TMPDIR_NDJSON="$tmp" OUT="$out" RUNS="$runs" python3 - <<'EOF'
import json, os, platform, subprocess
from statistics import median

tmp = os.environ["TMPDIR_NDJSON"]
runs = int(os.environ["RUNS"])
doc = {
    "schema": "fbe-bench-snapshot/1",
    "snapshot": int(os.environ["SNAPSHOT_N"]),
    "commit": subprocess.run(["git", "rev-parse", "HEAD"],
                             capture_output=True, text=True).stdout.strip(),
    "machine": {
        "os": platform.system().lower(),
        "release": platform.release(),
        "arch": platform.machine(),
        "cpus": os.cpu_count(),
        "rustc": subprocess.run(["rustc", "--version"],
                                capture_output=True, text=True).stdout.strip(),
    },
    "statistic": ("criterion rows: median_ns headline (mean_ns/min_ns for context); "
                  "table rows: the harness's native columns (seconds / q/s); "
                  f"every numeric field is the median across {runs} target runs"),
    "runs": runs,
    "benches": {},
}


def load(path):
    rows = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


for t in ["micro", "substrate_compare", "parallel_scaling", "service_throughput",
          "update_throughput", "shard_scaling"]:
    per_run = [load(os.path.join(tmp, f"{t}.{r}.ndjson")) for r in range(1, runs + 1)]
    # Merge by case id: numeric fields take the cross-run median
    # (min_ns keeps the overall min), everything else the first run's
    # value. Run 1 defines the case list and order.
    merged = []
    for row in per_run[0]:
        peers = [r for rows in per_run for r in rows if r.get("id") == row.get("id")]
        out_row = {}
        for k, v in row.items():
            if isinstance(v, (int, float)) and not isinstance(v, bool):
                vals = [p[k] for p in peers if isinstance(p.get(k), (int, float))]
                out_row[k] = min(vals) if k == "min_ns" else median(vals)
            else:
                out_row[k] = v
        merged.append(out_row)
    doc["benches"][t] = merged

with open(os.environ["OUT"], "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {os.environ['OUT']}: "
      + ", ".join(f"{k}={len(v)}" for k, v in doc["benches"].items()))
EOF
