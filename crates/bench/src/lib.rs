//! Experiment harness utilities: timing, table rendering, sweep
//! configuration, and TSV export.
//!
//! Every table and figure of the paper has a corresponding entry point
//! in [`experiments`]; the `harness = false` bench targets and the
//! `experiments` binary are thin wrappers around those functions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

use std::time::{Duration, Instant};

/// Time a closure.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t = Instant::now();
    let out = f();
    (out, t.elapsed())
}

/// Format a duration the way the paper reports runtimes: seconds with
/// four decimals, or `INF` when the run hit its budget (the paper's
/// 24-hour-limit marker).
pub fn fmt_time(d: Duration, aborted: bool) -> String {
    if aborted {
        "INF".to_string()
    } else {
        format!("{:.4}", d.as_secs_f64())
    }
}

/// One output table (also serializable to TSV).
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title, e.g. `Fig. 2(c) IMDB (vary alpha)`.
    pub title: String,
    /// Column headers; the first column is the x-axis label.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push(&mut self, row: Vec<String>) {
        debug_assert_eq!(row.len(), self.headers.len());
        self.rows.push(row);
    }

    /// Render aligned to stdout.
    pub fn print(&self) {
        println!("\n## {}", self.title);
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!("{:>w$}  ", c, w = widths[i]));
            }
            println!("{}", s.trim_end());
        };
        line(&self.headers);
        line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
        for row in &self.rows {
            line(row);
        }
    }

    /// TSV rendering (one comment line, one header line, then rows).
    pub fn to_tsv(&self) -> String {
        let mut s = format!("# {}\n{}\n", self.title, self.headers.join("\t"));
        for row in &self.rows {
            s.push_str(&row.join("\t"));
            s.push('\n');
        }
        s
    }

    /// Write the TSV under `target/experiments/`.
    pub fn save(&self, stem: &str) {
        let dir = std::path::Path::new("target/experiments");
        if std::fs::create_dir_all(dir).is_ok() {
            let _ = std::fs::write(dir.join(format!("{stem}.tsv")), self.to_tsv());
        }
    }

    /// Export each row as one NDJSON record to `$FBE_BENCH_JSON`
    /// (no-op when unset): id is `<bench>/<title>/<first cell>`, and
    /// every other numeric cell becomes a field keyed by its header.
    /// Non-numeric cells (e.g. the paper's `INF` budget marker) are
    /// skipped — the snapshot records measurements, not sentinels.
    pub fn export_json(&self, bench: &str) {
        for row in &self.rows {
            let Some(first) = row.first() else { continue };
            let fields: Vec<(&str, f64)> = self
                .headers
                .iter()
                .zip(row)
                .skip(1)
                .filter_map(|(h, c)| c.parse::<f64>().ok().map(|v| (h.as_str(), v)))
                .collect();
            export_json_record(&format!("{bench}/{}/{first}", self.title), &fields);
        }
    }
}

/// Append one NDJSON record (`{"id": ..., <key>: <value>, ...}`) to
/// the file named by `$FBE_BENCH_JSON`, when set. This is the same
/// hook the vendored criterion stand-in uses, so table-style bench
/// targets and criterion targets feed one `BENCH_*.json` snapshot
/// (see `scripts/bench_snapshot.sh`). Failures are reported to
/// stderr, never fatal.
pub fn export_json_record(id: &str, fields: &[(&str, f64)]) {
    let Ok(path) = std::env::var("FBE_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let escape = |s: &str| -> String {
        s.chars()
            .flat_map(|c| match c {
                '"' | '\\' => vec!['\\', c],
                c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                c => vec![c],
            })
            .collect()
    };
    let mut record = format!("{{\"id\": \"{}\"", escape(id));
    for (k, v) in fields {
        record.push_str(&format!(", \"{}\": {v}", escape(k)));
    }
    record.push_str("}\n");
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, record.as_bytes()));
    if let Err(e) = appended {
        eprintln!("fbe-bench: appending to {path}: {e}");
    }
}

/// Harness options shared by all experiments.
#[derive(Debug, Clone, Copy)]
pub struct Opts {
    /// Reduced sweeps (fewer datasets / parameter values) for smoke
    /// runs and CI.
    pub quick: bool,
    /// Per-run wall-clock budget (the paper's "24 hours", scaled).
    pub budget: Duration,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            quick: false,
            budget: Duration::from_secs(5),
        }
    }
}

impl Opts {
    /// Parse from CLI args (`--quick`, `--budget-secs N`) and the
    /// `FBE_QUICK` / `FBE_BUDGET_SECS` environment variables.
    pub fn from_args() -> Self {
        let mut o = Opts::default();
        if std::env::var("FBE_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false)
        {
            o.quick = true;
        }
        if let Ok(s) = std::env::var("FBE_BUDGET_SECS") {
            if let Ok(n) = s.parse::<u64>() {
                o.budget = Duration::from_secs(n);
            }
        }
        let args: Vec<String> = std::env::args().collect();
        for (i, a) in args.iter().enumerate() {
            match a.as_str() {
                "--quick" => o.quick = true,
                "--budget-secs" => {
                    if let Some(n) = args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) {
                        o.budget = Duration::from_secs(n);
                    }
                }
                _ => {}
            }
        }
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_time_inf_marker() {
        assert_eq!(fmt_time(Duration::from_secs(1), true), "INF");
        assert_eq!(fmt_time(Duration::from_millis(1500), false), "1.5000");
    }

    #[test]
    fn table_renders_and_serializes() {
        let mut t = Table::new("demo", &["x", "y"]);
        t.push(vec!["1".into(), "2".into()]);
        let tsv = t.to_tsv();
        assert!(tsv.contains("# demo"));
        assert!(tsv.contains("x\ty"));
        assert!(tsv.contains("1\t2"));
        t.print(); // smoke
    }

    #[test]
    fn default_opts() {
        let o = Opts::default();
        assert!(!o.quick);
        assert_eq!(o.budget, Duration::from_secs(5));
    }
}
