//! Regenerates Fig. 7 (scalability) of the paper. Run: `cargo bench --bench fig7_scalability`
//! (add `-- --quick` for a reduced sweep).

fn main() {
    let opts = fbe_bench::Opts::from_args();
    println!(
        "=== Fig. 7 (scalability) (budget {:?}/run, quick={}) ===",
        opts.budget, opts.quick
    );
    for (i, t) in fbe_bench::experiments::exp5_fig7(&opts)
        .into_iter()
        .enumerate()
    {
        t.print();
        t.save(&format!("fig7_scalability_{i}"));
    }
}
