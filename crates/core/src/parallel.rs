//! Multi-threaded `FairBCEM++`.
//!
//! The enumeration tree's top-level branches are independent once the
//! duplicate-suppression set `Q` is seeded correctly: branch `i`
//! explores candidate order position `i` with `Q = p[0..i]`, and the
//! fully-connected-`Q` check kills exactly the subtrees the serial
//! algorithm never enters (any maximal biclique reachable from a
//! later branch that was already enumerated under an earlier one
//! contains an earlier vertex, which sits in `Q`). Work is distributed
//! branch-at-a-time over scoped worker threads via an atomic
//! cursor — degree-descending order puts the heavy branches first,
//! which doubles as a crude longest-processing-time schedule.
//!
//! The parallel driver trades two things for speed: results arrive in
//! nondeterministic *order* (the result *set* is identical — tests
//! enforce it), and budgets apply per worker rather than globally.

use crate::biclique::{Biclique, CollectSink, EnumStats};
use crate::config::{Budget, FairParams, RunConfig};
use crate::fairbcem_pp::SsExpander;
use crate::fcore::PruneStats;
use crate::mbea::{walk_maximal_bicliques_from, RBound};
use crate::ordering::side_order;
use crate::pipeline::{prune_single_side, RunReport};
use bigraph::{BipartiteGraph, Side};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Run `FairBCEM++` on an already-pruned graph across `n_threads`
/// workers, returning the collected results (order unspecified) and
/// aggregated statistics.
pub fn fairbcem_pp_par_on_pruned(
    g: &BipartiteGraph,
    params: FairParams,
    order: crate::config::VertexOrder,
    n_threads: usize,
    budget: Budget,
) -> (Vec<Biclique>, EnumStats) {
    let p = side_order(g, Side::Lower, order);
    let n_threads = n_threads.clamp(1, p.len().max(1));
    let cursor = AtomicUsize::new(0);
    let attrs = g.attrs(Side::Lower);

    let mut per_thread: Vec<(Vec<Biclique>, EnumStats)> = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..n_threads {
            let p = &p;
            let cursor = &cursor;
            handles.push(s.spawn(move || {
                let mut sink = CollectSink::default();
                let mut expander = SsExpander::new(g, params, budget);
                let mut agg = EnumStats::default();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= p.len() {
                        break;
                    }
                    let stats = walk_maximal_bicliques_from(
                        g,
                        params.alpha as usize,
                        RBound::AttrBeta {
                            attrs,
                            beta: params.beta,
                        },
                        budget,
                        p[i..].to_vec(),
                        p[..i].to_vec(),
                        1,
                        &mut |l, r| expander.expand(l, r, &mut sink),
                    );
                    agg.nodes += stats.nodes;
                    agg.aborted |= stats.aborted;
                    agg.peak_search_bytes = agg.peak_search_bytes.max(stats.peak_search_bytes);
                }
                agg.emitted = expander.emitted;
                agg.aborted |= expander.aborted();
                (sink.bicliques, agg)
            }));
        }
        for h in handles {
            per_thread.push(h.join().expect("enumeration worker panicked"));
        }
    });

    let mut all = Vec::new();
    let mut agg = EnumStats::default();
    for (bicliques, stats) in per_thread {
        all.extend(bicliques);
        agg.nodes += stats.nodes;
        agg.emitted += stats.emitted;
        agg.aborted |= stats.aborted;
        agg.peak_search_bytes += stats.peak_search_bytes;
    }
    (all, agg)
}

/// Full parallel pipeline: prune (serial — it is near-linear), then
/// enumerate SSFBCs across `n_threads` workers, mapping ids back to
/// the original graph. Results are sorted for determinism.
pub fn par_enumerate_ssfbc(
    g: &BipartiteGraph,
    params: FairParams,
    cfg: &RunConfig,
    n_threads: usize,
) -> RunReport {
    let pruned = prune_single_side(g, params, cfg.prune);
    let (raw, stats) =
        fairbcem_pp_par_on_pruned(&pruned.sub.graph, params, cfg.order, n_threads, cfg.budget);
    let mut bicliques: Vec<Biclique> = raw
        .into_iter()
        .map(|bc| {
            Biclique::new(
                bc.upper
                    .iter()
                    .map(|&u| pruned.sub.upper_to_parent[u as usize])
                    .collect(),
                bc.lower
                    .iter()
                    .map(|&v| pruned.sub.lower_to_parent[v as usize])
                    .collect(),
            )
        })
        .collect();
    bicliques.sort_unstable();
    let prune: PruneStats = pruned.stats;
    RunReport {
        bicliques,
        prune,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VertexOrder;
    use crate::pipeline::enumerate_ssfbc;
    use bigraph::generate::{plant_bicliques, random_uniform};
    use std::collections::BTreeSet;

    #[test]
    fn parallel_matches_serial_on_random_graphs() {
        for seed in 0..10u64 {
            let g = random_uniform(12, 14, 70, 2, 2, seed);
            let params = FairParams::unchecked(2, 1, 1);
            let serial: BTreeSet<Biclique> = enumerate_ssfbc(&g, params, &RunConfig::default())
                .bicliques
                .into_iter()
                .collect();
            for threads in [1usize, 2, 4] {
                let par = par_enumerate_ssfbc(&g, params, &RunConfig::default(), threads);
                let got: BTreeSet<Biclique> = par.bicliques.iter().cloned().collect();
                assert_eq!(got.len(), par.bicliques.len(), "no duplicates");
                assert_eq!(got, serial, "seed {seed} threads {threads}");
                assert_eq!(par.stats.emitted as usize, serial.len());
            }
        }
    }

    #[test]
    fn parallel_matches_serial_on_planted_structure() {
        let base = random_uniform(40, 45, 300, 2, 2, 3);
        let g = plant_bicliques(&base, 3, 5, 8, 1.0, 4);
        let params = FairParams::unchecked(3, 2, 1);
        let serial: BTreeSet<Biclique> = enumerate_ssfbc(&g, params, &RunConfig::default())
            .bicliques
            .into_iter()
            .collect();
        assert!(!serial.is_empty());
        for order in [VertexOrder::IdAsc, VertexOrder::DegreeDesc] {
            let cfg = RunConfig::with_order(order);
            let par = par_enumerate_ssfbc(&g, params, &cfg, 4);
            let got: BTreeSet<Biclique> = par.bicliques.into_iter().collect();
            assert_eq!(got, serial, "order {order:?}");
        }
    }

    #[test]
    fn parallel_output_is_sorted_and_deterministic() {
        let g = random_uniform(15, 15, 90, 2, 2, 8);
        let params = FairParams::unchecked(2, 1, 2);
        let a = par_enumerate_ssfbc(&g, params, &RunConfig::default(), 3);
        let b = par_enumerate_ssfbc(&g, params, &RunConfig::default(), 3);
        assert_eq!(a.bicliques, b.bicliques);
        assert!(a.bicliques.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn single_thread_equals_serial_stats_shape() {
        let g = random_uniform(10, 10, 50, 2, 2, 5);
        let params = FairParams::unchecked(2, 1, 1);
        let par = par_enumerate_ssfbc(&g, params, &RunConfig::default(), 1);
        let ser = enumerate_ssfbc(&g, params, &RunConfig::default());
        assert_eq!(par.bicliques.len(), ser.bicliques.len());
    }
}
