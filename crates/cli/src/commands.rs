//! Execution of parsed [`Command`]s.

use crate::args::{bi_algo_of, Command, GenerateKind, GraphSource};
use bigraph::{BipartiteGraph, Side};
use fair_biclique::biclique::{CollectSink, CountSink, TopKSink};
use fair_biclique::config::{Budget, FairParams, ProParams, RunConfig, VertexOrder};
use fair_biclique::pipeline::{
    prune_bi_side, prune_single_side, run_bsfbc, run_pbsfbc, run_pssfbc, run_ssfbc, SsAlgorithm,
};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Execute a command, returning the text to print.
pub fn execute(cmd: Command) -> Result<String, String> {
    match cmd {
        Command::Help => Ok(crate::HELP.to_string()),
        Command::Generate { kind, out } => generate(kind, &out),
        Command::Stats { source } => stats(&source),
        Command::Prune {
            source,
            alpha,
            beta,
            bi,
            kind,
        } => prune(&source, alpha, beta, bi, kind),
        Command::Enumerate {
            source,
            alpha,
            beta,
            delta,
            theta,
            bi,
            algo,
            order,
            count_only,
            top,
            budget,
            threads,
        } => enumerate(
            &source, alpha, beta, delta, theta, bi, algo, order, count_only, top, budget, threads,
        ),
    }
}

fn stem_paths(stem: &str) -> (PathBuf, PathBuf, PathBuf) {
    let base = Path::new(stem);
    (
        base.with_extension("edges"),
        base.with_extension("uattr"),
        base.with_extension("lattr"),
    )
}

fn load(source: &GraphSource) -> Result<BipartiteGraph, String> {
    let GraphSource::Path { stem, attr_domains } = source;
    let (edges, uattr, lattr) = stem_paths(stem);
    let bare = Path::new(stem);
    if edges.exists() {
        bigraph::io::load_graph(
            &edges,
            uattr.exists().then_some(uattr.as_path()),
            lattr.exists().then_some(lattr.as_path()),
            attr_domains.0,
            attr_domains.1,
        )
        .map_err(|e| format!("loading {stem}: {e}"))
    } else if bare.exists() {
        let f = std::fs::File::open(bare).map_err(|e| format!("opening {stem}: {e}"))?;
        bigraph::io::read_edge_list(f, attr_domains.0, attr_domains.1)
            .map_err(|e| format!("parsing {stem}: {e}"))
    } else {
        Err(format!(
            "no such graph: {stem} (expected {stem}.edges or a bare edge file)"
        ))
    }
}

fn generate(kind: GenerateKind, out: &str) -> Result<String, String> {
    let (g, label) = match kind {
        GenerateKind::Dataset(d) => {
            let spec = fbe_datasets::corpus::spec(d);
            (
                spec.build(),
                format!("{d} analog (defaults: {})", spec.single_params()),
            )
        }
        GenerateKind::Uniform {
            n_upper,
            n_lower,
            m,
            attrs,
            seed,
        } => {
            if n_upper == 0 || n_lower == 0 {
                return Err("generate: sides must be non-empty".into());
            }
            (
                bigraph::generate::random_uniform(n_upper, n_lower, m, attrs.0, attrs.1, seed),
                format!("uniform({n_upper},{n_lower},{m}) seed {seed}"),
            )
        }
    };
    let (edges, uattr, lattr) = stem_paths(out);
    if let Some(dir) = edges.parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    }
    let write = |p: &Path, f: &dyn Fn(&mut Vec<u8>) -> std::io::Result<()>| -> Result<(), String> {
        let mut buf = Vec::new();
        f(&mut buf).map_err(|e| e.to_string())?;
        std::fs::write(p, buf).map_err(|e| format!("writing {}: {e}", p.display()))
    };
    write(&edges, &|w| bigraph::io::write_edge_list(&g, w))?;
    write(&uattr, &|w| bigraph::io::write_attrs(&g, Side::Upper, w))?;
    write(&lattr, &|w| bigraph::io::write_attrs(&g, Side::Lower, w))?;
    Ok(format!(
        "wrote {label}: {} / {} / {}\n{}\n",
        edges.display(),
        uattr.display(),
        lattr.display(),
        bigraph::stats::graph_stats(&g)
    ))
}

fn stats(source: &GraphSource) -> Result<String, String> {
    let g = load(source)?;
    let st = bigraph::stats::graph_stats(&g);
    let butterflies = bigraph::butterfly::count_butterflies(&g);
    let mut out = String::new();
    writeln!(out, "{st}").unwrap();
    writeln!(
        out,
        "attr counts U: {:?}  V: {:?}",
        st.upper.attr_counts, st.lower.attr_counts
    )
    .unwrap();
    writeln!(out, "butterflies: {butterflies}").unwrap();
    Ok(out)
}

fn prune(
    source: &GraphSource,
    alpha: u32,
    beta: u32,
    bi: bool,
    kind: fair_biclique::config::PruneKind,
) -> Result<String, String> {
    let g = load(source)?;
    let params = FairParams::new(alpha.max(1), beta, 0).map_err(|e| e.to_string())?;
    let out = if bi {
        prune_bi_side(&g, params, kind)
    } else {
        prune_single_side(&g, params, kind)
    };
    Ok(format!(
        "{kind:?} ({}): {} -> {} vertices remaining ({} -> {} edges)\n",
        if bi { "bi-side" } else { "single-side" },
        out.stats.upper_before + out.stats.lower_before,
        out.stats.remaining_vertices(),
        out.stats.edges_before,
        out.stats.edges_after,
    ))
}

#[allow(clippy::too_many_arguments)]
fn enumerate(
    source: &GraphSource,
    alpha: u32,
    beta: u32,
    delta: u32,
    theta: Option<f64>,
    bi: bool,
    algo: SsAlgorithm,
    order: VertexOrder,
    count_only: bool,
    top: Option<usize>,
    budget: Option<std::time::Duration>,
    threads: usize,
) -> Result<String, String> {
    let g = load(source)?;
    let params = FairParams::new(alpha, beta, delta).map_err(|e| e.to_string())?;
    let cfg = RunConfig {
        order,
        budget: budget.map_or(Budget::UNLIMITED, Budget::time),
        ..RunConfig::default()
    };
    let model = match (bi, theta.is_some()) {
        (false, false) => "SSFBC",
        (false, true) => "PSSFBC",
        (true, false) => "BSFBC",
        (true, true) => "PBSFBC",
    };

    // Parallel fast path: plain SSFBC with FairBCEM++ only.
    if threads > 1 && !bi && theta.is_none() && algo == SsAlgorithm::FairBcemPP {
        let report = fair_biclique::parallel::par_enumerate_ssfbc(&g, params, &cfg, threads);
        return Ok(render(
            model,
            report.bicliques.len() as u64,
            report.stats.aborted,
            count_only,
            top,
            report.bicliques,
        ));
    }

    let run = |sink: &mut dyn fair_biclique::biclique::BicliqueSink| -> (u64, bool) {
        let stats = match (bi, theta) {
            (false, None) => run_ssfbc(&g, params, algo, &cfg, sink).1,
            (true, None) => run_bsfbc(&g, params, bi_algo_of(algo), &cfg, sink).1,
            (false, Some(t)) => {
                let pro = ProParams::new(alpha, beta, delta, t).map_err(|e| e.to_string());
                match pro {
                    Ok(pro) => run_pssfbc(&g, pro, &cfg, sink).1,
                    Err(_) => unreachable!("theta validated at parse time"),
                }
            }
            (true, Some(t)) => {
                let pro = ProParams::new(alpha, beta, delta, t).expect("validated");
                run_pbsfbc(&g, pro, &cfg, sink).1
            }
        };
        (stats.emitted, stats.aborted)
    };

    if count_only {
        let mut sink = CountSink::default();
        let (n, aborted) = run(&mut sink);
        return Ok(render(model, n, aborted, true, None, Vec::new()));
    }
    if let Some(k) = top {
        let mut sink = TopKSink::new(k);
        let (n, aborted) = run(&mut sink);
        return Ok(render(
            model,
            n,
            aborted,
            false,
            Some(k),
            sink.into_sorted(),
        ));
    }
    let mut sink = CollectSink::default();
    let (n, aborted) = run(&mut sink);
    Ok(render(model, n, aborted, false, None, sink.bicliques))
}

fn render(
    model: &str,
    count: u64,
    aborted: bool,
    count_only: bool,
    top: Option<usize>,
    bicliques: Vec<fair_biclique::biclique::Biclique>,
) -> String {
    let mut out = String::new();
    let suffix = if aborted {
        " (budget hit; lower bound)"
    } else {
        ""
    };
    writeln!(out, "{model} count: {count}{suffix}").unwrap();
    if count_only {
        return out;
    }
    if let Some(k) = top {
        writeln!(out, "top {k} by size:").unwrap();
    }
    for bc in bicliques {
        writeln!(out, "  {bc}").unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_rejects_missing() {
        let src = GraphSource::Path {
            stem: "/definitely/not/here".into(),
            attr_domains: (2, 2),
        };
        assert!(load(&src).is_err());
    }

    #[test]
    fn load_bare_edge_file() {
        let dir = std::env::temp_dir().join("fbe_cli_cmd_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("bare.txt");
        std::fs::write(&p, "0 0\n0 1\n1 1\n").unwrap();
        let src = GraphSource::Path {
            stem: p.to_str().unwrap().to_string(),
            attr_domains: (1, 1),
        };
        let g = load(&src).unwrap();
        assert_eq!(g.n_edges(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn render_formats() {
        let s = render("SSFBC", 3, true, true, None, Vec::new());
        assert!(s.contains("lower bound"));
        let s = render(
            "BSFBC",
            1,
            false,
            false,
            Some(2),
            vec![fair_biclique::biclique::Biclique::new(vec![0], vec![1])],
        );
        assert!(s.contains("top 2"));
        assert!(s.contains("L=[0]"));
    }
}
