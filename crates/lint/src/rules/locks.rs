//! `lock-discipline` — two checks on `Mutex` usage.
//!
//! # Rationale
//!
//! The workspace's concurrency stack is hand-rolled: the work-stealing
//! engine (`core::parallel`) and the service (`service::engine`,
//! `service::catalog`) each guard state with `std::sync::Mutex`. Two
//! invariants are cheap to violate silently and expensive to debug:
//!
//! 1. **No nested acquisition.** Holding one `MutexGuard` while
//!    calling `.lock()` again (same or different mutex) is the classic
//!    deadlock shape — two threads acquiring in opposite orders hang
//!    forever, and an enumeration query that hangs holds its admission
//!    slot forever. The workspace convention is one lock at a time:
//!    copy what you need out of the first guard, drop it, then lock
//!    the second.
//! 2. **Poisoning policy is written down.** `lock().unwrap()` /
//!    `lock().expect(..)` turns one panicked worker into a cascade of
//!    panics in every later client of that mutex. Sometimes that is
//!    the right call (crash early in a test harness), but it must be a
//!    *decision*: any `.lock()` immediately unwrapped must mention the
//!    poisoning policy (the word "poison") in the expect message or a
//!    comment within the preceding two lines. Server-side code should
//!    recover instead (see `fbe_service::sync`).
//!
//! The nested-acquisition check is a heuristic, not an alias analysis:
//! it tracks `let`-bindings of `.lock()` results per brace depth and
//! flags any further `.lock()` before the binding's block closes or
//! `drop(binding)` runs. Locks passed across function boundaries are
//! out of scope. Suppress deliberate sites with
//! `// fbe-lint: allow(lock-discipline): <reason>`.

use crate::findings::Finding;
use crate::lexer::ScrubbedFile;
use crate::rules::{crate_sources, is_ident, justified_nearby};
use crate::walk::Analysis;

/// Rule identifier.
pub const NAME: &str = "lock-discipline";

/// The binding name of `let [mut] NAME = ...` on `code`, when the
/// statement's initializer contains `.lock()`.
fn lock_binding(code: &str) -> Option<String> {
    let let_at = crate::rules::token_positions(code, "let")
        .into_iter()
        .next()?;
    let rest = &code[let_at + 3..];
    let eq = rest.find('=')?;
    if !rest[eq..].contains(".lock()") {
        return None;
    }
    let name = rest[..eq].trim().trim_start_matches("mut ").trim();
    // Only simple bindings are tracked (patterns like tuples rarely
    // bind guards, and the heuristic must not misattribute drops).
    if !name.is_empty() && name.chars().all(is_ident) {
        Some(name.to_string())
    } else {
        None
    }
}

/// Detect `.lock()` immediately chained into `.unwrap()` / `.expect(`
/// (rustfmt may split the chain across lines), returning the
/// 1-indexed line numbers of the unwrap/expect tokens.
fn unwrapped_lock_lines(scrub: &ScrubbedFile) -> Vec<usize> {
    let (text, starts) = scrub.joined_code();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = text[from..].find(".lock()") {
        let at = from + rel;
        let after = at + ".lock()".len();
        let trimmed = text[after..].trim_start();
        if trimmed.starts_with(".unwrap()") || trimmed.starts_with(".expect(") {
            let tok_at = after + (text[after..].len() - trimmed.len());
            out.push(ScrubbedFile::line_of(&starts, tok_at));
        }
        from = after;
    }
    out
}

/// Run the rule.
pub fn check(analysis: &Analysis, findings: &mut Vec<Finding>) {
    for file in crate_sources(analysis) {
        // (2) poisoning policy on unwrap-after-lock.
        for line in unwrapped_lock_lines(&file.scrub) {
            if file.in_test(line) {
                continue;
            }
            if !justified_nearby(file, line, 2, "poison") {
                findings.push(Finding::new(
                    NAME,
                    &file.path,
                    line,
                    "lock().unwrap()/expect() without a stated poisoning policy: \
                     recover (see fbe_service::sync) or comment why \
                     propagating the poison panic is intended",
                ));
            }
        }

        // (1) nested acquisition while a guard binding is live.
        let mut depth: i64 = 0;
        let mut held: Vec<(String, i64)> = Vec::new();
        for (idx, line) in file.scrub.lines.iter().enumerate() {
            let lineno = idx + 1;
            let code = line.code.as_str();
            if !file.in_test(lineno) && code.contains(".lock()") {
                if let Some((name, _)) = held.first() {
                    findings.push(Finding::new(
                        NAME,
                        &file.path,
                        lineno,
                        format!(
                            "`.lock()` while guard `{name}` is still held: \
                             nested Mutex acquisition risks deadlock; \
                             drop the first guard (or narrow its scope) first"
                        ),
                    ));
                }
                if let Some(name) = lock_binding(code) {
                    held.push((name, depth));
                }
            }
            // Explicit early drops release the binding.
            held.retain(|(name, _)| {
                crate::rules::token_positions(code, &format!("drop({name})")).is_empty()
            });
            for c in code.chars() {
                match c {
                    '{' => depth += 1,
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            // A binding registered at depth D lives until its
            // enclosing block closes (depth drops below D).
            held.retain(|(_, d)| *d <= depth);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scrub;

    #[test]
    fn binding_extraction() {
        assert_eq!(
            lock_binding("let mut st = self.state.lock().expect(\"x\");"),
            Some("st".to_string())
        );
        assert_eq!(lock_binding("let g = m.lock();"), Some("g".to_string()));
        assert_eq!(lock_binding("self.plans.lock().clear();"), None);
        assert_eq!(lock_binding("let x = y;"), None);
    }

    #[test]
    fn unwrapped_lock_spans_line_breaks() {
        let s = scrub("let a = m\n    .lock()\n    .unwrap();\n");
        assert_eq!(unwrapped_lock_lines(&s), vec![3]);
        let s = scrub("let a = m.lock().expect(\"poisoned\");\n");
        assert_eq!(unwrapped_lock_lines(&s), vec![1]);
        let s = scrub("let a = m.lock().unwrap_or_else(|p| p.into_inner());\n");
        assert!(unwrapped_lock_lines(&s).is_empty());
    }
}
