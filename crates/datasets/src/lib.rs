//! # fbe-datasets — corpus and case-study substrates
//!
//! The paper evaluates on five KONECT downloads (Youtube, Twitter,
//! IMDB, Wiki-cat, DBLP) and three application datasets (DBLP XML,
//! Kaggle Jobs, Kaggle Movies). None are downloadable in this
//! environment, so this crate builds **seeded synthetic analogs**
//! (DESIGN.md §5 documents the substitution argument):
//!
//! * [`corpus`] — scaled-down analogs of the five benchmark graphs:
//!   same side-ratio, comparable mean degree, Chung–Lu power-law skew,
//!   plus planted dense blocks so fair bicliques exist at the paper's
//!   default parameters. Table I's default `α/β/δ/θ` travel with each
//!   [`corpus::DatasetSpec`].
//! * [`cf`] — a user-based collaborative-filtering recommender (cosine
//!   similarity over the interaction graph, top-k scoring). The case
//!   studies mine fair bicliques from its recommendation graph exactly
//!   as §V-C does.
//! * [`case_studies`] — generators for the DBDA/DBDS scholar–paper
//!   graphs, the Jobs recommendation scenario, and the Movies
//!   recommendation scenario, with human-readable labels.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod case_studies;
pub mod cf;
pub mod corpus;
