//! Run the full evaluation suite (every table and figure of §V) and
//! print paper-style tables; TSVs land in `target/experiments/`.
//!
//! ```text
//! cargo run --release -p fbe-bench --bin experiments            # full
//! cargo run --release -p fbe-bench --bin experiments -- --quick # smoke
//! cargo run --release -p fbe-bench --bin experiments -- --budget-secs 10
//! ```

use fbe_bench::experiments as exp;
use fbe_bench::Opts;

fn section(name: &str, tables: Vec<fbe_bench::Table>, stem: &str) {
    println!("\n==================== {name} ====================");
    for (i, t) in tables.into_iter().enumerate() {
        t.print();
        t.save(&format!("{stem}_{i}"));
    }
}

fn main() {
    let opts = Opts::from_args();
    println!(
        "fair-biclique experiment suite (quick={}, per-run budget {:?})",
        opts.quick, opts.budget
    );
    println!("corpus: scaled synthetic analogs of Table I (see DESIGN.md §5)");
    for s in fbe_datasets::corpus::all_specs() {
        let g = exp::graph_for(s.dataset);
        println!(
            "  {:<8} {}",
            s.dataset.to_string(),
            bigraph::stats::graph_stats(&g)
        );
    }

    section(
        "Exp-1: Fig. 3 (FCore vs CFCore)",
        exp::exp1_fig3(&opts),
        "fig3",
    );
    section(
        "Exp-1: Fig. 4 (BFCore vs BCFCore)",
        exp::exp1_fig4(&opts),
        "fig4",
    );
    section(
        "Exp-2: Fig. 2 (SSFBC runtimes)",
        exp::exp2_fig2(&opts),
        "fig2",
    );
    section(
        "Exp-2/3: Table II (orderings)",
        exp::exp2_table2(&opts),
        "table2",
    );
    section(
        "Exp-3: Fig. 5 (BSFBC runtimes)",
        exp::exp3_fig5(&opts),
        "fig5",
    );
    section(
        "Exp-4: Fig. 6 (result counts)",
        exp::exp4_fig6(&opts),
        "fig6",
    );
    section("Exp-5: Fig. 7 (scalability)", exp::exp5_fig7(&opts), "fig7");
    section(
        "Exp-6: Fig. 8 (memory overhead)",
        exp::exp6_fig8(&opts),
        "fig8",
    );
    section(
        "Exp-7: Fig. 11/12 (proportion models)",
        exp::exp7_fig11_12(&opts),
        "fig11_12",
    );
    section(
        "Ablation: pruning stages",
        exp::ablation_pruning(&opts),
        "ablation",
    );
    section(
        "Exp-8: parallel engine scaling (extension)",
        exp::exp8_parallel_scaling(&opts),
        "parallel_scaling",
    );

    println!("\nAll experiments done. TSVs written to target/experiments/.");
}
