//! No-op `Serialize` / `Deserialize` derive macros for the vendored
//! serde stand-in. Types keep their derive annotations and the macro
//! names resolve, but no code is generated — the workspace never
//! serializes through serde today (see `vendor/README.md`).

use proc_macro::TokenStream;

/// Expands to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
