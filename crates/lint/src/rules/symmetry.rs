//! `api-symmetry` — two cheap-to-check API contracts.
//!
//! # Rationale
//!
//! 1. **`*_with` drivers pair with plain wrappers.** The core crates
//!    grew `<name>_with(...)` variants (explicit candidate substrate)
//!    alongside `<name>(...)` defaults. The convention only helps if
//!    it is total: a `pub fn foo_with` without a matching `pub fn foo`
//!    in the same crate means either a missing convenience wrapper or
//!    an inconsistently named driver — both confuse callers choosing
//!    an entry point.
//! 2. **Protocol verbs match the README grammar.** The service's
//!    line protocol is documented twice: the `match` in
//!    `service/src/protocol.rs` (what the server accepts) and the
//!    grammar block in the README's Protocol section (what clients are
//!    told). This rule parses both and diffs the verb sets, so adding
//!    a command without documenting it — or documenting vapor — fails
//!    CI.
//!
//! Suppress with `// fbe-lint: allow(api-symmetry): <reason>` on the
//! `pub fn` line (check 1); check 2 has no sensible suppression —
//! update the README.

use crate::findings::Finding;
use crate::rules::is_ident;
use crate::walk::Analysis;
use std::collections::BTreeSet;

/// Rule identifier.
pub const NAME: &str = "api-symmetry";

/// Crates held to the `_with` pairing convention.
const WITH_SCOPES: &[&str] = &["crates/core/src/", "crates/bigraph/src/"];

/// Where the protocol match lives.
const PROTOCOL: &str = "crates/service/src/protocol.rs";

/// Extract the function name declared by `pub fn NAME...` on `code`,
/// if any (only plain `pub` counts as public API).
fn pub_fn_name(code: &str) -> Option<&str> {
    let at = code.find("pub fn ")?;
    // `pub(crate) fn` etc. would not match "pub fn ".
    let rest = code[at + "pub fn ".len()..].trim_start();
    let end = rest
        .char_indices()
        .find(|&(_, c)| !is_ident(c))
        .map_or(rest.len(), |(i, _)| i);
    let name = &rest[..end];
    // Require the declaration shape (generics or parameter list).
    let after = rest[end..].trim_start();
    if !name.is_empty() && (after.starts_with('(') || after.starts_with('<')) {
        Some(name)
    } else {
        None
    }
}

/// Verbs matched by `parse_request`: string-literal match arms that
/// are all-uppercase, taken from the raw lines (string contents are
/// scrubbed out of the code channel on purpose).
fn protocol_verbs(analysis: &Analysis) -> Option<(BTreeSet<String>, usize)> {
    let file = analysis.file(PROTOCOL)?;
    let mut verbs = BTreeSet::new();
    let mut anchor = 1;
    for (idx, raw) in file.scrub.raw.iter().enumerate() {
        // Pattern: "VERB" =>
        let mut rest = raw.as_str();
        while let Some(q0) = rest.find('"') {
            let tail = &rest[q0 + 1..];
            let Some(q1) = tail.find('"') else { break };
            let lit = &tail[..q1];
            let after = tail[q1 + 1..].trim_start();
            if !lit.is_empty()
                && lit.chars().all(|c| c.is_ascii_uppercase())
                && after.starts_with("=>")
            {
                verbs.insert(lit.to_string());
                anchor = idx + 1;
            }
            rest = &tail[q1 + 1..];
        }
    }
    Some((verbs, anchor))
}

/// Verbs documented in the README: first token of each line of the
/// fenced grammar block following the `### Protocol` heading, kept
/// when all-uppercase.
fn readme_verbs(readme: &[String]) -> Option<BTreeSet<String>> {
    let start = readme.iter().position(|l| l.contains("### Protocol"))?;
    let fence = readme[start..]
        .iter()
        .position(|l| l.trim_start().starts_with("```"))?
        + start;
    let mut verbs = BTreeSet::new();
    for line in &readme[fence + 1..] {
        if line.trim_start().starts_with("```") {
            break;
        }
        if let Some(tok) = line.split_whitespace().next() {
            if !tok.is_empty()
                && tok
                    .chars()
                    .all(|c| c.is_ascii_uppercase() && c.is_ascii_alphabetic())
            {
                verbs.insert(tok.to_string());
            }
        }
    }
    Some(verbs)
}

/// Run the rule.
pub fn check(analysis: &Analysis, findings: &mut Vec<Finding>) {
    // (1) *_with pairing, per crate.
    for scope in WITH_SCOPES {
        let mut names: BTreeSet<String> = BTreeSet::new();
        let mut with_sites: Vec<(String, usize, String)> = Vec::new();
        for file in analysis.under(scope) {
            for (idx, line) in file.scrub.lines.iter().enumerate() {
                if let Some(name) = pub_fn_name(&line.code) {
                    names.insert(name.to_string());
                    if let Some(base) = name.strip_suffix("_with") {
                        if !base.is_empty() {
                            with_sites.push((file.path.clone(), idx + 1, base.to_string()));
                        }
                    }
                }
            }
        }
        for (path, line, base) in with_sites {
            if !names.contains(&base) {
                findings.push(Finding::new(
                    NAME,
                    &path,
                    line,
                    format!(
                        "`pub fn {base}_with` has no matching `pub fn {base}` \
                         in {scope}: add the default-substrate wrapper or \
                         rename the driver to pair with an existing entry point"
                    ),
                ));
            }
        }
    }

    // (2) protocol verbs vs README grammar.
    let Some((matched, anchor)) = protocol_verbs(analysis) else {
        return; // partial tree without the service crate: nothing to check
    };
    let Some(documented) = readme_verbs(&analysis.readme) else {
        findings.push(Finding::new(
            NAME,
            PROTOCOL,
            1,
            "README has no `### Protocol` grammar block to diff the verb set against",
        ));
        return;
    };
    for verb in matched.difference(&documented) {
        findings.push(Finding::new(
            NAME,
            PROTOCOL,
            anchor,
            format!("protocol verb `{verb}` is matched by parse_request but missing from the README grammar"),
        ));
    }
    for verb in documented.difference(&matched) {
        findings.push(Finding::new(
            NAME,
            PROTOCOL,
            anchor,
            format!("README documents verb `{verb}` but parse_request does not match it"),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pub_fn_extraction() {
        assert_eq!(pub_fn_name("pub fn foo_with("), Some("foo_with"));
        assert_eq!(pub_fn_name("    pub fn foo<T: Clone>(x: T)"), Some("foo"));
        assert_eq!(pub_fn_name("pub(crate) fn hidden("), None);
        assert_eq!(pub_fn_name("fn private("), None);
        assert_eq!(pub_fn_name("pub fn"), None);
    }

    #[test]
    fn readme_grammar_parsing() {
        let readme: Vec<String> = [
            "## Service",
            "### Protocol",
            "Text.",
            "```text",
            "PING",
            "LOAD <name> <path>",
            "ENUM <graph> alpha=A",
            "     [continuation]",
            "```",
            "After.",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let verbs = readme_verbs(&readme).unwrap();
        assert_eq!(
            verbs.iter().cloned().collect::<Vec<_>>(),
            vec!["ENUM", "LOAD", "PING"]
        );
        assert!(readme_verbs(&["no protocol".to_string()]).is_none());
    }
}
