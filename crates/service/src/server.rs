//! TCP transport: `std::net::TcpListener`, thread-per-connection.

use crate::engine::{Engine, Outcome};
use crate::protocol::Reply;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;

/// A bound-but-not-yet-serving server. Bind with port 0 for an
/// ephemeral port, read it back via [`Server::local_addr`], then
/// [`Server::run`] the accept loop (it returns after `SHUTDOWN`).
pub struct Server {
    listener: TcpListener,
    engine: Arc<Engine>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0`) for `engine`.
    pub fn bind(addr: &str, engine: Arc<Engine>) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            engine,
        })
    }

    /// The actual bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept and serve connections until a client issues `SHUTDOWN`.
    /// Each connection gets its own thread; in-flight queries observe
    /// the engine's cancellation token and stop cooperatively.
    pub fn run(self) -> std::io::Result<()> {
        let addr = self.local_addr()?;
        loop {
            let (stream, _) = self.listener.accept()?;
            if self.engine.is_shutdown() {
                // Raced with shutdown (possibly our own wake-up
                // connection): drop the stream and stop accepting.
                break;
            }
            let engine = Arc::clone(&self.engine);
            std::thread::spawn(move || {
                let _ = serve_connection(stream, &engine);
                // Wake the accept loop whenever the engine is stopping
                // — deliberately not only on a clean SHUTDOWN reply: if
                // the client closed without reading (the reply write
                // failed with a pipe error), the token is already
                // cancelled and the accept loop must still be unblocked
                // or the server would hang in accept() forever.
                if engine.is_shutdown() {
                    let _ = TcpStream::connect(addr);
                }
            });
        }
        Ok(())
    }
}

/// Serve one connection until the client disconnects or asks for
/// shutdown.
fn serve_connection(stream: TcpStream, engine: &Engine) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    Reply::greeting().write_to(&mut writer)?;
    writer.flush()?;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // client closed
        }
        if line.trim().is_empty() {
            continue;
        }
        match engine.handle_line(line.trim()) {
            Outcome::Reply(reply) => {
                reply.write_to(&mut writer)?;
                writer.flush()?;
            }
            Outcome::Shutdown(reply) => {
                reply.write_to(&mut writer)?;
                writer.flush()?;
                return Ok(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServiceConfig;

    /// Minimal in-test client: send a line, read one reply block.
    pub(crate) fn roundtrip(
        reader: &mut impl BufRead,
        writer: &mut impl Write,
        cmd: &str,
    ) -> (String, Vec<String>) {
        writeln!(writer, "{cmd}").unwrap();
        writer.flush().unwrap();
        read_block(reader)
    }

    pub(crate) fn read_block(reader: &mut impl BufRead) -> (String, Vec<String>) {
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        let status = status.trim_end().to_string();
        let mut payload = Vec::new();
        loop {
            let mut l = String::new();
            reader.read_line(&mut l).unwrap();
            let l = l.trim_end().to_string();
            if l == crate::protocol::TERMINATOR {
                break;
            }
            payload.push(l);
        }
        (status, payload)
    }

    #[test]
    fn serves_a_session_and_shuts_down() {
        let engine = Engine::new(ServiceConfig::default());
        let server = Server::bind("127.0.0.1:0", Arc::clone(&engine)).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run());

        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        let (greet, _) = read_block(&mut reader);
        assert!(greet.contains("protocol=1"), "{greet}");

        let (s, _) = roundtrip(&mut reader, &mut writer, "PING");
        assert_eq!(s, "OK pong");
        let (s, _) = roundtrip(&mut reader, &mut writer, "GEN g uniform:10,10,40,1");
        assert!(s.contains("upper=10"), "{s}");
        let (s, payload) = roundtrip(
            &mut reader,
            &mut writer,
            "ENUM g ssfbc alpha=1 beta=1 delta=1",
        );
        assert!(s.starts_with("OK model=SSFBC"), "{s}");
        assert!(!payload.is_empty());

        let (s, _) = roundtrip(&mut reader, &mut writer, "SHUTDOWN");
        assert_eq!(s, "OK bye");
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn shutdown_from_a_client_that_never_reads_still_stops_the_server() {
        let engine = Engine::new(ServiceConfig::default());
        let server = Server::bind("127.0.0.1:0", Arc::clone(&engine)).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run());
        {
            // Send SHUTDOWN and slam the connection without ever
            // reading the reply: the reply write may fail, but the
            // accept loop must still be woken.
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(b"SHUTDOWN\n").unwrap();
            stream.flush().unwrap();
            stream.shutdown(std::net::Shutdown::Both).ok();
        }
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            tx.send(handle.join()).ok();
        });
        let joined = rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("server exited within the timeout");
        joined.unwrap().unwrap();
        assert!(engine.is_shutdown());
    }
}
