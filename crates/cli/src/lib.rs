//! `fbe` — the command-line interface to the fair-biclique library.
//!
//! Subcommands (see [`HELP`] for full usage):
//!
//! * `fbe generate` — write a synthetic graph (corpus analog or
//!   uniform random) as edge-list + attribute files;
//! * `fbe stats` — Table-I style statistics plus butterfly counts;
//! * `fbe prune` — run `FCore`/`CFCore` (or the bi-side variants) and
//!   report the reduction;
//! * `fbe enumerate` — enumerate SSFBC/BSFBC/PSSFBC/PBSFBC, printing
//!   results, the top-k largest, or just the count;
//! * `fbe maximum` — the single largest fair biclique under a size
//!   metric;
//! * `fbe serve` — the resident query service (graph catalog,
//!   prepared-plan cache, deadline-aware admission) over TCP;
//! * `fbe batch` — run service-protocol scripts offline or against a
//!   live server (`--connect`).
//!
//! Every mining subcommand takes `--threads <N>`: values above 1 run
//! the model on the work-stealing parallel engine with a global
//! budget ([`fair_biclique::parallel`]); `--sorted` makes enumerate
//! output byte-identical across thread counts.
//!
//! The binary is a thin wrapper around [`run`], which is fully unit
//! tested (argument parsing and command execution return strings).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

/// Usage text.
pub const HELP: &str = "\
fbe — fairness-aware maximal biclique enumeration (ICDE 2023 reproduction)

USAGE:
  fbe generate --dataset <youtube|twitter|imdb|wiki-cat|dblp> --out <stem>
  fbe generate --uniform <NU,NV,M> [--attrs <AU,AV>] [--seed <N>] --out <stem>
  fbe stats <stem | edges-file> [--attrs <AU,AV>]
  fbe prune <stem> --alpha <N> --beta <N> [--bi] [--kind <none|fcore|colorful>]
  fbe enumerate <stem> --alpha <N> --beta <N> --delta <N>
        [--theta <F>] [--bi] [--algo <nsf|bcem|bcem++>]
        [--order <id|degree>] [--count-only] [--top <K>]
        [--budget-secs <N>] [--threads <N>] [--sorted]
        [--substrate <auto|sorted-vec|bitset>] [--trace]
  fbe maximum <stem> --alpha <N> --beta <N> --delta <N>
        [--bi] [--metric <vertices|edges>] [--order <id|degree>]
        [--budget-secs <N>] [--threads <N>]
        [--substrate <auto|sorted-vec|bitset>]
  fbe serve [--host <H>] [--port <P>] [--workers <N>] [--queue <N>]
        [--plan-cache <N>] [--default-limit <N>] [--data-root <DIR>]
        [--shards <HOST:PORT,...>]
  fbe batch [--connect <HOST:PORT>] [<script-file>|-]

A <stem> refers to the three files written by `fbe generate`:
  <stem>.edges, <stem>.uattr, <stem>.lattr
A bare edges file may be given instead (attributes default to value 0;
combine with --attrs to declare domain sizes).

--threads <N> with N > 1 runs any model (enumerate or maximum) on the
work-stealing parallel engine; budgets stay global, and with --sorted
the output is byte-identical across thread counts.

--substrate selects the candidate-set representation of the hot path:
sorted-vec merge intersections, u64 bitset rows with popcount, or
auto (the default: bitsets when the pruned core is small and dense).
Results are identical across substrates — only speed/memory differ.

--trace extends the stderr timing line with an indented per-stage span
tree (prepare: core-peel / 2hop / colorful peels, plan-resolve,
enumerate, sort — the same vocabulary the service's TRACE verb and
SLOWLOG use; see the README's Observability section). Stdout stays
byte-identical with and without it. Spans cover the collect paths; the
streaming modes (--count-only, --top, non-default --algo) keep the
one-line total.

fbe serve starts the resident query service on a TCP port (0 picks an
ephemeral port, printed on startup): named graphs are loaded once
(LOAD/GEN), repeat queries reuse cached prepared plans, and an
admission controller bounds concurrency and honors per-query
deadlines. fbe batch runs the same line protocol from a script file or
stdin — offline against an in-process engine, or against a live
server with --connect. Scripts can mutate resident graphs between
queries (ADDEDGE/DELEDGE/ADDVERTEX): the service repairs its fair
cores incrementally and keeps every cached plan whose core the update
did not touch. See the README's Service section for the protocol
grammar.

--data-root confines LOAD stems under a directory (absolute paths and
.. are refused with ERR PARSE). --shards turns the instance into a
scatter-gather coordinator: LOAD/GEN fan out with a per-shard SHARD
command that restricts each shard server to its slice of the
deterministic 2-hop-component partition, ENUM merges the shards'
sorted result streams (byte-identical to a single-process run) under
one global result budget, and a failed shard answers ERR SHARD
instead of hanging.

EXAMPLES:
  fbe generate --dataset youtube --out /tmp/yt
  fbe stats /tmp/yt
  fbe prune /tmp/yt --alpha 8 --beta 8 --kind colorful
  fbe enumerate /tmp/yt --alpha 8 --beta 8 --delta 2 --top 3
  fbe enumerate /tmp/yt --alpha 5 --beta 5 --delta 2 --bi --count-only
  fbe enumerate /tmp/yt --alpha 8 --beta 8 --delta 2 --threads 4 --sorted
  fbe enumerate /tmp/yt --alpha 8 --beta 8 --delta 2 --substrate bitset
  fbe maximum /tmp/yt --alpha 8 --beta 8 --delta 2 --metric edges --threads 4
";

pub use commands::CliError;

/// Parse `argv` (without the program name) and execute, streaming
/// output to `out`. Output-stream failures surface as
/// [`CliError::Io`] (the binary maps `BrokenPipe` to a clean exit);
/// everything else is [`CliError::Usage`].
pub fn run_to(argv: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let parsed = args::parse(argv).map_err(CliError::Usage)?;
    commands::execute_to(parsed, out)
}

/// Parse `argv` (without the program name) and execute, returning the
/// text to print. Buffers everything — long-running commands
/// (`serve`) should go through [`run_to`].
pub fn run(argv: &[String]) -> Result<String, String> {
    let parsed = args::parse(argv)?;
    commands::execute(parsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_on_empty_or_flag() {
        assert!(run(&sv(&[])).unwrap().contains("USAGE"));
        assert!(run(&sv(&["--help"])).unwrap().contains("USAGE"));
        assert!(run(&sv(&["help"])).unwrap().contains("USAGE"));
    }

    #[test]
    fn unknown_subcommand_errors() {
        let err = run(&sv(&["frobnicate"])).unwrap_err();
        assert!(err.contains("unknown subcommand"), "{err}");
    }

    #[test]
    fn full_workflow_through_cli() {
        let dir = std::env::temp_dir().join("fbe_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let stem = dir.join("g");
        let stem_s = stem.to_str().unwrap();

        // generate (uniform)
        let out = run(&sv(&[
            "generate",
            "--uniform",
            "30,30,200",
            "--seed",
            "7",
            "--out",
            stem_s,
        ]))
        .unwrap();
        assert!(out.contains("wrote"), "{out}");
        assert!(stem.with_extension("edges").exists());

        // stats
        let out = run(&sv(&["stats", stem_s])).unwrap();
        assert!(out.contains("|E|=200"), "{out}");
        assert!(out.contains("butterflies"), "{out}");

        // prune
        let out = run(&sv(&["prune", stem_s, "--alpha", "2", "--beta", "2"])).unwrap();
        assert!(out.contains("remaining"), "{out}");

        // enumerate count-only
        let out = run(&sv(&[
            "enumerate",
            stem_s,
            "--alpha",
            "2",
            "--beta",
            "1",
            "--delta",
            "1",
            "--count-only",
        ]))
        .unwrap();
        assert!(out.contains("SSFBC count"), "{out}");

        // enumerate top-k, bi-side, parallel
        let out = run(&sv(&[
            "enumerate",
            stem_s,
            "--alpha",
            "1",
            "--beta",
            "1",
            "--delta",
            "1",
            "--bi",
            "--top",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("BSFBC"), "{out}");

        let out = run(&sv(&[
            "enumerate",
            stem_s,
            "--alpha",
            "2",
            "--beta",
            "1",
            "--delta",
            "1",
            "--threads",
            "2",
            "--count-only",
        ]))
        .unwrap();
        assert!(out.contains("SSFBC count"), "{out}");

        // sorted output is byte-identical across thread counts
        let base = sv(&[
            "enumerate",
            stem_s,
            "--alpha",
            "2",
            "--beta",
            "1",
            "--delta",
            "1",
            "--sorted",
        ]);
        let one = run(&base).unwrap();
        for threads in ["2", "4"] {
            let mut argv = base.clone();
            argv.extend(sv(&["--threads", threads]));
            assert_eq!(run(&argv).unwrap(), one, "threads {threads}");
        }

        // ... and across candidate substrates
        for substrate in ["sorted-vec", "bitset", "auto"] {
            let mut argv = base.clone();
            argv.extend(sv(&["--substrate", substrate]));
            assert_eq!(run(&argv).unwrap(), one, "substrate {substrate}");
        }

        // parallel count-only and top-k stream; results match serial
        for extra in [vec!["--count-only"], vec!["--top", "2"]] {
            let mut serial = sv(&[
                "enumerate",
                stem_s,
                "--alpha",
                "2",
                "--beta",
                "1",
                "--delta",
                "1",
            ]);
            serial.extend(sv(&extra));
            let mut par = serial.clone();
            par.extend(sv(&["--threads", "3"]));
            assert_eq!(run(&par).unwrap(), run(&serial).unwrap(), "{extra:?}");
        }

        // bi-side parallel goes through the engine too
        let out = run(&sv(&[
            "enumerate",
            stem_s,
            "--alpha",
            "1",
            "--beta",
            "1",
            "--delta",
            "1",
            "--bi",
            "--threads",
            "3",
            "--count-only",
        ]))
        .unwrap();
        assert!(out.contains("BSFBC count"), "{out}");

        // maximum search, serial and parallel, agree
        let m1 = run(&sv(&[
            "maximum", stem_s, "--alpha", "2", "--beta", "1", "--delta", "1",
        ]))
        .unwrap();
        let m4 = run(&sv(&[
            "maximum",
            stem_s,
            "--alpha",
            "2",
            "--beta",
            "1",
            "--delta",
            "1",
            "--threads",
            "4",
        ]))
        .unwrap();
        assert!(m1.contains("maximum SSFBC"), "{m1}");
        assert_eq!(m1, m4);

        // --threads with a non-default algorithm is rejected
        assert!(run(&sv(&[
            "enumerate",
            stem_s,
            "--alpha",
            "2",
            "--beta",
            "1",
            "--delta",
            "1",
            "--algo",
            "nsf",
            "--threads",
            "2",
        ]))
        .is_err());

        // proportion
        let out = run(&sv(&[
            "enumerate",
            stem_s,
            "--alpha",
            "2",
            "--beta",
            "1",
            "--delta",
            "1",
            "--theta",
            "0.4",
            "--count-only",
        ]))
        .unwrap();
        assert!(out.contains("PSSFBC count"), "{out}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn generate_dataset_variant() {
        let dir = std::env::temp_dir().join("fbe_cli_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let stem = dir.join("yt");
        let out = run(&sv(&[
            "generate",
            "--dataset",
            "youtube",
            "--out",
            stem.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("Youtube"), "{out}");
        let st = run(&sv(&["stats", stem.to_str().unwrap()])).unwrap();
        assert!(st.contains("|U|=1473"), "{st}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_arguments_report_errors() {
        assert!(run(&sv(&["generate", "--out", "/tmp/x"])).is_err());
        assert!(run(&sv(&["generate", "--uniform", "bogus", "--out", "/tmp/x"])).is_err());
        assert!(run(&sv(&[
            "enumerate",
            "/nonexistent",
            "--alpha",
            "1",
            "--beta",
            "1",
            "--delta",
            "0"
        ]))
        .is_err());
        assert!(run(&sv(&[
            "prune",
            "/nonexistent",
            "--alpha",
            "1",
            "--beta",
            "1"
        ]))
        .is_err());
        let err = run(&sv(&[
            "enumerate",
            "/tmp/x",
            "--alpha",
            "0",
            "--beta",
            "1",
            "--delta",
            "0",
        ]))
        .unwrap_err();
        assert!(err.contains("alpha"), "{err}");
    }
}
