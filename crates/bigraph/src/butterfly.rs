//! Butterfly counting.
//!
//! A *butterfly* is a 2×2 biclique — the smallest non-trivial biclique
//! and the standard cohesion measure on bipartite graphs (the paper
//! cites butterfly counting \[13\]–\[16\], \[43\] as one of the fundamental
//! bipartite analyses next to biclique enumeration). The experiment
//! harness uses butterfly counts to characterise the synthetic corpus;
//! downstream users get them as a cheap density diagnostic before
//! launching a full enumeration.
//!
//! Two algorithms:
//!
//! * [`count_butterflies_naive`] — per-vertex wedge aggregation from
//!   one side; `O(Σ_u d(u)²)`; simple and used as the test oracle.
//! * [`count_butterflies`] — the vertex-priority algorithm of Wang et
//!   al. (`BFC-VP`, \[43\]): process each wedge only from its highest-
//!   priority endpoint, where priority = degree (ties by id). This
//!   caps the per-vertex work on skewed graphs and is the version the
//!   harness runs.
//!
//! Both count each butterfly exactly once.

use crate::graph::{BipartiteGraph, Side, VertexId};

/// Number of butterflies via one-sided wedge counting (oracle).
///
/// For every pair of distinct `side`-vertices `(x, y)` with `c` common
/// neighbors, the pair contributes `C(c, 2)` butterflies; summing over
/// unordered pairs from one side counts each butterfly once.
pub fn count_butterflies_naive(g: &BipartiteGraph, side: Side) -> u64 {
    let n = g.n(side);
    let mut count = vec![0u32; n];
    let mut touched: Vec<VertexId> = Vec::new();
    let mut total = 0u64;
    for v in 0..n as VertexId {
        for &u in g.neighbors(side, v) {
            for &w in g.neighbors(side.other(), u) {
                if w > v {
                    if count[w as usize] == 0 {
                        touched.push(w);
                    }
                    count[w as usize] += 1;
                }
            }
        }
        for &w in &touched {
            let c = count[w as usize] as u64;
            total += c * (c - 1) / 2;
            count[w as usize] = 0;
        }
        touched.clear();
    }
    total
}

/// Priority of a vertex: `(degree, side, id)` — higher degree first.
///
/// The side component makes priorities total across the two vertex
/// id spaces.
fn priority(g: &BipartiteGraph, side: Side, v: VertexId) -> (usize, u8, VertexId) {
    (g.degree(side, v), matches!(side, Side::Lower) as u8, v)
}

/// Number of butterflies via the vertex-priority strategy (`BFC-VP`).
///
/// Every wedge `(x, u, w)` (endpoints `x, w` on one side, middle `u`
/// on the other) is charged to its *start* vertex `x` only when `x`
/// has the highest priority of the three, and `w`'s priority exceeds
/// `u`'s... — concretely, per \[43\]: start from each vertex `x`, walk
/// to neighbors `u` with lower priority than `x`, then to `w ≠ x` with
/// lower priority than `x`; aggregate `C(c_w, 2)` per distinct `w`.
/// Each butterfly has a unique highest-priority corner, so it is
/// counted exactly once, and high-degree hubs are never used as wedge
/// middles by higher-priority starts — the trick that tames skew.
pub fn count_butterflies(g: &BipartiteGraph) -> u64 {
    let mut total = 0u64;
    // Scratch sized for whichever side is larger.
    let scratch_len = g.n_upper().max(g.n_lower());
    let mut count = vec![0u32; scratch_len];
    let mut touched: Vec<usize> = Vec::new();

    for side in [Side::Upper, Side::Lower] {
        for x in 0..g.n(side) as VertexId {
            let px = priority(g, side, x);
            for &u in g.neighbors(side, x) {
                if priority(g, side.other(), u) >= px {
                    continue;
                }
                for &w in g.neighbors(side.other(), u) {
                    if w == x || priority(g, side, w) >= px {
                        continue;
                    }
                    let slot = w as usize;
                    if count[slot] == 0 {
                        touched.push(slot);
                    }
                    count[slot] += 1;
                }
            }
            for &slot in &touched {
                let c = count[slot] as u64;
                total += c * (c - 1) / 2;
                count[slot] = 0;
            }
            touched.clear();
        }
    }
    total
}

/// Per-vertex butterfly participation on `side`: `out[v]` = number of
/// butterflies containing `v`. Useful for locating dense spots (the
/// planted blocks of the synthetic corpus light up here).
pub fn butterfly_degrees(g: &BipartiteGraph, side: Side) -> Vec<u64> {
    let n = g.n(side);
    let mut out = vec![0u64; n];
    let mut count = vec![0u32; n];
    let mut touched: Vec<VertexId> = Vec::new();
    for v in 0..n as VertexId {
        for &u in g.neighbors(side, v) {
            for &w in g.neighbors(side.other(), u) {
                if w != v {
                    if count[w as usize] == 0 {
                        touched.push(w);
                    }
                    count[w as usize] += 1;
                }
            }
        }
        for &w in &touched {
            let c = count[w as usize] as u64;
            // v participates in C(c,2) butterflies with partner w.
            out[v as usize] += c * (c - 1) / 2;
            count[w as usize] = 0;
        }
        touched.clear();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{plant_bicliques, random_uniform};
    use crate::GraphBuilder;

    fn complete(nu: usize, nv: usize) -> BipartiteGraph {
        let mut b = GraphBuilder::new(1, 1);
        for u in 0..nu as VertexId {
            for v in 0..nv as VertexId {
                b.add_edge(u, v);
            }
        }
        b.build().unwrap()
    }

    fn choose2(n: u64) -> u64 {
        n * (n - 1) / 2
    }

    #[test]
    fn complete_graph_formula() {
        // K_{a,b} has C(a,2)*C(b,2) butterflies.
        for (a, b) in [(2, 2), (3, 4), (5, 3), (4, 4)] {
            let g = complete(a, b);
            let want = choose2(a as u64) * choose2(b as u64);
            assert_eq!(count_butterflies_naive(&g, Side::Upper), want);
            assert_eq!(count_butterflies_naive(&g, Side::Lower), want);
            assert_eq!(count_butterflies(&g), want, "K({a},{b})");
        }
    }

    #[test]
    fn single_butterfly() {
        let g = complete(2, 2);
        assert_eq!(count_butterflies(&g), 1);
    }

    #[test]
    fn no_butterflies_in_trees() {
        // A star has no 2x2 blocks.
        let mut b = GraphBuilder::new(1, 1);
        for v in 0..6 {
            b.add_edge(0, v);
        }
        let g = b.build().unwrap();
        assert_eq!(count_butterflies(&g), 0);
        assert_eq!(count_butterflies_naive(&g, Side::Lower), 0);
    }

    #[test]
    fn priority_version_matches_naive_on_random_graphs() {
        for seed in 0..20u64 {
            let g = random_uniform(15, 18, 90, 1, 1, seed);
            let naive_u = count_butterflies_naive(&g, Side::Upper);
            let naive_l = count_butterflies_naive(&g, Side::Lower);
            assert_eq!(naive_u, naive_l, "seed {seed}: side symmetry");
            assert_eq!(count_butterflies(&g), naive_u, "seed {seed}");
        }
    }

    #[test]
    fn skewed_graphs_match() {
        for seed in 0..6u64 {
            let base = crate::generate::chung_lu_power_law(60, 80, 700, 2.1, 2.2, 1, 1, seed);
            let g = plant_bicliques(&base, 2, 4, 4, 1.0, seed + 9);
            assert_eq!(
                count_butterflies(&g),
                count_butterflies_naive(&g, Side::Upper),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn butterfly_degrees_sum() {
        // Each butterfly contains exactly 2 vertices of each side, so
        // per-side participation sums to 2x the butterfly count.
        let g = random_uniform(12, 12, 60, 1, 1, 3);
        let total = count_butterflies(&g);
        let du: u64 = butterfly_degrees(&g, Side::Upper).iter().sum();
        let dl: u64 = butterfly_degrees(&g, Side::Lower).iter().sum();
        assert_eq!(du, 2 * total);
        assert_eq!(dl, 2 * total);
    }

    #[test]
    fn planted_blocks_light_up() {
        let base = random_uniform(40, 40, 80, 1, 1, 5);
        let g = plant_bicliques(&base, 1, 5, 5, 1.0, 77);
        let before = count_butterflies(&base);
        let after = count_butterflies(&g);
        assert!(after >= before + choose2(5) * choose2(5));
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(1, 1).build().unwrap();
        assert_eq!(count_butterflies(&g), 0);
    }
}
