//! Team finder: the "find a team of experts" scenario from the
//! paper's introduction, end to end — mine the *largest* fair team,
//! shortlist the top-k, and summarize the whole result space.
//!
//! Exercises the extension APIs: [`fair_biclique::maximum`],
//! [`fair_biclique::biclique::TopKSink`],
//! [`fair_biclique::parallel::par_enumerate_ssfbc`] and
//! [`fair_biclique::results`].
//!
//! ```text
//! cargo run --release -p fbe-examples --example team_finder
//! ```

use fair_biclique::maximum::{max_ssfbc, SizeMetric};
use fair_biclique::parallel::par_enumerate_ssfbc;
use fair_biclique::pipeline::run_ssfbc;
use fair_biclique::prelude::*;
use fair_biclique::results::{group_by_lower_signature, summarize};
use fbe_datasets::case_studies::dbda;

fn main() {
    let cs = dbda(2023);
    let g = &cs.graph;
    println!(
        "DBDA collaboration graph: {} papers x {} scholars, {} authorships",
        g.n_upper(),
        g.n_lower(),
        g.n_edges()
    );
    let params = FairParams::new(3, 2, 1).expect("valid params");
    println!("looking for teams with {params}: >=3 joint papers, >=2 of each seniority, gap <=1\n");

    // 1. The single largest fair team, by member count and by
    //    collaboration volume (papers x members).
    for (name, metric) in [
        ("most members+papers", SizeMetric::Vertices),
        ("most pairwise collaborations", SizeMetric::Edges),
    ] {
        let (best, _) = max_ssfbc(g, params, metric, &RunConfig::default());
        match best {
            Some(bc) => println!("largest team ({name}):\n{}\n", cs.describe(&bc)),
            None => println!("no fair team exists for {params}"),
        }
    }

    // 2. A top-5 shortlist without materialising every result.
    let mut top = TopKSink::new(5);
    run_ssfbc(
        g,
        params,
        fair_biclique::pipeline::SsAlgorithm::FairBcemPP,
        &RunConfig::default(),
        &mut top,
    );
    let seen = top.seen;
    println!("top-5 of {seen} fair teams:");
    for bc in top.into_sorted() {
        let (p, s) = (bc.upper.len(), bc.lower.len());
        println!("  {p} papers x {s} scholars: {bc}");
    }

    // 3. Whole-result-space statistics via the parallel driver.
    let report = par_enumerate_ssfbc(g, params, &RunConfig::default(), 4);
    let summary = summarize(g, &report.bicliques);
    println!(
        "\nacross all {} teams: sizes {}..{}, mean {:.1} papers x {:.1} scholars, \
         mean seniority imbalance {:.2}",
        summary.count,
        summary.min_size,
        summary.max_size,
        summary.mean_upper,
        summary.mean_lower,
        summary.mean_lower_imbalance,
    );
    println!("teams by (senior, junior) composition:");
    for (sig, n) in group_by_lower_signature(g, &report.bicliques) {
        println!("  S={} J={}: {n} team(s)", sig[0], sig[1]);
    }
}
