//! Brute-force oracle for the fair-set algebra: enumerate *all*
//! subsets of a small attributed set, keep the fair & maximal ones by
//! definition, and compare against `Combination` / `CombinationPro`.

use fair_biclique::fairset::{is_fair, is_fair_pro, max_fair_subsets, max_pro_fair_subsets};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// All maximal (pro-)fair subsets of `items` by exhaustive search.
fn oracle_max_fair_subsets(
    groups: &[Vec<u32>],
    k: u32,
    delta: u32,
    theta: Option<f64>,
) -> BTreeSet<Vec<u32>> {
    let items: Vec<(u32, usize)> = groups
        .iter()
        .enumerate()
        .flat_map(|(a, g)| g.iter().map(move |&v| (v, a)))
        .collect();
    let n = items.len();
    assert!(n <= 16);
    let n_attrs = groups.len();
    let feasible = |mask: u32| -> bool {
        let mut counts = vec![0u32; n_attrs];
        for (i, &(_, a)) in items.iter().enumerate() {
            if mask & (1 << i) != 0 {
                counts[a] += 1;
            }
        }
        match theta {
            None => is_fair(&counts, k, delta),
            Some(t) => is_fair_pro(&counts, k, delta, t),
        }
    };
    let mut out = BTreeSet::new();
    for mask in 0u32..(1 << n) {
        if !feasible(mask) {
            continue;
        }
        // Maximal: no feasible strict superset.
        let complement = !mask & ((1u32 << n) - 1);
        let mut maximal = true;
        // It suffices to scan supersets formed by adding subsets of the
        // complement; enumerate them via the standard trick.
        let mut add = complement;
        loop {
            if add != 0 && feasible(mask | add) {
                maximal = false;
                break;
            }
            if add == 0 {
                break;
            }
            add = (add - 1) & complement;
        }
        if maximal && mask != 0 {
            let set: Vec<u32> = items
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &(v, _))| v)
                .collect();
            let mut set = set;
            set.sort_unstable();
            out.insert(set);
        }
    }
    out
}

fn groups_strategy() -> impl Strategy<Value = Vec<Vec<u32>>> {
    (1usize..6, 0usize..6).prop_map(|(a, b)| {
        let g0: Vec<u32> = (0..a as u32).collect();
        let g1: Vec<u32> = (100..100 + b as u32).collect();
        vec![g0, g1]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn combination_matches_subset_oracle(
        groups in groups_strategy(),
        k in 1u32..4,
        delta in 0u32..4,
    ) {
        let refs: Vec<&[u32]> = groups.iter().map(|g| g.as_slice()).collect();
        let got: BTreeSet<Vec<u32>> = max_fair_subsets(&refs, k, delta)
            .into_iter()
            .filter(|s| !s.is_empty())
            .collect();
        let want = oracle_max_fair_subsets(&groups, k, delta, None);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn combination_pro_matches_subset_oracle(
        groups in groups_strategy(),
        k in 1u32..3,
        delta in 0u32..3,
        theta in prop_oneof![Just(0.0), Just(0.25), Just(0.4), Just(0.5)],
    ) {
        let refs: Vec<&[u32]> = groups.iter().map(|g| g.as_slice()).collect();
        let got: BTreeSet<Vec<u32>> = max_pro_fair_subsets(&refs, k, delta, theta)
            .into_iter()
            .filter(|s| !s.is_empty())
            .collect();
        let want = oracle_max_fair_subsets(&groups, k, delta, Some(theta));
        prop_assert_eq!(got, want);
    }

    #[test]
    fn combination_three_attr_groups(
        a in 1usize..4,
        b in 1usize..4,
        c in 0usize..4,
        delta in 0u32..3,
    ) {
        let groups = vec![
            (0..a as u32).collect::<Vec<_>>(),
            (100..100 + b as u32).collect::<Vec<_>>(),
            (200..200 + c as u32).collect::<Vec<_>>(),
        ];
        let refs: Vec<&[u32]> = groups.iter().map(|g| g.as_slice()).collect();
        let got: BTreeSet<Vec<u32>> = max_fair_subsets(&refs, 1, delta)
            .into_iter()
            .filter(|s| !s.is_empty())
            .collect();
        let want = oracle_max_fair_subsets(&groups, 1, delta, None);
        prop_assert_eq!(got, want);
    }
}
