//! Certification battery for the work-stealing parallel engine:
//! property-based cross-validation of every parallel miner against
//! its serial counterpart and the brute-force oracles, global-budget
//! semantics, deterministic-output guarantees, statistics merging,
//! and degenerate configurations.

use bigraph::{BipartiteGraph, GraphBuilder};
use fair_biclique::biclique::Biclique;
use fair_biclique::config::{Budget, FairParams, ProParams, RunConfig};
use fair_biclique::maximum::{max_bsfbc, max_ssfbc, SizeMetric};
use fair_biclique::pipeline::{
    enumerate_bsfbc, enumerate_pbsfbc, enumerate_pssfbc, enumerate_ssfbc, RunReport,
};
use fair_biclique::verify::{oracle_bsfbc, oracle_pbsfbc, oracle_pssfbc, oracle_ssfbc};
use fbe_integration::{assert_valid_bsfbc, assert_valid_ssfbc, medium_graph};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Thread counts the battery sweeps; 7 is deliberately not a power of
/// two and exceeds the top-level branch count of the small graphs.
const THREADS: [usize; 4] = [1, 2, 4, 7];

fn par_cfg(threads: usize, split_depth: u32) -> RunConfig {
    RunConfig {
        threads,
        split_depth,
        sorted: true,
        ..RunConfig::default()
    }
}

fn set_of(report: RunReport) -> BTreeSet<Biclique> {
    let n = report.bicliques.len();
    let set: BTreeSet<Biclique> = report.bicliques.into_iter().collect();
    assert_eq!(set.len(), n, "parallel run emitted duplicates");
    set
}

/// Strategy: a random attributed bipartite graph.
fn graph_strategy(nu: usize, nv: usize) -> impl Strategy<Value = BipartiteGraph> {
    (
        proptest::collection::vec(proptest::bool::weighted(0.4), nu * nv),
        proptest::collection::vec(0u16..2, nu),
        proptest::collection::vec(0u16..2, nv),
    )
        .prop_map(move |(cells, ua, la)| {
            let mut b = GraphBuilder::new(2, 2);
            b.ensure_vertices(nu, nv);
            for (i, &on) in cells.iter().enumerate() {
                if on {
                    b.add_edge((i / nv) as u32, (i % nv) as u32);
                }
            }
            b.set_attrs_upper(&ua);
            b.set_attrs_lower(&la);
            b.build().expect("valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every parallel miner's result set equals its serial
    /// counterpart's and the brute-force oracle's, at every thread
    /// count and split depth.
    #[test]
    fn parallel_miners_match_serial_and_oracles(
        g in graph_strategy(7, 8),
        (a, b, d) in (1u32..3, 1u32..3, 0u32..3),
        theta in prop_oneof![Just(0.0), Just(0.3), Just(0.5)],
    ) {
        let params = FairParams::unchecked(a, b, d);
        let pro = ProParams::new(a, b, d, theta).unwrap();
        let want_ss = oracle_ssfbc(&g, params);
        let want_bs = oracle_bsfbc(&g, params);
        let want_pss = oracle_pssfbc(&g, pro);
        let want_pbs = oracle_pbsfbc(&g, pro);
        for threads in THREADS {
            for split_depth in [1u32, 2] {
                let cfg = par_cfg(threads, split_depth);
                let tag = format!("threads {threads} split {split_depth}");
                prop_assert_eq!(&set_of(enumerate_ssfbc(&g, params, &cfg)), &want_ss, "SSFBC {}", &tag);
                prop_assert_eq!(&set_of(enumerate_bsfbc(&g, params, &cfg)), &want_bs, "BSFBC {}", &tag);
                prop_assert_eq!(&set_of(enumerate_pssfbc(&g, pro, &cfg)), &want_pss, "PSSFBC {}", &tag);
                prop_assert_eq!(&set_of(enumerate_pbsfbc(&g, pro, &cfg)), &want_pbs, "PBSFBC {}", &tag);
            }
        }
    }

    /// Parallel maximum search returns the exact serial answer
    /// (deterministic tie-break included) at every thread count.
    #[test]
    fn parallel_maximum_matches_serial(
        g in graph_strategy(8, 9),
        (a, b, d) in (1u32..3, 1u32..3, 0u32..3),
    ) {
        let params = FairParams::unchecked(a, b, d);
        for metric in [SizeMetric::Vertices, SizeMetric::Edges] {
            let (want_ss, _) = max_ssfbc(&g, params, metric, &RunConfig::default());
            let (want_bs, _) = max_bsfbc(&g, params, metric, &RunConfig::default());
            for threads in [2usize, 4, 7] {
                let cfg = RunConfig::with_threads(threads);
                let (got_ss, _) = max_ssfbc(&g, params, metric, &cfg);
                let (got_bs, _) = max_bsfbc(&g, params, metric, &cfg);
                prop_assert_eq!(&got_ss, &want_ss, "ss threads {} {:?}", threads, metric);
                prop_assert_eq!(&got_bs, &want_bs, "bs threads {} {:?}", threads, metric);
            }
        }
    }

    /// Merged per-worker statistics equal the serial run's totals:
    /// node counts (branches visited) and emission counts sum exactly
    /// across workers, for any schedule.
    #[test]
    fn merged_stats_equal_serial_totals(
        g in graph_strategy(9, 10),
        (a, b, d) in (1u32..3, 1u32..3, 0u32..3),
    ) {
        let params = FairParams::unchecked(a, b, d);
        let ser_ss = enumerate_ssfbc(&g, params, &RunConfig::default());
        let ser_bs = enumerate_bsfbc(&g, params, &RunConfig::default());
        for threads in THREADS {
            for split_depth in [1u32, 2] {
                let cfg = par_cfg(threads, split_depth);
                let par_ss = enumerate_ssfbc(&g, params, &cfg);
                prop_assert_eq!(par_ss.stats.nodes, ser_ss.stats.nodes,
                    "ss nodes, threads {} split {}", threads, split_depth);
                prop_assert_eq!(par_ss.stats.emitted, ser_ss.stats.emitted);
                prop_assert_eq!(par_ss.prune, ser_ss.prune, "prune stats are run-identical");
                let par_bs = enumerate_bsfbc(&g, params, &cfg);
                prop_assert_eq!(par_bs.stats.nodes, ser_bs.stats.nodes,
                    "bs nodes, threads {} split {}", threads, split_depth);
                prop_assert_eq!(par_bs.stats.emitted, ser_bs.stats.emitted);
            }
        }
    }
}

// ---------------------------------------------------------------
// Global budget semantics (the per-worker-budget bug regression).
// ---------------------------------------------------------------

/// A global result budget of `K` yields exactly `min(K, total)`
/// results at *every* thread count — the old driver could emit up to
/// `threads × K`.
#[test]
fn result_budget_cutoff_is_exact_for_all_miners() {
    let g = medium_graph(5);
    let params = FairParams::unchecked(2, 1, 1);
    let pro = ProParams::new(2, 1, 1, 0.25).unwrap();
    let totals = (
        enumerate_ssfbc(&g, params, &RunConfig::default())
            .bicliques
            .len(),
        enumerate_bsfbc(&g, params, &RunConfig::default())
            .bicliques
            .len(),
        enumerate_pssfbc(&g, pro, &RunConfig::default())
            .bicliques
            .len(),
        enumerate_pbsfbc(&g, pro, &RunConfig::default())
            .bicliques
            .len(),
    );
    assert!(totals.0 > 4, "need enough SSFBCs, got {}", totals.0);
    for threads in THREADS {
        for k in [0usize, 1, 2, 1000] {
            let cfg = RunConfig {
                threads,
                budget: Budget::results(k as u64),
                ..RunConfig::default()
            };
            let got = (
                enumerate_ssfbc(&g, params, &cfg).bicliques.len(),
                enumerate_bsfbc(&g, params, &cfg).bicliques.len(),
                enumerate_pssfbc(&g, pro, &cfg).bicliques.len(),
                enumerate_pbsfbc(&g, pro, &cfg).bicliques.len(),
            );
            let want = (
                k.min(totals.0),
                k.min(totals.1),
                k.min(totals.2),
                k.min(totals.3),
            );
            assert_eq!(got, want, "threads {threads} k {k}");
        }
    }
}

/// A global *node* budget is shared: emission under `Budget::nodes(K)`
/// is bounded by `K + threads` (each worker can overrun by at most
/// its one failing tick), never by `threads × K` as before the fix.
#[test]
fn node_budget_is_not_multiplied_by_thread_count() {
    let g = medium_graph(7);
    let params = FairParams::unchecked(1, 0, 4);
    let k = 40u64;
    let serial = enumerate_ssfbc(
        &g,
        params,
        &RunConfig {
            budget: Budget::nodes(k),
            ..RunConfig::default()
        },
    );
    assert!(serial.stats.aborted, "node budget must bite serially");
    for threads in [2usize, 4, 8] {
        let cfg = RunConfig {
            threads,
            budget: Budget::nodes(k),
            ..RunConfig::default()
        };
        let par = enumerate_ssfbc(&g, params, &cfg);
        assert!(par.stats.aborted, "threads {threads}");
        assert!(
            par.stats.nodes <= k + threads as u64,
            "threads {threads}: {} walk ticks for a global cap of {k}",
            par.stats.nodes
        );
        assert!(
            par.stats.emitted <= k + threads as u64,
            "threads {threads}: {} emissions cannot exceed the shared \
             expansion budget's overrun bound",
            par.stats.emitted
        );
        // Budget-hit results are always a subset of the full set
        // (serial unlimited run; the graph exceeds the oracle's cap).
        let full: BTreeSet<Biclique> = enumerate_ssfbc(&g, params, &RunConfig::default())
            .bicliques
            .into_iter()
            .collect();
        for bc in &par.bicliques {
            assert!(full.contains(bc), "threads {threads}: {bc} not a result");
        }
    }
}

// ---------------------------------------------------------------
// Determinism.
// ---------------------------------------------------------------

/// Sorted-output mode is byte-identical across thread counts and
/// split depths, and identical to the sorted serial run.
#[test]
fn sorted_output_is_byte_identical_across_thread_counts() {
    let g = medium_graph(11);
    let params = FairParams::unchecked(2, 1, 1);
    let serial = enumerate_ssfbc(
        &g,
        params,
        &RunConfig {
            sorted: true,
            ..RunConfig::default()
        },
    );
    assert!(!serial.bicliques.is_empty());
    let mut serial_bytes = Vec::new();
    fair_biclique::results::write_tsv(&serial.bicliques, &mut serial_bytes).unwrap();
    for threads in THREADS {
        for split_depth in [1u32, 2, 4] {
            let par = enumerate_ssfbc(&g, params, &par_cfg(threads, split_depth));
            let mut bytes = Vec::new();
            fair_biclique::results::write_tsv(&par.bicliques, &mut bytes).unwrap();
            assert_eq!(
                bytes, serial_bytes,
                "threads {threads} split {split_depth}: bytes differ"
            );
        }
    }
}

/// Parallel output passes the definition-level validity checkers on a
/// graph too large for the brute-force oracles.
#[test]
fn parallel_output_is_valid_on_medium_graphs() {
    let g = medium_graph(3);
    let params = FairParams::unchecked(2, 2, 1);
    let ss = enumerate_ssfbc(&g, params, &par_cfg(4, 2));
    assert!(!ss.bicliques.is_empty());
    for bc in &ss.bicliques {
        assert_valid_ssfbc(&g, bc, params);
    }
    let params_bi = FairParams::unchecked(1, 1, 1);
    let bs = enumerate_bsfbc(&g, params_bi, &par_cfg(4, 2));
    for bc in &bs.bicliques {
        assert_valid_bsfbc(&g, bc, params_bi);
    }
}

// ---------------------------------------------------------------
// Degenerate configurations.
// ---------------------------------------------------------------

#[test]
fn empty_graph_on_many_threads() {
    let g = GraphBuilder::new(2, 2).build().unwrap();
    let params = FairParams::unchecked(1, 1, 1);
    for threads in [1usize, 4, 16] {
        let r = enumerate_ssfbc(&g, params, &par_cfg(threads, 2));
        assert!(r.bicliques.is_empty(), "threads {threads}");
        assert!(!r.stats.aborted);
        assert_eq!(r.threads, threads);
        let (best, _) = max_ssfbc(
            &g,
            params,
            SizeMetric::Vertices,
            &RunConfig::with_threads(threads),
        );
        assert!(best.is_none());
    }
}

/// A complete bipartite block has a single top-level branch (every
/// other root candidate is absorbed into it), so workers beyond the
/// first find an empty deque and must exit cleanly.
#[test]
fn single_branch_graph_and_more_threads_than_branches() {
    let mut b = GraphBuilder::new(2, 2);
    for u in 0..3 {
        for v in 0..4 {
            b.add_edge(u, v);
        }
    }
    b.set_attrs_upper(&[0, 1, 0]);
    b.set_attrs_lower(&[0, 0, 1, 1]);
    let g = b.build().unwrap();
    let params = FairParams::unchecked(2, 1, 1);
    let want = oracle_ssfbc(&g, params);
    assert_eq!(want.len(), 1, "the block is the unique SSFBC");
    for threads in [1usize, 2, 16] {
        for split_depth in [1u32, 3] {
            let r = enumerate_ssfbc(&g, params, &par_cfg(threads, split_depth));
            let got: BTreeSet<Biclique> = r.bicliques.into_iter().collect();
            assert_eq!(got, want, "threads {threads} split {split_depth}");
        }
    }
}

/// Node budgets of 0 and 1: nothing explodes, the abort flag is set,
/// and the (possibly empty) output is a subset of the full set.
#[test]
fn tiny_node_budgets_across_thread_counts() {
    let g = medium_graph(2);
    let params = FairParams::unchecked(2, 1, 1);
    let full: BTreeSet<Biclique> = enumerate_ssfbc(&g, params, &RunConfig::default())
        .bicliques
        .into_iter()
        .collect();
    assert!(!full.is_empty());
    for budget_nodes in [0u64, 1] {
        for threads in THREADS {
            let cfg = RunConfig {
                threads,
                budget: Budget::nodes(budget_nodes),
                ..RunConfig::default()
            };
            let r = enumerate_ssfbc(&g, params, &cfg);
            assert!(r.stats.aborted, "nodes {budget_nodes} threads {threads}");
            for bc in &r.bicliques {
                assert!(full.contains(bc));
            }
        }
    }
}

/// Result budgets of 0 and 1 are exact at every thread count.
#[test]
fn tiny_result_budgets_across_thread_counts() {
    let g = medium_graph(2);
    let params = FairParams::unchecked(2, 1, 1);
    for (k, want) in [(0u64, 0usize), (1, 1)] {
        for threads in THREADS {
            let cfg = RunConfig {
                threads,
                budget: Budget::results(k),
                ..RunConfig::default()
            };
            let r = enumerate_ssfbc(&g, params, &cfg);
            assert_eq!(
                r.bicliques.len(),
                want,
                "result budget {k} threads {threads}"
            );
            assert!(r.stats.aborted);
        }
    }
}
