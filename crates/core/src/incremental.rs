//! Incremental fair-core maintenance for dynamic graphs.
//!
//! The service's `ADDEDGE` / `DELEDGE` / `ADDVERTEX` verbs mutate a
//! cataloged graph one edge (or vertex) at a time. Re-running the full
//! [`crate::fcore`] peel per update would cost `O(|E|)` per update and
//! make every cached plan cold; this module maintains fair α-β core
//! membership **incrementally**: core membership changes only in a
//! bounded neighborhood of the updated edge, and a localized re-peel
//! repairs exactly that neighborhood.
//!
//! # Bounded-repair argument
//!
//! Let `C = FCore(G, α, β)` (Definition 8: upper vertices need `≥ β`
//! neighbors of *each* lower attribute, lower vertices need degree
//! `≥ α`).
//!
//! * **Deletion of `(u, v)`.** Cores are monotone under edge deletion
//!   (`G' ⊆ G ⇒ FCore(G') ⊆ FCore(G)`), so no vertex can *join*; if
//!   either endpoint is outside `C` the induced core subgraph does not
//!   contain the edge and `C` itself is still fair and maximal in
//!   `G'`, so nothing changes at all. Otherwise decrement the two
//!   endpoint counters and cascade the classic Batagelj–Zaversnik peel
//!   from the endpoints — exactly the vertices whose support transited
//!   below threshold are touched.
//! * **Insertion of `(u, v)`.** Cores only grow. A vertex `j ∉ C` can
//!   join only if its deficit is covered by other joiners or by the
//!   new edge itself: by maximality of `C`, `C ∪ {j}` is not fair, so
//!   `j` needs at least one neighbor that also joins (or is an
//!   endpoint benefiting from `e`). Inductively every joiner lies on a
//!   path of joiners ending at a **non-core** endpoint of `e` — and if
//!   both endpoints were already in `C`, nothing joins. The repair
//!   therefore BFS-collects the non-core vertices reachable from the
//!   non-core endpoint(s) through non-core vertices, optimistically
//!   revives them, and peels that candidate set; survivors are the
//!   joiners. Core vertices never get peeled here (their counters only
//!   gained candidate contributions), matching monotonicity.
//! * **Vertex addition.** An isolated vertex joins iff its (empty)
//!   constraints hold (`β = 0` upper / `α = 0` lower); no other
//!   membership can change.
//!
//! The reported [`UpdateEffect`] is the dirty region: every vertex
//! whose membership changed, plus whether the updated edge itself lies
//! inside the core. The service invalidates a cached plan **only**
//! when the effect at the plan's `(α, β)` is dirty — if the fair core
//! is unchanged *as an induced subgraph*, every fair biclique of the
//! model lives inside it (Lemma 1; the bi-side core BFCore and the
//! colorful cores are subsets of it), so the plan's enumeration output
//! is provably byte-identical and the plan stays resident.

use bigraph::{BipartiteGraph, Side, VertexId};

/// The dirty region of one update at a fixed `(α, β)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateEffect {
    /// Upper vertices whose core membership flipped (sorted).
    pub changed_upper: Vec<VertexId>,
    /// Lower vertices whose core membership flipped (sorted).
    pub changed_lower: Vec<VertexId>,
    /// True when the updated edge lies inside the core (both endpoints
    /// are members after an insertion / were members before a
    /// deletion): the core's *edge set* changed even if no membership
    /// did.
    pub core_edge_touched: bool,
}

impl UpdateEffect {
    /// True when the core is unchanged as an induced subgraph — cached
    /// plans at this `(α, β)` provably still produce byte-identical
    /// results.
    pub fn is_clean(&self) -> bool {
        !self.core_edge_touched && self.changed_upper.is_empty() && self.changed_lower.is_empty()
    }

    /// Total number of membership flips.
    pub fn flips(&self) -> usize {
        self.changed_upper.len() + self.changed_lower.len()
    }
}

/// Incrementally maintained fair α-β core membership of one graph at
/// one `(α, β)` pair.
///
/// Invariants between updates: `alive_*` are exactly the FCore masks
/// of the current graph; for every member, `attr_deg` / `deg` count
/// **member** neighbors only (dead vertices' counters are stale, as in
/// the one-shot peel).
#[derive(Debug, Clone)]
pub struct CoreTracker {
    alpha: u32,
    beta: u32,
    /// Lower-side attribute domain size (`max(1)`).
    n_attrs: usize,
    alive_u: Vec<bool>,
    alive_v: Vec<bool>,
    /// Member attribute degrees of upper members, `[u * n_attrs + a]`.
    attr_deg: Vec<u32>,
    /// Member degrees of lower members.
    deg: Vec<u32>,
}

impl CoreTracker {
    /// Full peel of `g` (one-shot [`crate::fcore::fcore_masks`]) plus
    /// the counter state needed to repair later updates.
    pub fn new(g: &BipartiteGraph, alpha: u32, beta: u32) -> CoreTracker {
        let (alive_u, alive_v) = crate::fcore::fcore_masks(g, alpha, beta);
        let n_attrs = (g.n_attr_values(Side::Lower) as usize).max(1);
        let lower_attrs = g.attrs(Side::Lower);
        let mut attr_deg = vec![0u32; g.n_upper() * n_attrs];
        let mut deg = vec![0u32; g.n_lower()];
        for u in 0..g.n_upper() as VertexId {
            if !alive_u[u as usize] {
                continue;
            }
            for &v in g.neighbors(Side::Upper, u) {
                if alive_v[v as usize] {
                    attr_deg[u as usize * n_attrs + lower_attrs[v as usize] as usize] += 1;
                    deg[v as usize] += 1;
                }
            }
        }
        CoreTracker {
            alpha,
            beta,
            n_attrs,
            alive_u,
            alive_v,
            attr_deg,
            deg,
        }
    }

    /// The `(α, β)` this tracker maintains.
    pub fn params(&self) -> (u32, u32) {
        (self.alpha, self.beta)
    }

    /// Current membership masks `(upper, lower)`.
    pub fn masks(&self) -> (&[bool], &[bool]) {
        (&self.alive_u, &self.alive_v)
    }

    /// Whether vertex `x` on `side` is currently a core member.
    pub fn in_core(&self, side: Side, x: VertexId) -> bool {
        match side {
            Side::Upper => self.alive_u[x as usize],
            Side::Lower => self.alive_v[x as usize],
        }
    }

    /// Number of core members (upper + lower).
    pub fn members(&self) -> usize {
        let count = |m: &[bool]| m.iter().filter(|&&a| a).count();
        count(&self.alive_u) + count(&self.alive_v)
    }

    fn upper_ok(&self, u: usize) -> bool {
        self.attr_deg[u * self.n_attrs..(u + 1) * self.n_attrs]
            .iter()
            .all(|&d| d >= self.beta)
    }

    /// Cascade a peel from the seeds already pushed on `stack`
    /// (vertices already marked dead), recording every death.
    fn cascade(
        &mut self,
        g: &BipartiteGraph,
        stack: &mut Vec<(Side, VertexId)>,
        died_u: &mut Vec<VertexId>,
        died_v: &mut Vec<VertexId>,
    ) {
        let lower_attrs = g.attrs(Side::Lower);
        while let Some((side, x)) = stack.pop() {
            match side {
                Side::Upper => {
                    died_u.push(x);
                    for &v in g.neighbors(Side::Upper, x) {
                        if self.alive_v[v as usize] {
                            self.deg[v as usize] -= 1;
                            if self.deg[v as usize] < self.alpha {
                                self.alive_v[v as usize] = false;
                                stack.push((Side::Lower, v));
                            }
                        }
                    }
                }
                Side::Lower => {
                    died_v.push(x);
                    let a = lower_attrs[x as usize] as usize;
                    for &u in g.neighbors(Side::Lower, x) {
                        if self.alive_u[u as usize] {
                            let slot = u as usize * self.n_attrs + a;
                            self.attr_deg[slot] -= 1;
                            if self.attr_deg[slot] < self.beta {
                                self.alive_u[u as usize] = false;
                                stack.push((Side::Upper, u));
                            }
                        }
                    }
                }
            }
        }
    }

    /// Repair after edge `(u, v)` was **removed**; `g` is the new
    /// graph (without the edge).
    pub fn remove_edge(&mut self, g: &BipartiteGraph, u: VertexId, v: VertexId) -> UpdateEffect {
        if !self.alive_u[u as usize] || !self.alive_v[v as usize] {
            // The edge was not part of the induced core subgraph: the
            // core is still fair and still maximal (deletion is
            // monotone), and member counters never counted it.
            return UpdateEffect::default();
        }
        let a = g.attr(Side::Lower, v) as usize;
        self.attr_deg[u as usize * self.n_attrs + a] -= 1;
        self.deg[v as usize] -= 1;
        let mut stack = Vec::new();
        if !self.upper_ok(u as usize) {
            self.alive_u[u as usize] = false;
            stack.push((Side::Upper, u));
        }
        if self.alive_v[v as usize] && self.deg[v as usize] < self.alpha {
            self.alive_v[v as usize] = false;
            stack.push((Side::Lower, v));
        }
        let (mut died_u, mut died_v) = (Vec::new(), Vec::new());
        self.cascade(g, &mut stack, &mut died_u, &mut died_v);
        died_u.sort_unstable();
        died_v.sort_unstable();
        UpdateEffect {
            changed_upper: died_u,
            changed_lower: died_v,
            core_edge_touched: true,
        }
    }

    /// Repair after edge `(u, v)` was **added**; `g` is the new graph
    /// (with the edge).
    pub fn add_edge(&mut self, g: &BipartiteGraph, u: VertexId, v: VertexId) -> UpdateEffect {
        let lower_attrs = g.attrs(Side::Lower);
        if self.alive_u[u as usize] && self.alive_v[v as usize] {
            // Both endpoints already members: insertion cannot revive
            // anything (a joiner chain must end at a non-core
            // endpoint), only the member counters grow.
            self.attr_deg[u as usize * self.n_attrs + lower_attrs[v as usize] as usize] += 1;
            self.deg[v as usize] += 1;
            return UpdateEffect {
                changed_upper: Vec::new(),
                changed_lower: Vec::new(),
                core_edge_touched: true,
            };
        }

        // Candidate region: non-members reachable from the non-member
        // endpoint(s) through non-members. Every possible joiner is in
        // here (see module docs).
        let mut cand_u: Vec<VertexId> = Vec::new();
        let mut cand_v: Vec<VertexId> = Vec::new();
        let mut in_cand_u = vec![false; g.n_upper()];
        let mut in_cand_v = vec![false; g.n_lower()];
        let mut queue: Vec<(Side, VertexId)> = Vec::new();
        if !self.alive_u[u as usize] {
            in_cand_u[u as usize] = true;
            queue.push((Side::Upper, u));
        }
        if !self.alive_v[v as usize] {
            in_cand_v[v as usize] = true;
            queue.push((Side::Lower, v));
        }
        while let Some((side, x)) = queue.pop() {
            match side {
                Side::Upper => cand_u.push(x),
                Side::Lower => cand_v.push(x),
            }
            for &w in g.neighbors(side, x) {
                match side {
                    Side::Upper => {
                        if !self.alive_v[w as usize] && !in_cand_v[w as usize] {
                            in_cand_v[w as usize] = true;
                            queue.push((Side::Lower, w));
                        }
                    }
                    Side::Lower => {
                        if !self.alive_u[w as usize] && !in_cand_u[w as usize] {
                            in_cand_u[w as usize] = true;
                            queue.push((Side::Upper, w));
                        }
                    }
                }
            }
        }

        // Optimistically revive the candidates: recompute their
        // counters over members ∪ candidates, and credit their
        // contributions to adjacent members.
        for &cu in &cand_u {
            let base = cu as usize * self.n_attrs;
            self.attr_deg[base..base + self.n_attrs].fill(0);
            for &w in g.neighbors(Side::Upper, cu) {
                if self.alive_v[w as usize] || in_cand_v[w as usize] {
                    self.attr_deg[base + lower_attrs[w as usize] as usize] += 1;
                }
                if self.alive_v[w as usize] {
                    self.deg[w as usize] += 1;
                }
            }
        }
        for &cv in &cand_v {
            self.deg[cv as usize] = 0;
            let a = lower_attrs[cv as usize] as usize;
            for &w in g.neighbors(Side::Lower, cv) {
                if self.alive_u[w as usize] || in_cand_u[w as usize] {
                    self.deg[cv as usize] += 1;
                }
                if self.alive_u[w as usize] {
                    self.attr_deg[w as usize * self.n_attrs + a] += 1;
                }
            }
        }
        for &cu in &cand_u {
            self.alive_u[cu as usize] = true;
        }
        for &cv in &cand_v {
            self.alive_v[cv as usize] = true;
        }

        // Localized peel over the candidate region.
        let mut stack = Vec::new();
        for &cu in &cand_u {
            if !self.upper_ok(cu as usize) {
                self.alive_u[cu as usize] = false;
                stack.push((Side::Upper, cu));
            }
        }
        for &cv in &cand_v {
            if self.alive_v[cv as usize] && self.deg[cv as usize] < self.alpha {
                self.alive_v[cv as usize] = false;
                stack.push((Side::Lower, cv));
            }
        }
        let (mut died_u, mut died_v) = (Vec::new(), Vec::new());
        self.cascade(g, &mut stack, &mut died_u, &mut died_v);
        debug_assert!(
            died_u.iter().all(|&x| in_cand_u[x as usize])
                && died_v.iter().all(|&x| in_cand_v[x as usize]),
            "insertion repair must never peel a pre-existing member"
        );

        let mut joined_u: Vec<VertexId> = cand_u
            .iter()
            .copied()
            .filter(|&x| self.alive_u[x as usize])
            .collect();
        let mut joined_v: Vec<VertexId> = cand_v
            .iter()
            .copied()
            .filter(|&x| self.alive_v[x as usize])
            .collect();
        joined_u.sort_unstable();
        joined_v.sort_unstable();
        UpdateEffect {
            changed_upper: joined_u,
            changed_lower: joined_v,
            core_edge_touched: self.alive_u[u as usize] && self.alive_v[v as usize],
        }
    }

    /// Extend the tracker after an isolated vertex was appended to
    /// `side` of `g` (the new graph, which already contains it).
    pub fn add_vertex(&mut self, g: &BipartiteGraph, side: Side, id: VertexId) -> UpdateEffect {
        let mut effect = UpdateEffect::default();
        match side {
            Side::Upper => {
                debug_assert_eq!(id as usize, self.alive_u.len());
                // An isolated upper vertex satisfies "≥ β of every
                // attribute" only when β = 0.
                let joins = self.beta == 0;
                self.alive_u.push(joins);
                self.attr_deg
                    .extend(std::iter::repeat(0).take(self.n_attrs));
                if joins {
                    effect.changed_upper.push(id);
                }
            }
            Side::Lower => {
                debug_assert_eq!(id as usize, self.alive_v.len());
                let joins = self.alpha == 0;
                self.alive_v.push(joins);
                self.deg.push(0);
                if joins {
                    effect.changed_lower.push(id);
                }
            }
        }
        debug_assert!((id as usize) < g.n(side));
        effect
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fcore::fcore_masks;
    use bigraph::generate::random_uniform;
    use bigraph::GraphBuilder;

    fn assert_tracker_matches(t: &CoreTracker, g: &BipartiteGraph) {
        let (ku, kv) = fcore_masks(g, t.alpha, t.beta);
        assert_eq!(t.alive_u, ku, "upper masks diverge");
        assert_eq!(t.alive_v, kv, "lower masks diverge");
        // Counter invariant: member counters count member neighbors.
        let fresh = CoreTracker::new(g, t.alpha, t.beta);
        for (u, member) in ku.iter().enumerate() {
            if *member {
                assert_eq!(
                    t.attr_deg[u * t.n_attrs..(u + 1) * t.n_attrs],
                    fresh.attr_deg[u * t.n_attrs..(u + 1) * t.n_attrs],
                    "attr_deg of member {u}"
                );
            }
        }
        for (v, member) in kv.iter().enumerate() {
            if *member {
                assert_eq!(t.deg[v], fresh.deg[v], "deg of member {v}");
            }
        }
    }

    /// Deterministic xorshift so the sequence is reproducible without
    /// pulling the proptest dep into the unit tests.
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn tracker_matches_scratch_over_random_update_sequences() {
        for seed in 0..6u64 {
            let g0 = random_uniform(12, 14, 60, 2, 2, seed);
            for (alpha, beta) in [(1u32, 1u32), (2, 1), (2, 2), (3, 2)] {
                let mut g = g0.clone();
                let mut t = CoreTracker::new(&g, alpha, beta);
                assert_tracker_matches(&t, &g);
                let mut rng = seed * 2_654_435_761 + 1;
                for _ in 0..40 {
                    let u = (xorshift(&mut rng) % g.n_upper() as u64) as u32;
                    let v = (xorshift(&mut rng) % g.n_lower() as u64) as u32;
                    if g.has_edge(u, v) {
                        g = g.without_edge(u, v).unwrap();
                        t.remove_edge(&g, u, v);
                    } else {
                        g = g.with_edge(u, v).unwrap();
                        t.add_edge(&g, u, v);
                    }
                    assert_tracker_matches(&t, &g);
                }
            }
        }
    }

    #[test]
    fn clean_updates_report_clean_and_dirty_report_dirty() {
        // Path-ish graph: u0-v0, u0-v1, u1-v1 with all attrs 0.
        let mut b = GraphBuilder::new(1, 1);
        b.ensure_vertices(3, 3);
        for (u, v) in [(0u32, 0u32), (0, 1), (1, 1)] {
            b.add_edge(u, v);
        }
        let g = b.build().unwrap();
        let mut t = CoreTracker::new(&g, 2, 2);
        // Core is empty at (2,2): nobody has degree 2 on both checks.
        assert_eq!(t.members(), 0);
        // Adding an edge between two dead vertices that still doesn't
        // create a (2,2) core is clean.
        let g2 = g.with_edge(2, 2).unwrap();
        let eff = t.add_edge(&g2, 2, 2);
        assert!(eff.is_clean(), "no joiners, edge outside core: {eff:?}");
        assert_tracker_matches(&t, &g2);
        // Completing the 2x2 block u0,u1 × v0,v1 revives all four.
        let g3 = g2.with_edge(1, 0).unwrap();
        let eff = t.add_edge(&g3, 1, 0);
        assert_eq!(eff.changed_upper, vec![0, 1]);
        assert_eq!(eff.changed_lower, vec![0, 1]);
        assert!(eff.core_edge_touched);
        assert_eq!(eff.flips(), 4);
        assert_tracker_matches(&t, &g3);
        // Removing an edge with a dead endpoint is clean …
        let g4 = g3.without_edge(2, 2).unwrap();
        assert!(t.remove_edge(&g4, 2, 2).is_clean());
        assert_tracker_matches(&t, &g4);
        // … removing a core edge collapses the block.
        let g5 = g4.without_edge(0, 0).unwrap();
        let eff = t.remove_edge(&g5, 0, 0);
        assert!(eff.core_edge_touched);
        assert_eq!(eff.flips(), 4);
        assert_tracker_matches(&t, &g5);
        assert_eq!(t.members(), 0);
    }

    #[test]
    fn vertex_addition_membership_matches_constraints() {
        let g = random_uniform(6, 6, 18, 2, 2, 9);
        // α=0: an isolated lower vertex is a member; β≥1 keeps an
        // isolated upper vertex out.
        let mut t = CoreTracker::new(&g, 0, 1);
        let (g2, lv) = g.with_vertex(Side::Lower, 1).unwrap();
        let eff = t.add_vertex(&g2, Side::Lower, lv);
        assert_eq!(eff.changed_lower, vec![lv]);
        assert!(t.in_core(Side::Lower, lv));
        assert_tracker_matches(&t, &g2);
        let (g3, uv) = g2.with_vertex(Side::Upper, 0).unwrap();
        let eff = t.add_vertex(&g3, Side::Upper, uv);
        assert!(eff.is_clean());
        assert!(!t.in_core(Side::Upper, uv));
        assert_tracker_matches(&t, &g3);
        // The appended vertex participates in later edge updates.
        let g4 = g3.with_edge(uv, lv).unwrap();
        t.add_edge(&g4, uv, lv);
        assert_tracker_matches(&t, &g4);
    }
}
