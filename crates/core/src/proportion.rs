//! Proportion fair biclique enumeration: `FairBCEMPro++` (§III-D) and
//! `BFairBCEMPro++` (§IV-C).
//!
//! Structure mirrors [`crate::fairbcem_pp`] / [`crate::bfairbcem`]
//! with the proportion-aware feasibility and maximality tests:
//!
//! * the fair-set inspection becomes [`crate::fairset::is_fair_pro`];
//! * `Combination` becomes the exact `CombinationPro`
//!   ([`crate::fairset::for_each_max_pro_fair_subset`]), which searches
//!   the maximal feasible size lattice instead of the paper's closed
//!   form (exact for any attribute-domain size; equal to the closed
//!   form on the paper's two-value domains — property-tested).

use crate::biclique::{BicliqueSink, EnumStats};
use crate::config::{Budget, BudgetClock, ProParams, VertexOrder};
use crate::fairbcem_pp::closure_equals;
use crate::fairset::{
    for_each_max_pro_fair_subset, is_fair_pro, is_maximal_fair_subset_pro, AttrCounts,
};
use crate::mbea::{walk_maximal_bicliques, RBound};
use bigraph::{BipartiteGraph, Side, VertexId};

/// Run `FairBCEMPro++` on `g` (assumed already pruned; fair side =
/// lower): enumerate all proportion single-side fair bicliques.
pub fn fairbcem_pro_pp_on_pruned(
    g: &BipartiteGraph,
    pro: ProParams,
    order: VertexOrder,
    budget: Budget,
    sink: &mut dyn BicliqueSink,
) -> EnumStats {
    let params = pro.base;
    let n_attrs = (g.n_attr_values(Side::Lower) as usize).max(1);
    let attrs = g.attrs(Side::Lower);
    let mut emitted = 0u64;
    let mut groups: Vec<Vec<VertexId>> = vec![Vec::new(); n_attrs];
    // Expansion budget: a single CombinationPro can be binomially large.
    let mut expand_clock = budget.start();

    let mut stats = walk_maximal_bicliques(
        g,
        params.alpha as usize,
        RBound::AttrBeta {
            attrs,
            beta: params.beta,
        },
        order,
        budget,
        &mut |l, r| {
            if expand_clock.exhausted {
                return;
            }
            let counts = AttrCounts::of(r, attrs, n_attrs);
            if is_fair_pro(counts.as_slice(), params.beta, params.delta, pro.theta) {
                sink.emit(l, r);
                emitted += 1;
                expand_clock.tick();
                return;
            }
            for g_attr in groups.iter_mut() {
                g_attr.clear();
            }
            for &v in r {
                groups[attrs[v as usize] as usize].push(v);
            }
            let group_refs: Vec<&[VertexId]> = groups.iter().map(|g| g.as_slice()).collect();
            for_each_max_pro_fair_subset(
                &group_refs,
                params.beta,
                params.delta,
                pro.theta,
                &mut |r_sub| {
                    // Empty fair sides are degenerate non-results.
                    if !r_sub.is_empty() && closure_equals(g, r_sub, l) {
                        sink.emit(l, r_sub);
                        emitted += 1;
                    }
                    expand_clock.tick()
                },
            );
        },
    );
    stats.emitted = emitted;
    stats.aborted |= expand_clock.exhausted;
    stats
}

/// Run `BFairBCEMPro++` on `g`: enumerate all proportion bi-side fair
/// bicliques by expanding each PSSFBC's upper side with the exact
/// `CombinationPro` and the proportion `MFSCheck`.
pub fn bfairbcem_pro_pp_on_pruned(
    g: &BipartiteGraph,
    pro: ProParams,
    order: VertexOrder,
    budget: Budget,
    sink: &mut dyn BicliqueSink,
) -> EnumStats {
    let mut expander = ProBiSideExpander::new(g, pro, budget, sink);
    let mut stats = fairbcem_pro_pp_on_pruned(g, pro, order, budget, &mut expander);
    stats.emitted = expander.emitted;
    stats.aborted |= expander.clock.exhausted;
    stats
}

/// Adapter from PSSFBCs to the PBSFBCs contained in them.
struct ProBiSideExpander<'a> {
    g: &'a BipartiteGraph,
    pro: ProParams,
    n_attrs_l: usize,
    sink: &'a mut dyn BicliqueSink,
    clock: BudgetClock,
    emitted: u64,
    groups: Vec<Vec<VertexId>>,
}

impl<'a> ProBiSideExpander<'a> {
    fn new(
        g: &'a BipartiteGraph,
        pro: ProParams,
        budget: Budget,
        sink: &'a mut dyn BicliqueSink,
    ) -> Self {
        let n_attrs_u = (g.n_attr_values(Side::Upper) as usize).max(1);
        let n_attrs_l = (g.n_attr_values(Side::Lower) as usize).max(1);
        ProBiSideExpander {
            g,
            pro,
            n_attrs_l,
            sink,
            clock: budget.start(),
            emitted: 0,
            groups: vec![Vec::new(); n_attrs_u],
        }
    }
}

impl BicliqueSink for ProBiSideExpander<'_> {
    fn emit(&mut self, l: &[VertexId], r: &[VertexId]) {
        if self.clock.exhausted {
            return;
        }
        let attrs_u = self.g.attrs(Side::Upper);
        let attrs_l = self.g.attrs(Side::Lower);
        for g_attr in self.groups.iter_mut() {
            g_attr.clear();
        }
        for &u in l {
            self.groups[attrs_u[u as usize] as usize].push(u);
        }
        let group_refs: Vec<&[VertexId]> = self.groups.iter().map(|g| g.as_slice()).collect();
        let base = AttrCounts::of(r, attrs_l, self.n_attrs_l);
        let g = self.g;
        let pro = self.pro;
        let n_attrs_l = self.n_attrs_l;
        let sink = &mut *self.sink;
        let emitted = &mut self.emitted;
        let clock = &mut self.clock;
        for_each_max_pro_fair_subset(
            &group_refs,
            pro.base.alpha,
            pro.base.delta,
            pro.theta,
            &mut |l_sub| {
                let nl = g.common_neighbors(Side::Upper, l_sub);
                let mut cand = AttrCounts::zeros(n_attrs_l);
                let mut i = 0usize;
                for &v in &nl {
                    while i < r.len() && r[i] < v {
                        i += 1;
                    }
                    if i < r.len() && r[i] == v {
                        continue;
                    }
                    cand.inc(attrs_l[v as usize]);
                }
                if is_maximal_fair_subset_pro(
                    base.as_slice(),
                    cand.as_slice(),
                    pro.base.beta,
                    pro.base.delta,
                    pro.theta,
                ) {
                    sink.emit(l_sub, r);
                    *emitted += 1;
                }
                clock.tick()
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::biclique::{Biclique, CollectSink};
    use crate::verify::{oracle_pbsfbc, oracle_pssfbc};
    use bigraph::generate::random_uniform;
    use std::collections::BTreeSet;

    fn run_ss(g: &BipartiteGraph, pro: ProParams) -> BTreeSet<Biclique> {
        let mut sink = CollectSink::default();
        let stats = fairbcem_pro_pp_on_pruned(
            g,
            pro,
            VertexOrder::DegreeDesc,
            Budget::UNLIMITED,
            &mut sink,
        );
        assert!(!stats.aborted);
        let set: BTreeSet<Biclique> = sink.bicliques.iter().cloned().collect();
        assert_eq!(set.len(), sink.bicliques.len(), "no duplicates");
        set
    }

    fn run_bi(g: &BipartiteGraph, pro: ProParams) -> BTreeSet<Biclique> {
        let mut sink = CollectSink::default();
        let stats = bfairbcem_pro_pp_on_pruned(
            g,
            pro,
            VertexOrder::DegreeDesc,
            Budget::UNLIMITED,
            &mut sink,
        );
        assert!(!stats.aborted);
        let set: BTreeSet<Biclique> = sink.bicliques.iter().cloned().collect();
        assert_eq!(set.len(), sink.bicliques.len(), "no duplicates");
        set
    }

    #[test]
    fn pssfbc_matches_oracle() {
        for seed in 0..20u64 {
            let g = random_uniform(8, 10, 34, 2, 2, seed);
            for theta in [0.0, 0.3, 0.4, 0.5] {
                for (a, b, d) in [(1, 1, 1), (2, 1, 2), (2, 2, 1)] {
                    let pro = ProParams::new(a, b, d, theta).unwrap();
                    let want = oracle_pssfbc(&g, pro);
                    let got = run_ss(&g, pro);
                    assert_eq!(got, want, "seed {seed} {pro}");
                }
            }
        }
    }

    #[test]
    fn pbsfbc_matches_oracle() {
        for seed in 0..15u64 {
            let g = random_uniform(7, 8, 26, 2, 2, seed);
            for theta in [0.0, 0.35, 0.5] {
                for (a, b, d) in [(1, 1, 1), (1, 1, 2)] {
                    let pro = ProParams::new(a, b, d, theta).unwrap();
                    let want = oracle_pbsfbc(&g, pro);
                    let got = run_bi(&g, pro);
                    assert_eq!(got, want, "seed {seed} {pro}");
                }
            }
        }
    }

    #[test]
    fn theta_zero_equals_plain_model() {
        use crate::config::FairParams;
        use crate::fairbcem_pp::fairbcem_pp_on_pruned;
        for seed in 30..40u64 {
            let g = random_uniform(9, 10, 40, 2, 2, seed);
            let pro = ProParams::new(2, 1, 1, 0.0).unwrap();
            let got = run_ss(&g, pro);
            let mut plain = CollectSink::default();
            fairbcem_pp_on_pruned(
                &g,
                FairParams::unchecked(2, 1, 1),
                VertexOrder::DegreeDesc,
                Budget::UNLIMITED,
                &mut plain,
            );
            let plain: BTreeSet<Biclique> = plain.bicliques.into_iter().collect();
            assert_eq!(got, plain, "seed {seed}");
        }
    }

    #[test]
    fn larger_theta_means_fewer_or_equal_results_at_delta_zero() {
        // With delta = 0 the fair sides are perfectly balanced, so
        // every plain SSFBC is proportion-fair for any theta <= 0.5:
        // counts must be monotone across theta in that regime.
        let g = random_uniform(10, 10, 45, 2, 2, 77);
        let mut prev = usize::MAX;
        for theta in [0.5, 0.4, 0.3, 0.0] {
            let pro = ProParams::new(1, 1, 0, theta).unwrap();
            let n = run_ss(&g, pro).len();
            assert!(n <= prev || prev == usize::MAX);
            prev = n;
        }
    }
}
