//! Criterion micro-benchmarks for the core primitives: sorted
//! intersection, 2-hop construction, greedy coloring, FCore/CFCore
//! peeling, `Combination` expansion, and the two main enumerators on
//! the pruned Youtube analog.

use criterion::{criterion_group, criterion_main, Criterion};
use fair_biclique::biclique::CountSink;
use fair_biclique::config::{Budget, PruneKind, RunConfig, VertexOrder};
use fair_biclique::fairset::max_fair_subsets;
use fair_biclique::pipeline::{prune_single_side, run_ssfbc, SsAlgorithm};
use fbe_datasets::corpus::{spec, Dataset};
use std::hint::black_box;

fn bench_primitives(c: &mut Criterion) {
    let s = spec(Dataset::Youtube);
    let g = s.build();
    let params = s.single_params();

    let a: Vec<u32> = (0..4000).step_by(3).collect();
    let b: Vec<u32> = (0..4000).step_by(4).collect();
    c.bench_function("intersect_sorted_count_1k", |bch| {
        bch.iter(|| bigraph::intersect_sorted_count(black_box(&a), black_box(&b)))
    });

    c.bench_function("fcore_youtube", |bch| {
        bch.iter(|| fair_biclique::fcore::fcore_masks(black_box(&g), params.alpha, params.beta))
    });

    c.bench_function("cfcore_youtube", |bch| {
        bch.iter(|| prune_single_side(black_box(&g), params, PruneKind::Colorful))
    });

    let pruned = prune_single_side(&g, params, PruneKind::FCore);
    c.bench_function("twohop_on_fcore_pruned", |bch| {
        bch.iter(|| {
            bigraph::twohop::construct_2hop(
                black_box(&pruned.sub.graph),
                bigraph::Side::Lower,
                params.alpha as usize,
            )
        })
    });

    let h = bigraph::twohop::construct_2hop(
        &pruned.sub.graph,
        bigraph::Side::Lower,
        params.alpha as usize,
    );
    c.bench_function("greedy_coloring", |bch| {
        bch.iter(|| bigraph::coloring::greedy_color_by_degree(black_box(&h)))
    });

    let g0: Vec<u32> = (0..12).collect();
    let g1: Vec<u32> = (100..110).collect();
    c.bench_function("combination_12x10", |bch| {
        bch.iter(|| max_fair_subsets(black_box(&[&g0, &g1]), 4, 2))
    });
}

fn bench_enumeration(c: &mut Criterion) {
    let s = spec(Dataset::Youtube);
    let g = s.build();
    let params = s.single_params();
    let cfg = RunConfig {
        prune: PruneKind::Colorful,
        order: VertexOrder::DegreeDesc,
        budget: Budget::UNLIMITED,
        ..RunConfig::default()
    };
    let mut group = c.benchmark_group("enumeration_youtube");
    group.sample_size(10);
    group.bench_function("fairbcem", |bch| {
        bch.iter(|| {
            let mut sink = CountSink::default();
            run_ssfbc(
                black_box(&g),
                params,
                SsAlgorithm::FairBcem,
                &cfg,
                &mut sink,
            );
            sink.count
        })
    });
    group.bench_function("fairbcem_pp", |bch| {
        bch.iter(|| {
            let mut sink = CountSink::default();
            run_ssfbc(
                black_box(&g),
                params,
                SsAlgorithm::FairBcemPP,
                &cfg,
                &mut sink,
            );
            sink.count
        })
    });
    group.finish();
}

criterion_group!(benches, bench_primitives, bench_enumeration);
criterion_main!(benches);
