//! `no-panic-paths` — the resident server and the CLI must never die.
//!
//! # Rationale
//!
//! Fair-biclique enumeration queries run for seconds to minutes
//! (Yin et al., ICDE 2023), so `fbe serve` holds state — the graph
//! catalog, the plan cache, admission counters — that many clients
//! depend on. A panic anywhere on a request path either kills the
//! process (losing every loaded graph and cached plan) or poisons a
//! shared lock for all subsequent clients. The service contract is to
//! degrade into `ERR` replies instead: fallible operations return
//! `Result` and are rendered as `ERR <CODE>` blocks, and the one
//! deliberate backstop (`catch_unwind` in the engine) exists to
//! contain bugs, not to excuse them.
//!
//! The rule therefore forbids, in non-test code under
//! `crates/service/src` and `crates/cli/src`:
//!
//! * `.unwrap()` and `.expect(` — convert to `?` / explicit handling;
//! * `panic!`, `todo!`, `unimplemented!`, `unreachable!`;
//! * indexing by an integer literal (`xs[0]`) — use `.first()` /
//!   `.get(0)` and handle `None`.
//!
//! Suppress a deliberate site with
//! `// fbe-lint: allow(no-panic-paths): <reason>`.

use crate::findings::Finding;
use crate::rules::{is_ident, token_positions};
use crate::walk::Analysis;

/// Rule identifier.
pub const NAME: &str = "no-panic-paths";

/// Paths (prefixes) this rule polices.
const SCOPES: &[&str] = &["crates/service/src/", "crates/cli/src/"];

/// Forbidden tokens and what to do instead.
const TOKENS: &[(&str, &str)] = &[
    (".unwrap()", "propagate the error or reply ERR"),
    (".expect(", "propagate the error or reply ERR"),
    ("panic!", "return an error; the server must not die"),
    ("todo!", "unfinished code must not ship on a request path"),
    (
        "unimplemented!",
        "unfinished code must not ship on a request path",
    ),
    (
        "unreachable!",
        "encode the invariant in types or return an error",
    ),
];

/// Byte offsets where `code` indexes with an integer literal:
/// an identifier / `)` / `]` directly followed by `[digits]`.
fn literal_index_positions(code: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1] as char;
        if !(is_ident(prev) || prev == ')' || prev == ']') {
            continue;
        }
        let rest = &bytes[i + 1..];
        let digits = rest.iter().take_while(|b| b.is_ascii_digit()).count();
        if digits > 0 && rest.get(digits) == Some(&b']') {
            out.push(i);
        }
    }
    out
}

/// Run the rule.
pub fn check(analysis: &Analysis, findings: &mut Vec<Finding>) {
    for file in &analysis.files {
        if !SCOPES.iter().any(|s| file.path.starts_with(s)) {
            continue;
        }
        for (idx, line) in file.scrub.lines.iter().enumerate() {
            let lineno = idx + 1;
            if file.in_test(lineno) {
                continue;
            }
            for (tok, fix) in TOKENS {
                if !token_positions(&line.code, tok).is_empty() {
                    findings.push(Finding::new(
                        NAME,
                        &file.path,
                        lineno,
                        format!("`{tok}` on a no-panic path: {fix}"),
                    ));
                }
            }
            if !literal_index_positions(&line.code).is_empty() {
                findings.push(Finding::new(
                    NAME,
                    &file.path,
                    lineno,
                    "indexing by integer literal on a no-panic path: \
                     use .get(..) and handle None",
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_index_detection() {
        assert_eq!(literal_index_positions("let x = xs[0];").len(), 1);
        assert_eq!(literal_index_positions("f(a)[17]").len(), 1);
        assert_eq!(literal_index_positions("m[i][3]").len(), 1);
        // Variable index, type syntax, attributes: no match.
        assert_eq!(literal_index_positions("xs[i]").len(), 0);
        assert_eq!(literal_index_positions("let b: [u64; 5] = x;").len(), 0);
        assert_eq!(literal_index_positions("#[cfg(test)]").len(), 0);
        assert_eq!(literal_index_positions("&[0]").len(), 0);
    }
}
