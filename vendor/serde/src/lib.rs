//! Vendored stand-in for `serde` (no crates.io access in this build
//! environment). Provides the `Serialize` / `Deserialize` trait names
//! and, under the `derive` feature, no-op derive macros, so annotated
//! types compile unchanged. No serialization machinery is implemented
//! — the workspace never serializes through serde today.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
