//! Lightweight query tracing: structured span trees with zero cost
//! when disabled.
//!
//! Every query the service (or a `--trace` CLI run) executes passes
//! through the same stages — pruning (core peel, 2-hop construction,
//! colorful peel), candidate-plan resolution, enumeration, and the
//! canonical sort — but until now only their *sum* was observable.
//! A [`SpanRecorder`] threads through
//! [`crate::prepared::PreparedQuery::prepare_rec`] and the `_rec`
//! execution entry points and collects one [`Span`] per stage, so a
//! slow query can be attributed to the stage (or, at the coordinator,
//! the shard) that actually burned the time.
//!
//! # Zero-allocation-off-by-default
//!
//! Recording must not perturb the walkers' no-clone/no-alloc
//! invariants or the benchmark trajectory, so a disabled recorder is
//! inert: [`SpanRecorder::disabled`] holds an empty `Vec` (which does
//! not allocate), every record method returns before touching the
//! clock, and detail strings are built through closures that are never
//! called when disabled. Spans are recorded only at single-threaded
//! orchestration boundaries — never inside parallel workers, whose
//! per-worker accounting already arrives via
//! [`crate::biclique::EnumStats`].

use std::time::{Duration, Instant};

/// One recorded stage: a name, its nesting depth in the span tree,
/// wall time, and optional `key=value` detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Stage name (static: span names are a documented vocabulary, see
    /// the README's Observability glossary).
    pub name: &'static str,
    /// Nesting depth; children follow their parent with `depth + 1`
    /// (the span list is a preorder serialization of the tree).
    pub depth: u8,
    /// Wall-clock time spent in the stage (children included for
    /// scope spans).
    pub elapsed: Duration,
    /// Free-form `key=value` annotations (e.g. `EnumStats` fields).
    pub detail: String,
}

/// Collects a span tree for one query. See the module docs for the
/// off-by-default contract.
#[derive(Debug)]
pub struct SpanRecorder {
    enabled: bool,
    depth: u8,
    spans: Vec<Span>,
}

impl SpanRecorder {
    /// An inert recorder: no allocation, no clock reads, no spans.
    pub fn disabled() -> SpanRecorder {
        SpanRecorder {
            enabled: false,
            depth: 0,
            spans: Vec::new(),
        }
    }

    /// A live recorder that collects spans.
    pub fn enabled() -> SpanRecorder {
        SpanRecorder {
            enabled: true,
            depth: 0,
            spans: Vec::new(),
        }
    }

    /// True when spans are being collected.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record a leaf span with a caller-measured duration.
    pub fn leaf(&mut self, name: &'static str, elapsed: Duration) {
        if self.enabled {
            self.spans.push(Span {
                name,
                depth: self.depth,
                elapsed,
                detail: String::new(),
            });
        }
    }

    /// Record a leaf span with lazily-built detail; `detail` is only
    /// called (and only allocates) when the recorder is enabled.
    pub fn leaf_with(
        &mut self,
        name: &'static str,
        elapsed: Duration,
        detail: impl FnOnce() -> String,
    ) {
        if self.enabled {
            self.spans.push(Span {
                name,
                depth: self.depth,
                elapsed,
                detail: detail(),
            });
        }
    }

    /// Time `f` and record it as a leaf span. Disabled recorders run
    /// `f` directly without reading the clock.
    pub fn timed<T>(&mut self, name: &'static str, f: impl FnOnce() -> T) -> T {
        if !self.enabled {
            return f();
        }
        let t0 = Instant::now();
        let out = f();
        self.leaf(name, t0.elapsed());
        out
    }

    /// Time `f` as a scope span whose inner recordings become
    /// children: the scope is inserted *before* its children in the
    /// span list (preorder), with `elapsed` covering the whole scope.
    pub fn scope<T>(&mut self, name: &'static str, f: impl FnOnce(&mut Self) -> T) -> T {
        if !self.enabled {
            return f(self);
        }
        let mark = self.spans.len();
        let depth = self.depth;
        self.depth += 1;
        let t0 = Instant::now();
        let out = f(self);
        let elapsed = t0.elapsed();
        self.depth = depth;
        self.spans.insert(
            mark,
            Span {
                name,
                depth,
                elapsed,
                detail: String::new(),
            },
        );
        out
    }

    /// Attach lazily-built detail to the most recently recorded span
    /// (replacing any existing detail). No-op when disabled or when
    /// nothing has been recorded; `detail` is only called when it will
    /// be stored.
    pub fn annotate_last(&mut self, detail: impl FnOnce() -> String) {
        if self.enabled {
            if let Some(last) = self.spans.last_mut() {
                last.detail = detail();
            }
        }
    }

    /// The recorded spans, in preorder.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Consume the recorder, yielding its spans.
    pub fn into_spans(self) -> Vec<Span> {
        self.spans
    }

    /// Render the span tree as indented `span ...` lines (the format
    /// the service's `SLOWLOG` payload and traced `ENUM` replies use).
    pub fn render(&self) -> Vec<String> {
        render_spans(&self.spans)
    }
}

/// Render a span list (preorder, depth-encoded) as indented lines:
/// `span <name> us=<micros> [detail]`, two spaces per depth level.
pub fn render_spans(spans: &[Span]) -> Vec<String> {
    spans
        .iter()
        .map(|s| {
            let indent = "  ".repeat(s.depth as usize);
            let detail = if s.detail.is_empty() {
                String::new()
            } else {
                format!(" {}", s.detail)
            };
            format!(
                "span {indent}{} us={}{detail}",
                s.name,
                s.elapsed.as_micros()
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing_and_runs_closures() {
        let mut rec = SpanRecorder::disabled();
        assert!(!rec.is_enabled());
        rec.leaf("a", Duration::from_micros(5));
        let mut detail_built = false;
        rec.leaf_with("b", Duration::ZERO, || {
            detail_built = true;
            "x=1".into()
        });
        let got = rec.timed("c", || 41 + 1);
        assert_eq!(got, 42);
        let got = rec.scope("d", |r| {
            r.leaf("inner", Duration::ZERO);
            7
        });
        assert_eq!(got, 7);
        assert!(!detail_built, "detail closures must not run when disabled");
        assert!(rec.spans().is_empty());
        assert!(rec.render().is_empty());
    }

    #[test]
    fn scope_inserts_parent_before_children_in_preorder() {
        let mut rec = SpanRecorder::enabled();
        rec.scope("prepare", |r| {
            r.leaf("core-peel", Duration::from_micros(10));
            r.scope("colorful", |r| {
                r.leaf("2hop", Duration::from_micros(3));
            });
        });
        rec.leaf_with("enumerate", Duration::from_micros(20), || "nodes=5".into());
        let names: Vec<(&str, u8)> = rec.spans().iter().map(|s| (s.name, s.depth)).collect();
        assert_eq!(
            names,
            vec![
                ("prepare", 0),
                ("core-peel", 1),
                ("colorful", 1),
                ("2hop", 2),
                ("enumerate", 0),
            ]
        );
        // The inner scope's (real) elapsed covers its child scope's.
        assert!(rec.spans()[0].elapsed >= rec.spans()[2].elapsed);
        let lines = rec.render();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with("span prepare us="));
        assert!(lines[1].starts_with("span   core-peel us="));
        assert!(lines[3].starts_with("span     2hop us="));
        assert!(lines[4].ends_with("nodes=5"));
    }

    #[test]
    fn annotate_last_sets_detail_only_when_enabled() {
        let mut rec = SpanRecorder::disabled();
        let mut built = false;
        rec.annotate_last(|| {
            built = true;
            "x=1".into()
        });
        assert!(!built);

        let mut rec = SpanRecorder::enabled();
        rec.annotate_last(|| "orphan".into()); // nothing recorded yet
        assert!(rec.spans().is_empty());
        rec.leaf("enumerate", Duration::ZERO);
        rec.annotate_last(|| "nodes=7".into());
        assert_eq!(rec.spans()[0].detail, "nodes=7");
        assert!(rec.render()[0].ends_with("nodes=7"));
    }

    #[test]
    fn nested_depth_restores_after_scope() {
        let mut rec = SpanRecorder::enabled();
        rec.scope("a", |r| {
            r.leaf("a1", Duration::ZERO);
        });
        rec.leaf("b", Duration::ZERO);
        assert_eq!(rec.spans()[2].name, "b");
        assert_eq!(rec.spans()[2].depth, 0);
        let spans = rec.into_spans();
        assert_eq!(spans.len(), 3);
    }
}
