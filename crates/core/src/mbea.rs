//! Maximal biclique enumeration (the `MBEA++`-style core of
//! Algorithm 6, and the plain `MBC` baseline of Exp-4).
//!
//! `walk_maximal_bicliques` visits every maximal biclique `(L, R)` of
//! the graph with `|L| ≥ min_l`, exactly once, using the batch-
//! absorption trick of Zhang et al. \[6\]: when expanding candidate `x`,
//! every remaining candidate fully connected to the shrunken `L'` joins
//! `R'` immediately, and the ones with no neighbors outside `L'`
//! (`N(v) = L'`) are *consumed* — removed from the candidate pool for
//! all sibling branches, since every maximal biclique containing them
//! lives in the current subtree.
//!
//! Correctness of the `min_l` cut: a candidate whose connectivity to
//! `L'` drops below `min_l` can never again be fully connected to a
//! descendant `L'' `(connectivity only shrinks while `|L''| ≥ min_l`),
//! so dropping it breaks no closure and loses no qualifying biclique.

use crate::biclique::{BicliqueSink, EnumStats};
use crate::config::{Budget, BudgetClock, VertexOrder};
use crate::fairset::AttrCounts;
use crate::ordering::side_order;
use bigraph::candidate::{AdjOps, CandidateOps, CandidatePlan, Substrate};
use bigraph::{BipartiteGraph, Side, VertexId};

/// How to prune branches on the reachable size of `R`.
#[derive(Clone, Copy)]
pub(crate) enum RBound<'a> {
    /// Plain size bound: `|R'| + |P'| ≥ min_r`.
    Size(usize),
    /// The fair bound of Algorithm 6 line 29: every lower attribute
    /// must reach `beta` using `R' ∪ P'`.
    AttrBeta {
        /// Lower-side attribute of each vertex.
        attrs: &'a [bigraph::AttrValueId],
        /// Per-attribute minimum `β`.
        beta: u32,
    },
}

impl RBound<'_> {
    fn admits(&self, r: &[VertexId], r_counts: &AttrCounts, p_new: &[VertexId]) -> bool {
        match self {
            RBound::Size(min_r) => r.len() + p_new.len() >= *min_r,
            RBound::AttrBeta { attrs, beta, .. } => {
                let mut reach = r_counts.clone();
                for &v in p_new {
                    reach.inc(attrs[v as usize]);
                }
                reach.as_slice().iter().all(|&c| c >= *beta)
            }
        }
    }
}

/// Walk all maximal bicliques `(L, R)` of `g` with `|L| ≥ min_l ≥ 1`.
///
/// `visit(l, r)` receives `L` sorted and `R` **sorted** (a scratch copy;
/// borrow only for the call). Returns the walk statistics; when the
/// budget runs out, a correct subset has been visited.
pub(crate) fn walk_maximal_bicliques(
    g: &BipartiteGraph,
    min_l: usize,
    rbound: RBound<'_>,
    order: VertexOrder,
    budget: Budget,
    substrate: Substrate,
    visit: &mut dyn FnMut(&[VertexId], &[VertexId]),
) -> EnumStats {
    let plan = CandidatePlan::build(g, substrate, false);
    let mut w = Walker::new(g, min_l, rbound, plan.ops(g, Side::Lower), budget.start());
    w.run(root_task(g, order, plan.choice()), visit);
    w.stats()
}

/// One independent unit of enumeration work: the subtree rooted at
/// search state `(L, R, P, Q)`.
///
/// Tasks are exactly the states the serial walker passes to its
/// recursive calls, so executing every spawned task visits exactly
/// the serial tree — same maximal bicliques, same node count. The
/// duplicate-suppression set `q` makes tasks independent: the
/// fully-connected-`Q` check kills exactly the subtrees the serial
/// algorithm never enters.
#[derive(Debug, Clone)]
pub(crate) struct BranchTask {
    /// Upper side `L` of the subtree root (sorted).
    pub(crate) l: Vec<VertexId>,
    /// Fair-side vertices `R` chosen so far (discovery order).
    pub(crate) r: Vec<VertexId>,
    /// Remaining candidates, in processing order.
    pub(crate) p: Vec<VertexId>,
    /// Expanded/consumed vertices (duplicate suppression).
    pub(crate) q: Vec<VertexId>,
    /// Enumeration-tree depth of this subtree's root (root = 0).
    pub(crate) depth: u32,
    /// The run's resolved candidate substrate (never `Auto`). Split
    /// subtrees carry the choice so a re-queued task is executed on
    /// the same representation it was spawned under.
    pub(crate) substrate: Substrate,
}

impl BranchTask {
    /// Copy-on-steal snapshot of a live branch frame — the **only**
    /// place branch state is cloned. The serial walker mutates pooled
    /// frames in place and restores on backtrack; only at a task-split
    /// point does the engine need an owned `(L, R, P, Q)`, and the
    /// snapshot is byte-identical to the state the serial recursion
    /// would have passed down, so the Q-seeding correctness argument
    /// of [`crate::parallel`] is untouched.
    pub(crate) fn snapshot(
        l: &[VertexId],
        r: &[VertexId],
        p: &[VertexId],
        q: &[VertexId],
        depth: u32,
        substrate: Substrate,
    ) -> BranchTask {
        BranchTask {
            l: l.to_vec(),
            r: r.to_vec(),
            p: p.to_vec(),
            q: q.to_vec(),
            depth,
            substrate,
        }
    }
}

/// The in-place branch state of one enumeration-tree level: the
/// `(L, P, Q)` vectors the walker mutates and restores, plus the
/// per-level scratch (`consumed`, sorted-`R` view). Frames are pooled
/// on the [`Walker`] and recycled across siblings and levels, so the
/// steady-state walk allocates nothing — capacity grown on the deepest
/// path so far is reused by every later branch.
#[derive(Debug, Default)]
struct BranchFrame {
    /// `L` of this level (sorted).
    l: Vec<VertexId>,
    /// Remaining candidates in processing order. Consumed vertices are
    /// compacted out of the *unprocessed suffix* only; the processed
    /// prefix is never read again, so it is left in place instead of
    /// shifting the whole vector per branch.
    p: Vec<VertexId>,
    /// Duplicate-suppression set `Q`, extended in place as candidates
    /// are expanded or consumed (the undo is structural: the frame is
    /// dropped back into the pool when the level returns).
    q: Vec<VertexId>,
    /// Per-branch consumed set `C` (scratch, survives the recursion).
    consumed: Vec<VertexId>,
    /// Sorted view of `R` for the visit callback (scratch).
    r_sorted: Vec<VertexId>,
}

/// The whole-graph root task under `order`, on a resolved `substrate`.
pub(crate) fn root_task(
    g: &BipartiteGraph,
    order: VertexOrder,
    substrate: Substrate,
) -> BranchTask {
    debug_assert_ne!(substrate, Substrate::Auto, "resolve before rooting");
    BranchTask {
        l: (0..g.n_upper() as VertexId).collect(),
        r: Vec::new(),
        p: side_order(g, Side::Lower, order),
        q: Vec::new(),
        depth: 0,
        substrate,
    }
}

/// Reusable maximal-biclique walker over [`BranchTask`]s.
///
/// A parallel worker keeps one `Walker` for its whole run: the clock
/// (possibly drawing from a shared budget) and the statistics
/// accumulate across every task it executes.
pub(crate) struct Walker<'a> {
    g: &'a BipartiteGraph,
    min_l: usize,
    rbound: RBound<'a>,
    attrs: &'a [bigraph::AttrValueId],
    /// Candidate-set substrate for all `L ∩ N(·)` work (lower-side
    /// rows; see [`bigraph::candidate`]).
    ops: AdjOps<'a>,
    clock: BudgetClock,
    visited: u64,
    cur_bytes: usize,
    peak_bytes: usize,
    /// Recycled [`BranchFrame`]s: one live frame per recursion level,
    /// at most max-depth-so-far frames pooled. Makes the steady-state
    /// walk allocation-free.
    pool: Vec<BranchFrame>,
}

impl<'a> Walker<'a> {
    pub(crate) fn new(
        g: &'a BipartiteGraph,
        min_l: usize,
        rbound: RBound<'a>,
        ops: AdjOps<'a>,
        clock: BudgetClock,
    ) -> Self {
        assert!(min_l >= 1, "min_l must be positive");
        Walker {
            g,
            min_l,
            rbound,
            attrs: g.attrs(Side::Lower),
            ops,
            clock,
            visited: 0,
            cur_bytes: 0,
            peak_bytes: 0,
            pool: Vec::new(),
        }
    }

    /// Statistics accumulated over every task run so far. `emitted`
    /// counts *visited maximal bicliques* (drivers overwrite it with
    /// their own emission counts).
    pub(crate) fn stats(&self) -> EnumStats {
        EnumStats {
            nodes: self.clock.nodes,
            emitted: self.visited,
            aborted: self.clock.exhausted,
            stop: self.clock.stop_reason(),
            peak_search_bytes: self.peak_bytes,
        }
    }

    /// Execute `task` to completion, recursing into its subtree.
    pub(crate) fn run(
        &mut self,
        task: BranchTask,
        visit: &mut dyn FnMut(&[VertexId], &[VertexId]),
    ) {
        self.execute(task, visit, None);
    }

    /// Execute only `task`'s top level, handing each child subtree to
    /// `spawn` instead of recursing (the engine's re-splitting mode).
    pub(crate) fn split(
        &mut self,
        task: BranchTask,
        visit: &mut dyn FnMut(&[VertexId], &[VertexId]),
        spawn: &mut dyn FnMut(BranchTask),
    ) {
        self.execute(task, visit, Some(spawn));
    }

    fn execute(
        &mut self,
        task: BranchTask,
        visit: &mut dyn FnMut(&[VertexId], &[VertexId]),
        spawn: Option<&mut dyn FnMut(BranchTask)>,
    ) {
        debug_assert_eq!(
            task.substrate,
            self.ops.substrate(),
            "task substrate must match the worker's candidate index"
        );
        let n_attrs = (self.g.n_attr_values(Side::Lower) as usize).max(1);
        let mut r = task.r;
        let mut r_counts = AttrCounts::of(&r, self.attrs, n_attrs);
        // Approximate the ancestor frames a mid-tree task inherits
        // (the root task starts at zero, matching the serial walk).
        let frame = (task.l.len() + task.p.len() + task.q.len() + r.len())
            * std::mem::size_of::<VertexId>();
        let seed = if task.depth > 0 { frame } else { 0 };
        self.cur_bytes += seed;
        // Move the task's owned state into a frame; the pooled scratch
        // vectors ride along.
        let fr = BranchFrame {
            l: task.l,
            p: task.p,
            q: task.q,
            ..self.pool.pop().unwrap_or_default()
        };
        let fr = self.level(fr, &mut r, &mut r_counts, task.depth, visit, spawn);
        self.pool.push(fr);
        self.cur_bytes -= seed;
    }

    /// `BackTrackFBCEM++` skeleton: one level of the enumeration tree.
    ///
    /// The frame `fr` owns this level's `(L, P, Q)` and is mutated in
    /// place: `P` is consumed via a cursor (consumed vertices are
    /// merged out of the unprocessed suffix), `Q` grows in place, and
    /// the per-branch child state is built into a single recycled
    /// child frame instead of fresh vectors. `R` stays the classic
    /// push/restore undo stack. Children either recurse (serial) or
    /// become [`BranchTask`] snapshots (`spawn` mode) — the spawned
    /// state is bit-identical to the recursive call's arguments.
    ///
    /// Returns `fr` (contents spent) so the caller can recycle it.
    fn level(
        &mut self,
        mut fr: BranchFrame,
        r: &mut Vec<VertexId>,
        r_counts: &mut AttrCounts,
        depth: u32,
        visit: &mut dyn FnMut(&[VertexId], &[VertexId]),
        mut spawn: Option<&mut dyn FnMut(BranchTask)>,
    ) -> BranchFrame {
        // The sibling-shared child frame: filled per branch, moved into
        // the recursion, and recycled back through the return value.
        let mut child = self.pool.pop().unwrap_or_default();
        let mut pi = 0;

        while pi < fr.p.len() {
            if !self.clock.tick() {
                break;
            }
            let x = fr.p[pi];
            self.ops.intersect_into(&fr.l, x, &mut child.l);

            if child.l.len() < self.min_l {
                // Cannot lead to a qualifying biclique; retire x. The
                // cursor skips it — the processed prefix is dead.
                fr.q.push(x);
                pi += 1;
                continue;
            }

            // Stage L' once: the Q-maximality and absorption loops
            // below count many rows against it.
            self.ops.load(&child.l);

            // Maximality against Q: a fully-connected Q vertex means
            // this closed biclique was already enumerated elsewhere.
            let mut flag = true;
            child.q.clear();
            for &u in &fr.q {
                let c = self.ops.loaded_count(u);
                if c == child.l.len() {
                    flag = false;
                    break;
                }
                if c > 0 {
                    child.q.push(u);
                }
            }

            // Consumed set C: x plus absorbed vertices with no
            // neighbors outside L'. Lives on `fr` so it survives the
            // recursion (which consumes `child`).
            fr.consumed.clear();
            fr.consumed.push(x);
            if flag {
                let pushed_base = r.len();
                r.push(x);
                r_counts.inc(self.attrs[x as usize]);

                child.p.clear();
                for &v in &fr.p[pi + 1..] {
                    let c = self.ops.loaded_count(v);
                    if c == child.l.len() {
                        // Absorb: fully connected to L'.
                        r.push(v);
                        r_counts.inc(self.attrs[v as usize]);
                        if self.ops.degree(v) == c {
                            fr.consumed.push(v);
                        }
                    } else if c >= self.min_l {
                        child.p.push(v);
                    }
                }

                // (L', R') is a maximal biclique with |L'| >= min_l.
                fr.r_sorted.clear();
                fr.r_sorted.extend_from_slice(r);
                fr.r_sorted.sort_unstable();
                self.visited += 1;
                visit(&child.l, &fr.r_sorted);

                if !child.p.is_empty() && self.rbound.admits(r, r_counts, &child.p) {
                    match spawn.as_deref_mut() {
                        Some(sp) => sp(BranchTask::snapshot(
                            &child.l,
                            r,
                            &child.p,
                            &child.q,
                            depth + 1,
                            self.ops.substrate(),
                        )),
                        None => {
                            let frame = (child.l.len() + child.p.len() + child.q.len())
                                * std::mem::size_of::<VertexId>();
                            self.cur_bytes += frame;
                            self.peak_bytes = self.peak_bytes.max(self.cur_bytes);
                            child = self.level(child, r, r_counts, depth + 1, visit, None);
                            self.cur_bytes -= frame;
                        }
                    }
                }

                // Restore R.
                while r.len() > pushed_base {
                    let v = r.pop().expect("restore");
                    r_counts.dec(self.attrs[v as usize]);
                }
                if self.clock.exhausted {
                    break;
                }
            }

            // P <- P - C; Q <- Q ∪ C. x itself sits at the cursor, so
            // only the absorbed-consumed tail needs compacting out of
            // the unprocessed suffix; `consumed[1..]` is a subsequence
            // of `p[pi + 1..]` in identical order, so one merge pass
            // suffices (the old retain scanned C per element).
            fr.q.push(x);
            if fr.consumed.len() > 1 {
                let mut w = pi + 1;
                let mut ci = 1;
                for ri in pi + 1..fr.p.len() {
                    let v = fr.p[ri];
                    if ci < fr.consumed.len() && fr.consumed[ci] == v {
                        ci += 1;
                        fr.q.push(v);
                    } else {
                        fr.p[w] = v;
                        w += 1;
                    }
                }
                fr.p.truncate(w);
            }
            pi += 1;
            if self.clock.exhausted {
                break;
            }
        }

        self.pool.push(child);
        fr
    }
}

/// Enumerate all maximal bicliques with `|L| ≥ min_l` and `|R| ≥ min_r`
/// (the paper's `MBC` counts in Fig. 6 use this with
/// `min_l = α, min_r = 2β` / `min_l = 2α, min_r = 2β`).
pub fn maximal_bicliques(
    g: &BipartiteGraph,
    min_l: usize,
    min_r: usize,
    order: VertexOrder,
    budget: Budget,
    sink: &mut dyn BicliqueSink,
) -> EnumStats {
    maximal_bicliques_with(g, min_l, min_r, order, budget, Substrate::Auto, sink)
}

/// [`maximal_bicliques`] on an explicit candidate substrate (the
/// default picks adaptively; results are identical either way).
pub fn maximal_bicliques_with(
    g: &BipartiteGraph,
    min_l: usize,
    min_r: usize,
    order: VertexOrder,
    budget: Budget,
    substrate: Substrate,
    sink: &mut dyn BicliqueSink,
) -> EnumStats {
    let min_l = min_l.max(1);
    let min_r = min_r.max(1);
    let mut emitted = 0u64;
    let mut results_clock = budget.start();
    let mut stats = walk_maximal_bicliques(
        g,
        min_l,
        RBound::Size(min_r),
        order,
        budget.clone(),
        substrate,
        &mut |l, r| {
            if r.len() >= min_r && results_clock.try_result() {
                sink.emit(l, r);
                emitted += 1;
            }
        },
    );
    stats.emitted = emitted;
    stats.aborted |= results_clock.exhausted;
    stats.stop = stats.stop.or_else(|| results_clock.stop_reason());
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::biclique::{Biclique, CollectSink};
    use crate::verify::oracle_maximal_bicliques;
    use bigraph::generate::random_uniform;
    use bigraph::GraphBuilder;
    use std::collections::BTreeSet;

    fn run(
        g: &BipartiteGraph,
        min_l: usize,
        min_r: usize,
        order: VertexOrder,
    ) -> BTreeSet<Biclique> {
        let mut sink = CollectSink::default();
        let stats = maximal_bicliques(g, min_l, min_r, order, Budget::UNLIMITED, &mut sink);
        assert!(!stats.aborted);
        let set: BTreeSet<Biclique> = sink.bicliques.iter().cloned().collect();
        assert_eq!(set.len(), sink.bicliques.len(), "no duplicates");
        assert_eq!(stats.emitted as usize, set.len());
        set
    }

    #[test]
    fn block_plus_pendant() {
        let mut b = GraphBuilder::new(1, 1);
        for u in 0..3 {
            for v in 0..4 {
                b.add_edge(u, v);
            }
        }
        b.add_edge(3, 4);
        let g = b.build().unwrap();
        let got = run(&g, 1, 1, VertexOrder::DegreeDesc);
        assert_eq!(got, oracle_maximal_bicliques(&g, 1, 1));
        assert_eq!(got.len(), 2);
        let got22 = run(&g, 2, 2, VertexOrder::IdAsc);
        assert_eq!(got22.len(), 1);
    }

    #[test]
    fn matches_oracle_on_random_graphs() {
        for seed in 0..25u64 {
            let g = random_uniform(8, 10, 35, 1, 1, seed);
            for (min_l, min_r) in [(1, 1), (2, 2), (3, 2), (2, 4)] {
                let want = oracle_maximal_bicliques(&g, min_l, min_r);
                for order in [VertexOrder::IdAsc, VertexOrder::DegreeDesc] {
                    let got = run(&g, min_l, min_r, order);
                    assert_eq!(got, want, "seed {seed} minL {min_l} minR {min_r} {order:?}");
                }
            }
        }
    }

    #[test]
    fn denser_random_graphs() {
        for seed in 100..110u64 {
            let g = random_uniform(7, 9, 40, 1, 1, seed);
            let want = oracle_maximal_bicliques(&g, 1, 1);
            let got = run(&g, 1, 1, VertexOrder::DegreeDesc);
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn budget_abort() {
        let g = random_uniform(12, 14, 90, 1, 1, 3);
        let mut sink = CollectSink::default();
        let stats = maximal_bicliques(&g, 1, 1, VertexOrder::IdAsc, Budget::nodes(5), &mut sink);
        assert!(stats.aborted);
        let full = oracle_maximal_bicliques(&g, 1, 1);
        for b in sink.bicliques {
            assert!(full.contains(&b));
        }
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(1, 1).build().unwrap();
        assert!(run(&g, 1, 1, VertexOrder::IdAsc).is_empty());
    }

    #[test]
    fn complete_graph_single_biclique() {
        let mut b = GraphBuilder::new(1, 1);
        for u in 0..4 {
            for v in 0..5 {
                b.add_edge(u, v);
            }
        }
        let g = b.build().unwrap();
        let got = run(&g, 1, 1, VertexOrder::DegreeDesc);
        assert_eq!(got.len(), 1);
        let bc = got.iter().next().unwrap();
        assert_eq!(bc.upper.len(), 4);
        assert_eq!(bc.lower.len(), 5);
    }
}
