//! TCP transport: `std::net::TcpListener`, thread-per-connection.

use crate::engine::{Engine, Outcome, Session};
use crate::protocol::Reply;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Hard cap on a single request line. Anything longer is answered with
/// `ERR PARSE` and discarded without ever being buffered whole, so one
/// client cannot balloon server memory with a newline-free stream.
pub const MAX_LINE_BYTES: u64 = 64 * 1024;

/// A bound-but-not-yet-serving server. Bind with port 0 for an
/// ephemeral port, read it back via [`Server::local_addr`], then
/// [`Server::run`] the accept loop (it returns after `SHUTDOWN`).
pub struct Server {
    listener: Arc<TcpListener>,
    engine: Arc<Engine>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0`) for `engine`.
    pub fn bind(addr: &str, engine: Arc<Engine>) -> std::io::Result<Server> {
        Ok(Server {
            listener: Arc::new(TcpListener::bind(addr)?),
            engine,
        })
    }

    /// The actual bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept and serve connections until a client issues `SHUTDOWN`.
    /// Each connection gets its own thread; in-flight queries observe
    /// the engine's cancellation token and stop cooperatively.
    pub fn run(self) -> std::io::Result<()> {
        self.run_inner(true)
    }

    /// The accept loop behind [`Server::run`]. `allow_self_connect`
    /// exists so tests can prove the loop terminates through the poll
    /// deadline alone, with the fast-path wake-up disabled.
    fn run_inner(self, allow_self_connect: bool) -> std::io::Result<()> {
        let addr = self.local_addr()?;
        // A blocking accept() cannot be interrupted from another
        // thread: a thread already parked in accept(2) ignores later
        // O_NONBLOCK flips, and std offers no accept-with-deadline.
        // The listener therefore runs non-blocking and the loop parks
        // in short sleeps while idle, so SHUTDOWN terminates within
        // one poll interval even when the wake-up self-connect cannot
        // get through (exhausted ephemeral ports, firewalled
        // loopback, …). The self-connect remains as the fast path
        // that snaps the shutdown latency below the poll interval.
        self.listener.set_nonblocking(true)?;
        loop {
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if self.engine.is_shutdown() {
                        break;
                    }
                    std::thread::sleep(ACCEPT_POLL_INTERVAL);
                    continue;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            // Accepted sockets inherit non-blocking mode on some
            // platforms; connection I/O must block.
            stream.set_nonblocking(false)?;
            if self.engine.is_shutdown() {
                // Raced with shutdown (possibly our own wake-up
                // connection): drop the stream and stop accepting.
                break;
            }
            let engine = Arc::clone(&self.engine);
            std::thread::spawn(move || {
                let _ = serve_connection(stream, &engine);
                // Wake the accept loop whenever the engine is stopping
                // — deliberately not only on a clean SHUTDOWN reply: if
                // the client closed without reading (the reply write
                // failed with a pipe error), the token is already
                // cancelled and the accept loop must still be unblocked
                // or the server would hang in accept() forever.
                if engine.is_shutdown() && allow_self_connect {
                    wake_accept_loop(addr);
                }
            });
        }
        Ok(())
    }
}

/// How long the accept loop sleeps between polls while no connection
/// is pending. Bounds both shutdown latency (when the wake-up
/// self-connect fails) and worst-case accept latency for new clients.
const ACCEPT_POLL_INTERVAL: Duration = Duration::from_millis(5);

/// Fast-path wake for the accept loop after shutdown: a bounded number
/// of self-connect attempts so the loop observes the shutdown flag
/// immediately instead of after its next [`ACCEPT_POLL_INTERVAL`]
/// sleep. Failure is fine — the poll deadline is the guarantee.
fn wake_accept_loop(addr: SocketAddr) {
    for _ in 0..3 {
        if TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_ok() {
            return;
        }
    }
}

/// Serve one connection until the client disconnects or asks for
/// shutdown.
///
/// Request lines are read as raw bytes with a [`MAX_LINE_BYTES`] cap:
/// an oversized line is answered with `ERR PARSE` and drained without
/// buffering, and bytes that are not valid UTF-8 are answered with
/// `ERR PARSE` instead of killing the session — in both cases the
/// connection stays alive for the next request.
fn serve_connection(stream: TcpStream, engine: &Engine) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    Reply::greeting().write_to(&mut writer)?;
    writer.flush()?;
    // Per-connection session: the TRACE toggle lives here and dies
    // with the connection.
    let mut session = Session::new();
    let mut buf: Vec<u8> = Vec::new();
    loop {
        buf.clear();
        let n = reader
            .by_ref()
            .take(MAX_LINE_BYTES)
            .read_until(b'\n', &mut buf)?;
        if n == 0 {
            return Ok(()); // client closed
        }
        if buf.last() != Some(&b'\n') && n as u64 == MAX_LINE_BYTES {
            // The cap was hit before a newline arrived: reject the
            // request, discard the rest of the line, keep serving.
            drain_to_newline(&mut reader)?;
            Reply::err(
                "PARSE",
                format!("request line exceeds {MAX_LINE_BYTES} bytes"),
            )
            .write_to(&mut writer)?;
            writer.flush()?;
            continue;
        }
        let line = match std::str::from_utf8(&buf) {
            Ok(s) => s,
            Err(_) => {
                let lossy = String::from_utf8_lossy(&buf);
                let preview: String = lossy.trim().chars().take(40).collect();
                Reply::err("PARSE", format!("request is not valid UTF-8: {preview:?}"))
                    .write_to(&mut writer)?;
                writer.flush()?;
                continue;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        match engine.handle_line_in(line.trim(), &mut session) {
            Outcome::Reply(reply) => {
                reply.write_to(&mut writer)?;
                writer.flush()?;
            }
            Outcome::Shutdown(reply) => {
                reply.write_to(&mut writer)?;
                writer.flush()?;
                return Ok(());
            }
        }
    }
}

/// Consume and discard buffered input through the next `\n` (or EOF).
/// Used to resynchronize after an oversized request line; works in
/// `fill_buf`-sized chunks so the discarded line is never materialized.
fn drain_to_newline(reader: &mut BufReader<TcpStream>) -> std::io::Result<()> {
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            return Ok(()); // EOF: the next read_until reports it
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                reader.consume(pos + 1);
                return Ok(());
            }
            None => {
                let len = available.len();
                reader.consume(len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServiceConfig;

    /// Minimal in-test client: send a line, read one reply block.
    pub(crate) fn roundtrip(
        reader: &mut impl BufRead,
        writer: &mut impl Write,
        cmd: &str,
    ) -> (String, Vec<String>) {
        writeln!(writer, "{cmd}").unwrap();
        writer.flush().unwrap();
        read_block(reader)
    }

    pub(crate) fn read_block(reader: &mut impl BufRead) -> (String, Vec<String>) {
        let mut status = String::new();
        reader.read_line(&mut status).unwrap();
        let status = status.trim_end().to_string();
        let mut payload = Vec::new();
        loop {
            let mut l = String::new();
            reader.read_line(&mut l).unwrap();
            let l = l.trim_end().to_string();
            if l == crate::protocol::TERMINATOR {
                break;
            }
            payload.push(l);
        }
        (status, payload)
    }

    #[test]
    fn serves_a_session_and_shuts_down() {
        let engine = Engine::new(ServiceConfig::default());
        let server = Server::bind("127.0.0.1:0", Arc::clone(&engine)).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run());

        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        let (greet, _) = read_block(&mut reader);
        assert!(greet.contains("protocol=1"), "{greet}");

        let (s, _) = roundtrip(&mut reader, &mut writer, "PING");
        assert_eq!(s, "OK pong");
        let (s, _) = roundtrip(&mut reader, &mut writer, "GEN g uniform:10,10,40,1");
        assert!(s.contains("upper=10"), "{s}");
        let (s, payload) = roundtrip(
            &mut reader,
            &mut writer,
            "ENUM g ssfbc alpha=1 beta=1 delta=1",
        );
        assert!(s.starts_with("OK model=SSFBC"), "{s}");
        assert!(!payload.is_empty());

        let (s, _) = roundtrip(&mut reader, &mut writer, "SHUTDOWN");
        assert_eq!(s, "OK bye");
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn shutdown_from_a_client_that_never_reads_still_stops_the_server() {
        let engine = Engine::new(ServiceConfig::default());
        let server = Server::bind("127.0.0.1:0", Arc::clone(&engine)).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run());
        {
            // Send SHUTDOWN and slam the connection without ever
            // reading the reply: the reply write may fail, but the
            // accept loop must still be woken.
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(b"SHUTDOWN\n").unwrap();
            stream.flush().unwrap();
            stream.shutdown(std::net::Shutdown::Both).ok();
        }
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            tx.send(handle.join()).ok();
        });
        let joined = rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("server exited within the timeout");
        joined.unwrap().unwrap();
        assert!(engine.is_shutdown());
    }

    #[test]
    fn shutdown_terminates_even_when_self_connect_is_unavailable() {
        // Force the fallback: with the self-connect wake disabled the
        // only path out of accept() is the poll-interval deadline.
        let engine = Engine::new(ServiceConfig::default());
        let server = Server::bind("127.0.0.1:0", Arc::clone(&engine)).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run_inner(false));

        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        let _ = read_block(&mut reader);
        let (s, _) = roundtrip(&mut reader, &mut writer, "SHUTDOWN");
        assert_eq!(s, "OK bye");

        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            tx.send(handle.join()).ok();
        });
        let joined = rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("fallback wake-up stopped the accept loop");
        joined.unwrap().unwrap();
    }
}
