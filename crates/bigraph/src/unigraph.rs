//! Attributed unipartite graphs.
//!
//! The colorful pruning of the paper (§III-B, §IV-A) projects the fair
//! side of the bipartite graph onto a *2-hop graph* `H(V, E, A)`; this
//! module provides that target structure: an immutable CSR undirected
//! graph whose vertices carry one attribute value each.

use crate::graph::{AttrValueId, VertexId};
use serde::{Deserialize, Serialize};

/// An immutable, undirected, attributed unipartite graph.
///
/// Vertex ids are dense `0..n`. Adjacency lists are sorted ascending and
/// never contain self-loops.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UniGraph {
    offsets: Vec<usize>,
    adj: Vec<VertexId>,
    attrs: Vec<AttrValueId>,
    n_attrs: AttrValueId,
}

impl UniGraph {
    /// Build from an undirected edge list. Edges may appear in either or
    /// both orientations and with duplicates; self-loops are dropped.
    ///
    /// `attrs[i]` is the attribute value of vertex `i`; its length fixes
    /// the vertex count (edges must stay in range).
    pub fn from_edges(
        n_attrs: AttrValueId,
        attrs: Vec<AttrValueId>,
        edges: &[(VertexId, VertexId)],
    ) -> Self {
        let n = attrs.len();
        let mut dir: Vec<(VertexId, VertexId)> = Vec::with_capacity(edges.len() * 2);
        for &(a, b) in edges {
            assert!(
                (a as usize) < n && (b as usize) < n,
                "edge endpoint out of range"
            );
            if a != b {
                dir.push((a, b));
                dir.push((b, a));
            }
        }
        dir.sort_unstable();
        dir.dedup();
        let mut offsets = vec![0usize; n + 1];
        for &(a, _) in &dir {
            offsets[a as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let adj = dir.iter().map(|&(_, b)| b).collect();
        UniGraph {
            offsets,
            adj,
            attrs,
            n_attrs,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.attrs.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.adj.len() / 2
    }

    /// Number of attribute values in the domain.
    #[inline]
    pub fn n_attr_values(&self) -> AttrValueId {
        self.n_attrs
    }

    /// Sorted neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.adj[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.neighbors(v).len()
    }

    /// Attribute value of `v`.
    #[inline]
    pub fn attr(&self, v: VertexId) -> AttrValueId {
        self.attrs[v as usize]
    }

    /// Attribute values indexed by vertex id.
    #[inline]
    pub fn attrs(&self) -> &[AttrValueId] {
        &self.attrs
    }

    /// Whether `{a, b}` is an edge; `O(log deg)`.
    pub fn has_edge(&self, a: VertexId, b: VertexId) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Maximum degree (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.n() as VertexId)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Induce the subgraph on vertices where `keep` is true, compacting
    /// ids. Returns the subgraph and the map `new_id -> old_id`.
    pub fn induce(&self, keep: &[bool]) -> (UniGraph, Vec<VertexId>) {
        assert_eq!(keep.len(), self.n(), "keep mask length");
        let mut map = vec![VertexId::MAX; self.n()];
        let mut to_parent = Vec::new();
        for (old, &k) in keep.iter().enumerate() {
            if k {
                map[old] = to_parent.len() as VertexId;
                to_parent.push(old as VertexId);
            }
        }
        let mut edges = Vec::new();
        for &old in &to_parent {
            for &w in self.neighbors(old) {
                if w > old && map[w as usize] != VertexId::MAX {
                    edges.push((map[old as usize], map[w as usize]));
                }
            }
        }
        let attrs = to_parent
            .iter()
            .map(|&old| self.attrs[old as usize])
            .collect();
        (UniGraph::from_edges(self.n_attrs, attrs, &edges), to_parent)
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.offsets.capacity() * size_of::<usize>()
            + self.adj.capacity() * size_of::<VertexId>()
            + self.attrs.capacity() * size_of::<AttrValueId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_pendant() -> UniGraph {
        // 0-1, 1-2, 0-2 triangle; 3 pendant on 2
        UniGraph::from_edges(2, vec![0, 1, 0, 1], &[(0, 1), (1, 2), (2, 0), (2, 3)])
    }

    #[test]
    fn basics() {
        let g = triangle_plus_pendant();
        assert_eq!(g.n(), 4);
        assert_eq!(g.n_edges(), 4);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.degree(3), 1);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.attr(1), 1);
    }

    #[test]
    fn dedup_and_selfloop() {
        let g = UniGraph::from_edges(1, vec![0, 0], &[(0, 1), (1, 0), (0, 0), (0, 1)]);
        assert_eq!(g.n_edges(), 1);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
    }

    #[test]
    fn empty_and_isolated() {
        let g = UniGraph::from_edges(1, vec![0, 0, 0], &[]);
        assert_eq!(g.n(), 3);
        assert_eq!(g.n_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        let e = UniGraph::from_edges(1, vec![], &[]);
        assert_eq!(e.n(), 0);
        assert_eq!(e.max_degree(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        UniGraph::from_edges(1, vec![0], &[(0, 1)]);
    }

    #[test]
    fn induce_compacts() {
        let g = triangle_plus_pendant();
        let (sub, map) = g.induce(&[true, false, true, true]);
        assert_eq!(map, vec![0, 2, 3]);
        assert_eq!(sub.n(), 3);
        // surviving edges: (0,2) and (2,3) -> new (0,1), (1,2)
        assert_eq!(sub.n_edges(), 2);
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(1, 2));
        assert!(!sub.has_edge(0, 2));
        assert_eq!(sub.attr(1), g.attr(2));
    }
}
