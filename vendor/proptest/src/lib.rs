//! Vendored stand-in for `proptest` (no crates.io access in this
//! build environment). Implements the subset the workspace's property
//! tests use: the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`,
//! [`prop_oneof!`], [`strategy::Just`], range / tuple / string
//! strategies, `prop_map` / `prop_flat_map`, `collection::{vec,
//! btree_set}`, `bool::weighted`, and
//! [`test_runner::ProptestConfig::with_cases`].
//!
//! Differences from the real crate: cases are drawn from a
//! deterministic per-test RNG (seeded from the test name, so runs are
//! reproducible), assertion failures panic immediately with the case
//! number, and there is **no shrinking** of failing inputs.

pub mod test_runner {
    /// Runner configuration (only `cases` is honored).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod strategy {
    use rand::prelude::*;

    /// The RNG handed to strategies.
    pub type TestRng = StdRng;

    /// A generator of random values of one type.
    ///
    /// Unlike real proptest there is no value tree / shrinking:
    /// `generate` directly produces a value.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Build a dependent strategy from each generated value.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { source: self, f }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice among same-typed strategies (backs
    /// [`prop_oneof!`](crate::prop_oneof)).
    #[derive(Debug, Clone)]
    pub struct Union<S> {
        options: Vec<S>,
    }

    impl<S> Union<S> {
        /// A union over `options` (must be non-empty).
        pub fn new(options: Vec<S>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            let i = rng.random_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_half_open_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    macro_rules! impl_inclusive_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_half_open_range_strategy!(u8, u16, u32, u64, usize, f64);
    impl_inclusive_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// A `&str` used as a strategy stands for a regex in real proptest;
    /// the stub approximates every pattern with arbitrary garbage
    /// strings (ASCII, whitespace, digits, separators, and occasional
    /// multi-byte chars) of length 0..200 — the workspace only uses
    /// this for parser fuzz inputs.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            const POOL: &[char] = &[
                'a', 'b', 'z', 'A', 'Z', '0', '1', '9', ' ', '\t', '\n', '\r', '-', '+', '.', ',',
                ';', ':', '#', '%', '/', '\\', '"', '\'', '_', 'é', 'λ', '中', '\u{0}',
            ];
            let len = rng.random_range(0..200usize);
            (0..len)
                .map(|_| POOL[rng.random_range(0..POOL.len())])
                .collect()
        }
    }
}

pub mod collection {
    use crate::strategy::{Strategy, TestRng};
    use rand::prelude::*;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Collection size specification: a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            if self.lo >= self.hi {
                self.lo
            } else {
                rng.random_range(self.lo..self.hi)
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec`s of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s with `size` *distinct* elements
    /// (best-effort: gives up enlarging after a bounded number of
    /// duplicate draws, like the real crate's rejection limit).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = BTreeSet::new();
            let mut misses = 0usize;
            while out.len() < target && misses < 100 {
                if !out.insert(self.element.generate(rng)) {
                    misses += 1;
                }
            }
            out
        }
    }
}

pub mod bool {
    use crate::strategy::{Strategy, TestRng};
    use rand::prelude::*;

    /// Strategy yielding `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        Weighted { p }
    }

    /// See [`weighted`].
    #[derive(Debug, Clone, Copy)]
    pub struct Weighted {
        p: f64,
    }

    impl Strategy for Weighted {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.random_bool(self.p)
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::{Rng, SeedableRng};

    /// Deterministic per-test seed derived from the test's name.
    pub fn seed_for(name: &str) -> u64 {
        // FNV-1a: stable across runs and platforms (DefaultHasher is
        // also deterministic today, but that is not guaranteed).
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Assert inside a property (stub: plain `assert!` — panics, no
/// shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among same-typed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($strategy),+])
    };
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($config:expr; $(
        $(#[$meta:meta])+
        fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let seed = $crate::__rt::seed_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut rng = <$crate::strategy::TestRng as $crate::__rt::SeedableRng>::seed_from_u64(
                    seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let ($($pat,)+) = (
                    $($crate::strategy::Strategy::generate(&($strategy), &mut rng),)+
                );
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| $body));
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest case {case}/{} of {} failed (per-test seed {seed:#x})",
                        config.cases,
                        stringify!($name),
                    );
                    std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}
