//! Fair-set algebra: Definitions 11–12 and Algorithms 4 and 7 of the
//! paper, plus the proportion (`θ`) variants.
//!
//! A multiset of vertices with attribute counts `c = (c_0, …, c_{n-1})`
//! is a **fair set** for `(k, δ)` when every `c_i ≥ k` and
//! `max_i c_i − min_i c_i ≤ δ`. It is **proportion-fair** for
//! `(k, δ, θ)` when additionally every `c_i / Σc ≥ θ`.
//!
//! ## Why `MFSCheck` (Algorithm 4) is complete
//!
//! `Ŝ` is a *maximal fair subset* of `S` iff `Ŝ` is fair and no
//! non-empty addition from `C = S − Ŝ` keeps it fair. The check only
//! needs (a) the all-attributes case and (b) single-vertex additions:
//!
//! * If **every** attribute has a candidate left, adding one vertex of
//!   each attribute raises all counts by one — pairwise differences are
//!   unchanged and minima grow, so the result is fair: not maximal.
//! * Otherwise, suppose some addition vector `d ≠ 0` keeps the set
//!   fair, and let `i` be an attribute with `d_i ≥ 1`. The global
//!   minimum count is attained by some attribute without candidates
//!   (else adding one vertex of a minimum attribute is fair already and
//!   the single check fires), so the minimum never moves. If
//!   `c_i + d_i − min ≤ δ` then a fortiori `c_i + 1 − min ≤ δ`, i.e.
//!   the single-vertex check on `i` fires. Hence "no single addition
//!   fair and not all attributes have candidates" ⇒ maximal.
//!
//! ## Why `Combination` (Algorithm 7) sizes are unique
//!
//! Let `msize = min_i |S_i|`. In any maximal fair subset, the attribute
//! attaining the *chosen* minimum must be exhausted (otherwise one more
//! of it keeps the set fair), so the chosen minimum equals `msize`, and
//! every other attribute is either exhausted (`c_i = |S_i| ≤ msize+δ`)
//! or capped at `c_i = msize + δ`. Both cases equal
//! `min(|S_i|, msize+δ)`; hence all maximal fair subsets share the size
//! vector and Algorithm 7 enumerates per-attribute `c_i`-subsets.
//!
//! ## Proportion subtlety
//!
//! With the ratio constraint, adding to the minority attribute can
//! break the *other* attribute's ratio, so maximal proportion-fair
//! subsets are **not** captured by a single closed form in general.
//! [`max_pro_fair_size_vectors`] therefore searches the (small)
//! feasible size lattice exactly; [`combination_pro_paper_sizes`]
//! additionally exposes the paper's closed form
//! `c_i = min(|S_i|, msize+δ, ⌊msize·(1−θ)/θ⌋)`, which the tests
//! cross-validate on the paper's two-attribute setting.

use bigraph::VertexId;

/// Tolerance for ratio comparisons: `c/total ≥ θ` is evaluated as
/// `c + ε ≥ θ·total` to keep boundary cases (e.g. `θ = 0.5`, `c =
/// total/2`) stable under floating-point rounding.
const RATIO_EPS: f64 = 1e-9;

/// Attribute-count bookkeeping for a growing/shrinking vertex set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrCounts {
    counts: Vec<u32>,
}

impl AttrCounts {
    /// All-zero counts over `n_attrs` attribute values.
    pub fn zeros(n_attrs: usize) -> Self {
        AttrCounts {
            counts: vec![0; n_attrs],
        }
    }

    /// Counts of `vertices` under the vertex→attribute map `attrs`.
    pub fn of(vertices: &[VertexId], attrs: &[bigraph::AttrValueId], n_attrs: usize) -> Self {
        let mut c = AttrCounts::zeros(n_attrs);
        for &v in vertices {
            c.inc(attrs[v as usize]);
        }
        c
    }

    /// Zero every count in place (no reallocation).
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
    }

    /// Reset to the counts of `vertices` in place (no reallocation) —
    /// the hot-loop form of [`AttrCounts::of`].
    pub fn recount(&mut self, vertices: &[VertexId], attrs: &[bigraph::AttrValueId]) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        for &v in vertices {
            self.inc(attrs[v as usize]);
        }
    }

    /// Increment attribute `a`.
    #[inline]
    pub fn inc(&mut self, a: bigraph::AttrValueId) {
        self.counts[a as usize] += 1;
    }

    /// Decrement attribute `a` (panics on underflow in debug builds).
    #[inline]
    pub fn dec(&mut self, a: bigraph::AttrValueId) {
        debug_assert!(self.counts[a as usize] > 0);
        self.counts[a as usize] -= 1;
    }

    /// The raw count vector.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.counts
    }

    /// Total number of vertices counted.
    #[inline]
    pub fn total(&self) -> u32 {
        self.counts.iter().sum()
    }
}

/// Is `counts` a fair set for `(k, δ)` (Definition 11)?
pub fn is_fair(counts: &[u32], k: u32, delta: u32) -> bool {
    debug_assert!(!counts.is_empty());
    let mut min = u32::MAX;
    let mut max = 0u32;
    for &c in counts {
        if c < k {
            return false;
        }
        min = min.min(c);
        max = max.max(c);
    }
    max - min <= delta
}

/// Is `counts` proportion-fair for `(k, δ, θ)`: fair and every
/// attribute's share of the total at least `θ`?
///
/// An all-zero vector is proportion-fair iff `k == 0` (the ratio
/// constraint is vacuous on the empty set).
pub fn is_fair_pro(counts: &[u32], k: u32, delta: u32, theta: f64) -> bool {
    if !is_fair(counts, k, delta) {
        return false;
    }
    let total: u32 = counts.iter().sum();
    if total == 0 {
        return true; // is_fair already enforced k == 0
    }
    let min = *counts.iter().min().expect("non-empty counts");
    ratio_ok(min, total, theta)
}

#[inline]
fn ratio_ok(c: u32, total: u32, theta: f64) -> bool {
    c as f64 + RATIO_EPS >= theta * total as f64
}

/// `MFSCheck` (Algorithm 4): is the fair set with counts `base` a
/// *maximal* fair subset of the set with counts `base + cand`?
///
/// Completeness argument in the module docs. Runs in `O(n_attrs)`.
pub fn is_maximal_fair_subset(base: &[u32], cand: &[u32], k: u32, delta: u32) -> bool {
    debug_assert_eq!(base.len(), cand.len());
    // Line 1: Ŝ must itself be fair.
    if !is_fair(base, k, delta) {
        return false;
    }
    // Line 3: every attribute still has candidates -> add one of each.
    if cand.iter().all(|&c| c > 0) {
        return false;
    }
    // Lines 4-6: any single-vertex addition that stays fair?
    let mut scratch = base.to_vec();
    for i in 0..base.len() {
        if cand[i] > 0 {
            scratch[i] += 1;
            let ok = is_fair(&scratch, k, delta);
            scratch[i] -= 1;
            if ok {
                return false;
            }
        }
    }
    true
}

/// Proportion-aware `MFSCheck`: is the proportion-fair set `base` a
/// maximal proportion-fair subset of `base + cand`?
///
/// Mirrors Algorithm 4 with [`is_fair_pro`] as the feasibility test.
/// The "add one of each attribute" shortcut remains valid under the
/// ratio constraint: for an attribute at or below the average share,
/// `(c+1)/(t+n) ≥ c/t`; for one above the average, `(c+1)/(t+n) ≥ 1/n
/// ≥ θ` (the models require `θ ≤ 1/n`). The single-addition sweep is
/// exact for two attribute values — the paper's setting; the
/// brute-force oracle uses [`exists_fair_extension`] instead.
pub fn is_maximal_fair_subset_pro(
    base: &[u32],
    cand: &[u32],
    k: u32,
    delta: u32,
    theta: f64,
) -> bool {
    debug_assert_eq!(base.len(), cand.len());
    if !is_fair_pro(base, k, delta, theta) {
        return false;
    }
    if cand.iter().all(|&c| c > 0) {
        return false;
    }
    let mut scratch = base.to_vec();
    for i in 0..base.len() {
        if cand[i] > 0 {
            scratch[i] += 1;
            let ok = is_fair_pro(&scratch, k, delta, theta);
            scratch[i] -= 1;
            if ok {
                return false;
            }
        }
    }
    true
}

/// Exhaustive extension search (the oracle's maximality test): does any
/// non-zero addition vector `d` with `d_i ≤ cand_i` make `base + d`
/// (proportion-)fair? Exponential in principle, but the ranges are the
/// candidate counts of tiny test graphs.
pub fn exists_fair_extension(
    base: &[u32],
    cand: &[u32],
    k: u32,
    delta: u32,
    theta: Option<f64>,
) -> bool {
    #[allow(clippy::too_many_arguments)]
    fn rec(
        base: &[u32],
        cand: &[u32],
        k: u32,
        delta: u32,
        theta: Option<f64>,
        i: usize,
        cur: &mut Vec<u32>,
        nonzero: bool,
    ) -> bool {
        if i == base.len() {
            if !nonzero {
                return false;
            }
            return match theta {
                None => is_fair(cur, k, delta),
                Some(t) => is_fair_pro(cur, k, delta, t),
            };
        }
        for d in 0..=cand[i] {
            cur[i] = base[i] + d;
            if rec(base, cand, k, delta, theta, i + 1, cur, nonzero || d > 0) {
                return true;
            }
        }
        cur[i] = base[i];
        false
    }
    let mut cur = base.to_vec();
    rec(base, cand, k, delta, theta, 0, &mut cur, false)
}

/// The unique maximal-fair-subset size vector of a set with
/// per-attribute availabilities `counts` (`Combination`, Algorithm 7,
/// lines 3–5), or `None` when no fair subset exists.
pub fn combination_sizes(counts: &[u32], k: u32, delta: u32) -> Option<Vec<u32>> {
    debug_assert!(!counts.is_empty());
    let msize = *counts.iter().min().expect("non-empty counts");
    if msize < k {
        return None;
    }
    Some(
        counts
            .iter()
            .map(|&c| c.min(msize.saturating_add(delta)))
            .collect(),
    )
}

/// The paper's closed-form `CombinationPro` size vector:
/// `c_i = min(|S_i|, msize+δ, ⌊msize·(1−θ)/θ⌋)`. Exact for two
/// attribute values; `None` when no proportion-fair subset exists
/// (some `|S_i| < k`, or the resulting vector fails the ratio test).
pub fn combination_pro_paper_sizes(
    counts: &[u32],
    k: u32,
    delta: u32,
    theta: f64,
) -> Option<Vec<u32>> {
    debug_assert!(!counts.is_empty());
    let msize = *counts.iter().min().expect("non-empty counts");
    if msize < k {
        return None;
    }
    let ratio_cap: u32 = if theta <= 0.0 {
        u32::MAX
    } else {
        // msize / (msize + csize) >= theta  <=>  csize <= msize*(1-theta)/theta
        ((msize as f64) * (1.0 - theta) / theta + RATIO_EPS).floor() as u32
    };
    let sizes: Vec<u32> = counts
        .iter()
        .map(|&c| c.min(msize.saturating_add(delta)).min(ratio_cap))
        .collect();
    if is_fair_pro(&sizes, k, delta, theta) {
        Some(sizes)
    } else {
        None
    }
}

/// All maximal proportion-fair size vectors for availabilities
/// `counts`: size vectors `c` with `k ≤ c_i ≤ counts_i`, fair spread,
/// every ratio `≥ θ`, and no componentwise-larger feasible vector.
///
/// This is the exact `CombinationPro` used by the enumerators; the
/// feasible lattice is tiny (`O(msize·(δ+1)^n)`) because the spread
/// constraint pins all components within `δ` of the minimum.
pub fn max_pro_fair_size_vectors(counts: &[u32], k: u32, delta: u32, theta: f64) -> Vec<Vec<u32>> {
    debug_assert!(!counts.is_empty());
    let msize = *counts.iter().min().expect("non-empty counts");
    if msize < k {
        return Vec::new();
    }
    // Enumerate all feasible vectors, pruning by the spread constraint.
    let mut feasible: Vec<Vec<u32>> = Vec::new();
    let mut cur = vec![0u32; counts.len()];
    #[allow(clippy::too_many_arguments)]
    fn rec(
        counts: &[u32],
        k: u32,
        delta: u32,
        theta: f64,
        i: usize,
        lo_seen: u32,
        hi_seen: u32,
        cur: &mut Vec<u32>,
        out: &mut Vec<Vec<u32>>,
    ) {
        if i == counts.len() {
            let total: u32 = cur.iter().sum();
            let min = *cur.iter().min().expect("non-empty");
            if total == 0 || ratio_ok(min, total, theta) {
                out.push(cur.clone());
            }
            return;
        }
        // c_i must respect k, availability, and stay within delta of
        // everything chosen so far.
        let lo = k.max(hi_seen.saturating_sub(delta));
        let hi = counts[i].min(lo_seen.saturating_add(delta));
        let mut c = lo;
        while c <= hi {
            cur[i] = c;
            rec(
                counts,
                k,
                delta,
                theta,
                i + 1,
                lo_seen.min(c),
                hi_seen.max(c),
                cur,
                out,
            );
            c += 1;
        }
    }
    rec(
        counts,
        k,
        delta,
        theta,
        0,
        u32::MAX,
        0,
        &mut cur,
        &mut feasible,
    );

    // Keep only the maximal elements of the componentwise order.
    let mut maximal: Vec<Vec<u32>> = Vec::new();
    'outer: for v in &feasible {
        for w in &feasible {
            if w != v && v.iter().zip(w).all(|(a, b)| a <= b) {
                continue 'outer;
            }
        }
        maximal.push(v.clone());
    }
    maximal
}

/// Visit every `k_`-subset of `items` (ascending index order) without
/// allocation beyond one scratch buffer. `k_ == 0` visits the empty
/// subset once; `k_ > items.len()` visits nothing.
///
/// The callback returns `true` to continue; returning `false` stops
/// the enumeration early (budget enforcement — per-subset counts can
/// be astronomically large). The function returns `false` iff stopped.
pub fn for_each_ksubset(
    items: &[VertexId],
    k_: usize,
    f: &mut dyn FnMut(&[VertexId]) -> bool,
) -> bool {
    if k_ > items.len() {
        return true;
    }
    if k_ == 0 {
        return f(&[]);
    }
    let mut idx: Vec<usize> = (0..k_).collect();
    let mut scratch: Vec<VertexId> = Vec::with_capacity(k_);
    loop {
        scratch.clear();
        scratch.extend(idx.iter().map(|&i| items[i]));
        if !f(&scratch) {
            return false;
        }
        // Advance to next lexicographic combination.
        let mut i = k_;
        loop {
            if i == 0 {
                return true;
            }
            i -= 1;
            if idx[i] != i + items.len() - k_ {
                break;
            }
        }
        idx[i] += 1;
        for j in i + 1..k_ {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// Emit the cartesian product of per-group `sizes[i]`-subsets, merged
/// and sorted (the set expansion step of Algorithm 7, lines 6–9).
///
/// Generic over the group storage (`&[&[VertexId]]` or
/// `&[Vec<VertexId>]`) so hot callers can pass their long-lived
/// per-attribute scratch buffers without building a slice-of-slices
/// view per call. Early-terminates (returning `false`) when the
/// callback does.
pub fn for_each_sized_product<G: AsRef<[VertexId]>>(
    groups: &[G],
    sizes: &[u32],
    f: &mut dyn FnMut(&[VertexId]) -> bool,
) -> bool {
    debug_assert_eq!(groups.len(), sizes.len());
    struct Emitter<'f> {
        f: &'f mut dyn FnMut(&[VertexId]) -> bool,
        buf: Vec<VertexId>,
        scratch: Vec<VertexId>,
    }
    impl Emitter<'_> {
        fn rec<G: AsRef<[VertexId]>>(&mut self, groups: &[G], sizes: &[u32]) -> bool {
            match groups.split_first() {
                None => {
                    self.scratch.clear();
                    self.scratch.extend_from_slice(&self.buf);
                    self.scratch.sort_unstable();
                    (self.f)(&self.scratch)
                }
                Some((g0, rest)) => {
                    let (s0, sr) = sizes.split_first().expect("sizes match groups");
                    let this = self;
                    for_each_ksubset(g0.as_ref(), *s0 as usize, &mut |sub| {
                        let base = this.buf.len();
                        this.buf.extend_from_slice(sub);
                        let go_on = this.rec(rest, sr);
                        this.buf.truncate(base);
                        go_on
                    })
                }
            }
        }
    }
    let mut e = Emitter {
        f,
        buf: Vec::new(),
        scratch: Vec::new(),
    };
    e.rec(groups, sizes)
}

/// `Combination` (Algorithm 7): all maximal fair subsets of the set
/// whose members are given per attribute in `groups`. Results sorted.
/// Early-terminates (returning `false`) when the callback does.
pub fn for_each_max_fair_subset<G: AsRef<[VertexId]>>(
    groups: &[G],
    k: u32,
    delta: u32,
    f: &mut dyn FnMut(&[VertexId]) -> bool,
) -> bool {
    let counts: Vec<u32> = groups.iter().map(|g| g.as_ref().len() as u32).collect();
    match combination_sizes(&counts, k, delta) {
        Some(sizes) => for_each_sized_product(groups, &sizes, f),
        None => true,
    }
}

/// Exact `CombinationPro`: all maximal proportion-fair subsets of the
/// per-attribute `groups`. Early-terminates (returning `false`) when
/// the callback does.
pub fn for_each_max_pro_fair_subset<G: AsRef<[VertexId]>>(
    groups: &[G],
    k: u32,
    delta: u32,
    theta: f64,
    f: &mut dyn FnMut(&[VertexId]) -> bool,
) -> bool {
    let counts: Vec<u32> = groups.iter().map(|g| g.as_ref().len() as u32).collect();
    for sizes in max_pro_fair_size_vectors(&counts, k, delta, theta) {
        if !for_each_sized_product(groups, &sizes, f) {
            return false;
        }
    }
    true
}

/// Collecting wrapper around [`for_each_max_fair_subset`].
pub fn max_fair_subsets(groups: &[&[VertexId]], k: u32, delta: u32) -> Vec<Vec<VertexId>> {
    let mut out = Vec::new();
    for_each_max_fair_subset(groups, k, delta, &mut |s| {
        out.push(s.to_vec());
        true
    });
    out
}

/// Collecting wrapper around [`for_each_max_pro_fair_subset`].
pub fn max_pro_fair_subsets(
    groups: &[&[VertexId]],
    k: u32,
    delta: u32,
    theta: f64,
) -> Vec<Vec<VertexId>> {
    let mut out = Vec::new();
    for_each_max_pro_fair_subset(groups, k, delta, theta, &mut |s| {
        out.push(s.to_vec());
        true
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fairness_basics() {
        assert!(is_fair(&[2, 3], 2, 1));
        assert!(!is_fair(&[2, 3], 3, 1)); // k violated
        assert!(!is_fair(&[2, 4], 2, 1)); // delta violated
        assert!(is_fair(&[5], 1, 0)); // single attribute: spread vacuous
        assert!(is_fair(&[0, 0], 0, 0));
        assert!(!is_fair(&[0, 1], 0, 0));
    }

    #[test]
    fn pro_fairness() {
        assert!(is_fair_pro(&[2, 3], 2, 1, 0.4)); // 2/5 = 0.4
        assert!(!is_fair_pro(&[2, 3], 2, 1, 0.45));
        assert!(is_fair_pro(&[3, 3], 2, 1, 0.5));
        assert!(is_fair_pro(&[0, 0], 0, 0, 0.5)); // empty set
        assert!(is_fair_pro(&[2, 2], 2, 0, 0.0)); // theta 0 = plain fair
    }

    #[test]
    fn mfs_check_all_attrs_have_candidates() {
        // Both attrs have candidates -> never maximal.
        assert!(!is_maximal_fair_subset(&[2, 2], &[1, 1], 2, 0));
    }

    #[test]
    fn mfs_check_single_additions() {
        // base (3,2), delta 1: adding one of attr 0 -> (4,2) breaks.
        assert!(is_maximal_fair_subset(&[3, 2], &[5, 0], 2, 1));
        // base (2,2): adding one of attr 0 -> (3,2) fair -> not maximal.
        assert!(!is_maximal_fair_subset(&[2, 2], &[5, 0], 2, 1));
        // base not fair -> false.
        assert!(!is_maximal_fair_subset(&[1, 2], &[0, 0], 2, 1));
        // no candidates at all -> maximal iff fair.
        assert!(is_maximal_fair_subset(&[2, 2], &[0, 0], 2, 1));
    }

    #[test]
    fn mfs_check_matches_exhaustive_search() {
        // Cross-validate the O(n) check against the exponential oracle.
        for k in 0..3u32 {
            for delta in 0..3u32 {
                for b0 in 0..4u32 {
                    for b1 in 0..4u32 {
                        for c0 in 0..3u32 {
                            for c1 in 0..3u32 {
                                let base = [b0, b1];
                                let cand = [c0, c1];
                                let fast = is_maximal_fair_subset(&base, &cand, k, delta);
                                let slow = is_fair(&base, k, delta)
                                    && !exists_fair_extension(&base, &cand, k, delta, None);
                                assert_eq!(
                                    fast, slow,
                                    "base={base:?} cand={cand:?} k={k} d={delta}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn mfs_check_three_attrs_matches_exhaustive() {
        for k in 0..2u32 {
            for delta in 0..3u32 {
                for base in [[2, 2, 2], [3, 2, 2], [4, 2, 3], [2, 4, 4]] {
                    for cand in [[0, 0, 0], [1, 0, 0], [1, 1, 0], [1, 1, 1], [2, 0, 2]] {
                        let fast = is_maximal_fair_subset(&base, &cand, k, delta);
                        let slow = is_fair(&base, k, delta)
                            && !exists_fair_extension(&base, &cand, k, delta, None);
                        assert_eq!(fast, slow, "base={base:?} cand={cand:?} k={k} d={delta}");
                    }
                }
            }
        }
    }

    #[test]
    fn mfs_check_pro_matches_exhaustive_two_attrs() {
        for theta in [0.0, 0.3, 0.4, 0.45, 0.5] {
            for k in 0..3u32 {
                for delta in 0..3u32 {
                    for b0 in 0..5u32 {
                        for b1 in 0..5u32 {
                            for c0 in 0..3u32 {
                                for c1 in 0..3u32 {
                                    let base = [b0, b1];
                                    let cand = [c0, c1];
                                    let fast =
                                        is_maximal_fair_subset_pro(&base, &cand, k, delta, theta);
                                    let slow = is_fair_pro(&base, k, delta, theta)
                                        && !exists_fair_extension(
                                            &base,
                                            &cand,
                                            k,
                                            delta,
                                            Some(theta),
                                        );
                                    assert_eq!(
                                        fast, slow,
                                        "base={base:?} cand={cand:?} k={k} d={delta} t={theta}"
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn combination_sizes_formula() {
        assert_eq!(combination_sizes(&[3, 10], 1, 1), Some(vec![3, 4]));
        assert_eq!(combination_sizes(&[5, 2], 1, 1), Some(vec![3, 2]));
        assert_eq!(combination_sizes(&[5, 2, 9], 1, 1), Some(vec![3, 2, 3]));
        assert_eq!(combination_sizes(&[5, 1], 2, 1), None); // attr 1 below k
        assert_eq!(combination_sizes(&[4, 4], 2, 0), Some(vec![4, 4]));
    }

    #[test]
    fn ksubsets_enumeration() {
        let items = [10u32, 20, 30, 40];
        let mut seen = Vec::new();
        for_each_ksubset(&items, 2, &mut |s| {
            seen.push(s.to_vec());
            true
        });
        assert_eq!(seen.len(), 6);
        assert_eq!(seen[0], vec![10, 20]);
        assert_eq!(seen[5], vec![30, 40]);
        let mut n0 = 0;
        for_each_ksubset(&items, 0, &mut |s| {
            assert!(s.is_empty());
            n0 += 1;
            true
        });
        assert_eq!(n0, 1);
        let mut n5 = 0;
        for_each_ksubset(&items, 5, &mut |_| {
            n5 += 1;
            true
        });
        assert_eq!(n5, 0);
        let mut n4 = 0;
        for_each_ksubset(&items, 4, &mut |s| {
            assert_eq!(s, &items);
            n4 += 1;
            true
        });
        assert_eq!(n4, 1);
    }

    #[test]
    fn product_enumeration_early_stops() {
        // The callback returning false must abort the whole cartesian
        // product immediately (budget enforcement path).
        let g0: Vec<VertexId> = (0..6).collect();
        let g1: Vec<VertexId> = (10..16).collect();
        let mut n = 0;
        let stopped = for_each_sized_product(&[&g0, &g1], &[3, 3], &mut |_| {
            n += 1;
            n < 5
        });
        assert!(!stopped);
        assert_eq!(n, 5, "stopped after the 5th emission");
        // And a full run visits C(6,3)^2 = 400 subsets.
        let mut total = 0;
        let finished = for_each_sized_product(&[&g0, &g1], &[3, 3], &mut |s| {
            assert_eq!(s.len(), 6);
            total += 1;
            true
        });
        assert!(finished);
        assert_eq!(total, 400);
    }

    #[test]
    fn combination_enumerates_all_maximal_fair_subsets() {
        // groups: attr0 = {0,1,2}, attr1 = {10,11}, k=1, delta=0
        // sizes = (2,2) -> C(3,2)*C(2,2) = 3 subsets
        let g0: Vec<VertexId> = vec![0, 1, 2];
        let g1: Vec<VertexId> = vec![10, 11];
        let subs = max_fair_subsets(&[&g0, &g1], 1, 0);
        assert_eq!(subs.len(), 3);
        for s in &subs {
            assert_eq!(s.len(), 4);
            assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted output");
            assert!(s.contains(&10) && s.contains(&11));
        }
        // Below k -> nothing.
        let empty: Vec<VertexId> = vec![];
        assert!(max_fair_subsets(&[&g0, &empty], 1, 5).is_empty());
    }

    #[test]
    fn combination_count_formula() {
        // |S0|=4, |S1|=2, k=1, delta=1 -> sizes (3,2) -> C(4,3)*C(2,2)=4
        let g0: Vec<VertexId> = (0..4).collect();
        let g1: Vec<VertexId> = (10..12).collect();
        assert_eq!(max_fair_subsets(&[&g0, &g1], 1, 1).len(), 4);
    }

    #[test]
    fn pro_lattice_vs_paper_closed_form_two_attrs() {
        // On 2 attributes the paper's closed form must equal the unique
        // maximal vector whenever it exists.
        for s0 in 1..8u32 {
            for s1 in 1..8u32 {
                for k in 1..3u32 {
                    for delta in 0..3u32 {
                        for theta in [0.3, 0.4, 0.45, 0.5] {
                            let counts = [s0, s1];
                            let lattice = max_pro_fair_size_vectors(&counts, k, delta, theta);
                            let paper = combination_pro_paper_sizes(&counts, k, delta, theta);
                            match paper {
                                Some(sz) => {
                                    assert_eq!(
                                        lattice,
                                        vec![sz],
                                        "counts={counts:?} k={k} d={delta} t={theta}"
                                    );
                                }
                                None => assert!(
                                    lattice.is_empty(),
                                    "counts={counts:?} k={k} d={delta} t={theta}: {lattice:?}"
                                ),
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn pro_lattice_vectors_are_feasible_and_maximal() {
        let counts = [6u32, 4, 9];
        for theta in [0.0, 0.2, 0.3] {
            for delta in 0..3u32 {
                let vecs = max_pro_fair_size_vectors(&counts, 1, delta, theta);
                for v in &vecs {
                    assert!(is_fair_pro(v, 1, delta, theta), "{v:?}");
                    assert!(v.iter().zip(&counts).all(|(a, b)| a <= b));
                    // No single-step extension may be feasible
                    // (necessary condition for maximality).
                    for i in 0..3 {
                        if v[i] < counts[i] {
                            let mut w = v.clone();
                            w[i] += 1;
                            // w may be feasible only if some other
                            // feasible vector dominates... it must not
                            // be feasible itself:
                            assert!(
                                !is_fair_pro(&w, 1, delta, theta)
                                    || vecs
                                        .iter()
                                        .any(|m| m != v && v.iter().zip(m).all(|(a, b)| a <= b)),
                                "extension {w:?} of {v:?} feasible"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn pro_theta_zero_matches_plain_combination() {
        for s0 in 1..6u32 {
            for s1 in 1..6u32 {
                for delta in 0..3u32 {
                    let counts = [s0, s1];
                    let plain = combination_sizes(&counts, 1, delta).unwrap();
                    let pro = max_pro_fair_size_vectors(&counts, 1, delta, 0.0);
                    assert_eq!(pro, vec![plain]);
                }
            }
        }
    }

    #[test]
    fn attr_counts_bookkeeping() {
        let attrs: Vec<bigraph::AttrValueId> = vec![0, 1, 0, 1, 1];
        let mut c = AttrCounts::of(&[0, 1, 2], &attrs, 2);
        assert_eq!(c.as_slice(), &[2, 1]);
        assert_eq!(c.total(), 3);
        c.inc(1);
        c.dec(0);
        assert_eq!(c.as_slice(), &[1, 2]);
        let z = AttrCounts::zeros(3);
        assert_eq!(z.total(), 0);
    }
}
