//! User-based collaborative filtering (the `CF` algorithm of the
//! paper's Jobs/Movies case studies, §V-C).
//!
//! The paper contrasts plain CF top-5 recommendations (which exhibit
//! popularity/recency bias) with fair bicliques mined from the graph
//! that connects each user to their top-k CF recommendations. This
//! module provides that substrate:
//!
//! 1. [`user_similarity`] — cosine similarity over binary interaction
//!    vectors: `sim(u, u') = |N(u) ∩ N(u')| / √(|N(u)|·|N(u')|)`;
//! 2. [`recommend`] — score every unseen item by the similarity-
//!    weighted count of similar users who interacted with it;
//! 3. [`recommendation_graph`] — the bipartite graph whose edges are
//!    each user's top-k recommendations (attributes preserved), i.e.
//!    exactly the `G'` the paper feeds to `FairBCEM++`.

use bigraph::{intersect_sorted_count, BipartiteGraph, GraphBuilder, Side, VertexId};

/// Cosine similarity between two users' item sets (0 when either has
/// no interactions).
pub fn user_similarity(g: &BipartiteGraph, u1: VertexId, u2: VertexId) -> f64 {
    let n1 = g.neighbors(Side::Upper, u1);
    let n2 = g.neighbors(Side::Upper, u2);
    if n1.is_empty() || n2.is_empty() {
        return 0.0;
    }
    let common = intersect_sorted_count(n1, n2) as f64;
    common / ((n1.len() as f64) * (n2.len() as f64)).sqrt()
}

/// A scored recommendation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Recommendation {
    /// The recommended item (lower-side vertex).
    pub item: VertexId,
    /// CF score (higher is better).
    pub score: f64,
}

/// Top-`k` unseen items for `user`, ranked by the similarity-weighted
/// vote of all other users (ties broken by item id for determinism).
pub fn recommend(g: &BipartiteGraph, user: VertexId, k: usize) -> Vec<Recommendation> {
    let n_items = g.n_lower();
    let mut score = vec![0.0f64; n_items];
    let seen = g.neighbors(Side::Upper, user);

    for other in 0..g.n_upper() as VertexId {
        if other == user {
            continue;
        }
        let sim = user_similarity(g, user, other);
        if sim <= 0.0 {
            continue;
        }
        for &item in g.neighbors(Side::Upper, other) {
            score[item as usize] += sim;
        }
    }
    let mut ranked: Vec<Recommendation> = (0..n_items as VertexId)
        .filter(|i| seen.binary_search(i).is_err())
        .map(|item| Recommendation {
            item,
            score: score[item as usize],
        })
        .filter(|r| r.score > 0.0)
        .collect();
    ranked.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("scores are finite")
            .then_with(|| a.item.cmp(&b.item))
    });
    ranked.truncate(k);
    ranked
}

/// Build the top-`k` recommendation graph `G'`: edge `(u, i)` iff item
/// `i` is among user `u`'s top-k CF recommendations. Vertex sets and
/// attributes are copied from the interaction graph.
pub fn recommendation_graph(g: &BipartiteGraph, k: usize) -> BipartiteGraph {
    let mut b = GraphBuilder::new(g.n_attr_values(Side::Upper), g.n_attr_values(Side::Lower))
        .with_edge_capacity(g.n_upper() * k);
    b.ensure_vertices(g.n_upper(), g.n_lower());
    for user in 0..g.n_upper() as VertexId {
        for rec in recommend(g, user, k) {
            b.add_edge(user, rec.item);
        }
    }
    b.set_attrs_upper(g.attrs(Side::Upper));
    b.set_attrs_lower(g.attrs(Side::Lower));
    b.build().expect("recommendation graphs are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two user cliques with one bridge item.
    fn two_communities() -> BipartiteGraph {
        let mut b = GraphBuilder::new(1, 1);
        // users 0,1,2 like items 0,1,2 ; users 3,4 like items 3,4
        for u in 0..3 {
            for v in 0..3 {
                b.add_edge(u, v);
            }
        }
        for u in 3..5 {
            for v in 3..5 {
                b.add_edge(u, v);
            }
        }
        // user 0 also likes item 3 (bridge)
        b.add_edge(0, 3);
        b.build().unwrap()
    }

    #[test]
    fn similarity_is_cosine() {
        let g = two_communities();
        // users 1,2 share all 3 items: sim = 3/sqrt(9) = 1.
        assert!((user_similarity(&g, 1, 2) - 1.0).abs() < 1e-12);
        // user 1 vs 3: no overlap.
        assert_eq!(user_similarity(&g, 1, 3), 0.0);
        // symmetric
        assert!((user_similarity(&g, 0, 1) - user_similarity(&g, 1, 0)).abs() < 1e-12);
    }

    #[test]
    fn recommendations_follow_community() {
        let g = two_communities();
        // user 1 hasn't seen items 3,4; item 3 is reachable through
        // user 0 (sim > 0 via shared items 0,1,2).
        let recs = recommend(&g, 1, 5);
        assert!(!recs.is_empty());
        assert_eq!(recs[0].item, 3, "bridge item recommended first");
        // never recommends seen items
        for r in &recs {
            assert!(g.neighbors(Side::Upper, 1).binary_search(&r.item).is_err());
        }
        // scores are sorted
        for w in recs.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn top_k_truncates() {
        let g = two_communities();
        let r1 = recommend(&g, 1, 1);
        assert_eq!(r1.len(), 1);
        let r0 = recommend(&g, 1, 0);
        assert!(r0.is_empty());
    }

    #[test]
    fn recommendation_graph_shape() {
        let g = two_communities();
        let rg = recommendation_graph(&g, 2);
        rg.validate().unwrap();
        assert_eq!(rg.n_upper(), g.n_upper());
        assert_eq!(rg.n_lower(), g.n_lower());
        // each user has at most 2 recommendation edges
        for u in 0..rg.n_upper() as VertexId {
            assert!(rg.degree(Side::Upper, u) <= 2);
        }
        // recommendation edges are new items only
        for (u, v) in rg.edges() {
            assert!(!g.has_edge(u, v));
        }
    }

    #[test]
    fn isolated_user_gets_nothing() {
        let mut b = GraphBuilder::new(1, 1);
        b.add_edge(0, 0);
        b.add_edge(1, 0);
        b.ensure_vertices(3, 2); // user 2 has no interactions
        let g = b.build().unwrap();
        assert_eq!(user_similarity(&g, 2, 0), 0.0);
        assert!(recommend(&g, 2, 5).is_empty());
        let rg = recommendation_graph(&g, 5);
        assert_eq!(rg.degree(bigraph::Side::Upper, 2), 0);
    }

    #[test]
    fn user_with_everything_seen_gets_nothing() {
        let mut b = GraphBuilder::new(1, 1);
        for v in 0..3 {
            b.add_edge(0, v);
            b.add_edge(1, v);
        }
        let g = b.build().unwrap();
        assert!(recommend(&g, 0, 5).is_empty(), "no unseen items");
    }

    #[test]
    fn deterministic_ranking_with_ties() {
        let g = two_communities();
        let a = recommend(&g, 3, 3);
        let b = recommend(&g, 3, 3);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.item, y.item);
        }
    }
}
