//! Golden snapshot tests: three small fixed corpora (uniform,
//! power-law, planted-biclique) with committed expected sorted TSV
//! output. Every miner × substrate × thread-count combination must
//! reproduce its snapshot **byte-for-byte** — any drift in the
//! enumeration order contract, the canonical ordering, or the
//! substrate's exactness fails loudly here.
//!
//! Regenerate after an intentional change with:
//! `BLESS_GOLDEN=1 cargo test -p fbe-integration --test substrate_golden`

use bigraph::generate::{chung_lu_power_law, plant_bicliques, random_uniform};
use bigraph::BipartiteGraph;
use fair_biclique::config::{FairParams, ProParams, RunConfig, Substrate};
use fair_biclique::maximum::{max_bsfbc, max_ssfbc, SizeMetric};
use fair_biclique::pipeline::{
    enumerate_bsfbc, enumerate_pbsfbc, enumerate_pssfbc, enumerate_ssfbc,
};
use fair_biclique::results::write_tsv;
use std::path::PathBuf;

const SUBSTRATES: [Substrate; 3] = [Substrate::SortedVec, Substrate::Bitset, Substrate::Auto];
const THREADS: [usize; 2] = [1, 4];

fn corpora() -> Vec<(&'static str, BipartiteGraph)> {
    vec![
        ("uniform", random_uniform(20, 22, 130, 2, 2, 42)),
        (
            "powerlaw",
            chung_lu_power_law(26, 26, 170, 2.2, 2.2, 2, 2, 43),
        ),
        (
            "planted",
            plant_bicliques(&random_uniform(30, 30, 120, 2, 2, 44), 2, 5, 6, 1.0, 45),
        ),
    ]
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("golden")
        .join(format!("{name}.tsv"))
}

/// Compare `got` against the committed snapshot (or write it under
/// `BLESS_GOLDEN=1`).
fn check(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with BLESS_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(got, want, "{name}: output diverged from committed snapshot");
}

fn tsv(bicliques: &[fair_biclique::biclique::Biclique]) -> String {
    let mut buf = Vec::new();
    write_tsv(bicliques, &mut buf).unwrap();
    String::from_utf8(buf).unwrap()
}

fn cfg(substrate: Substrate, threads: usize) -> RunConfig {
    RunConfig {
        substrate,
        threads,
        sorted: true,
        ..RunConfig::default()
    }
}

#[test]
fn golden_enumeration_snapshots() {
    let params = FairParams::unchecked(2, 1, 1);
    let bi_params = FairParams::unchecked(1, 1, 1);
    let pro = ProParams::new(1, 1, 2, 0.35).unwrap();
    for (corpus, g) in corpora() {
        for substrate in SUBSTRATES {
            for threads in THREADS {
                let c = cfg(substrate, threads);
                let tag = format!("{substrate}/{threads}t");
                let ss = enumerate_ssfbc(&g, params, &c);
                assert!(!ss.stats.aborted);
                check(&format!("{corpus}_ssfbc"), &tsv(&ss.bicliques));
                let bs = enumerate_bsfbc(&g, bi_params, &c);
                check(&format!("{corpus}_bsfbc"), &tsv(&bs.bicliques));
                let ps = enumerate_pssfbc(&g, pro, &c);
                check(&format!("{corpus}_pssfbc"), &tsv(&ps.bicliques));
                let pb = enumerate_pbsfbc(&g, pro, &c);
                check(&format!("{corpus}_pbsfbc"), &tsv(&pb.bicliques));
                // Bless mode writes each snapshot several times (once
                // per combination) — identical content by the
                // differential guarantee, which the read mode then
                // certifies byte-for-byte for every combination.
                let _ = tag;
            }
        }
    }
}

#[test]
fn golden_maximum_snapshots() {
    let params = FairParams::unchecked(2, 1, 1);
    for (corpus, g) in corpora() {
        for substrate in SUBSTRATES {
            for threads in THREADS {
                let c = cfg(substrate, threads);
                let (best_ss, _) = max_ssfbc(&g, params, SizeMetric::Vertices, &c);
                let (best_bi, _) = max_bsfbc(&g, params, SizeMetric::Vertices, &c);
                let render = |b: &Option<fair_biclique::biclique::Biclique>| match b {
                    Some(b) => tsv(std::slice::from_ref(b)),
                    None => "none\n".to_string(),
                };
                check(&format!("{corpus}_max_ssfbc"), &render(&best_ss));
                check(&format!("{corpus}_max_bsfbc"), &render(&best_bi));
            }
        }
    }
}
