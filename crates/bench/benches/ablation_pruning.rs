//! Ablation bench: contribution of each pruning stage to end-to-end
//! enumeration time. Run: `cargo bench --bench ablation_pruning`.

fn main() {
    let opts = fbe_bench::Opts::from_args();
    println!(
        "=== Ablation: pruning stages (budget {:?}/run) ===",
        opts.budget
    );
    for (i, t) in fbe_bench::experiments::ablation_pruning(&opts)
        .into_iter()
        .enumerate()
    {
        t.print();
        t.save(&format!("ablation_pruning_{i}"));
    }
}
