//! End-to-end smoke tests over the full stack: corpus generation,
//! pruning, enumeration, case studies, CF recommender, and IO
//! round-trips — the paths the examples and benches exercise.

use bigraph::{Side, VertexId};
use fair_biclique::biclique::CountSink;
use fair_biclique::config::{Budget, PruneKind, RunConfig, VertexOrder};
use fair_biclique::pipeline::{run_bsfbc, run_ssfbc, BiAlgorithm, SsAlgorithm};
use fbe_datasets::case_studies::{dbda, jobs, movies};
use fbe_datasets::cf::{recommend, recommendation_graph};
use fbe_datasets::corpus::{spec, Dataset};

fn default_cfg() -> RunConfig {
    RunConfig {
        prune: PruneKind::Colorful,
        order: VertexOrder::DegreeDesc,
        budget: Budget::time(std::time::Duration::from_secs(20)),
        ..RunConfig::default()
    }
}

#[test]
fn youtube_corpus_pipeline_finds_planted_structure() {
    let s = spec(Dataset::Youtube);
    let g = s.build();
    let mut sink = CountSink::default();
    let (prune, stats) = run_ssfbc(
        &g,
        s.single_params(),
        SsAlgorithm::FairBcemPP,
        &default_cfg(),
        &mut sink,
    );
    assert!(!stats.aborted, "scaled Youtube must finish in seconds");
    assert!(sink.count > 0, "planted blocks must yield SSFBCs");
    assert!(prune.remaining_vertices() < prune.upper_before + prune.lower_before);
}

#[test]
fn youtube_corpus_bi_side_pipeline() {
    let s = spec(Dataset::Youtube);
    let g = s.build();
    let mut sink = CountSink::default();
    let (_, stats) = run_bsfbc(
        &g,
        s.bi_params(),
        BiAlgorithm::BFairBcemPP,
        &default_cfg(),
        &mut sink,
    );
    assert!(!stats.aborted);
    assert!(sink.count > 0, "planted blocks must yield BSFBCs");
}

#[test]
fn fairbcem_pp_dominates_fairbcem_on_corpus() {
    // The paper's headline: FairBCEM++ explores far fewer nodes.
    let s = spec(Dataset::Youtube);
    let g = s.build();
    let mut a = CountSink::default();
    let (_, slow) = run_ssfbc(
        &g,
        s.single_params(),
        SsAlgorithm::FairBcem,
        &default_cfg(),
        &mut a,
    );
    let mut b = CountSink::default();
    let (_, fast) = run_ssfbc(
        &g,
        s.single_params(),
        SsAlgorithm::FairBcemPP,
        &default_cfg(),
        &mut b,
    );
    assert_eq!(a.count, b.count, "same result count");
    assert!(
        fast.nodes * 10 <= slow.nodes,
        "FairBCEM++ nodes {} should be >=10x below FairBCEM's {}",
        fast.nodes,
        slow.nodes
    );
}

#[test]
fn dblp_scale_pruning_is_fast_and_consistent() {
    let s = spec(Dataset::Dblp);
    let g = s.build();
    assert!(g.n_edges() > 100_000, "DBLP analog is the big one");
    let p = s.single_params();
    let f = fair_biclique::fcore::fcore(&g, p);
    let c = fair_biclique::cfcore::cfcore(&g, p);
    assert!(c.stats.remaining_vertices() <= f.stats.remaining_vertices());
    // Pruning must preserve all results.
    let mut full = CountSink::default();
    let cfg_none = RunConfig {
        prune: PruneKind::FCore,
        ..default_cfg()
    };
    run_ssfbc(&g, p, SsAlgorithm::FairBcemPP, &cfg_none, &mut full);
    let mut pruned = CountSink::default();
    run_ssfbc(&g, p, SsAlgorithm::FairBcemPP, &default_cfg(), &mut pruned);
    assert_eq!(full.count, pruned.count);
}

#[test]
fn case_study_dbda_finds_fair_teams() {
    let cs = dbda(2023);
    let params = fair_biclique::config::FairParams::unchecked(3, 3, 2);
    let report = fair_biclique::pipeline::enumerate_ssfbc(&cs.graph, params, &default_cfg());
    assert!(!report.bicliques.is_empty(), "DBDA must contain fair teams");
    for bc in &report.bicliques {
        // Senior/junior balance within delta.
        let mut tally = [0i64; 2];
        for &v in &bc.lower {
            tally[cs.graph.attr(Side::Lower, v) as usize] += 1;
        }
        assert!(tally[0] >= 3 && tally[1] >= 3);
        assert!((tally[0] - tally[1]).abs() <= 2);
        // Description renders all members.
        let text = cs.describe(bc);
        assert!(text.contains("scholar-"));
    }
}

#[test]
fn case_study_recommendation_bias_is_corrected() {
    for cs in [jobs(2023), movies(2023)] {
        // Plain CF top-5 over-represents the advantaged class.
        let mut advantaged = 0usize;
        let mut total = 0usize;
        for user in 0..cs.graph.n_upper() as VertexId {
            for rec in recommend(&cs.graph, user, 5) {
                total += 1;
                advantaged += usize::from(cs.graph.attr(Side::Lower, rec.item) == 0);
            }
        }
        assert!(total > 0);
        let share = advantaged as f64 / total as f64;
        assert!(share > 0.5, "{}: CF is biased ({share:.2})", cs.name);

        // Fair bicliques on the top-10 graph balance the classes.
        let rg = recommendation_graph(&cs.graph, 10);
        let params = fair_biclique::config::FairParams::unchecked(2, 2, 1);
        let report = fair_biclique::pipeline::enumerate_ssfbc(&rg, params, &default_cfg());
        assert!(
            !report.bicliques.is_empty(),
            "{}: no fair bicliques",
            cs.name
        );
        for bc in &report.bicliques {
            let mut tally = [0i64; 2];
            for &v in &bc.lower {
                tally[rg.attr(Side::Lower, v) as usize] += 1;
            }
            assert!(tally[0] >= 2 && tally[1] >= 2, "{}: {bc}", cs.name);
            assert!((tally[0] - tally[1]).abs() <= 1);
        }
    }
}

#[test]
fn io_roundtrip_preserves_enumeration_results() {
    let s = spec(Dataset::Youtube);
    let g = s.build();
    let dir = std::env::temp_dir().join("fbe_e2e_io");
    std::fs::create_dir_all(&dir).unwrap();
    let ep = dir.join("g.edges");
    let up = dir.join("g.uattr");
    let lp = dir.join("g.lattr");
    bigraph::io::write_edge_list(&g, std::fs::File::create(&ep).unwrap()).unwrap();
    bigraph::io::write_attrs(&g, Side::Upper, std::fs::File::create(&up).unwrap()).unwrap();
    bigraph::io::write_attrs(&g, Side::Lower, std::fs::File::create(&lp).unwrap()).unwrap();
    let g2 = bigraph::io::load_graph(&ep, Some(&up), Some(&lp), 2, 2).unwrap();
    let mut c1 = CountSink::default();
    let mut c2 = CountSink::default();
    run_ssfbc(
        &g,
        s.single_params(),
        SsAlgorithm::FairBcemPP,
        &default_cfg(),
        &mut c1,
    );
    run_ssfbc(
        &g2,
        s.single_params(),
        SsAlgorithm::FairBcemPP,
        &default_cfg(),
        &mut c2,
    );
    assert_eq!(c1.count, c2.count);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn edge_sampling_scales_results_monotonically_in_structure() {
    // Exp-5's protocol smoke test: smaller samples still run and the
    // pipelines stay consistent between algorithms.
    let s = spec(Dataset::Youtube);
    let g = s.build();
    for frac in [0.4, 0.8] {
        let sub = bigraph::subgraph::sample_edges(&g, frac, 11);
        let mut a = CountSink::default();
        let mut b = CountSink::default();
        run_ssfbc(
            &sub,
            s.single_params(),
            SsAlgorithm::FairBcem,
            &default_cfg(),
            &mut a,
        );
        run_ssfbc(
            &sub,
            s.single_params(),
            SsAlgorithm::FairBcemPP,
            &default_cfg(),
            &mut b,
        );
        assert_eq!(a.count, b.count, "frac {frac}");
    }
}
