//! # fair-biclique — fairness-aware maximal biclique enumeration
//!
//! A complete Rust implementation of *"Fairness-aware Maximal Biclique
//! Enumeration on Bipartite Graphs"* (Yin, Zhang, Zhang, Li, Wang —
//! ICDE 2023, arXiv:2303.03705):
//!
//! * **Models** — single-side fair bicliques (SSFBC), bi-side fair
//!   bicliques (BSFBC), and their proportion variants (PSSFBC /
//!   PBSFBC); see [`config::FairParams`] and [`config::ProParams`].
//! * **Pruning** — fair α-β core ([`fcore`], Algorithm 1), colorful
//!   fair α-β core ([`cfcore`], Algorithm 2), and the bi-side variants
//!   BFCore / BCFCore ([`bfcore`]).
//! * **Enumeration** — the branch-and-bound `FairBCEM` ([`fairbcem`],
//!   Algorithm 5), the combinatorial `FairBCEM++` ([`fairbcem_pp`],
//!   Algorithm 6), the bi-side `BFairBCEM` / `BFairBCEM++`
//!   ([`bfairbcem`], Algorithm 9), proportion enumerators
//!   ([`proportion`]), the naive baselines `NSF` / `BNSF` ([`naive`]),
//!   and plain maximal biclique enumeration ([`mbea`]).
//! * **Verification** — brute-force oracles ([`verify`]) used by the
//!   test suite to certify every enumerator on thousands of random
//!   graphs.
//! * **Extensions** — a work-stealing parallel enumeration engine
//!   driving all of the `++` miners and maximum search ([`parallel`];
//!   opt in with [`config::RunConfig::threads`]), maximum fair
//!   biclique search ([`maximum`]), and an adaptive bitset candidate
//!   substrate for the enumeration hot path
//!   ([`config::RunConfig::substrate`]; see [`bigraph::candidate`]),
//!   and incremental fair-core maintenance for dynamic graphs
//!   ([`incremental`]).
//!
//! ## Quickstart
//!
//! ```
//! use bigraph::GraphBuilder;
//! use fair_biclique::prelude::*;
//!
//! // A 3x4 complete bipartite block: attrs U = [0,1,0], V = [0,0,1,1].
//! // `new` takes the attribute-domain sizes (2 values per side); the
//! // vertex sets grow on demand from the attrs and edges below.
//! let mut b = GraphBuilder::new(2, 2);
//! b.set_attrs_upper(&[0, 1, 0]);
//! b.set_attrs_lower(&[0, 0, 1, 1]);
//! for u in 0..3 {
//!     for v in 0..4 {
//!         b.add_edge(u, v);
//!     }
//! }
//! let g = b.build().unwrap();
//!
//! let params = FairParams::new(2, 1, 1).unwrap();
//! let report = enumerate_ssfbc(&g, params, &RunConfig::default());
//! // The whole block is the unique single-side fair biclique.
//! assert_eq!(report.bicliques.len(), 1);
//! assert_eq!(report.bicliques[0].upper, vec![0, 1, 2]);
//! assert_eq!(report.bicliques[0].lower, vec![0, 1, 2, 3]);
//! ```
//!
//! The fair side is always [`bigraph::Side::Lower`] (the paper's
//! convention); to mine with the upper side fair, call
//! [`bigraph::BipartiteGraph::flipped`] first.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfairbcem;
pub mod bfcore;
pub mod biclique;
pub mod cfcore;
pub mod config;
pub mod fairbcem;
pub mod fairbcem_pp;
pub mod fairset;
pub mod fcore;
pub mod incremental;
pub mod maximum;
pub mod mbea;
pub mod memory;
pub mod naive;
pub mod obs;
pub mod ordering;
pub mod parallel;
pub mod pipeline;
pub mod prepared;
pub mod proportion;
pub mod results;
pub mod verify;

/// One-stop imports for typical use.
pub mod prelude {
    pub use crate::biclique::{Biclique, BicliqueSink, CollectSink, CountSink, TopKSink};
    pub use crate::config::{
        Budget, CancelToken, FairParams, ProParams, PruneKind, RunConfig, StopReason, Substrate,
        VertexOrder,
    };
    pub use crate::obs::{Span, SpanRecorder};
    pub use crate::pipeline::{
        enumerate_bsfbc, enumerate_pbsfbc, enumerate_pssfbc, enumerate_ssfbc, BiAlgorithm,
        RunReport, SsAlgorithm,
    };
    pub use crate::prepared::{PreparedQuery, QueryModel};
}

pub use prelude::*;
