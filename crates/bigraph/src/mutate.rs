//! Single-update mutations of [`BipartiteGraph`].
//!
//! The graph is immutable CSR; a dynamic workload (the service's
//! `ADDEDGE` / `DELEDGE` / `ADDVERTEX` verbs) produces a **new** graph
//! per update so readers of the old generation stay consistent. The
//! mutation is a CSR splice — one `Vec::insert`/`remove` in each
//! direction's adjacency plus an offset shift — which is `O(|E|)`
//! memmove but avoids the sort/dedup/validate of a full
//! [`crate::GraphBuilder`] rebuild, and preserves the sorted-adjacency
//! invariant by construction.

use crate::graph::{AttrValueId, BipartiteGraph, Side, SideStore, VertexId};

/// Errors raised by the single-update mutations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutateError {
    /// An endpoint id is not a vertex of the graph.
    VertexOutOfRange {
        /// Side of the offending id.
        side: Side,
        /// The offending id.
        vertex: VertexId,
        /// Number of vertices on that side.
        n: usize,
    },
    /// `with_edge` on an edge that is already present.
    EdgeExists(VertexId, VertexId),
    /// `without_edge` on an edge that is not present.
    EdgeMissing(VertexId, VertexId),
    /// `with_vertex` with an attribute outside the declared domain.
    AttrOutOfDomain {
        /// Side of the new vertex.
        side: Side,
        /// The out-of-domain attribute value.
        attr: AttrValueId,
    },
    /// The side would exceed `u32` vertex ids.
    TooManyVertices,
}

impl std::fmt::Display for MutateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MutateError::VertexOutOfRange { side, vertex, n } => {
                write!(f, "vertex {vertex} out of range on side {side} (n={n})")
            }
            MutateError::EdgeExists(u, v) => write!(f, "edge ({u},{v}) already exists"),
            MutateError::EdgeMissing(u, v) => write!(f, "edge ({u},{v}) does not exist"),
            MutateError::AttrOutOfDomain { side, attr } => {
                write!(f, "attribute {attr} outside the domain of side {side}")
            }
            MutateError::TooManyVertices => f.write_str("vertex count exceeds u32 id space"),
        }
    }
}

impl std::error::Error for MutateError {}

impl SideStore {
    /// Splice `dst` into `src`'s sorted neighbor list. Returns false
    /// when already present.
    fn insert_neighbor(&mut self, src: VertexId, dst: VertexId) -> bool {
        let (lo, hi) = (self.offsets[src as usize], self.offsets[src as usize + 1]);
        match self.adj[lo..hi].binary_search(&dst) {
            Ok(_) => false,
            Err(at) => {
                self.adj.insert(lo + at, dst);
                for off in &mut self.offsets[src as usize + 1..] {
                    *off += 1;
                }
                true
            }
        }
    }

    /// Splice `dst` out of `src`'s sorted neighbor list. Returns false
    /// when absent.
    fn remove_neighbor(&mut self, src: VertexId, dst: VertexId) -> bool {
        let (lo, hi) = (self.offsets[src as usize], self.offsets[src as usize + 1]);
        match self.adj[lo..hi].binary_search(&dst) {
            Err(_) => false,
            Ok(at) => {
                self.adj.remove(lo + at);
                for off in &mut self.offsets[src as usize + 1..] {
                    *off -= 1;
                }
                true
            }
        }
    }
}

impl BipartiteGraph {
    fn check_endpoints(&self, u: VertexId, v: VertexId) -> Result<(), MutateError> {
        if (u as usize) >= self.n_upper() {
            return Err(MutateError::VertexOutOfRange {
                side: Side::Upper,
                vertex: u,
                n: self.n_upper(),
            });
        }
        if (v as usize) >= self.n_lower() {
            return Err(MutateError::VertexOutOfRange {
                side: Side::Lower,
                vertex: v,
                n: self.n_lower(),
            });
        }
        Ok(())
    }

    /// A new graph with edge `(u, v)` added. `O(|E|)`.
    pub fn with_edge(&self, u: VertexId, v: VertexId) -> Result<BipartiteGraph, MutateError> {
        self.check_endpoints(u, v)?;
        if self.has_edge(u, v) {
            return Err(MutateError::EdgeExists(u, v));
        }
        let mut g = self.clone();
        g.upper.insert_neighbor(u, v);
        g.lower.insert_neighbor(v, u);
        debug_assert_eq!(g.validate(), Ok(()));
        Ok(g)
    }

    /// A new graph with edge `(u, v)` removed. `O(|E|)`.
    pub fn without_edge(&self, u: VertexId, v: VertexId) -> Result<BipartiteGraph, MutateError> {
        self.check_endpoints(u, v)?;
        if !self.has_edge(u, v) {
            return Err(MutateError::EdgeMissing(u, v));
        }
        let mut g = self.clone();
        g.upper.remove_neighbor(u, v);
        g.lower.remove_neighbor(v, u);
        debug_assert_eq!(g.validate(), Ok(()));
        Ok(g)
    }

    /// A new graph with one isolated vertex appended to `side`,
    /// carrying `attr`. Returns the new graph and the new vertex's id
    /// (always `n(side)` of the old graph). `O(1)` amortized over the
    /// cloned arrays.
    pub fn with_vertex(
        &self,
        side: Side,
        attr: AttrValueId,
    ) -> Result<(BipartiteGraph, VertexId), MutateError> {
        let dom = self.n_attr_values(side);
        if dom > 0 && attr >= dom {
            return Err(MutateError::AttrOutOfDomain { side, attr });
        }
        if self.n(side) >= u32::MAX as usize {
            return Err(MutateError::TooManyVertices);
        }
        let id = self.n(side) as VertexId;
        let mut g = self.clone();
        let store = match side {
            Side::Upper => &mut g.upper,
            Side::Lower => &mut g.lower,
        };
        store.attrs.push(attr);
        let end = *store.offsets.last().unwrap_or(&0);
        store.offsets.push(end);
        debug_assert_eq!(g.validate(), Ok(()));
        Ok((g, id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::random_uniform;
    use crate::GraphBuilder;

    /// Rebuild-from-scratch oracle for an edge set.
    fn rebuilt(g: &BipartiteGraph, edges: &[(VertexId, VertexId)]) -> BipartiteGraph {
        let mut b = GraphBuilder::new(g.n_attr_values(Side::Upper), g.n_attr_values(Side::Lower));
        b.ensure_vertices(g.n_upper(), g.n_lower());
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        b.set_attrs_upper(g.attrs(Side::Upper));
        b.set_attrs_lower(g.attrs(Side::Lower));
        b.build().unwrap()
    }

    fn same_graph(a: &BipartiteGraph, b: &BipartiteGraph) -> bool {
        a.n_upper() == b.n_upper()
            && a.n_lower() == b.n_lower()
            && a.attrs(Side::Upper) == b.attrs(Side::Upper)
            && a.attrs(Side::Lower) == b.attrs(Side::Lower)
            && a.edges().collect::<Vec<_>>() == b.edges().collect::<Vec<_>>()
            && (0..a.n_lower() as VertexId)
                .all(|v| a.neighbors(Side::Lower, v) == b.neighbors(Side::Lower, v))
    }

    #[test]
    fn add_and_remove_match_rebuild() {
        let g = random_uniform(10, 12, 40, 2, 2, 5);
        let mut edges: Vec<_> = g.edges().collect();
        // Find a non-edge to add.
        let (u, v) = (0..10u32)
            .flat_map(|u| (0..12u32).map(move |v| (u, v)))
            .find(|&(u, v)| !g.has_edge(u, v))
            .unwrap();
        let added = g.with_edge(u, v).unwrap();
        added.validate().unwrap();
        edges.push((u, v));
        assert!(same_graph(&added, &rebuilt(&g, &edges)));

        let removed = added.without_edge(u, v).unwrap();
        removed.validate().unwrap();
        assert!(same_graph(&removed, &g), "add then remove is identity");

        // Remove a pre-existing edge and compare to rebuild.
        let (ru, rv) = g.edges().nth(7).unwrap();
        let removed = g.without_edge(ru, rv).unwrap();
        let rest: Vec<_> = g.edges().filter(|&e| e != (ru, rv)).collect();
        assert!(same_graph(&removed, &rebuilt(&g, &rest)));
    }

    #[test]
    fn mutation_errors() {
        let g = random_uniform(4, 4, 8, 2, 2, 1);
        let (u, v) = g.edges().next().unwrap();
        assert_eq!(
            g.with_edge(u, v).unwrap_err(),
            MutateError::EdgeExists(u, v)
        );
        let missing = (0..4u32)
            .flat_map(|u| (0..4u32).map(move |v| (u, v)))
            .find(|&(u, v)| !g.has_edge(u, v))
            .unwrap();
        assert_eq!(
            g.without_edge(missing.0, missing.1).unwrap_err(),
            MutateError::EdgeMissing(missing.0, missing.1)
        );
        assert!(matches!(
            g.with_edge(99, 0).unwrap_err(),
            MutateError::VertexOutOfRange {
                side: Side::Upper,
                vertex: 99,
                ..
            }
        ));
        assert!(matches!(
            g.without_edge(0, 99).unwrap_err(),
            MutateError::VertexOutOfRange {
                side: Side::Lower,
                ..
            }
        ));
        assert_eq!(
            g.with_vertex(Side::Upper, 9).unwrap_err(),
            MutateError::AttrOutOfDomain {
                side: Side::Upper,
                attr: 9
            }
        );
        // Error messages render.
        assert!(MutateError::EdgeExists(1, 2).to_string().contains("(1,2)"));
        assert!(MutateError::TooManyVertices.to_string().contains("u32"));
    }

    #[test]
    fn vertex_append_then_connect() {
        let g = random_uniform(5, 5, 12, 2, 2, 3);
        let (g2, id) = g.with_vertex(Side::Lower, 1).unwrap();
        assert_eq!(id, 5);
        assert_eq!(g2.n_lower(), 6);
        assert_eq!(g2.degree(Side::Lower, id), 0);
        assert_eq!(g2.attr(Side::Lower, id), 1);
        assert_eq!(g2.n_edges(), g.n_edges());
        g2.validate().unwrap();
        // The fresh vertex is immediately connectable.
        let g3 = g2.with_edge(0, id).unwrap();
        assert!(g3.has_edge(0, id));
        g3.validate().unwrap();
        let (g4, uid) = g3.with_vertex(Side::Upper, 0).unwrap();
        assert_eq!(uid, 5);
        assert_eq!(g4.n_upper(), 6);
        g4.validate().unwrap();
    }
}
