//! Poison-recovering lock helpers.
//!
//! The service keeps serving after a query thread panics. `std`'s
//! locks poison themselves when a holder panics, and the easy
//! `.lock().unwrap()` turns that one crashed query into a permanently
//! wedged server: every later request panics on the poisoned lock.
//!
//! Recovery is sound here because every structure these locks protect
//! is mutated only through single, self-contained std-collection calls
//! (`BTreeMap::insert`/`remove`, plan-cache `insert`/`get`, counter
//! bumps): a panic while the lock is held cannot leave a half-applied
//! update behind, so the data under a poisoned lock is still
//! internally consistent and safe to keep using. Each helper therefore
//! takes the guard out of the `PoisonError` and carries on
//! ([`PoisonError::into_inner`]).
//!
//! If a future change ever holds one of these locks across a
//! multi-step mutation, that call site must stop using these helpers
//! and handle poisoning explicitly (e.g. rebuild the structure).

use std::sync::{
    Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
    WaitTimeoutResult,
};
use std::time::Duration;

/// Lock `m`, recovering the guard if a previous holder panicked.
pub fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Read-lock `l`, recovering the guard if a writer panicked.
pub fn read_unpoisoned<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-lock `l`, recovering the guard if a holder panicked.
pub fn write_unpoisoned<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait`], recovering the guard on poison.
pub fn wait_unpoisoned<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait_timeout`], recovering the guard on poison.
pub fn wait_timeout_unpoisoned<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    cv.wait_timeout(guard, dur)
        .unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn a_poisoned_mutex_is_recovered_with_its_data_intact() {
        let m = Arc::new(Mutex::new(41u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let mut g = lock_unpoisoned(&m2);
            *g += 1;
            panic!("poison the lock");
        })
        .join();
        assert!(m.is_poisoned(), "the panic poisoned the mutex");
        assert_eq!(*lock_unpoisoned(&m), 42, "data survives recovery");
        *lock_unpoisoned(&m) += 1;
        assert_eq!(*lock_unpoisoned(&m), 43, "lock keeps working");
    }

    #[test]
    fn a_poisoned_rwlock_is_recovered_for_readers_and_writers() {
        let l = Arc::new(RwLock::new(vec![1u32, 2, 3]));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = write_unpoisoned(&l2);
            panic!("poison the lock");
        })
        .join();
        assert!(l.is_poisoned());
        assert_eq!(read_unpoisoned(&l).len(), 3);
        write_unpoisoned(&l).push(4);
        assert_eq!(read_unpoisoned(&l).len(), 4);
    }
}
