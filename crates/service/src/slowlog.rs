//! Bounded slow-query log: the N slowest queries with their span
//! trees, served by `SLOWLOG [n]`.
//!
//! The log keeps the `capacity` *slowest* queries seen since startup —
//! not the most recent — so a burst of fast traffic can't flush the
//! one pathological query an operator is hunting. When full, a new
//! query is admitted only if it is slower than the current fastest
//! entry, which it then evicts. Every `OK` query is offered to the
//! log (metadata is always recorded; the span tree is present only
//! when the query ran with tracing enabled).

use fair_biclique::config::StopReason;
use fair_biclique::obs::{render_spans, Span};
use std::sync::Mutex;
use std::time::Duration;

/// One logged query.
#[derive(Debug, Clone)]
pub struct SlowEntry {
    /// Monotone admission sequence number (ties in elapsed time list
    /// older entries first).
    pub seq: u64,
    /// The query as received (the raw protocol line).
    pub query: String,
    /// Graph the query ran against.
    pub graph: String,
    /// Catalog epoch of that graph at execution time.
    pub epoch: u64,
    /// End-to-end latency.
    pub elapsed: Duration,
    /// Which limit truncated the query (`None` = ran to completion).
    pub stop: Option<StopReason>,
    /// Span tree (empty unless the query was traced).
    pub spans: Vec<Span>,
}

#[derive(Debug, Default)]
struct Inner {
    entries: Vec<SlowEntry>,
    seq: u64,
}

/// Keeper of the N slowest queries. All methods take `&self`; the
/// single mutex is held only for short bookkeeping (no rendering or
/// allocation of span text happens under it).
#[derive(Debug)]
pub struct SlowLog {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl SlowLog {
    /// A log retaining the `capacity` slowest queries (0 disables it).
    pub fn new(capacity: usize) -> SlowLog {
        SlowLog {
            capacity,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Offer a completed query. Admitted if the log has room or the
    /// query is slower than the current fastest entry (which is then
    /// evicted).
    pub fn record(&self, mut entry: SlowEntry) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        entry.seq = inner.seq;
        inner.seq += 1;
        if inner.entries.len() < self.capacity {
            inner.entries.push(entry);
            return;
        }
        // The log is full here (len == capacity > 0), so a fastest
        // entry exists; the if-let keeps the path panic-free anyway.
        if let Some(fastest) = inner
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.elapsed)
            .map(|(i, _)| i)
        {
            if entry.elapsed > inner.entries[fastest].elapsed {
                inner.entries[fastest] = entry;
            }
        }
    }

    /// The `n` slowest entries (all retained entries when `n` is
    /// `None`), slowest first; equal latencies order oldest first.
    pub fn snapshot(&self, n: Option<usize>) -> Vec<SlowEntry> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = inner.entries.clone();
        drop(inner);
        out.sort_by(|a, b| b.elapsed.cmp(&a.elapsed).then(a.seq.cmp(&b.seq)));
        out.truncate(n.unwrap_or(usize::MAX));
        out
    }

    /// `SLOWLOG` payload lines: per entry a `query ...` header line
    /// followed by its indented span tree (if traced).
    pub fn render(&self, n: Option<usize>) -> Vec<String> {
        let mut out = Vec::new();
        for e in self.snapshot(n) {
            let stop = e.stop.map_or("none".to_string(), |s| s.to_string());
            out.push(format!(
                "query seq={} us={} graph={} epoch={} truncated={} q={}",
                e.seq,
                e.elapsed.as_micros(),
                e.graph,
                e.epoch,
                stop,
                e.query,
            ));
            out.extend(render_spans(&e.spans));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(query: &str, us: u64) -> SlowEntry {
        SlowEntry {
            seq: 0,
            query: query.to_string(),
            graph: "g".to_string(),
            epoch: 1,
            elapsed: Duration::from_micros(us),
            stop: None,
            spans: Vec::new(),
        }
    }

    #[test]
    fn keeps_the_slowest_not_the_newest() {
        let log = SlowLog::new(2);
        log.record(entry("a", 100));
        log.record(entry("b", 300));
        log.record(entry("c", 200)); // evicts a (the fastest)
        log.record(entry("d", 50)); // too fast: rejected
        let got: Vec<_> = log.snapshot(None).into_iter().map(|e| e.query).collect();
        assert_eq!(got, vec!["b", "c"], "slowest first, fastest evicted");
        // n caps the snapshot.
        assert_eq!(log.snapshot(Some(1)).len(), 1);
        assert_eq!(log.snapshot(Some(1))[0].query, "b");
    }

    #[test]
    fn equal_latency_orders_oldest_first_and_zero_capacity_disables() {
        let log = SlowLog::new(3);
        log.record(entry("x", 100));
        log.record(entry("y", 100));
        let got: Vec<_> = log.snapshot(None).into_iter().map(|e| e.query).collect();
        assert_eq!(got, vec!["x", "y"]);

        let off = SlowLog::new(0);
        off.record(entry("z", 1_000_000));
        assert!(off.snapshot(None).is_empty());
        assert!(off.render(None).is_empty());
    }

    #[test]
    fn render_includes_metadata_and_spans() {
        let log = SlowLog::new(4);
        let mut e = entry("ENUM g SSFBC alpha=2", 1234);
        e.stop = Some(StopReason::Deadline);
        e.spans = vec![Span {
            name: "enumerate",
            depth: 0,
            elapsed: Duration::from_micros(1200),
            detail: "nodes=9".to_string(),
        }];
        log.record(e);
        let lines = log.render(None);
        assert_eq!(lines.len(), 2);
        assert!(
            lines[0].starts_with("query seq=0 us=1234 graph=g epoch=1 truncated=deadline q=ENUM")
        );
        assert_eq!(lines[1], "span enumerate us=1200 nodes=9");
    }
}
