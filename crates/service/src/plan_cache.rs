//! LRU cache of prepared query plans.
//!
//! Keyed by `(graph name, graph epoch, model, params, requested
//! substrate)`; the value is an `Arc<PreparedQuery>` — the pruned core
//! plus resolved candidate plan — so a hit skips pruning, 2-hop /
//! coloring, and bitset-row construction entirely and goes straight to
//! enumeration. Replacing a graph bumps its catalog epoch, so plans of
//! the old generation can never be returned for the new graph; they
//! simply age out of the LRU.

use fair_biclique::prepared::{PreparedQuery, QueryModel};
use fair_biclique::Substrate;
use std::collections::HashMap;
use std::sync::Arc;

/// Identity of a prepared plan.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Catalog graph name.
    pub graph: String,
    /// Catalog epoch of that graph when the plan was built.
    pub epoch: u64,
    /// Model name (`SSFBC` / `BSFBC` / `PSSFBC` / `PBSFBC`).
    pub model: &'static str,
    /// `α`.
    pub alpha: u32,
    /// `β`.
    pub beta: u32,
    /// `δ`.
    pub delta: u32,
    /// `θ` as IEEE-754 bits (0 for the absolute models; the model tag
    /// disambiguates a genuine `θ = 0.0`).
    pub theta_bits: u64,
    /// The *requested* substrate (resolution happens per pruned core).
    pub substrate: Substrate,
}

impl PlanKey {
    /// Key for `model` with `opts.substrate` over `graph@epoch`.
    pub fn new(graph: &str, epoch: u64, model: QueryModel, substrate: Substrate) -> PlanKey {
        let base = model.base();
        PlanKey {
            graph: graph.to_string(),
            epoch,
            model: model.name(),
            alpha: base.alpha,
            beta: base.beta,
            delta: base.delta,
            theta_bits: model.theta().map_or(0, f64::to_bits),
            substrate,
        }
    }
}

struct Slot {
    plan: Arc<PreparedQuery>,
    last_used: u64,
}

/// A small LRU over prepared plans with hit/miss/eviction accounting.
pub struct PlanCache {
    capacity: usize,
    tick: u64,
    slots: HashMap<PlanKey, Slot>,
    /// Lookups that found a plan.
    pub hits: u64,
    /// Lookups that missed (caller prepares and inserts).
    pub misses: u64,
    /// Plans displaced by capacity.
    pub evictions: u64,
    /// Plans dropped by explicit invalidation (graph replacement,
    /// `DROP`, graph updates, `clear`) — distinct from capacity
    /// `evictions` so `STATS` reports real churn.
    pub invalidated: u64,
}

impl PlanCache {
    /// Cache retaining at most `capacity` plans (capacity 0 disables
    /// caching: every lookup misses, every insert is dropped).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            capacity,
            tick: 0,
            slots: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
            invalidated: 0,
        }
    }

    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &PlanKey) -> Option<Arc<PreparedQuery>> {
        self.tick += 1;
        match self.slots.get_mut(key) {
            Some(slot) => {
                slot.last_used = self.tick;
                self.hits += 1;
                Some(Arc::clone(&slot.plan))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert a freshly prepared plan, evicting the least recently
    /// used slot when full.
    ///
    /// Eviction is a linear `min_by_key` scan over the resident slots,
    /// deliberately so: the cache holds at most `capacity` plans (a
    /// few dozen in any realistic deployment — each slot pins a pruned
    /// core plus bitset rows, so capacity is bounded by heap long
    /// before scan cost matters), and the scan only runs on an insert
    /// that is already paying for a full prepare. An intrusive LRU
    /// list would save O(capacity) key clones per *miss-insert* at the
    /// price of order bookkeeping on every *hit*; with hits outnumbering
    /// miss-inserts by orders of magnitude, the scan is the cheaper
    /// regime. Revisit only if capacity grows into the thousands.
    pub fn insert(&mut self, key: PlanKey, plan: Arc<PreparedQuery>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if !self.slots.contains_key(&key) && self.slots.len() >= self.capacity {
            if let Some(lru) = self
                .slots
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| k.clone())
            {
                self.slots.remove(&lru);
                self.evictions += 1;
            }
        }
        self.slots.insert(
            key,
            Slot {
                plan,
                last_used: self.tick,
            },
        );
    }

    /// Drop every plan of `graph` (any epoch), e.g. on `DROP`.
    /// Returns how many plans were dropped (also added to
    /// `invalidated`).
    pub fn invalidate_graph(&mut self, graph: &str) -> u64 {
        self.invalidate_where(|k| k.graph == graph)
    }

    /// Surgical invalidation: drop exactly the plans whose key matches
    /// `stale`, keeping everything else resident. The graph-update
    /// path uses this to drop only the plans whose pruned core was
    /// touched by an update. Returns how many plans were dropped (also
    /// added to `invalidated`).
    pub fn invalidate_where(&mut self, mut stale: impl FnMut(&PlanKey) -> bool) -> u64 {
        let before = self.slots.len();
        self.slots.retain(|k, _| !stale(k));
        let dropped = (before - self.slots.len()) as u64;
        self.invalidated += dropped;
        dropped
    }

    /// The distinct `(α, β)` pairs with a cached plan for `graph` at
    /// its current catalog `epoch` (sorted, deduplicated) — the pairs
    /// whose fair cores the graph-update path must track. Plans of
    /// older epochs are unreachable leftovers aging out of the LRU;
    /// including their pairs would make updates track (and invalidate
    /// against) cores no live plan serves.
    pub fn tracked_pairs(&self, graph: &str, epoch: u64) -> Vec<(u32, u32)> {
        let mut pairs: Vec<(u32, u32)> = self
            .slots
            .keys()
            .filter(|k| k.graph == graph && k.epoch == epoch)
            .map(|k| (k.alpha, k.beta))
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }

    /// Number of cached plans for `graph`.
    pub fn count_graph(&self, graph: &str) -> usize {
        self.slots.keys().filter(|k| k.graph == graph).count()
    }

    /// Drop everything (benchmark cold-path support).
    pub fn clear(&mut self) {
        self.invalidated += self.slots.len() as u64;
        self.slots.clear();
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total heap bytes pinned by cached plans.
    pub fn heap_bytes(&self) -> usize {
        self.slots.values().map(|s| s.plan.heap_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::generate::random_uniform;
    use fair_biclique::config::{FairParams, PruneKind};

    fn plan_for(seed: u64) -> Arc<PreparedQuery> {
        let g = random_uniform(8, 8, 24, 2, 2, seed);
        Arc::new(PreparedQuery::prepare(
            &g,
            QueryModel::Ssfbc(FairParams::unchecked(1, 1, 1)),
            PruneKind::Colorful,
            Substrate::Auto,
        ))
    }

    fn key(name: &str, epoch: u64, alpha: u32) -> PlanKey {
        PlanKey::new(
            name,
            epoch,
            QueryModel::Ssfbc(FairParams::unchecked(alpha, 1, 1)),
            Substrate::Auto,
        )
    }

    #[test]
    fn hit_miss_and_lru_eviction() {
        let mut c = PlanCache::new(2);
        assert!(c.get(&key("g", 0, 1)).is_none());
        assert_eq!(c.misses, 1);
        c.insert(key("g", 0, 1), plan_for(1));
        c.insert(key("g", 0, 2), plan_for(2));
        assert!(c.get(&key("g", 0, 1)).is_some());
        assert_eq!(c.hits, 1);
        // Inserting a third evicts the LRU — alpha=2, since alpha=1
        // was just touched.
        c.insert(key("g", 0, 3), plan_for(3));
        assert_eq!(c.evictions, 1);
        assert!(c.get(&key("g", 0, 1)).is_some());
        assert!(c.get(&key("g", 0, 2)).is_none());
        assert!(c.get(&key("g", 0, 3)).is_some());
        assert_eq!(c.len(), 2);
        assert!(c.heap_bytes() > 0);
    }

    #[test]
    fn epoch_and_graph_isolation() {
        let mut c = PlanCache::new(8);
        c.insert(key("g", 0, 1), plan_for(1));
        // Same params, new epoch → different key.
        assert!(c.get(&key("g", 1, 1)).is_none());
        c.insert(key("h", 5, 1), plan_for(2));
        assert_eq!(c.invalidate_graph("g"), 1);
        assert!(c.get(&key("g", 0, 1)).is_none());
        assert!(c.get(&key("h", 5, 1)).is_some());
        assert_eq!(c.invalidated, 1, "invalidate_graph counts drops");
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.invalidated, 2, "clear counts drops too");
        // Invalidation is not eviction: capacity accounting untouched.
        assert_eq!(c.evictions, 0);
    }

    #[test]
    fn surgical_invalidation_drops_only_matching_keys() {
        let mut c = PlanCache::new(8);
        c.insert(key("g", 0, 1), plan_for(1));
        c.insert(key("g", 0, 2), plan_for(2));
        c.insert(key("h", 0, 1), plan_for(3));
        assert_eq!(c.tracked_pairs("g", 0), vec![(1, 1), (2, 1)]);
        assert_eq!(c.tracked_pairs("zzz", 0), vec![]);
        assert_eq!(c.count_graph("g"), 2);
        // Only alpha=1 plans of g are stale.
        let dropped = c.invalidate_where(|k| k.graph == "g" && k.alpha == 1);
        assert_eq!(dropped, 1);
        assert_eq!(c.invalidated, 1);
        assert!(c.get(&key("g", 0, 1)).is_none());
        assert!(c.get(&key("g", 0, 2)).is_some(), "untouched plan survives");
        assert!(c.get(&key("h", 0, 1)).is_some(), "other graph survives");
    }

    #[test]
    fn tracked_pairs_ignores_stale_epochs() {
        let mut c = PlanCache::new(8);
        // Old-generation leftovers at epoch 0 (not yet aged out), plus
        // live plans at epoch 1.
        c.insert(key("g", 0, 1), plan_for(1));
        c.insert(key("g", 0, 7), plan_for(2));
        c.insert(key("g", 1, 2), plan_for(3));
        c.insert(key("g", 1, 3), plan_for(4));
        // Another graph at the queried epoch never leaks in.
        c.insert(key("h", 1, 9), plan_for(5));
        assert_eq!(c.tracked_pairs("g", 1), vec![(2, 1), (3, 1)]);
        assert_eq!(c.tracked_pairs("g", 0), vec![(1, 1), (7, 1)]);
        assert_eq!(c.tracked_pairs("g", 2), vec![]);
    }

    #[test]
    fn lru_keeps_pinned_plan_resident_across_churn() {
        // A plan that is touched between inserts survives arbitrary
        // churn: each insert's eviction scan removes the true LRU, not
        // the hot slot.
        let mut c = PlanCache::new(3);
        c.insert(key("g", 0, 1), plan_for(1));
        for alpha in 2..20u32 {
            assert!(c.get(&key("g", 0, 1)).is_some(), "alpha={alpha}");
            c.insert(key("g", 0, alpha), plan_for(alpha as u64));
            assert!(c.len() <= 3);
        }
        assert!(c.get(&key("g", 0, 1)).is_some(), "pinned plan survived");
        // 18 inserts into 3 slots with one pinned → 16 evictions.
        assert_eq!(c.evictions, 16);
        // And the evicted ones are really gone.
        assert!(c.get(&key("g", 0, 2)).is_none());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = PlanCache::new(0);
        c.insert(key("g", 0, 1), plan_for(1));
        assert!(c.get(&key("g", 0, 1)).is_none());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn theta_is_part_of_the_key() {
        use fair_biclique::config::ProParams;
        let a = PlanKey::new(
            "g",
            0,
            QueryModel::Pssfbc(ProParams::new(1, 1, 1, 0.2).unwrap()),
            Substrate::Auto,
        );
        let b = PlanKey::new(
            "g",
            0,
            QueryModel::Pssfbc(ProParams::new(1, 1, 1, 0.3).unwrap()),
            Substrate::Auto,
        );
        assert_ne!(a, b);
        // Absolute vs proportion-at-θ=0 differ by model tag.
        let c = PlanKey::new(
            "g",
            0,
            QueryModel::Ssfbc(FairParams::unchecked(1, 1, 1)),
            Substrate::Auto,
        );
        let d = PlanKey::new(
            "g",
            0,
            QueryModel::Pssfbc(ProParams::new(1, 1, 1, 0.0).unwrap()),
            Substrate::Auto,
        );
        assert_ne!(c, d);
    }
}
