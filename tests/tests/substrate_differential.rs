//! Differential certification of the candidate-set substrate: every
//! miner must produce byte-identical canonical output and identical
//! merged search statistics on `SortedVec`, `Bitset`, and `Auto`, at
//! 1 and 4 threads.
//!
//! The two representations implement the same exact counts, so the
//! enumeration tree — not just the result set — must coincide: we
//! assert equal `EnumStats::nodes` and `EnumStats::emitted` too.

use bigraph::generate::random_uniform;
use bigraph::{BipartiteGraph, VertexId};
use fair_biclique::biclique::{Biclique, CollectSink};
use fair_biclique::config::{FairParams, ProParams, RunConfig, Substrate};
use fair_biclique::maximum::{max_bsfbc, max_ssfbc, SizeMetric};
use fair_biclique::pipeline::{
    enumerate_bsfbc, enumerate_pbsfbc, enumerate_pssfbc, enumerate_ssfbc, run_ssfbc, SsAlgorithm,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

const SUBSTRATES: [Substrate; 3] = [Substrate::SortedVec, Substrate::Bitset, Substrate::Auto];
const THREADS: [usize; 2] = [1, 4];

fn cfg(substrate: Substrate, threads: usize) -> RunConfig {
    RunConfig {
        substrate,
        threads,
        sorted: true,
        ..RunConfig::default()
    }
}

/// Run `mine` across every substrate × thread-count combination and
/// assert the canonically ordered results and merged node/emission
/// counts all match the serial sorted-vec baseline.
fn assert_differential(
    label: &str,
    mine: impl Fn(&RunConfig) -> fair_biclique::pipeline::RunReport,
) -> Vec<Biclique> {
    let base = mine(&cfg(Substrate::SortedVec, 1));
    for substrate in SUBSTRATES {
        for threads in THREADS {
            let got = mine(&cfg(substrate, threads));
            assert_eq!(
                got.bicliques, base.bicliques,
                "{label}: canonical results diverge at {substrate}/{threads}t"
            );
            assert_eq!(
                got.stats.nodes, base.stats.nodes,
                "{label}: node counts diverge at {substrate}/{threads}t"
            );
            assert_eq!(
                got.stats.emitted, base.stats.emitted,
                "{label}: emission counts diverge at {substrate}/{threads}t"
            );
            assert!(!got.stats.aborted, "{label}: unbudgeted run aborted");
        }
    }
    let set: BTreeSet<&Biclique> = base.bicliques.iter().collect();
    assert_eq!(set.len(), base.bicliques.len(), "{label}: duplicates");
    base.bicliques
}

fn graph(seed: u64, nu: usize, nv: usize, m: usize) -> BipartiteGraph {
    random_uniform(nu, nv, m, 2, 2, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// FairBCEM++ (the substrate-bearing SSFBC miner) across every
    /// combination, cross-checked against the substrate-independent
    /// FairBCEM baseline.
    #[test]
    fn ssfbc_differential(seed in 0u64..1000, m in 28usize..46) {
        let g = graph(seed, 9, 10, m);
        let params = FairParams::unchecked(2, 1, 1);
        let got = assert_differential("ssfbc", |c| enumerate_ssfbc(&g, params, c));
        // FairBCEM (branch-and-bound, sorted-vec only) agrees on the set.
        let mut bcem = CollectSink::default();
        run_ssfbc(&g, params, SsAlgorithm::FairBcem, &RunConfig::default(), &mut bcem);
        let want: BTreeSet<Biclique> = bcem.bicliques.into_iter().collect();
        let got: BTreeSet<Biclique> = got.into_iter().collect();
        prop_assert_eq!(got, want);
    }

    /// BFairBCEM++ (walker + fair-side + upper-side expansion all on
    /// the substrate).
    #[test]
    fn bsfbc_differential(seed in 0u64..1000, m in 24usize..40) {
        let g = graph(seed, 8, 9, m);
        let params = FairParams::unchecked(1, 1, 1);
        assert_differential("bsfbc", |c| enumerate_bsfbc(&g, params, c));
    }

    /// The proportion miners (PSSFBC / PBSFBC).
    #[test]
    fn proportion_differential(seed in 0u64..1000, theta in 0.0f64..0.5) {
        let g = graph(seed, 8, 10, 32);
        let pro = ProParams::new(2, 1, 2, theta).unwrap();
        assert_differential("pssfbc", |c| enumerate_pssfbc(&g, pro, c));
        assert_differential("pbsfbc", |c| enumerate_pbsfbc(&g, pro, c));
    }

    /// Maximum fair biclique search: the deterministically tie-broken
    /// best result must be substrate- and thread-invariant.
    #[test]
    fn maximum_differential(seed in 0u64..1000, m in 28usize..46) {
        let g = graph(seed, 9, 10, m);
        let params = FairParams::unchecked(2, 1, 1);
        for metric in [SizeMetric::Vertices, SizeMetric::Edges] {
            let (base_ss, _) = max_ssfbc(&g, params, metric, &cfg(Substrate::SortedVec, 1));
            let (base_bi, _) = max_bsfbc(&g, params, metric, &cfg(Substrate::SortedVec, 1));
            for substrate in SUBSTRATES {
                for threads in THREADS {
                    let c = cfg(substrate, threads);
                    let (ss, _) = max_ssfbc(&g, params, metric, &c);
                    prop_assert_eq!(&ss, &base_ss, "max ssfbc {}/{}t", substrate, threads);
                    let (bi, _) = max_bsfbc(&g, params, metric, &c);
                    prop_assert_eq!(&bi, &base_bi, "max bsfbc {}/{}t", substrate, threads);
                }
            }
        }
    }

    /// Oracle proptest for the BitRows primitives themselves: random
    /// sets vs the sorted-vec intersection.
    #[test]
    fn bitrows_intersection_oracle(
        a in proptest::collection::btree_set(0u32..200, 0..60),
        b in proptest::collection::btree_set(0u32..200, 0..60),
    ) {
        let va: Vec<VertexId> = a.iter().copied().collect();
        let vb: Vec<VertexId> = b.iter().copied().collect();
        let rows = bigraph::BitRows::from_sets(200, &[&va, &vb]);
        let want_count = bigraph::intersect_sorted_count(&va, &vb);
        prop_assert_eq!(bigraph::candidate::and_count(rows.row(0), rows.row(1)), want_count);
        let mut acc = rows.row(0).to_vec();
        bigraph::candidate::and_assign(&mut acc, rows.row(1));
        prop_assert_eq!(bigraph::candidate::count_ones(&acc), want_count);
        let mut got = Vec::new();
        bigraph::candidate::collect_into(&acc, &mut got);
        let mut want = Vec::new();
        bigraph::intersect_sorted_into(&va, &vb, &mut want);
        prop_assert_eq!(got, want);
        // Row membership mirrors set membership.
        for c in 0u32..200 {
            prop_assert_eq!(rows.contains(0, c), a.contains(&c));
        }
    }
}

/// Degenerate shapes run through every combination without panicking
/// and agree on emptiness.
#[test]
fn degenerate_graphs_differential() {
    use bigraph::GraphBuilder;
    let empty = GraphBuilder::new(2, 2).build().unwrap();
    let mut one = GraphBuilder::new(2, 2);
    one.add_edge(0, 0);
    let one = one.build().unwrap();
    let params = FairParams::unchecked(1, 1, 1);
    for g in [&empty, &one] {
        assert_differential("degenerate", |c| enumerate_ssfbc(g, params, c));
        assert_differential("degenerate-bi", |c| enumerate_bsfbc(g, params, c));
    }
}

/// A planted dense block large enough that `Auto` resolves to bitsets
/// on the pruned core — make sure the combination pipeline is really
/// exercised end to end on wide rows (> 64 columns ⇒ multi-word).
#[test]
fn planted_blocks_differential_multiword() {
    use bigraph::generate::plant_bicliques;
    let base = random_uniform(80, 90, 500, 2, 2, 5);
    let g = plant_bicliques(&base, 3, 6, 8, 1.0, 6);
    let params = FairParams::unchecked(2, 2, 1);
    let got = assert_differential("planted", |c| enumerate_ssfbc(&g, params, c));
    assert!(!got.is_empty(), "planted blocks must yield SSFBCs");
}
