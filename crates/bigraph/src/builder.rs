//! Validated construction of [`BipartiteGraph`]s.
//!
//! The builder accepts edges in any order, deduplicates them, grows the
//! vertex sets on demand, and produces sorted CSR storage in one pass.

use crate::graph::{AttrValueId, BipartiteGraph, Side, SideStore, VertexId};

/// Errors raised by [`GraphBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A vertex's attribute value is `>=` the declared domain size.
    AttrOutOfDomain {
        /// Side the offending vertex is on.
        side: Side,
        /// Offending vertex id.
        vertex: VertexId,
        /// The out-of-domain attribute value.
        attr: AttrValueId,
    },
    /// The graph would exceed `u32` vertex ids.
    TooManyVertices,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::AttrOutOfDomain { side, vertex, attr } => write!(
                f,
                "vertex {vertex} on side {side} has attribute {attr} outside the declared domain"
            ),
            BuildError::TooManyVertices => f.write_str("vertex count exceeds u32 id space"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Incremental builder for [`BipartiteGraph`].
///
/// ```
/// use bigraph::{GraphBuilder, Side};
///
/// let mut b = GraphBuilder::new(2, 2);
/// b.add_edge(0, 0);
/// b.add_edge(0, 1);
/// b.add_edge(1, 1);
/// b.set_attrs_upper(&[0, 1]);
/// b.set_attrs_lower(&[0, 1]);
/// let g = b.build().unwrap();
/// assert_eq!(g.n_edges(), 3);
/// assert_eq!(g.neighbors(Side::Upper, 0), &[0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    edges: Vec<(VertexId, VertexId)>,
    upper_attrs: Vec<AttrValueId>,
    lower_attrs: Vec<AttrValueId>,
    n_upper: usize,
    n_lower: usize,
    n_upper_attrs: AttrValueId,
    n_lower_attrs: AttrValueId,
}

impl GraphBuilder {
    /// A builder for a graph with the given attribute-domain sizes
    /// (`A_n^U`, `A_n^V`). Vertices default to attribute value `0`.
    pub fn new(n_upper_attrs: AttrValueId, n_lower_attrs: AttrValueId) -> Self {
        GraphBuilder {
            edges: Vec::new(),
            upper_attrs: Vec::new(),
            lower_attrs: Vec::new(),
            n_upper: 0,
            n_lower: 0,
            n_upper_attrs,
            n_lower_attrs,
        }
    }

    /// Pre-size the edge buffer.
    pub fn with_edge_capacity(mut self, cap: usize) -> Self {
        self.edges.reserve(cap);
        self
    }

    /// Ensure the graph has at least `n` upper and `m` lower vertices
    /// (useful for isolated vertices, which the paper's datasets contain).
    pub fn ensure_vertices(&mut self, n_upper: usize, n_lower: usize) {
        self.n_upper = self.n_upper.max(n_upper);
        self.n_lower = self.n_lower.max(n_lower);
    }

    /// Add edge `(u, v)`; duplicate insertions are deduplicated at build
    /// time. Vertex sets grow on demand.
    #[inline]
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        self.edges.push((u, v));
        self.n_upper = self.n_upper.max(u as usize + 1);
        self.n_lower = self.n_lower.max(v as usize + 1);
    }

    /// Set the attribute value of one upper vertex.
    pub fn set_attr_upper(&mut self, u: VertexId, a: AttrValueId) {
        if self.upper_attrs.len() <= u as usize {
            self.upper_attrs.resize(u as usize + 1, 0);
        }
        self.upper_attrs[u as usize] = a;
        self.n_upper = self.n_upper.max(u as usize + 1);
    }

    /// Set the attribute value of one lower vertex.
    pub fn set_attr_lower(&mut self, v: VertexId, a: AttrValueId) {
        if self.lower_attrs.len() <= v as usize {
            self.lower_attrs.resize(v as usize + 1, 0);
        }
        self.lower_attrs[v as usize] = a;
        self.n_lower = self.n_lower.max(v as usize + 1);
    }

    /// Set all upper attributes at once (vertex `i` gets `attrs[i]`).
    pub fn set_attrs_upper(&mut self, attrs: &[AttrValueId]) {
        self.upper_attrs = attrs.to_vec();
        self.n_upper = self.n_upper.max(attrs.len());
    }

    /// Set all lower attributes at once (vertex `i` gets `attrs[i]`).
    pub fn set_attrs_lower(&mut self, attrs: &[AttrValueId]) {
        self.lower_attrs = attrs.to_vec();
        self.n_lower = self.n_lower.max(attrs.len());
    }

    /// Number of (possibly duplicate) edges added so far.
    pub fn n_pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalize into an immutable CSR graph.
    pub fn build(mut self) -> Result<BipartiteGraph, BuildError> {
        if self.n_upper > u32::MAX as usize || self.n_lower > u32::MAX as usize {
            return Err(BuildError::TooManyVertices);
        }
        self.upper_attrs.resize(self.n_upper, 0);
        self.lower_attrs.resize(self.n_lower, 0);
        for (side, attrs, dom) in [
            (Side::Upper, &self.upper_attrs, self.n_upper_attrs),
            (Side::Lower, &self.lower_attrs, self.n_lower_attrs),
        ] {
            if dom > 0 {
                for (i, &a) in attrs.iter().enumerate() {
                    if a >= dom {
                        return Err(BuildError::AttrOutOfDomain {
                            side,
                            vertex: i as VertexId,
                            attr: a,
                        });
                    }
                }
            }
        }

        self.edges.sort_unstable();
        self.edges.dedup();

        let upper = csr_from_sorted(
            &self.edges,
            self.n_upper,
            self.upper_attrs,
            |&(u, _)| u,
            |&(_, v)| v,
        );
        let mut rev: Vec<(VertexId, VertexId)> = self.edges.iter().map(|&(u, v)| (v, u)).collect();
        rev.sort_unstable();
        let lower = csr_from_sorted(
            &rev,
            self.n_lower,
            self.lower_attrs,
            |&(v, _)| v,
            |&(_, u)| u,
        );

        let g = BipartiteGraph {
            upper,
            lower,
            n_upper_attrs: self.n_upper_attrs,
            n_lower_attrs: self.n_lower_attrs,
        };
        debug_assert_eq!(g.validate(), Ok(()));
        Ok(g)
    }
}

fn csr_from_sorted<F, T>(
    edges: &[(VertexId, VertexId)],
    n: usize,
    attrs: Vec<AttrValueId>,
    src: F,
    dst: T,
) -> SideStore
where
    F: Fn(&(VertexId, VertexId)) -> VertexId,
    T: Fn(&(VertexId, VertexId)) -> VertexId,
{
    let mut offsets = vec![0usize; n + 1];
    for e in edges {
        offsets[src(e) as usize + 1] += 1;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    let adj = edges.iter().map(&dst).collect();
    SideStore {
        offsets,
        adj,
        attrs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_sort() {
        let mut b = GraphBuilder::new(1, 1);
        b.add_edge(0, 2);
        b.add_edge(0, 1);
        b.add_edge(0, 2); // duplicate
        b.add_edge(1, 0);
        let g = b.build().unwrap();
        assert_eq!(g.n_edges(), 3);
        assert_eq!(g.neighbors(Side::Upper, 0), &[1, 2]);
        assert_eq!(g.neighbors(Side::Lower, 2), &[0]);
        g.validate().unwrap();
    }

    #[test]
    fn isolated_vertices() {
        let mut b = GraphBuilder::new(1, 1);
        b.add_edge(0, 0);
        b.ensure_vertices(3, 5);
        let g = b.build().unwrap();
        assert_eq!(g.n_upper(), 3);
        assert_eq!(g.n_lower(), 5);
        assert_eq!(g.degree(Side::Upper, 2), 0);
        assert_eq!(g.degree(Side::Lower, 4), 0);
        g.validate().unwrap();
    }

    #[test]
    fn attr_domain_enforced() {
        let mut b = GraphBuilder::new(2, 2);
        b.add_edge(0, 0);
        b.set_attr_upper(0, 5);
        let err = b.build().unwrap_err();
        assert!(matches!(
            err,
            BuildError::AttrOutOfDomain {
                side: Side::Upper,
                vertex: 0,
                attr: 5
            }
        ));
        assert!(err.to_string().contains("outside"));
    }

    #[test]
    fn attrs_resize_with_defaults() {
        let mut b = GraphBuilder::new(3, 3);
        b.add_edge(4, 4);
        b.set_attr_lower(2, 2);
        let g = b.build().unwrap();
        assert_eq!(g.attr(Side::Upper, 4), 0); // default
        assert_eq!(g.attr(Side::Lower, 2), 2);
        assert_eq!(g.attr(Side::Lower, 4), 0);
    }

    #[test]
    fn empty_build() {
        let g = GraphBuilder::new(2, 2).build().unwrap();
        assert_eq!(g.n_upper(), 0);
        assert_eq!(g.n_lower(), 0);
        assert_eq!(g.n_edges(), 0);
    }

    #[test]
    fn pending_edges_counts_duplicates() {
        let mut b = GraphBuilder::new(1, 1).with_edge_capacity(8);
        b.add_edge(0, 0);
        b.add_edge(0, 0);
        assert_eq!(b.n_pending_edges(), 2);
        assert_eq!(b.build().unwrap().n_edges(), 1);
    }
}
