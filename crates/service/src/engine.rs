//! The query engine: command dispatch, admission control, and query
//! execution over the catalog + plan cache.

use crate::catalog::{generate, GraphCatalog, GraphEntry, GraphUpdate, UpdateError};
use crate::metrics::{bump, Metrics};
use crate::plan_cache::{PlanCache, PlanKey};
use crate::protocol::{EnumMode, EnumOpts, Reply, Request, TraceMode};
use crate::slowlog::{SlowEntry, SlowLog};
use crate::sync::{lock_unpoisoned, wait_timeout_unpoisoned, wait_unpoisoned};
use crate::ServiceConfig;
use fair_biclique::config::{Budget, CancelToken, PrepareCtl, RunConfig, StopReason};
use fair_biclique::obs::SpanRecorder;
use fair_biclique::prepared::{PreparedQuery, QueryModel};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// What the transport should do after a reply.
#[derive(Debug)]
pub enum Outcome {
    /// Send the reply, keep serving.
    Reply(Reply),
    /// Send the reply, then stop the server.
    Shutdown(Reply),
}

impl Outcome {
    /// The reply either way.
    pub fn reply(&self) -> &Reply {
        match self {
            Outcome::Reply(r) | Outcome::Shutdown(r) => r,
        }
    }
}

/// Bounded worker pool: at most `workers` queries execute at once and
/// at most `queue_depth` wait; anything beyond that is refused
/// immediately so overload degrades into fast `BUSY` errors instead of
/// unbounded queueing.
#[derive(Debug)]
struct Admission {
    workers: usize,
    queue_depth: usize,
    state: Mutex<AdmissionState>,
    cv: Condvar,
}

#[derive(Debug, Default)]
struct AdmissionState {
    active: usize,
    waiting: usize,
}

/// RAII slot in the worker pool.
#[derive(Debug)]
struct AdmissionGuard<'a>(&'a Admission);

impl Drop for AdmissionGuard<'_> {
    fn drop(&mut self) {
        // Also runs while unwinding out of a panicked query, so the
        // worker slot is always returned.
        let mut st = lock_unpoisoned(&self.0.state);
        st.active -= 1;
        drop(st);
        self.0.cv.notify_one();
    }
}

impl Admission {
    fn new(workers: usize, queue_depth: usize) -> Admission {
        Admission {
            workers: workers.max(1),
            queue_depth,
            state: Mutex::new(AdmissionState::default()),
            cv: Condvar::new(),
        }
    }

    /// Wait for a worker slot, giving up at `deadline_at` so a queued
    /// query's deadline keeps ticking while it waits (and its queue
    /// slot is released the moment it expires).
    fn admit(&self, deadline_at: Option<Instant>) -> Result<AdmissionGuard<'_>, AdmitRefused> {
        let mut st = lock_unpoisoned(&self.state);
        if st.active >= self.workers {
            if st.waiting >= self.queue_depth {
                return Err(AdmitRefused::Busy);
            }
            st.waiting += 1;
            while st.active >= self.workers {
                match deadline_at {
                    None => st = wait_unpoisoned(&self.cv, st),
                    Some(d) => {
                        let remaining = d.saturating_duration_since(Instant::now());
                        if remaining.is_zero() {
                            st.waiting -= 1;
                            // This waiter may be exiting on the very
                            // notification that announced a free slot
                            // (the futex wake landed just as the
                            // deadline ran out). Swallowing it could
                            // strand another waiter forever, so pass
                            // it on; a spurious extra notify is
                            // harmless — the wait loop re-checks.
                            drop(st);
                            self.cv.notify_one();
                            return Err(AdmitRefused::DeadlineExpired);
                        }
                        st = wait_timeout_unpoisoned(&self.cv, st, remaining).0;
                    }
                }
            }
            st.waiting -= 1;
        }
        st.active += 1;
        Ok(AdmissionGuard(self))
    }
}

/// Why [`Admission::admit`] turned a query away.
#[derive(Debug, PartialEq, Eq)]
enum AdmitRefused {
    /// Workers and wait queue are both full.
    Busy,
    /// The query's deadline expired while it waited for a worker.
    DeadlineExpired,
}

/// Per-connection state: the `TRACE` toggle and its sampling counter.
/// The transports ([`crate::server`], [`crate::batch`]) keep one per
/// connection/script and thread it through
/// [`Engine::handle_line_in`]; the engine itself stays stateless
/// across requests.
#[derive(Debug, Default)]
pub struct Session {
    trace: TraceMode,
    sampled: u64,
}

impl Session {
    /// Fresh session: tracing off.
    pub fn new() -> Session {
        Session::default()
    }

    /// Apply a `TRACE` verb.
    fn set_trace(&mut self, mode: TraceMode) {
        self.trace = mode;
        self.sampled = 0;
    }

    /// Should the next `ENUM` on this connection be traced? Advances
    /// the `sample=K` counter, so call exactly once per query.
    fn should_trace(&mut self) -> bool {
        match self.trace {
            TraceMode::Off => false,
            TraceMode::On => true,
            TraceMode::Sample(k) => {
                self.sampled += 1;
                if self.sampled >= k {
                    self.sampled = 0;
                    true
                } else {
                    false
                }
            }
        }
    }
}

/// Per-request context derived from connection state, carried into
/// the query path (and, on coordinators, the fan-out).
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryCtx<'a> {
    /// Append a `# span ...` breakdown block to the reply and record
    /// the span tree in the slow-query log.
    pub traced: bool,
    /// The raw request line (stored in slow-query log entries; empty
    /// when the request arrived through the typed API).
    pub line: &'a str,
}

/// A resident query engine. Shared across connection threads via
/// `Arc`; all interior mutability is behind locks/atomics.
pub struct Engine {
    pub(crate) cfg: ServiceConfig,
    catalog: GraphCatalog,
    plans: Mutex<PlanCache>,
    admission: Admission,
    /// Counters and histograms served by `STATS` / `METRICS`.
    pub metrics: Metrics,
    /// The N slowest queries, served by `SLOWLOG`.
    pub slowlog: SlowLog,
    shutdown: CancelToken,
}

impl Engine {
    /// Engine with `cfg` tunables and an empty catalog.
    pub fn new(cfg: ServiceConfig) -> Arc<Engine> {
        Arc::new(Engine {
            admission: Admission::new(cfg.workers, cfg.queue_depth),
            plans: Mutex::new(PlanCache::new(cfg.plan_cache_capacity)),
            metrics: Metrics::with_shards(cfg.shards.len()),
            slowlog: SlowLog::new(cfg.slowlog_capacity),
            cfg,
            catalog: GraphCatalog::new(),
            shutdown: CancelToken::new(),
        })
    }

    /// The token every in-flight query observes; `SHUTDOWN` cancels it.
    pub fn shutdown_token(&self) -> CancelToken {
        self.shutdown.clone()
    }

    /// True once `SHUTDOWN` has been accepted.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.is_cancelled()
    }

    /// Drop all cached plans (benchmarks use this to measure the cold
    /// path repeatedly).
    pub fn clear_plans(&self) {
        lock_unpoisoned(&self.plans).clear();
    }

    /// Parse and execute one request line with a throwaway session
    /// (tracing off). Transports serving multi-request connections
    /// use [`Engine::handle_line_in`] so `TRACE` persists.
    pub fn handle_line(&self, line: &str) -> Outcome {
        self.handle_line_in(line, &mut Session::new())
    }

    /// Parse and execute one request line against a connection's
    /// [`Session`] (which carries the `TRACE` state across requests).
    pub fn handle_line_in(&self, line: &str, session: &mut Session) -> Outcome {
        if self.is_shutdown() {
            return Outcome::Reply(Reply::err("SHUTDOWN", "server is stopping"));
        }
        // Deliberate fault injection for resilience tests; not a
        // protocol verb (absent from parse_request and the README
        // grammar) and inert unless `debug_commands` is enabled.
        if self.cfg.debug_commands && line.trim().eq_ignore_ascii_case("CRASH") {
            // fbe-lint: allow(no-panic-paths): CRASH exists to panic — it proves the server degrades to ERR INTERNAL instead of wedging
            let crash = || -> Outcome { panic!("CRASH debug command") };
            return self.recovered(catch_unwind(AssertUnwindSafe(crash)));
        }
        match crate::protocol::parse_request(line) {
            Err(reply) => Outcome::Reply(reply),
            Ok(req) => {
                // Session bookkeeping happens outside the panic guard:
                // `TRACE` mutates the toggle, `ENUM` consumes one
                // sampling tick.
                let ctx = QueryCtx {
                    traced: match &req {
                        Request::Trace { mode } => {
                            session.set_trace(*mode);
                            false
                        }
                        Request::Enum { .. } => session.should_trace(),
                        _ => false,
                    },
                    line,
                };
                self.recovered(catch_unwind(AssertUnwindSafe(|| self.handle_ctx(req, ctx))))
            }
        }
    }

    /// Map a panicked request to `ERR INTERNAL` so one buggy (or
    /// deliberately crashed) query degrades into an error reply on its
    /// own connection instead of killing the connection thread and —
    /// via lock poisoning — every request after it. The locks the
    /// panic may have poisoned are all recovered by [`crate::sync`]'s
    /// helpers at their next use.
    fn recovered(&self, result: std::thread::Result<Outcome>) -> Outcome {
        match result {
            Ok(outcome) => outcome,
            Err(payload) => {
                bump(&self.metrics.queries_err);
                let what = payload
                    .downcast_ref::<&str>()
                    .copied()
                    .map(str::to_string)
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                Outcome::Reply(Reply::err("INTERNAL", format!("request panicked: {what}")))
            }
        }
    }

    /// Execute a parsed request (tracing off, no slow-log query text).
    pub fn handle(&self, req: Request) -> Outcome {
        self.handle_ctx(req, QueryCtx::default())
    }

    /// Execute a parsed request under a per-request [`QueryCtx`].
    pub fn handle_ctx(&self, req: Request, ctx: QueryCtx<'_>) -> Outcome {
        // Observability verbs answer from the local registry even on a
        // coordinator: its metrics/slow-log describe the fan-outs it
        // ran (shard servers keep their own, reachable directly).
        match &req {
            Request::Metrics => {
                let mut r = Reply::ok("format=prometheus");
                r.payload = self.metrics.render_prometheus();
                return Outcome::Reply(r);
            }
            Request::Slowlog { n } => {
                let payload = self.slowlog.render(*n);
                let entries = payload.iter().filter(|l| l.starts_with("query ")).count();
                let mut r = Reply::ok(format!("entries={entries}"));
                r.payload = payload;
                return Outcome::Reply(r);
            }
            Request::Trace { mode } => {
                // The session toggle was applied by `handle_line_in`;
                // this is just the acknowledgement.
                return Outcome::Reply(Reply::ok(format!("trace={mode}")));
            }
            _ => {}
        }
        if !self.cfg.shards.is_empty() {
            // Coordinator mode: fan out to the shard servers instead
            // of executing locally (the local catalog stays empty).
            return crate::coordinator::handle(self, req, ctx);
        }
        match req {
            Request::Ping => Outcome::Reply(Reply::ok("pong")),
            Request::Shutdown => {
                self.shutdown.cancel();
                Outcome::Shutdown(Reply::ok("bye"))
            }
            Request::Graphs => {
                let mut r = Reply::ok(format!("graphs={}", self.catalog.len()));
                r.payload = self.catalog.summaries();
                Outcome::Reply(r)
            }
            Request::Drop { name } => Outcome::Reply(if self.catalog.remove(&name) {
                lock_unpoisoned(&self.plans).invalidate_graph(&name);
                Reply::ok(format!("dropped={name}"))
            } else {
                Reply::err("NOGRAPH", format!("no graph named {name:?}"))
            }),
            Request::Load { name, path, attrs } => Outcome::Reply(match self.resolve_stem(&path) {
                Ok(stem) => match bigraph::io::load_stem(&stem, attrs.0, attrs.1) {
                    Ok(g) => Reply::ok(self.catalog_insert(&name, g, path).summary()),
                    Err(e) => Reply::err("IO", e),
                },
                Err(msg) => Reply::err("PARSE", msg),
            }),
            Request::Gen { name, spec } => {
                let (g, source) = generate(spec);
                Outcome::Reply(Reply::ok(self.catalog_insert(&name, g, source).summary()))
            }
            Request::Stats => {
                let plans = lock_unpoisoned(&self.plans);
                let mut r = Reply::ok(format!(
                    "graphs={} plans={} plan_bytes={}",
                    self.catalog.len(),
                    plans.len(),
                    plans.heap_bytes()
                ));
                r.payload = self.metrics.render();
                r.payload.push(format!("graphs {}", self.catalog.len()));
                r.payload.push(format!("plans_cached {}", plans.len()));
                r.payload
                    .push(format!("plan_cache_evictions {}", plans.evictions));
                r.payload
                    .push(format!("plan_cache_invalidated {}", plans.invalidated));
                r.payload
                    .push(format!("plan_cache_bytes {}", plans.heap_bytes()));
                Outcome::Reply(r)
            }
            Request::AddEdge { graph, u, v } => {
                Outcome::Reply(self.apply_update(&graph, GraphUpdate::AddEdge(u, v)))
            }
            Request::DelEdge { graph, u, v } => {
                Outcome::Reply(self.apply_update(&graph, GraphUpdate::DelEdge(u, v)))
            }
            Request::AddVertex { graph, side, attr } => {
                Outcome::Reply(self.apply_update(&graph, GraphUpdate::AddVertex(side, attr)))
            }
            Request::Shard {
                graph,
                index,
                of,
                alpha,
            } => Outcome::Reply(self.shard(&graph, index, of, alpha)),
            Request::Enum { graph, model, opts } => {
                Outcome::Reply(self.query(&graph, model, opts, ctx))
            }
            // Answered before the coordinator check; unreachable here,
            // kept only for match exhaustiveness.
            Request::Metrics | Request::Slowlog { .. } | Request::Trace { .. } => Outcome::Reply(
                Reply::err("INTERNAL", "observability verb reached local dispatch"),
            ),
        }
    }

    /// Resolve a `LOAD` stem against the configured data root. With no
    /// root configured the stem is trusted verbatim; with one, absolute
    /// stems and stems containing `..` are refused so network clients
    /// cannot point the loader at arbitrary filesystem paths.
    pub(crate) fn resolve_stem(&self, stem: &str) -> Result<std::path::PathBuf, String> {
        let p = Path::new(stem);
        match &self.cfg.data_root {
            None => Ok(p.to_path_buf()),
            Some(root) => {
                let escapes = p.is_absolute()
                    || p.components()
                        .any(|c| matches!(c, std::path::Component::ParentDir));
                if escapes {
                    Err(format!(
                        "stem {stem:?} escapes the data root (absolute paths and .. are refused)"
                    ))
                } else {
                    Ok(root.join(p))
                }
            }
        }
    }

    /// `SHARD <graph> index=I of=K [alpha=A]`: replace the cataloged
    /// graph with shard `I` of its deterministic `K`-way partition
    /// along the α-threshold 2-hop components of the fair (lower)
    /// side. The shard keeps the parent vertex-id space, so query
    /// results remain in parent ids and every shard server computes
    /// the identical partition independently.
    fn shard(&self, name: &str, index: usize, of: usize, alpha: usize) -> Reply {
        let Some(entry) = self.catalog.get(name) else {
            return Reply::err("NOGRAPH", format!("no graph named {name:?}"));
        };
        let plan = bigraph::partition::plan_shards(&entry.graph, bigraph::Side::Lower, alpha, of);
        let g = bigraph::partition::shard_edges(&entry.graph, &plan, index);
        let weight = plan.shard_weights.get(index).copied().unwrap_or(0);
        let source = format!("{} [shard {index}/{of} alpha={alpha}]", entry.source);
        let edges = g.n_edges();
        let components = plan.n_components;
        drop(entry);
        self.catalog_insert(name, g, source);
        Reply::ok(format!(
            "graph={name} shard={index} of={of} alpha={alpha} components={components} \
             edges={edges} weight={weight}"
        ))
    }

    /// Apply one dynamic-graph update: splice the graph, repair the
    /// fair-core trackers, and surgically drop exactly the cached
    /// plans whose `(α, β)` core was touched. Plans at untouched pairs
    /// keep serving byte-identical results, so they stay resident.
    fn apply_update(&self, name: &str, update: GraphUpdate) -> Reply {
        // Track only the (α, β) pairs of plans at the graph's current
        // epoch: older-epoch leftovers in the LRU are unreachable and
        // must not widen the update's core-maintenance work.
        let tracked = match self.catalog.get(name) {
            Some(entry) => lock_unpoisoned(&self.plans).tracked_pairs(name, entry.epoch),
            None => Vec::new(),
        };
        match self.catalog.update(name, update, &tracked) {
            Ok(out) => {
                let (dropped, kept) = {
                    let mut plans = lock_unpoisoned(&self.plans);
                    let dropped = plans.invalidate_where(|k| {
                        k.graph == name && out.stale_pairs.contains(&(k.alpha, k.beta))
                    });
                    (dropped, plans.count_graph(name))
                };
                bump(&self.metrics.updates_applied);
                let mut status = format!(
                    "graph={name} version={} edges={} cores_stale={} cores_clean={} plans_invalidated={dropped} plans_kept={kept}",
                    out.entry.version,
                    out.entry.graph.n_edges(),
                    out.stale_pairs.len(),
                    out.clean_pairs.len(),
                );
                if let Some(id) = out.new_vertex {
                    status.push_str(&format!(" vertex={id}"));
                }
                Reply::ok(status)
            }
            Err(UpdateError::NoSuchGraph(n)) => {
                Reply::err("NOGRAPH", format!("no graph named {n:?}"))
            }
            Err(UpdateError::Mutate(e)) => Reply::err("BADARG", e.to_string()),
        }
    }

    /// Insert (or replace) a catalog graph, dropping any cached plans
    /// of the replaced generation — the bumped epoch already makes
    /// them unreachable, so keeping them would only burn LRU capacity
    /// and heap until they age out.
    fn catalog_insert(
        &self,
        name: &str,
        g: bigraph::BipartiteGraph,
        source: String,
    ) -> Arc<GraphEntry> {
        let entry = self.catalog.insert(name, g, source);
        // After the new entry is visible: anything cached under this
        // name is now an unreachable old-epoch plan. (A query racing
        // the replacement may momentarily lose a fresh plan too — it
        // is simply re-prepared on next use.)
        lock_unpoisoned(&self.plans).invalidate_graph(name);
        bump(&self.metrics.graphs_loaded);
        entry
    }

    /// Fetch (or prepare and cache) the plan for `(entry, model,
    /// substrate)`. Returns the plan and whether it was a cache hit.
    ///
    /// Cold preparations run under the query's deadline and the
    /// server's shutdown token: the prune cascade probes cooperatively
    /// and aborts with the interrupting [`StopReason`] instead of
    /// overshooting the deadline by one un-cancellable prepare.
    /// Nothing is cached on abort — a retry with a fresh deadline
    /// prepares from scratch.
    fn plan_for(
        &self,
        entry: &Arc<GraphEntry>,
        model: QueryModel,
        opts: &EnumOpts,
        deadline_at: Option<Instant>,
        rec: &mut SpanRecorder,
    ) -> Result<(Arc<PreparedQuery>, bool), StopReason> {
        let key = PlanKey::new(&entry.name, entry.epoch, model, opts.substrate);
        if let Some(plan) = lock_unpoisoned(&self.plans).get(&key) {
            bump(&self.metrics.plan_cache_hits);
            // No prepare stage ran; surface the amortized cost so a
            // traced cache hit still explains where its plan came from.
            rec.leaf_with("plan-cached", Duration::ZERO, || {
                format!("amortized_prepare_us={}", plan.prune_elapsed().as_micros())
            });
            return Ok((plan, true));
        }
        bump(&self.metrics.plan_cache_misses);
        // Prepare outside the lock: cold preparations of different
        // keys proceed in parallel. Two racing queries for the same
        // key both prepare; last insert wins (harmless duplicate
        // work, never a stale plan).
        let ctl = PrepareCtl {
            deadline_at,
            cancel: Some(self.shutdown.clone()),
        };
        let tp = Instant::now();
        let plan = Arc::new(PreparedQuery::prepare_rec(
            &entry.graph,
            model,
            Default::default(),
            opts.substrate,
            &ctl,
            rec,
        )?);
        self.metrics.stage_prepare.observe(tp.elapsed());
        // Cache only if the entry we prepared against is still the
        // cataloged one. A graph update keeps the epoch (so the key
        // alone cannot tell update generations apart) and runs its
        // surgical invalidation once — a plan of the pre-update
        // snapshot inserted after that sweep would serve stale results
        // forever. The query itself still uses the plan: it answers
        // over the snapshot it admitted against.
        let current = self.catalog.get(&entry.name);
        if current.is_some_and(|c| Arc::ptr_eq(&c, entry)) {
            lock_unpoisoned(&self.plans).insert(key, Arc::clone(&plan));
        }
        Ok((plan, false))
    }

    fn query(&self, graph: &str, model: QueryModel, opts: EnumOpts, ctx: QueryCtx<'_>) -> Reply {
        bump(&self.metrics.queries_total);
        let t0 = Instant::now();
        let mut rec = if ctx.traced {
            SpanRecorder::enabled()
        } else {
            SpanRecorder::disabled()
        };
        let mut epoch = 0u64;
        let (mut reply, stop) = self.run_query(graph, model, &opts, t0, &mut rec, &mut epoch);
        // Single exit: every OK reply — including truncated ones — is
        // observed, trace-decorated, and offered to the slow-query log
        // exactly once; error replies only count as errors.
        if reply.is_ok() {
            let elapsed = t0.elapsed();
            self.metrics.observe_latency(elapsed);
            bump(&self.metrics.queries_ok);
            if let Some(stop) = stop {
                self.metrics.observe_truncation(stop);
            }
            if rec.is_enabled() {
                // `#`-prefixed so payload consumers can filter trace
                // lines without understanding them (result lines never
                // start with `#`).
                reply
                    .payload
                    .extend(rec.render().into_iter().map(|l| format!("# {l}")));
            }
            self.slowlog.record(SlowEntry {
                seq: 0,
                query: if ctx.line.is_empty() {
                    format!("ENUM {graph} {}", model.name())
                } else {
                    ctx.line.to_string()
                },
                graph: graph.to_string(),
                epoch,
                elapsed,
                stop,
                spans: rec.into_spans(),
            });
        } else {
            bump(&self.metrics.queries_err);
        }
        reply
    }

    /// The fallible middle of [`Engine::query`]: admission → plan →
    /// enumeration. Returns the reply plus the truncation reason (the
    /// caller owns metrics/trace/slow-log bookkeeping). `epoch_out`
    /// reports the catalog epoch the query ran against.
    fn run_query(
        &self,
        graph: &str,
        model: QueryModel,
        opts: &EnumOpts,
        t0: Instant,
        rec: &mut SpanRecorder,
        epoch_out: &mut u64,
    ) -> (Reply, Option<StopReason>) {
        let deadline_at = opts.deadline.map(|d| t0 + d);
        let truncated_reply = |cached, stop: StopReason| {
            let status = self.status_line(graph, model, opts, 0, cached, Some(stop), t0);
            (Reply::ok(status), Some(stop))
        };
        let Some(entry) = self.catalog.get(graph) else {
            return (
                Reply::err("NOGRAPH", format!("no graph named {graph:?}")),
                None,
            );
        };
        *epoch_out = entry.epoch;
        let _slot = match self.admission.admit(deadline_at) {
            Ok(slot) => slot,
            Err(AdmitRefused::Busy) => {
                bump(&self.metrics.rejected_busy);
                return (
                    Reply::err("BUSY", "worker pool and queue are full; retry later"),
                    None,
                );
            }
            // The deadline expired while queued: the slot was released
            // at expiry and the reply is empty-but-well-formed.
            Err(AdmitRefused::DeadlineExpired) => {
                return truncated_reply(false, StopReason::Deadline)
            }
        };

        // The deadline is one wall clock covering queue wait, (for
        // cold plans) preparation, and enumeration. A cold prepare
        // that outlives the deadline aborts cooperatively inside the
        // prune cascade and reports `truncated=deadline` here — it no
        // longer overshoots by a full un-cancellable prepare.
        let (plan, cached) = match self.plan_for(&entry, model, opts, deadline_at, rec) {
            Ok(got) => got,
            Err(stop) => return truncated_reply(false, stop),
        };

        // A prepare that finished between two probes may still have
        // exhausted the clock: re-check before enumerating so the run
        // gets a zero budget rather than a fresh one.
        let remaining = deadline_at.map(|d| d.saturating_duration_since(Instant::now()));
        if remaining == Some(Duration::ZERO) {
            return truncated_reply(cached, StopReason::Deadline);
        }

        let limit = match opts.mode {
            EnumMode::Collect => Some(opts.limit.unwrap_or(self.cfg.default_result_limit)),
            _ => opts.limit,
        };
        let budget = Budget {
            max_nodes: None,
            max_time: remaining,
            max_results: limit,
            cancel: Some(self.shutdown.clone()),
        };
        let cfg = RunConfig {
            budget,
            threads: opts.threads,
            sorted: true,
            substrate: opts.substrate,
            ..RunConfig::default()
        };

        let te = Instant::now();
        let (count, payload, stop) = match opts.mode {
            EnumMode::Collect => {
                let report = plan.execute_rec(&cfg, rec);
                let lines = report.bicliques.iter().map(|b| b.to_string()).collect();
                (report.stats.emitted, lines, report.truncated_by)
            }
            EnumMode::Count => {
                let report = plan.count_rec(&cfg, rec);
                (report.stats.emitted, Vec::new(), report.truncated_by)
            }
            EnumMode::Maximum(metric) => {
                let (best, stats) = plan.maximum_rec(metric, &cfg, rec);
                let lines: Vec<String> = best.iter().map(|b| b.to_string()).collect();
                (lines.len() as u64, lines, stats.stop)
            }
        };
        self.metrics.stage_enumerate.observe(te.elapsed());

        let mut reply = Reply::ok(self.status_line(graph, model, opts, count, cached, stop, t0));
        reply.payload = payload;
        (reply, stop)
    }

    #[allow(clippy::too_many_arguments)]
    fn status_line(
        &self,
        graph: &str,
        model: QueryModel,
        opts: &EnumOpts,
        count: u64,
        cached: bool,
        stop: Option<StopReason>,
        t0: Instant,
    ) -> String {
        let mut s = format!(
            "model={} graph={graph} count={count} cached={cached} threads={} elapsed_us={}",
            model.name(),
            opts.threads,
            t0.elapsed().as_micros()
        );
        if let Some(stop) = stop {
            s.push_str(&format!(" truncated={stop}"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Arc<Engine> {
        Engine::new(ServiceConfig::default())
    }

    fn ok_status(o: &Outcome) -> &str {
        let r = o.reply();
        assert!(r.is_ok(), "expected OK, got {}", r.status);
        &r.status
    }

    fn field<'a>(status: &'a str, key: &str) -> Option<&'a str> {
        status
            .split_whitespace()
            .find_map(|t| t.strip_prefix(&format!("{key}=") as &str))
    }

    #[test]
    fn ping_graphs_gen_drop_roundtrip() {
        let e = engine();
        assert_eq!(ok_status(&e.handle_line("PING")), "OK pong");
        let s = e.handle_line("GEN g uniform:20,20,120,7");
        assert!(ok_status(&s).contains("upper=20"));
        let s = e.handle_line("GRAPHS");
        assert!(ok_status(&s).contains("graphs=1"));
        assert_eq!(s.reply().payload.len(), 1);
        assert!(ok_status(&e.handle_line("DROP g")).contains("dropped"));
        let r = e.handle_line("DROP g");
        assert!(r.reply().status.starts_with("ERR NOGRAPH"));
        let r = e.handle_line("ENUM g ssfbc alpha=1 beta=1 delta=1");
        assert!(r.reply().status.starts_with("ERR NOGRAPH"));
    }

    #[test]
    fn enum_runs_and_second_query_hits_the_plan_cache() {
        let e = engine();
        e.handle_line("GEN g uniform:20,20,120,7");
        let q = "ENUM g ssfbc alpha=2 beta=1 delta=1";
        let first = e.handle_line(q);
        let s1 = ok_status(&first).to_string();
        assert_eq!(field(&s1, "cached"), Some("false"));
        let n1: u64 = field(&s1, "count").unwrap().parse().unwrap();
        assert_eq!(first.reply().payload.len() as u64, n1);

        let second = e.handle_line(q);
        let s2 = ok_status(&second).to_string();
        assert_eq!(field(&s2, "cached"), Some("true"));
        assert_eq!(second.reply().payload, first.reply().payload);

        // Different params → different plan (miss), same graph.
        let third = e.handle_line("ENUM g ssfbc alpha=3 beta=1 delta=1");
        assert_eq!(field(ok_status(&third), "cached"), Some("false"));

        let stats = e.handle_line("STATS");
        let hits = stats
            .reply()
            .payload
            .iter()
            .find(|l| l.starts_with("plan_cache_hits "))
            .unwrap();
        assert_eq!(hits, "plan_cache_hits 1");
    }

    #[test]
    fn all_four_models_and_modes_work() {
        let e = engine();
        e.handle_line("GEN g uniform:16,16,90,5");
        for model in ["ssfbc", "bsfbc"] {
            let q = format!("ENUM g {model} alpha=1 beta=1 delta=1");
            assert!(ok_status(&e.handle_line(&q)).contains("count="));
            let q = format!("ENUM g {model} alpha=1 beta=1 delta=1 max=edges");
            assert!(ok_status(&e.handle_line(&q)).contains("count="));
        }
        for model in ["pssfbc", "pbsfbc"] {
            let q = format!("ENUM g {model} alpha=1 beta=1 delta=1 theta=0.3 count-only");
            let o = e.handle_line(&q);
            assert!(ok_status(&o).contains("count="));
            assert!(o.reply().payload.is_empty(), "count-only has no payload");
        }
    }

    #[test]
    fn collect_mode_applies_the_default_result_limit() {
        let e = Engine::new(ServiceConfig {
            default_result_limit: 2,
            ..ServiceConfig::default()
        });
        e.handle_line("GEN g uniform:20,20,140,3");
        let o = e.handle_line("ENUM g ssfbc alpha=1 beta=1 delta=2");
        let s = ok_status(&o);
        assert_eq!(field(s, "count"), Some("2"));
        assert!(s.contains("truncated=result-cap"), "{s}");
        assert_eq!(o.reply().payload.len(), 2);
        // count-only is exempt from the default limit.
        let o = e.handle_line("ENUM g ssfbc alpha=1 beta=1 delta=2 count-only");
        let n: u64 = field(ok_status(&o), "count").unwrap().parse().unwrap();
        assert!(n > 2);
    }

    #[test]
    fn zero_deadline_truncates_without_poisoning() {
        let e = engine();
        e.handle_line("GEN g uniform:20,20,120,7");
        let o = e.handle_line("ENUM g ssfbc alpha=2 beta=1 delta=1 deadline-ms=0");
        let s = ok_status(&o);
        assert!(s.contains("truncated=deadline"), "{s}");
        assert_eq!(field(s, "count"), Some("0"));
        // The cold prepare aborted, so nothing was cached for it.
        assert_eq!(field(s, "cached"), Some("false"));
        assert_eq!(lock_unpoisoned(&e.plans).len(), 0);
        // The server still answers normal queries afterwards; the
        // first one re-prepares from scratch.
        let o = e.handle_line("ENUM g ssfbc alpha=2 beta=1 delta=1");
        let s = ok_status(&o);
        assert!(!s.contains("truncated"));
        assert_eq!(field(s, "cached"), Some("false"));
    }

    #[test]
    fn shutdown_refuses_further_commands() {
        let e = engine();
        let o = e.handle_line("SHUTDOWN");
        assert!(matches!(o, Outcome::Shutdown(_)));
        assert!(e.is_shutdown());
        let o = e.handle_line("PING");
        assert!(o.reply().status.starts_with("ERR SHUTDOWN"));
    }

    #[test]
    fn admission_refuses_beyond_workers_plus_queue() {
        let adm = Admission::new(1, 1);
        let a = adm.admit(None).expect("first admitted");
        // One waiter is allowed; simulate it occupying the queue.
        {
            let mut st = adm.state.lock().unwrap();
            st.waiting = 1;
        }
        assert_eq!(
            adm.admit(None).unwrap_err(),
            AdmitRefused::Busy,
            "beyond queue depth is refused"
        );
        {
            let mut st = adm.state.lock().unwrap();
            st.waiting = 0;
        }
        drop(a);
        let _b = adm.admit(None).expect("slot freed");
    }

    #[test]
    fn queued_queries_give_up_at_their_deadline() {
        let adm = Admission::new(1, 4);
        let slot = adm.admit(None).expect("occupies the worker");
        // An already-expired deadline is refused promptly, and the
        // queue slot is released (a later unbounded admit still fits).
        let t0 = Instant::now();
        assert_eq!(
            adm.admit(Some(Instant::now())).unwrap_err(),
            AdmitRefused::DeadlineExpired
        );
        let waited = t0.elapsed();
        assert!(waited < Duration::from_secs(2), "gave up fast: {waited:?}");
        assert_eq!(adm.state.lock().unwrap().waiting, 0, "queue slot released");
        // A short real deadline also expires while the worker is busy.
        let t0 = Instant::now();
        assert_eq!(
            adm.admit(Some(Instant::now() + Duration::from_millis(30)))
                .unwrap_err(),
            AdmitRefused::DeadlineExpired
        );
        assert!(t0.elapsed() >= Duration::from_millis(25));
        drop(slot);
        let _ = adm.admit(Some(Instant::now() + Duration::from_secs(5)));
    }

    /// Lost-wakeup harness: `AdmissionGuard::drop` wakes exactly one
    /// waiter, so a notification consumed by a waiter that exits with
    /// `DeadlineExpired` (instead of taking the slot) would strand a
    /// deadline-less waiter behind it; `admit` therefore re-notifies
    /// on the expired-exit path. Each round races three parties —
    /// slot holder A releasing at waiter B's exact expiry instant,
    /// deadline-less waiter C queued behind B — and asserts C always
    /// admits. This pins the liveness contract against any future
    /// reshuffle of the wait loop (e.g. checking the deadline before
    /// re-checking `active`, or dropping a notify on either exit
    /// path).
    #[test]
    fn expired_waiter_passes_the_wakeup_on() {
        use std::sync::mpsc;
        use std::thread;
        let adm = Arc::new(Admission::new(1, 4));
        for round in 0..400u64 {
            let a = adm.admit(None).expect("worker slot");
            let b_deadline = Instant::now() + Duration::from_millis(2);
            // B waits with a deadline that expires mid-round; its
            // guard (if the race admits it) is dropped immediately,
            // which re-notifies, so only the expired path is probed.
            let adm_b = Arc::clone(&adm);
            let b = thread::spawn(move || {
                let _ = adm_b.admit(Some(b_deadline));
            });
            // C waits with no deadline at all.
            let (tx, rx) = mpsc::channel();
            let adm_c = Arc::clone(&adm);
            let c = thread::spawn(move || {
                let guard = adm_c.admit(None);
                let _ = tx.send(());
                drop(guard);
            });
            // Let both reach the wait queue, then release the worker
            // slot at B's expiry instant so the notification sometimes
            // lands on the expiring B.
            thread::sleep(Duration::from_millis(1));
            while Instant::now() < b_deadline {
                std::hint::spin_loop();
            }
            drop(a);
            assert!(
                rx.recv_timeout(Duration::from_secs(2)).is_ok(),
                "deadline-less waiter stranded by an expired waiter (round {round})"
            );
            b.join().unwrap();
            c.join().unwrap();
        }
    }

    #[test]
    fn updates_invalidate_surgically_and_keep_clean_plans() {
        let e = engine();
        e.handle_line("GEN g uniform:20,20,120,7");
        // Two plans: one at (2,1) whose core is the bulk of the graph,
        // one at (50,50) whose core is empty.
        let hot = "ENUM g ssfbc alpha=2 beta=1 delta=1";
        let cold = "ENUM g ssfbc alpha=50 beta=50 delta=1";
        e.handle_line(hot);
        e.handle_line(cold);
        // Delete an edge inside the (2,1) core: only the hot plan
        // must drop.
        let entry = e.catalog.get("g").unwrap();
        let (u, v) = entry.graph.edges().next().unwrap();
        drop(entry);
        let o = e.handle_line(&format!("DELEDGE g {u} {v}"));
        let s = ok_status(&o).to_string();
        assert_eq!(field(&s, "version"), Some("1"), "{s}");
        assert_eq!(field(&s, "edges"), Some("119"), "{s}");
        assert_eq!(field(&s, "plans_invalidated"), Some("1"), "{s}");
        assert_eq!(field(&s, "plans_kept"), Some("1"), "{s}");
        assert_eq!(field(&s, "cores_stale"), Some("1"), "{s}");
        assert_eq!(field(&s, "cores_clean"), Some("1"), "{s}");
        // The clean plan still hits; the stale one re-prepares.
        assert_eq!(
            field(ok_status(&e.handle_line(cold)), "cached"),
            Some("true")
        );
        let o = e.handle_line(hot);
        assert_eq!(field(ok_status(&o), "cached"), Some("false"));
        // Putting the edge back invalidates the re-prepared hot plan
        // again and bumps the version.
        let o = e.handle_line(&format!("ADDEDGE g {u} {v}"));
        let s = ok_status(&o).to_string();
        assert_eq!(field(&s, "version"), Some("2"));
        assert_eq!(field(&s, "edges"), Some("120"));
        assert_eq!(field(&s, "plans_invalidated"), Some("1"));
        // Update results match a from-scratch query on the same graph:
        // re-generate the identical graph under another name and diff.
        e.handle_line("GEN h uniform:20,20,120,7");
        let a = e.handle_line(hot);
        let b = e.handle_line("ENUM h ssfbc alpha=2 beta=1 delta=1");
        assert_eq!(a.reply().payload, b.reply().payload);
        // STATS surfaces the churn.
        let stats = e.handle_line("STATS");
        let line = |k: &str| {
            stats
                .reply()
                .payload
                .iter()
                .find(|l| l.starts_with(&format!("{k} ") as &str))
                .unwrap_or_else(|| panic!("missing {k}"))
                .clone()
        };
        assert_eq!(line("updates_applied"), "updates_applied 2");
        assert_eq!(line("plan_cache_invalidated"), "plan_cache_invalidated 2");
    }

    #[test]
    fn vertex_and_edge_growth_through_the_protocol() {
        let e = engine();
        e.handle_line("GEN g uniform:10,10,50,3");
        let o = e.handle_line("ADDVERTEX g lower attr=1");
        let s = ok_status(&o).to_string();
        assert_eq!(field(&s, "vertex"), Some("10"), "{s}");
        // Wire the fresh vertex in.
        let o = e.handle_line("ADDEDGE g 0 10");
        assert_eq!(field(ok_status(&o), "edges"), Some("51"));
        let o = e.handle_line("ENUM g ssfbc alpha=1 beta=1 delta=1");
        assert!(ok_status(&o).contains("count="));
        // Errors keep machine-readable codes.
        assert!(
            e.handle_line("ADDEDGE g 0 10")
                .reply()
                .status
                .starts_with("ERR BADARG"),
            "duplicate edge"
        );
        assert!(
            e.handle_line("DELEDGE g 9999 0")
                .reply()
                .status
                .starts_with("ERR BADARG"),
            "endpoint out of range"
        );
        assert!(e
            .handle_line("ADDEDGE nope 0 0")
            .reply()
            .status
            .starts_with("ERR NOGRAPH"));
    }

    #[test]
    fn reloading_a_graph_invalidates_its_cached_plans() {
        let e = engine();
        e.handle_line("GEN g uniform:16,16,80,1");
        let q = "ENUM g ssfbc alpha=2 beta=1 delta=1";
        e.handle_line(q);
        assert_eq!(field(ok_status(&e.handle_line(q)), "cached"), Some("true"));
        // Replacing the graph drops the old generation's plans
        // entirely (they could never be hit again).
        e.handle_line("GEN g uniform:16,16,80,2");
        let stats = e.handle_line("STATS");
        assert!(
            ok_status(&stats).contains("plans=0"),
            "{}",
            stats.reply().status
        );
        let o = e.handle_line(q);
        assert_eq!(field(ok_status(&o), "cached"), Some("false"));
    }

    #[test]
    fn bad_lines_get_machine_readable_codes() {
        let e = engine();
        assert!(e
            .handle_line("FROBNICATE")
            .reply()
            .status
            .starts_with("ERR BADCMD"));
        assert!(e
            .handle_line("ENUM g ssfbc alpha=oops beta=1 delta=1")
            .reply()
            .status
            .starts_with("ERR BADARG"));
        assert!(e
            .handle_line("LOAD g /definitely/not/here")
            .reply()
            .status
            .starts_with("ERR IO"));
    }

    #[test]
    fn crash_hook_is_gated_behind_debug_commands() {
        // Off by default: CRASH is just an unknown verb.
        let e = engine();
        assert!(e
            .handle_line("CRASH")
            .reply()
            .status
            .starts_with("ERR BADCMD"));

        // Enabled: it panics inside the handler, degrades to
        // ERR INTERNAL, and the engine keeps answering.
        let e = Engine::new(ServiceConfig {
            debug_commands: true,
            ..ServiceConfig::default()
        });
        let r = e.handle_line("CRASH");
        assert!(
            r.reply().status.starts_with("ERR INTERNAL"),
            "{}",
            r.reply().status
        );
        assert!(r.reply().status.contains("CRASH debug command"));
        assert_eq!(ok_status(&e.handle_line("PING")), "OK pong");
        e.handle_line("GEN g uniform:12,12,60,1");
        let o = e.handle_line("ENUM g ssfbc alpha=1 beta=1 delta=1");
        assert!(ok_status(&o).contains("count="));
    }
}
