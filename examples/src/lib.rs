//! Shared helpers for the example binaries (intentionally minimal).
#![forbid(unsafe_code)]
