//! # fbe-lint — workspace-specific static analysis
//!
//! A std-only linter for invariants this workspace relies on but no
//! general-purpose tool checks: no-panic request paths in the resident
//! service, Mutex acquisition discipline, justified atomic orderings,
//! `*_with` API symmetry and protocol/README agreement, hash-map-free
//! deterministic emission paths, and pinned `#![forbid(unsafe_code)]`.
//! See each module under [`rules`] for the full rationale of a rule,
//! and the README's "Static analysis" section for the catalog.
//!
//! Sources are scanned with a lightweight lexer ([`lexer`]) that
//! blanks string literals, char literals, and (nested) comments before
//! any rule runs, so rules never fire on prose or message text.
//!
//! ## Suppressions
//!
//! A violation is suppressible only with an inline comment carrying a
//! written reason:
//!
//! ```text
//! // fbe-lint: allow(<rule>): <reason>
//! ```
//!
//! trailing on the flagged line, or standing alone on the line
//! directly above it. An allow without
//! a reason (or naming an unknown rule) is itself a violation
//! (`bad-allow`), so suppressions stay auditable.
//!
//! ## Usage
//!
//! ```text
//! cargo run -p fbe-lint --              # warn mode: list findings, exit 0
//! cargo run -p fbe-lint -- --deny      # CI gate: exit 1 on any finding
//! cargo run -p fbe-lint -- --json      # stable machine-readable output
//! cargo run -p fbe-lint -- --rule no-panic-paths   # run a subset
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod findings;
pub mod lexer;
pub mod rules;
pub mod walk;

#[cfg(test)]
mod fixtures;

use findings::Finding;
use walk::{Analysis, SourceFile};

/// Rule name reported for malformed `allow` comments.
pub const BAD_ALLOW: &str = "bad-allow";

/// A parsed `// fbe-lint: allow(rule): reason` comment.
#[derive(Debug)]
struct Allow {
    line: usize,
    rule: String,
    /// A trailing allow (sharing its line with code) covers only that
    /// line; a standalone comment line covers the line below it.
    trailing: bool,
    /// `None` when well-formed; otherwise why it is rejected.
    problem: Option<String>,
}

/// Parse the allow comments of one file.
fn parse_allows(file: &SourceFile) -> Vec<Allow> {
    let mut out = Vec::new();
    for (idx, l) in file.scrub.lines.iter().enumerate() {
        let comment = l.comment.as_str();
        let Some(at) = comment.find("fbe-lint:") else {
            continue;
        };
        // Doc comments describe the allow grammar; they never grant
        // suppressions themselves.
        let raw_trim = file.scrub.raw[idx].trim_start();
        if raw_trim.starts_with("///") || raw_trim.starts_with("//!") {
            continue;
        }
        let line = idx + 1;
        let rest = comment[at + "fbe-lint:".len()..].trim_start();
        let parsed = (|| -> Result<(String, String), String> {
            let rest = rest
                .strip_prefix("allow(")
                .ok_or("expected `allow(<rule>): <reason>`")?;
            let close = rest.find(')').ok_or("missing `)` after rule name")?;
            let rule = rest[..close].trim().to_string();
            let tail = rest[close + 1..].trim_start();
            let reason = tail
                .strip_prefix(':')
                .ok_or("missing `: <reason>` after allow(...)")?
                .trim();
            if reason.is_empty() {
                return Err("a written reason is mandatory".to_string());
            }
            Ok((rule, reason.to_string()))
        })();
        let trailing = !l.code.trim().is_empty();
        match parsed {
            Ok((rule, _reason)) => {
                let known = rules::rule(&rule).is_some();
                out.push(Allow {
                    line,
                    trailing,
                    problem: (!known).then(|| format!("unknown rule {rule:?}")),
                    rule,
                });
            }
            Err(msg) => out.push(Allow {
                line,
                rule: String::new(),
                trailing,
                problem: Some(msg.to_string()),
            }),
        }
    }
    out
}

/// Run `selected` rules (or all) over an already-scanned analysis,
/// apply allow-comment suppressions, and report malformed allows.
/// Findings come back sorted by `(path, line, rule)`.
pub fn check_analysis(analysis: &Analysis, selected: Option<&[String]>) -> Vec<Finding> {
    let mut findings = Vec::new();
    for rule in rules::RULES {
        let wanted = selected.map_or(true, |s| s.iter().any(|n| n == rule.name));
        if wanted {
            (rule.check)(analysis, &mut findings);
        }
    }
    let mut kept = Vec::new();
    for f in findings {
        let suppressed = analysis.file(&f.path).is_some_and(|file| {
            parse_allows(file).iter().any(|a| {
                a.problem.is_none()
                    && a.rule == f.rule
                    && if a.trailing {
                        a.line == f.line
                    } else {
                        a.line + 1 == f.line
                    }
            })
        });
        if !suppressed {
            kept.push(f);
        }
    }
    // Malformed allows are findings themselves — reasonless
    // suppressions must not pass a deny gate silently.
    for file in &analysis.files {
        for a in parse_allows(file) {
            if let Some(problem) = a.problem {
                kept.push(Finding::new(
                    BAD_ALLOW,
                    &file.path,
                    a.line,
                    format!("malformed fbe-lint allow comment: {problem}"),
                ));
            }
        }
    }
    kept.sort();
    kept.dedup();
    kept
}

/// Scan the workspace at `root` and run `selected` rules (or all).
pub fn run(root: &std::path::Path, selected: Option<&[String]>) -> std::io::Result<Vec<Finding>> {
    let analysis = walk::scan_workspace(root)?;
    Ok(check_analysis(&analysis, selected))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_file(path: &str, src: &str) -> Analysis {
        let mut a = Analysis::default();
        a.files.push(SourceFile::parse(path, src));
        a
    }

    #[test]
    fn allow_with_reason_suppresses_same_and_next_line() {
        let src = "\
// fbe-lint: allow(no-panic-paths): deliberate crash hook for tests
fn f() { x.unwrap(); }
fn g() { y.unwrap(); } // fbe-lint: allow(no-panic-paths): documented fallback
fn h() { z.unwrap(); }
";
        let a = one_file("crates/service/src/x.rs", src);
        let f = check_analysis(&a, None);
        let panics: Vec<_> = f.iter().filter(|f| f.rule == "no-panic-paths").collect();
        assert_eq!(panics.len(), 1, "{panics:?}");
        assert_eq!(panics.first().map(|f| f.line), Some(4));
    }

    #[test]
    fn allow_without_reason_is_a_finding() {
        let src = "fn f() { x.unwrap(); } // fbe-lint: allow(no-panic-paths):\n";
        let a = one_file("crates/service/src/x.rs", src);
        let f = check_analysis(&a, None);
        assert!(f.iter().any(|f| f.rule == BAD_ALLOW), "{f:?}");
        // ... and does NOT suppress.
        assert!(f.iter().any(|f| f.rule == "no-panic-paths"));
    }

    #[test]
    fn allow_with_unknown_rule_is_a_finding() {
        let src = "fn f() {} // fbe-lint: allow(imaginary-rule): because\n";
        let a = one_file("crates/service/src/x.rs", src);
        let f = check_analysis(&a, None);
        assert_eq!(f.len(), 1);
        assert_eq!(f.first().map(|f| f.rule), Some(BAD_ALLOW));
    }

    #[test]
    fn doc_comments_do_not_grant_or_break_allows() {
        let src = "\
//! Suppress with `// fbe-lint: allow(broken-grammar`
/// e.g. // fbe-lint: allow(no-panic-paths): documented elsewhere
fn f() { x.unwrap(); }
";
        let a = one_file("crates/service/src/x.rs", src);
        let f = check_analysis(&a, None);
        assert!(!f.iter().any(|f| f.rule == BAD_ALLOW), "{f:?}");
        assert!(f.iter().any(|f| f.rule == "no-panic-paths"), "{f:?}");
    }

    #[test]
    fn rule_selection_runs_a_subset() {
        let src = "fn f() { x.unwrap(); let m: HashMap<u32, u32>; }\n";
        let a = one_file("crates/service/src/x.rs", src);
        let only = vec!["determinism-hygiene".to_string()];
        assert!(check_analysis(&a, Some(&only)).is_empty());
        let only = vec!["no-panic-paths".to_string()];
        assert_eq!(check_analysis(&a, Some(&only)).len(), 1);
    }
}
