//! Workspace discovery: which files the linter reads, and the
//! in-memory analysis that rules run over.

use crate::lexer::{scrub, ScrubbedFile};
use std::path::{Path, PathBuf};

/// One scanned source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Scrubbed source (code / comment / raw channels).
    pub scrub: ScrubbedFile,
    /// Per-line: true inside `#[cfg(test)]`-gated items.
    pub test_mask: Vec<bool>,
}

impl SourceFile {
    /// Build from a path label and source text.
    pub fn parse(path: impl Into<String>, src: &str) -> SourceFile {
        let scrub = scrub(src);
        let test_mask = scrub.test_region_mask();
        SourceFile {
            path: path.into(),
            scrub,
            test_mask,
        }
    }

    /// True when 1-indexed `line` is inside a `#[cfg(test)]` region.
    pub fn in_test(&self, line: usize) -> bool {
        self.test_mask.get(line.wrapping_sub(1)).copied() == Some(true)
    }
}

/// Everything the rules see: the scanned Rust sources plus the README
/// (for the protocol-grammar symmetry check).
#[derive(Debug, Default)]
pub struct Analysis {
    /// All scanned files, sorted by path.
    pub files: Vec<SourceFile>,
    /// README raw lines, when present.
    pub readme: Vec<String>,
}

impl Analysis {
    /// Files whose path starts with `prefix`.
    pub fn under<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a SourceFile> {
        self.files
            .iter()
            .filter(move |f| f.path.starts_with(prefix))
    }

    /// The file at exactly `path`, if scanned.
    pub fn file(&self, path: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.path == path)
    }
}

/// Directories scanned for Rust sources, relative to the workspace
/// root. `vendor/` (third-party stand-ins) and generated `target/`
/// trees are deliberately absent.
pub const SCAN_ROOTS: &[&str] = &["crates", "tests/src", "tests/tests", "examples"];

fn push_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name == "vendor" {
                continue;
            }
            push_rs_files(&p, out)?;
        } else if p.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Scan the workspace at `root` into an [`Analysis`]. Unreadable
/// scan roots are skipped (a partial checkout still lints); an
/// unreadable individual file is an error.
pub fn scan_workspace(root: &Path) -> std::io::Result<Analysis> {
    let mut paths = Vec::new();
    for sub in SCAN_ROOTS {
        let dir = root.join(sub);
        if dir.is_dir() {
            push_rs_files(&dir, &mut paths)?;
        }
    }
    let mut analysis = Analysis::default();
    for p in paths {
        let src = std::fs::read_to_string(&p)?;
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .to_string_lossy()
            .replace('\\', "/");
        analysis.files.push(SourceFile::parse(rel, &src));
    }
    analysis.files.sort_by(|a, b| a.path.cmp(&b.path));
    if let Ok(readme) = std::fs::read_to_string(root.join("README.md")) {
        analysis.readme = readme.lines().map(str::to_string).collect();
    }
    Ok(analysis)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_file_tracks_test_regions() {
        let f = SourceFile::parse("x.rs", "fn a() {}\n#[cfg(test)]\nmod t {\n  fn b() {}\n}\n");
        assert!(!f.in_test(1));
        assert!(f.in_test(3));
        assert!(f.in_test(5));
        assert!(!f.in_test(99));
    }

    #[test]
    fn analysis_filters_by_prefix() {
        let mut a = Analysis::default();
        a.files.push(SourceFile::parse("crates/core/src/a.rs", ""));
        a.files.push(SourceFile::parse("crates/cli/src/b.rs", ""));
        assert_eq!(a.under("crates/core/").count(), 1);
        assert!(a.file("crates/cli/src/b.rs").is_some());
        assert!(a.file("nope.rs").is_none());
    }

    #[test]
    fn scan_finds_this_crate() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let a = scan_workspace(&root).expect("scan");
        assert!(a.file("crates/lint/src/walk.rs").is_some());
        assert!(
            a.files.iter().all(|f| !f.path.starts_with("vendor/")),
            "vendor is excluded"
        );
        assert!(!a.readme.is_empty(), "README scanned");
    }
}
