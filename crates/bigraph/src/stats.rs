//! Graph statistics: the numbers reported in Table I of the paper
//! (`|U|`, `|V|`, `|E|`, density) plus degree and attribute summaries
//! used by the experiment harness to describe the synthetic corpus.

use crate::graph::{BipartiteGraph, Side};
use serde::{Deserialize, Serialize};

/// Summary statistics for one side of a bipartite graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SideStats {
    /// Vertex count on this side.
    pub n: usize,
    /// Minimum degree.
    pub min_degree: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Mean degree.
    pub mean_degree: f64,
    /// Vertex count per attribute value.
    pub attr_counts: Vec<usize>,
}

/// Table-I style description of a bipartite graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// `|U|`.
    pub n_upper: usize,
    /// `|V|`.
    pub n_lower: usize,
    /// `|E|`.
    pub n_edges: usize,
    /// `|E| / (|U|·|V|)`.
    pub density: f64,
    /// Upper-side summary.
    pub upper: SideStats,
    /// Lower-side summary.
    pub lower: SideStats,
}

/// Compute [`GraphStats`] for `g`.
pub fn graph_stats(g: &BipartiteGraph) -> GraphStats {
    GraphStats {
        n_upper: g.n_upper(),
        n_lower: g.n_lower(),
        n_edges: g.n_edges(),
        density: g.density(),
        upper: side_stats(g, Side::Upper),
        lower: side_stats(g, Side::Lower),
    }
}

fn side_stats(g: &BipartiteGraph, side: Side) -> SideStats {
    let n = g.n(side);
    let mut min_d = usize::MAX;
    let mut max_d = 0usize;
    let mut sum = 0usize;
    for v in 0..n as u32 {
        let d = g.degree(side, v);
        min_d = min_d.min(d);
        max_d = max_d.max(d);
        sum += d;
    }
    if n == 0 {
        min_d = 0;
    }
    let mut attr_counts = vec![0usize; g.n_attr_values(side) as usize];
    for &a in g.attrs(side) {
        if (a as usize) < attr_counts.len() {
            attr_counts[a as usize] += 1;
        }
    }
    SideStats {
        n,
        min_degree: min_d,
        max_degree: max_d,
        mean_degree: if n == 0 { 0.0 } else { sum as f64 / n as f64 },
        attr_counts,
    }
}

/// Degree histogram of one side: `hist[d]` = number of vertices with
/// degree exactly `d`.
pub fn degree_histogram(g: &BipartiteGraph, side: Side) -> Vec<usize> {
    let mut hist = Vec::new();
    for v in 0..g.n(side) as u32 {
        let d = g.degree(side, v);
        if hist.len() <= d {
            hist.resize(d + 1, 0);
        }
        hist[d] += 1;
    }
    hist
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "|U|={} |V|={} |E|={} density={:.2e} (deg U: {}..{} mean {:.2}; deg V: {}..{} mean {:.2})",
            self.n_upper,
            self.n_lower,
            self.n_edges,
            self.density,
            self.upper.min_degree,
            self.upper.max_degree,
            self.upper.mean_degree,
            self.lower.min_degree,
            self.lower.max_degree,
            self.lower.mean_degree,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::random_uniform;
    use crate::GraphBuilder;

    #[test]
    fn stats_on_known_graph() {
        let mut b = GraphBuilder::new(2, 2);
        b.set_attrs_upper(&[0, 1]);
        b.set_attrs_lower(&[0, 0, 1]);
        for (u, v) in [(0, 0), (0, 1), (0, 2), (1, 0)] {
            b.add_edge(u, v);
        }
        let g = b.build().unwrap();
        let s = graph_stats(&g);
        assert_eq!(s.n_edges, 4);
        assert_eq!(s.upper.max_degree, 3);
        assert_eq!(s.upper.min_degree, 1);
        assert_eq!(s.lower.attr_counts, vec![2, 1]);
        assert!((s.upper.mean_degree - 2.0).abs() < 1e-12);
        assert!((s.density - 4.0 / 6.0).abs() < 1e-12);
        let display = s.to_string();
        assert!(display.contains("|E|=4"));
    }

    #[test]
    fn histogram_sums_to_n() {
        let g = random_uniform(30, 40, 200, 2, 2, 6);
        let h = degree_histogram(&g, Side::Lower);
        assert_eq!(h.iter().sum::<usize>(), 40);
        let hu = degree_histogram(&g, Side::Upper);
        assert_eq!(hu.iter().sum::<usize>(), 30);
    }

    #[test]
    fn empty_graph_stats() {
        let g = GraphBuilder::new(1, 1).build().unwrap();
        let s = graph_stats(&g);
        assert_eq!(s.n_edges, 0);
        assert_eq!(s.upper.min_degree, 0);
        assert_eq!(s.density, 0.0);
        assert!(degree_histogram(&g, Side::Upper).is_empty());
    }
}
