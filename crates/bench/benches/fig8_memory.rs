//! Regenerates Fig. 8 (memory overhead) of the paper. Run: `cargo bench --bench fig8_memory`
//! (add `-- --quick` for a reduced sweep).

fn main() {
    let opts = fbe_bench::Opts::from_args();
    println!(
        "=== Fig. 8 (memory overhead) (budget {:?}/run, quick={}) ===",
        opts.budget, opts.quick
    );
    for (i, t) in fbe_bench::experiments::exp6_fig8(&opts)
        .into_iter()
        .enumerate()
    {
        t.print();
        t.save(&format!("fig8_memory_{i}"));
    }
}
