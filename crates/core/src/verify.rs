//! Brute-force reference enumerators ("oracles").
//!
//! These enumerate fair bicliques straight from the definitions by
//! exhausting vertex subsets — exponential, but exact for *all*
//! attribute counts and parameter corners, including the proportion
//! models (where the fast maximality checks are only proven for the
//! paper's two-attribute setting). The entire test suite rests on
//! cross-validating the production enumerators against these.
//!
//! Key structural facts used:
//!
//! * Every SSFBC has `L = N(R)` (otherwise `(N(R), R)` is a strictly
//!   larger witness), so SSFBC enumeration ranges over fair-side
//!   subsets only.
//! * A bi-side fair biclique `(A, B)` that admits *any* fair superset
//!   biclique admits one extending a single side: if
//!   `(A ∪ S_U, B ∪ S_V)` is both-side fair, then `(A ∪ S_U, B)` is
//!   too. Hence maximality = no single-side fair extension.

use crate::biclique::Biclique;
use crate::config::{FairParams, ProParams};
use crate::fairset::{exists_fair_extension, is_fair, is_fair_pro, AttrCounts};
use bigraph::{is_sorted_subset, BipartiteGraph, Side, VertexId};
use std::collections::BTreeSet;

const MAX_ORACLE_SIDE: usize = 25;

fn subset_from_mask(mask: u32) -> Vec<VertexId> {
    (0..32)
        .filter(|i| mask & (1 << i) != 0)
        .map(|i| i as VertexId)
        .collect()
}

/// All single-side fair bicliques of `g` (Definition 3), by brute force.
///
/// Panics if the lower side exceeds 25 vertices.
pub fn oracle_ssfbc(g: &BipartiteGraph, params: FairParams) -> BTreeSet<Biclique> {
    oracle_ssfbc_inner(g, params, None)
}

/// All proportion single-side fair bicliques (Definition 5).
pub fn oracle_pssfbc(g: &BipartiteGraph, params: ProParams) -> BTreeSet<Biclique> {
    oracle_ssfbc_inner(g, params.base, Some(params.theta))
}

fn oracle_ssfbc_inner(
    g: &BipartiteGraph,
    params: FairParams,
    theta: Option<f64>,
) -> BTreeSet<Biclique> {
    let n_v = g.n_lower();
    assert!(
        n_v <= MAX_ORACLE_SIDE,
        "oracle limited to {MAX_ORACLE_SIDE} fair-side vertices"
    );
    let n_attrs = (g.n_attr_values(Side::Lower) as usize).max(1);
    let attrs = g.attrs(Side::Lower);
    let mut out = BTreeSet::new();

    for mask in 1u32..(1u32 << n_v) {
        let r = subset_from_mask(mask);
        let counts = AttrCounts::of(&r, attrs, n_attrs);
        let fair = match theta {
            None => is_fair(counts.as_slice(), params.beta, params.delta),
            Some(t) => is_fair_pro(counts.as_slice(), params.beta, params.delta, t),
        };
        if !fair {
            continue;
        }
        let l = g.common_neighbors(Side::Lower, &r);
        if (l.len() as u32) < params.alpha {
            continue;
        }
        // Extension candidates: lower vertices fully connected to L.
        let mut cand = AttrCounts::zeros(n_attrs);
        for v in 0..n_v as VertexId {
            if mask & (1 << v) == 0 && is_sorted_subset(&l, g.neighbors(Side::Lower, v)) {
                cand.inc(attrs[v as usize]);
            }
        }
        if exists_fair_extension(
            counts.as_slice(),
            cand.as_slice(),
            params.beta,
            params.delta,
            theta,
        ) {
            continue;
        }
        out.insert(Biclique::new(l, r));
    }
    out
}

/// All bi-side fair bicliques of `g` (Definition 4), by brute force.
///
/// Panics if either side exceeds 25 vertices (practical limits are far
/// lower; keep test graphs ≤ ~10 per side).
pub fn oracle_bsfbc(g: &BipartiteGraph, params: FairParams) -> BTreeSet<Biclique> {
    oracle_bsfbc_inner(g, params, None)
}

/// All proportion bi-side fair bicliques (Definition 6).
pub fn oracle_pbsfbc(g: &BipartiteGraph, params: ProParams) -> BTreeSet<Biclique> {
    oracle_bsfbc_inner(g, params.base, Some(params.theta))
}

fn oracle_bsfbc_inner(
    g: &BipartiteGraph,
    params: FairParams,
    theta: Option<f64>,
) -> BTreeSet<Biclique> {
    let n_v = g.n_lower();
    assert!(
        n_v <= MAX_ORACLE_SIDE,
        "oracle limited to {MAX_ORACLE_SIDE} vertices per side"
    );
    assert!(g.n_upper() <= MAX_ORACLE_SIDE);
    let na_l = (g.n_attr_values(Side::Lower) as usize).max(1);
    let na_u = (g.n_attr_values(Side::Upper) as usize).max(1);
    let attrs_l = g.attrs(Side::Lower);
    let attrs_u = g.attrs(Side::Upper);
    let feasible = |counts: &[u32], k: u32| match theta {
        None => is_fair(counts, k, params.delta),
        Some(t) => is_fair_pro(counts, k, params.delta, t),
    };
    let mut out = BTreeSet::new();

    for mask in 1u32..(1u32 << n_v) {
        let b = subset_from_mask(mask);
        let counts_b = AttrCounts::of(&b, attrs_l, na_l);
        if !feasible(counts_b.as_slice(), params.beta) {
            continue;
        }
        let nb = g.common_neighbors(Side::Lower, &b); // candidates for A
        if nb.is_empty() {
            continue;
        }
        // Enumerate A over subsets of N(B).
        for amask in 1u32..(1u32 << nb.len()) {
            let a: Vec<VertexId> = (0..nb.len())
                .filter(|i| amask & (1 << i) != 0)
                .map(|i| nb[i])
                .collect();
            let counts_a = AttrCounts::of(&a, attrs_u, na_u);
            if !feasible(counts_a.as_slice(), params.alpha) {
                continue;
            }
            // U-side extension candidates: N(B) \ A.
            let mut cand_u = AttrCounts::zeros(na_u);
            for (i, &u) in nb.iter().enumerate() {
                if amask & (1 << i) == 0 {
                    cand_u.inc(attrs_u[u as usize]);
                }
            }
            if exists_fair_extension(
                counts_a.as_slice(),
                cand_u.as_slice(),
                params.alpha,
                params.delta,
                theta,
            ) {
                continue;
            }
            // V-side extension candidates: vertices adjacent to all of A.
            let mut cand_v = AttrCounts::zeros(na_l);
            for v in 0..n_v as VertexId {
                if mask & (1 << v) == 0 && is_sorted_subset(&a, g.neighbors(Side::Lower, v)) {
                    cand_v.inc(attrs_l[v as usize]);
                }
            }
            if exists_fair_extension(
                counts_b.as_slice(),
                cand_v.as_slice(),
                params.beta,
                params.delta,
                theta,
            ) {
                continue;
            }
            out.insert(Biclique::new(a, b.clone()));
        }
    }
    out
}

/// All maximal bicliques with `|L| ≥ min_l ≥ 1` and `|R| ≥ min_r ≥ 1`,
/// by brute force (used for the paper's `MBC` counts in Fig. 6).
pub fn oracle_maximal_bicliques(
    g: &BipartiteGraph,
    min_l: usize,
    min_r: usize,
) -> BTreeSet<Biclique> {
    let n_v = g.n_lower();
    assert!(n_v <= MAX_ORACLE_SIDE);
    assert!(min_l >= 1 && min_r >= 1, "thresholds must be positive");
    let mut out = BTreeSet::new();
    for mask in 1u32..(1u32 << n_v) {
        let r = subset_from_mask(mask);
        let l = g.common_neighbors(Side::Lower, &r);
        if l.len() < min_l || r.len() < min_r {
            continue;
        }
        // Maximal iff R is closed: R = N(L).
        let closure = g.common_neighbors(Side::Upper, &l);
        if closure == r {
            out.insert(Biclique::new(l, r));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::GraphBuilder;

    /// 3x4 complete block, attrs U = [0,1,0], V = [0,0,1,1], plus a
    /// pendant edge (3,4) outside the block.
    fn block() -> BipartiteGraph {
        let mut b = GraphBuilder::new(2, 2);
        for u in 0..3 {
            for v in 0..4 {
                b.add_edge(u, v);
            }
        }
        b.add_edge(3, 4);
        b.set_attrs_upper(&[0, 1, 0, 1]);
        b.set_attrs_lower(&[0, 0, 1, 1, 0]);
        b.build().unwrap()
    }

    #[test]
    fn ssfbc_on_block() {
        let g = block();
        let res = oracle_ssfbc(&g, FairParams::unchecked(2, 1, 1));
        // With β=1, δ=1: fair subsets of the block's V with |L|>=2.
        // The full block is one; smaller R's fail maximality (can add).
        assert!(res.contains(&Biclique::new(vec![0, 1, 2], vec![0, 1, 2, 3])));
        // Everything reported is a valid biclique.
        for bc in &res {
            for &u in &bc.upper {
                for &v in &bc.lower {
                    assert!(g.has_edge(u, v));
                }
            }
        }
    }

    #[test]
    fn ssfbc_delta_zero_forces_balance() {
        let g = block();
        let res = oracle_ssfbc(&g, FairParams::unchecked(2, 2, 0));
        // Only perfectly balanced (2,2) fair sides qualify: the whole
        // block (2 of each attr).
        assert_eq!(res.len(), 1);
        let only = res.iter().next().unwrap();
        assert_eq!(only.lower, vec![0, 1, 2, 3]);
    }

    #[test]
    fn ssfbc_infeasible_params() {
        let g = block();
        assert!(oracle_ssfbc(&g, FairParams::unchecked(4, 2, 1)).is_empty());
        assert!(oracle_ssfbc(&g, FairParams::unchecked(2, 3, 1)).is_empty());
    }

    #[test]
    fn bsfbc_subset_of_ssfbc_lower_sides() {
        let g = block();
        let params = FairParams::unchecked(1, 1, 1);
        let bs = oracle_bsfbc(&g, params);
        let ss = oracle_ssfbc(&g, params);
        assert!(!bs.is_empty());
        // Observation 6: each BSFBC's R equals some SSFBC's R.
        for b in &bs {
            assert!(
                ss.iter().any(|s| s.lower == b.lower),
                "BSFBC {b} has no SSFBC with same lower side"
            );
        }
        // And each BSFBC's upper side is fair wrt alpha/delta.
        for b in &bs {
            let c = AttrCounts::of(&b.upper, g.attrs(Side::Upper), 2);
            assert!(is_fair(c.as_slice(), 1, 1));
        }
    }

    #[test]
    fn pssfbc_tightens_ssfbc() {
        let g = block();
        let ss = oracle_ssfbc(&g, FairParams::unchecked(2, 1, 2));
        let ps = oracle_pssfbc(&g, ProParams::new(2, 1, 2, 0.5).unwrap());
        // theta=0.5 forces perfect balance; every PSSFBC's lower side
        // must be balanced, and counts can only drop.
        for p in &ps {
            let c = AttrCounts::of(&p.lower, g.attrs(Side::Lower), 2);
            assert_eq!(c.as_slice()[0], c.as_slice()[1]);
        }
        // theta = 0 degenerates to the plain model.
        let p0 = oracle_pssfbc(&g, ProParams::new(2, 1, 2, 0.0).unwrap());
        assert_eq!(p0, ss);
    }

    #[test]
    fn maximal_bicliques_on_block() {
        let g = block();
        let mb = oracle_maximal_bicliques(&g, 1, 1);
        // Maximal bicliques: the 3x4 block and the pendant (3,{4}).
        assert!(mb.contains(&Biclique::new(vec![0, 1, 2], vec![0, 1, 2, 3])));
        assert!(mb.contains(&Biclique::new(vec![3], vec![4])));
        assert_eq!(mb.len(), 2);
        // Thresholds filter.
        let mb2 = oracle_maximal_bicliques(&g, 2, 2);
        assert_eq!(mb2.len(), 1);
    }

    #[test]
    fn pbsfbc_theta_zero_matches_bsfbc() {
        let g = block();
        let params = FairParams::unchecked(1, 1, 1);
        let b0 = oracle_bsfbc(&g, params);
        let p0 = oracle_pbsfbc(&g, ProParams::new(1, 1, 1, 0.0).unwrap());
        assert_eq!(b0, p0);
    }
}
