//! Degenerate and boundary configurations, including the paper's
//! hardness argument (§II): with `α` minimal, `β = 0` and `δ = n`, the
//! single-side fair biclique problem *is* maximal biclique enumeration.

use bigraph::{GraphBuilder, Side};
use fair_biclique::biclique::{Biclique, CollectSink};
use fair_biclique::config::{Budget, FairParams, ProParams, RunConfig, VertexOrder};
use fair_biclique::mbea::maximal_bicliques;
use fair_biclique::pipeline::{
    enumerate_bsfbc, enumerate_pssfbc, enumerate_ssfbc, run_ssfbc, SsAlgorithm,
};
use std::collections::BTreeSet;

#[test]
fn degenerate_params_reduce_to_maximal_biclique_enumeration() {
    // Paper §II: alpha = min, beta = 0, delta = n ==> SSFBC = MBE
    // (restricted to nonempty fair sides and |L| >= alpha).
    for seed in 0..10u64 {
        let g = bigraph::generate::random_uniform(9, 9, 35, 2, 2, seed);
        let n = (g.n_upper() + g.n_lower()) as u32;
        let params = FairParams::unchecked(1, 0, n);
        let report = enumerate_ssfbc(&g, params, &RunConfig::default());
        let ssfbc: BTreeSet<Biclique> = report.bicliques.into_iter().collect();
        let mut sink = CollectSink::default();
        maximal_bicliques(
            &g,
            1,
            1,
            VertexOrder::DegreeDesc,
            Budget::UNLIMITED,
            &mut sink,
        );
        let mbe: BTreeSet<Biclique> = sink.bicliques.into_iter().collect();
        assert_eq!(ssfbc, mbe, "seed {seed}");
    }
}

#[test]
fn empty_and_tiny_graphs() {
    let empty = GraphBuilder::new(2, 2).build().unwrap();
    let params = FairParams::unchecked(1, 1, 1);
    assert!(enumerate_ssfbc(&empty, params, &RunConfig::default())
        .bicliques
        .is_empty());
    assert!(enumerate_bsfbc(&empty, params, &RunConfig::default())
        .bicliques
        .is_empty());

    // Single edge, both attrs 0 of a 2-value domain: beta=1 needs the
    // missing attribute value -> nothing.
    let mut b = GraphBuilder::new(2, 2);
    b.add_edge(0, 0);
    let g = b.build().unwrap();
    assert!(enumerate_ssfbc(&g, params, &RunConfig::default())
        .bicliques
        .is_empty());

    // Same edge with a single-value domain: {({0},{0})} is the unique
    // fair biclique.
    let mut b = GraphBuilder::new(1, 1);
    b.add_edge(0, 0);
    let g = b.build().unwrap();
    let got = enumerate_ssfbc(&g, params, &RunConfig::default()).bicliques;
    assert_eq!(got, vec![Biclique::new(vec![0], vec![0])]);
}

#[test]
fn attr_domain_of_one_behaves_like_size_constraint() {
    // With one attribute value, fairness degenerates to |R| >= beta.
    for seed in 0..6u64 {
        let g = bigraph::generate::random_uniform(8, 9, 30, 1, 1, seed);
        for beta in 0..3u32 {
            let params = FairParams::unchecked(2, beta, 0);
            let want = fair_biclique::verify::oracle_ssfbc(&g, params);
            let got: BTreeSet<Biclique> = enumerate_ssfbc(&g, params, &RunConfig::default())
                .bicliques
                .into_iter()
                .collect();
            assert_eq!(got, want, "seed {seed} beta {beta}");
        }
    }
}

#[test]
fn disconnected_components_enumerate_independently() {
    // Two disjoint complete blocks; results are exactly the two blocks.
    let mut b = GraphBuilder::new(2, 2);
    for u in 0..3 {
        for v in 0..4 {
            b.add_edge(u, v);
        }
    }
    for u in 3..6 {
        for v in 4..8 {
            b.add_edge(u, v);
        }
    }
    b.set_attrs_upper(&[0, 1, 0, 1, 0, 1]);
    b.set_attrs_lower(&[0, 1, 0, 1, 0, 1, 0, 1]);
    let g = b.build().unwrap();
    let params = FairParams::unchecked(2, 2, 0);
    let got: BTreeSet<Biclique> = enumerate_ssfbc(&g, params, &RunConfig::default())
        .bicliques
        .into_iter()
        .collect();
    let want: BTreeSet<Biclique> = [
        Biclique::new(vec![0, 1, 2], vec![0, 1, 2, 3]),
        Biclique::new(vec![3, 4, 5], vec![4, 5, 6, 7]),
    ]
    .into_iter()
    .collect();
    assert_eq!(got, want);
}

#[test]
fn all_same_attribute_on_fair_side_yields_nothing_for_beta_one() {
    let mut b = GraphBuilder::new(2, 2);
    for u in 0..4 {
        for v in 0..4 {
            b.add_edge(u, v);
        }
    }
    // lower side all attr 0; domain declares two values.
    b.set_attrs_upper(&[0, 1, 0, 1]);
    b.set_attrs_lower(&[0, 0, 0, 0]);
    let g = b.build().unwrap();
    let report = enumerate_ssfbc(&g, FairParams::unchecked(1, 1, 4), &RunConfig::default());
    assert!(
        report.bicliques.is_empty(),
        "missing attribute value can never reach beta=1"
    );
}

#[test]
fn theta_at_half_forces_perfect_balance() {
    for seed in 0..6u64 {
        let g = bigraph::generate::random_uniform(9, 10, 40, 2, 2, seed);
        let pro = ProParams::new(1, 1, 3, 0.5).unwrap();
        let report = enumerate_pssfbc(&g, pro, &RunConfig::default());
        for bc in &report.bicliques {
            let mut counts = [0u32; 2];
            for &v in &bc.lower {
                counts[g.attr(Side::Lower, v) as usize] += 1;
            }
            assert_eq!(
                counts[0], counts[1],
                "theta=0.5 requires an even split: {bc}"
            );
        }
    }
}

#[test]
fn huge_delta_equals_delta_free_model() {
    // Once delta exceeds the graph size it stops constraining.
    let g = bigraph::generate::random_uniform(9, 10, 40, 2, 2, 3);
    let a = enumerate_ssfbc(&g, FairParams::unchecked(2, 1, 100), &RunConfig::default());
    let b = enumerate_ssfbc(&g, FairParams::unchecked(2, 1, 19), &RunConfig::default());
    let sa: BTreeSet<Biclique> = a.bicliques.into_iter().collect();
    let sb: BTreeSet<Biclique> = b.bicliques.into_iter().collect();
    assert_eq!(sa, sb);
}

#[test]
fn duplicate_edges_in_input_are_harmless() {
    let mut b = GraphBuilder::new(2, 2);
    for _ in 0..3 {
        for u in 0..3 {
            for v in 0..4 {
                b.add_edge(u, v);
            }
        }
    }
    b.set_attrs_upper(&[0, 1, 0]);
    b.set_attrs_lower(&[0, 0, 1, 1]);
    let g = b.build().unwrap();
    assert_eq!(g.n_edges(), 12);
    let report = enumerate_ssfbc(&g, FairParams::unchecked(2, 2, 0), &RunConfig::default());
    assert_eq!(report.bicliques.len(), 1);
}

#[test]
fn zero_node_budget_aborts_immediately_without_panicking() {
    let g = bigraph::generate::random_uniform(10, 10, 50, 2, 2, 4);
    let cfg = RunConfig {
        budget: Budget::nodes(0),
        ..RunConfig::default()
    };
    let mut sink = CollectSink::default();
    let (_, stats) = run_ssfbc(
        &g,
        FairParams::unchecked(1, 1, 1),
        SsAlgorithm::FairBcemPP,
        &cfg,
        &mut sink,
    );
    assert!(stats.aborted);
    assert!(sink.bicliques.is_empty());
}

#[test]
fn isolated_vertices_do_not_disturb_results() {
    let mut b = GraphBuilder::new(2, 2);
    for u in 0..3 {
        for v in 0..4 {
            b.add_edge(u, v);
        }
    }
    b.set_attrs_upper(&[0, 1, 0]);
    b.set_attrs_lower(&[0, 0, 1, 1]);
    b.ensure_vertices(30, 40); // plenty of isolated vertices
    let g = b.build().unwrap();
    let report = enumerate_ssfbc(&g, FairParams::unchecked(2, 2, 0), &RunConfig::default());
    assert_eq!(
        report.bicliques,
        vec![Biclique::new(vec![0, 1, 2], vec![0, 1, 2, 3])]
    );
}
