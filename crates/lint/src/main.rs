//! Command-line entry point for `fbe-lint`.
//!
//! ```text
//! fbe-lint [--deny] [--json] [--root <dir>] [--rule <name>]... [--list-rules]
//! ```
//!
//! Exit status: `0` when clean (or in warn mode), `1` when `--deny` is
//! set and findings exist, `2` on usage or I/O errors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

/// Parsed command-line options.
struct Opts {
    deny: bool,
    json: bool,
    root: PathBuf,
    rules: Vec<String>,
    list: bool,
}

/// Parse `args` (without argv[0]).
fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        deny: false,
        json: false,
        root: PathBuf::from("."),
        rules: Vec::new(),
        list: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny" => opts.deny = true,
            "--json" => opts.json = true,
            "--list-rules" => opts.list = true,
            "--root" => {
                let v = it.next().ok_or("--root requires a directory argument")?;
                opts.root = PathBuf::from(v);
            }
            "--rule" => {
                let v = it.next().ok_or("--rule requires a rule name argument")?;
                if fbe_lint::rules::rule(v).is_none() {
                    return Err(format!(
                        "unknown rule {v:?}; try --list-rules for the catalog"
                    ));
                }
                opts.rules.push(v.clone());
            }
            "--help" | "-h" => {
                return Err(String::new()); // handled by caller as usage
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

const USAGE: &str = "\
usage: fbe-lint [--deny] [--json] [--root <dir>] [--rule <name>]... [--list-rules]

  --deny        exit 1 when any finding is reported (CI gate mode)
  --json        machine-readable output (stable schema, fbe_lint_schema: 1)
  --root <dir>  workspace root to scan (default: current directory)
  --rule <name> run only the named rule (repeatable)
  --list-rules  print the rule catalog and exit
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_opts(&args) {
        Ok(o) => o,
        Err(msg) => {
            let mut err = std::io::stderr().lock();
            if !msg.is_empty() {
                let _ = writeln!(err, "fbe-lint: {msg}");
            }
            let _ = write!(err, "{USAGE}");
            return ExitCode::from(2);
        }
    };
    if opts.list {
        let mut out = std::io::stdout().lock();
        for r in fbe_lint::rules::RULES {
            let _ = writeln!(out, "{:<22} {}", r.name, r.summary);
        }
        return ExitCode::SUCCESS;
    }
    let selected = (!opts.rules.is_empty()).then_some(opts.rules.as_slice());
    let findings = match fbe_lint::run(&opts.root, selected) {
        Ok(f) => f,
        Err(e) => {
            let _ = writeln!(
                std::io::stderr().lock(),
                "fbe-lint: scanning {}: {e}",
                opts.root.display()
            );
            return ExitCode::from(2);
        }
    };
    let mut out = std::io::stdout().lock();
    if opts.json {
        let _ = writeln!(out, "{}", fbe_lint::findings::render_json(&findings));
    } else {
        for f in &findings {
            let _ = writeln!(out, "{f}");
        }
        let _ = writeln!(
            out,
            "fbe-lint: {} finding{} ({} mode)",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" },
            if opts.deny { "deny" } else { "warn" }
        );
    }
    if opts.deny && !findings.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
