#!/usr/bin/env bash
# Produce a BENCH_<n>.json perf-trajectory snapshot.
#
#   ./scripts/bench_snapshot.sh 6        # writes BENCH_6.json
#
# Runs the five trajectory bench targets (micro, substrate_compare,
# parallel_scaling, service_throughput, update_throughput) in release
# mode with the
# vendored criterion stand-in's FBE_BENCH_JSON export enabled, then
# assembles one JSON document with machine/thread metadata. Medians
# are the headline statistic; mean/min ride along for context.
#
# Snapshots are committed so ROADMAP re-anchors can compare numbers
# across PRs instead of trusting prose claims. They are measurements
# of *this* machine at *this* commit — compare trajectories, not
# absolute values across machines.

set -euo pipefail
cd "$(dirname "$0")/.."

n="${1:?usage: bench_snapshot.sh <snapshot-number>}"
out="BENCH_${n}.json"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

targets=(micro substrate_compare parallel_scaling service_throughput update_throughput)
for t in "${targets[@]}"; do
    echo "== bench $t =="
    FBE_BENCH_JSON="$tmp/$t.ndjson" cargo bench --bench "$t"
done

SNAPSHOT_N="$n" TMPDIR_NDJSON="$tmp" OUT="$out" python3 - <<'EOF'
import json, os, platform, subprocess

tmp = os.environ["TMPDIR_NDJSON"]
doc = {
    "schema": "fbe-bench-snapshot/1",
    "snapshot": int(os.environ["SNAPSHOT_N"]),
    "commit": subprocess.run(["git", "rev-parse", "HEAD"],
                             capture_output=True, text=True).stdout.strip(),
    "machine": {
        "os": platform.system().lower(),
        "release": platform.release(),
        "arch": platform.machine(),
        "cpus": os.cpu_count(),
        "rustc": subprocess.run(["rustc", "--version"],
                                capture_output=True, text=True).stdout.strip(),
    },
    "statistic": ("criterion rows: median_ns headline (mean_ns/min_ns for context); "
                  "table rows: the harness's native columns (seconds / q/s)"),
    "benches": {},
}
for t in ["micro", "substrate_compare", "parallel_scaling", "service_throughput",
          "update_throughput"]:
    path = os.path.join(tmp, f"{t}.ndjson")
    rows = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    doc["benches"][t] = rows

with open(os.environ["OUT"], "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f"wrote {os.environ['OUT']}: "
      + ", ".join(f"{k}={len(v)}" for k, v in doc["benches"].items()))
EOF
