//! Edge-list and attribute-file IO.
//!
//! The paper's datasets come from <http://konect.cc>; KONECT ships
//! whitespace-separated edge lists with optional `%` comment headers.
//! [`read_edge_list`] parses that format (1-based or 0-based ids both
//! work — ids are taken verbatim). Attribute files are one
//! `vertex attr` pair per line. Writers produce the same formats so
//! graphs round-trip.

use crate::builder::GraphBuilder;
use crate::graph::{AttrValueId, BipartiteGraph, Side, VertexId};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors from the readers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Explanation of what failed to parse.
        msg: String,
    },
    /// Graph construction failed after parsing.
    Build(crate::builder::BuildError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            IoError::Build(e) => write!(f, "build error: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Parse a KONECT-style bipartite edge list from a reader.
///
/// Lines starting with `%` or `#` (and blank lines) are skipped. Each
/// data line is `u v` (anything after the second token — e.g. KONECT
/// weights/timestamps — is ignored). All vertices default to attribute
/// value 0; combine with [`read_attr_pairs`] or
/// [`crate::generate::with_random_attrs`].
pub fn read_edge_list<R: Read>(
    r: R,
    n_upper_attrs: AttrValueId,
    n_lower_attrs: AttrValueId,
) -> Result<BipartiteGraph, IoError> {
    let mut b = GraphBuilder::new(n_upper_attrs, n_lower_attrs);
    let reader = BufReader::new(r);
    let mut line_buf = String::new();
    let mut reader = reader;
    let mut lineno = 0usize;
    loop {
        line_buf.clear();
        if reader.read_line(&mut line_buf)? == 0 {
            break;
        }
        lineno += 1;
        let line = line_buf.trim();
        if line.is_empty() || line.starts_with('%') || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let u = parse_id(it.next(), lineno)?;
        let v = parse_id(it.next(), lineno)?;
        b.add_edge(u, v);
    }
    b.build().map_err(IoError::Build)
}

fn parse_id(tok: Option<&str>, line: usize) -> Result<VertexId, IoError> {
    let tok = tok.ok_or(IoError::Parse {
        line,
        msg: "expected two vertex ids".into(),
    })?;
    tok.parse::<VertexId>().map_err(|e| IoError::Parse {
        line,
        msg: format!("bad vertex id {tok:?}: {e}"),
    })
}

/// Read `vertex attr` pairs and return them (does not touch a graph; use
/// with [`GraphBuilder`] or rebuild via [`crate::generate::with_random_attrs`]).
pub fn read_attr_pairs<R: Read>(r: R) -> Result<Vec<(VertexId, AttrValueId)>, IoError> {
    let reader = BufReader::new(r);
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('%') || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let v = parse_id(it.next(), i + 1)?;
        let a = it
            .next()
            .ok_or(IoError::Parse {
                line: i + 1,
                msg: "expected `vertex attr`".into(),
            })?
            .parse::<AttrValueId>()
            .map_err(|e| IoError::Parse {
                line: i + 1,
                msg: format!("bad attr: {e}"),
            })?;
        out.push((v, a));
    }
    Ok(out)
}

/// Load a graph from an edge-list file plus optional attribute files.
pub fn load_graph(
    edges_path: &Path,
    upper_attrs_path: Option<&Path>,
    lower_attrs_path: Option<&Path>,
    n_upper_attrs: AttrValueId,
    n_lower_attrs: AttrValueId,
) -> Result<BipartiteGraph, IoError> {
    let f = std::fs::File::open(edges_path)?;
    let g = read_edge_list(f, n_upper_attrs, n_lower_attrs)?;
    if upper_attrs_path.is_none() && lower_attrs_path.is_none() {
        return Ok(g);
    }
    // Rebuild with attributes applied.
    let mut b = GraphBuilder::new(n_upper_attrs, n_lower_attrs).with_edge_capacity(g.n_edges());
    b.ensure_vertices(g.n_upper(), g.n_lower());
    for (u, v) in g.edges() {
        b.add_edge(u, v);
    }
    if let Some(p) = upper_attrs_path {
        for (v, a) in read_attr_pairs(std::fs::File::open(p)?)? {
            b.set_attr_upper(v, a);
        }
    }
    if let Some(p) = lower_attrs_path {
        for (v, a) in read_attr_pairs(std::fs::File::open(p)?)? {
            b.set_attr_lower(v, a);
        }
    }
    b.build().map_err(IoError::Build)
}

/// Load a graph from the three-file `<stem>` convention used by the
/// CLI and the query service: `<stem>.edges` plus optional
/// `<stem>.uattr`/`<stem>.lattr` attribute files. A bare edge-list
/// file path (no `.edges` sibling) is accepted too, with all
/// attributes defaulting to value 0.
pub fn load_stem(
    stem: &Path,
    n_upper_attrs: AttrValueId,
    n_lower_attrs: AttrValueId,
) -> Result<BipartiteGraph, IoError> {
    let edges = stem.with_extension("edges");
    let uattr = stem.with_extension("uattr");
    let lattr = stem.with_extension("lattr");
    if edges.exists() {
        load_graph(
            &edges,
            uattr.exists().then_some(uattr.as_path()),
            lattr.exists().then_some(lattr.as_path()),
            n_upper_attrs,
            n_lower_attrs,
        )
    } else if stem.exists() {
        let f = std::fs::File::open(stem)?;
        read_edge_list(f, n_upper_attrs, n_lower_attrs)
    } else {
        Err(IoError::Io(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!(
                "no such graph: {} (expected {}.edges or a bare edge file)",
                stem.display(),
                stem.display()
            ),
        )))
    }
}

/// Write `g` as an edge list with a KONECT-style `%` header.
pub fn write_edge_list<W: Write>(g: &BipartiteGraph, mut w: W) -> std::io::Result<()> {
    writeln!(w, "% bip {} {} {}", g.n_upper(), g.n_lower(), g.n_edges())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    Ok(())
}

/// Write one side's attributes as `vertex attr` lines.
pub fn write_attrs<W: Write>(g: &BipartiteGraph, side: Side, mut w: W) -> std::io::Result<()> {
    for (v, &a) in g.attrs(side).iter().enumerate() {
        writeln!(w, "{v} {a}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::random_uniform;

    #[test]
    fn parse_with_comments_and_extras() {
        let data = "% header\n# another\n\n0 1\n1 0 17 2020\n2 2\n";
        let g = read_edge_list(data.as_bytes(), 2, 2).unwrap();
        assert_eq!(g.n_edges(), 3);
        assert!(g.has_edge(1, 0));
        assert_eq!(g.n_upper(), 3);
        assert_eq!(g.n_lower(), 3);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let data = "0 1\nbogus\n";
        let err = read_edge_list(data.as_bytes(), 1, 1).unwrap_err();
        match err {
            IoError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other}"),
        }
        let data2 = "0\n";
        assert!(matches!(
            read_edge_list(data2.as_bytes(), 1, 1),
            Err(IoError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn attr_pairs_parse() {
        let data = "% c\n0 1\n3 0\n";
        let pairs = read_attr_pairs(data.as_bytes()).unwrap();
        assert_eq!(pairs, vec![(0, 1), (3, 0)]);
    }

    #[test]
    fn roundtrip_through_files() {
        let g = random_uniform(10, 12, 40, 2, 3, 5);
        let dir = std::env::temp_dir().join("bigraph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let ep = dir.join("edges.txt");
        let up = dir.join("u.attr");
        let lp = dir.join("v.attr");
        write_edge_list(&g, std::fs::File::create(&ep).unwrap()).unwrap();
        write_attrs(&g, Side::Upper, std::fs::File::create(&up).unwrap()).unwrap();
        write_attrs(&g, Side::Lower, std::fs::File::create(&lp).unwrap()).unwrap();
        let g2 = load_graph(&ep, Some(&up), Some(&lp), 2, 3).unwrap();
        assert_eq!(g2.n_edges(), g.n_edges());
        assert_eq!(g2.attrs(Side::Upper), g.attrs(Side::Upper));
        assert_eq!(g2.attrs(Side::Lower), g.attrs(Side::Lower));
        assert!(g2.edges().zip(g.edges()).all(|(a, b)| a == b));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_without_attr_files() {
        let g = random_uniform(5, 5, 10, 1, 1, 8);
        let dir = std::env::temp_dir().join("bigraph_io_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let ep = dir.join("edges.txt");
        write_edge_list(&g, std::fs::File::create(&ep).unwrap()).unwrap();
        let g2 = load_graph(&ep, None, None, 1, 1).unwrap();
        assert_eq!(g2.n_edges(), g.n_edges());
        std::fs::remove_dir_all(&dir).ok();
    }
}
