//! Vendored stand-in for `criterion` (no crates.io access in this
//! build environment). Implements the subset the workspace's
//! micro-benchmarks use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] (+ `sample_size`), [`Bencher::iter`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: one warm-up call calibrates an iteration count
//! targeting ~`measurement_time` of wall clock per sample, then
//! `sample_size` samples are timed and the median/mean/min
//! per-iteration time is printed to stdout. No statistics beyond
//! that, no HTML reports.
//!
//! When the `FBE_BENCH_JSON` environment variable names a file, each
//! benchmark additionally appends one NDJSON record to it:
//! `{"id": ..., "median_ns": ..., "mean_ns": ..., "min_ns": ...,
//! "iters": ..., "samples": ...}` — the hook the workspace's
//! `BENCH_*.json` perf-trajectory snapshots are built from.

use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to benchmark functions.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Benchmark one closure under `id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.sample_size, self.measurement_time, f);
        self
    }

    /// Open a named group; the group name prefixes each benchmark id.
    /// Group settings apply only within the group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _criterion: self,
        }
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the wall-clock target per sample.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Benchmark one closure under `group/id`.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, self.sample_size, self.measurement_time, f);
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    measurement_time: Duration,
    mut f: F,
) {
    let mut bencher = Bencher {
        sample_size,
        measurement_time,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some(m) => {
            println!(
                "{id:<40} time: [median {:>12} mean {:>12} min {:>12}]  ({} iters x {} samples)",
                fmt_ns(m.median_ns),
                fmt_ns(m.mean_ns),
                fmt_ns(m.min_ns),
                m.iters,
                m.samples,
            );
            export_json(id, &m);
        }
        None => println!("{id:<40} (no measurement: Bencher::iter never called)"),
    }
}

/// Append the measurement as one NDJSON line to `$FBE_BENCH_JSON`,
/// when set. Failures are reported, not fatal — a read-only filesystem
/// must not fail a benchmark run.
fn export_json(id: &str, m: &Measurement) {
    let Ok(path) = std::env::var("FBE_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let escaped: String = id
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect();
    let record = format!(
        "{{\"id\": \"{escaped}\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"iters\": {}, \"samples\": {}}}\n",
        m.median_ns, m.mean_ns, m.min_ns, m.iters, m.samples
    );
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(record.as_bytes()));
    if let Err(e) = appended {
        eprintln!("criterion stand-in: appending to {path}: {e}");
    }
}

#[derive(Debug, Clone, Copy)]
struct Measurement {
    median_ns: f64,
    mean_ns: f64,
    min_ns: f64,
    iters: u64,
    samples: usize,
}

/// Times the closure handed to [`Bencher::iter`].
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    result: Option<Measurement>,
}

impl Bencher {
    /// Run `f` repeatedly and record per-iteration wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: aim for measurement_time per sample,
        // capped so huge per-call routines still finish promptly.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (self.measurement_time.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let samples = if once > self.measurement_time {
            1
        } else {
            self.sample_size.max(1)
        };

        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            times.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        let mean_ns = times.iter().sum::<f64>() / samples as f64;
        let min_ns = times.iter().copied().fold(f64::INFINITY, f64::min);
        times.sort_by(|a, b| a.total_cmp(b));
        // Even sample counts take the lower middle: stable, and for
        // timing distributions the conservative (faster) of the two.
        let median_ns = times[(samples - 1) / 2];
        self.result = Some(Measurement {
            median_ns,
            mean_ns,
            min_ns,
            iters,
            samples,
        });
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundle benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_and_prints() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(1));
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
        c.bench_function("direct", |b| b.iter(|| black_box(2 * 2)));
    }

    #[test]
    fn formats_scale() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(12_000_000_000.0).ends_with("s"));
    }
}
