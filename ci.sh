#!/usr/bin/env bash
# CI gate for the fair-biclique workspace.
#
#   ./ci.sh            # lint + tier-1 verify + bench/smoke compile checks
#   ./ci.sh --quick    # skip the release build (debug tests only)
#   ./ci.sh --sanitize # additionally run the service tests under TSan
#                      # (best-effort: skipped unless a nightly
#                      # toolchain with -Zsanitizer=thread is available)
#   ./ci.sh --bench N  # additionally run the full trajectory bench
#                      # suite via scripts/bench_snapshot.sh and write
#                      # BENCH_N.json (slow; not part of the plain gate)
#
# Tier-1 verify (must stay green; see ROADMAP.md):
#   cargo build --release && cargo test -q

set -euo pipefail
cd "$(dirname "$0")"

quick=0
sanitize=0
bench_n=""
expect_bench_n=0
for arg in "$@"; do
    if [[ $expect_bench_n -eq 1 ]]; then
        bench_n="$arg"
        expect_bench_n=0
        continue
    fi
    case "$arg" in
        --quick) quick=1 ;;
        --sanitize) sanitize=1 ;;
        --bench) expect_bench_n=1 ;;
        *) echo "ci.sh: unknown argument $arg" >&2; exit 2 ;;
    esac
done
if [[ $expect_bench_n -eq 1 ]]; then
    echo "ci.sh: --bench needs a snapshot number (writes BENCH_<n>.json)" >&2
    exit 2
fi
if [[ -n "$bench_n" && $quick -eq 1 ]]; then
    echo "ci.sh: --bench runs release benches; drop --quick" >&2
    exit 2
fi

step() { printf '\n\033[1m== %s ==\033[0m\n' "$*"; }

step "cargo fmt --check"
cargo fmt --check

step "cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

step "fbe-lint --deny (workspace static analysis; see README: Static analysis)"
cargo run -q -p fbe-lint -- --deny

if [[ $sanitize -eq 1 ]]; then
    step "cargo +nightly test -p fbe-service under ThreadSanitizer (best-effort)"
    # TSan needs a nightly toolchain with the matching std source or
    # prebuilt sanitizer runtimes; in environments without one this
    # step reports and moves on rather than failing the gate.
    host=$(rustc -vV | sed -n 's/^host: //p')
    if rustup run nightly rustc --version >/dev/null 2>&1; then
        if RUSTFLAGS="-Zsanitizer=thread" RUSTDOCFLAGS="-Zsanitizer=thread" \
            cargo +nightly test -p fbe-service --target "$host" -q; then
            echo "TSan pass clean."
        else
            echo "TSan run failed or is unsupported here; not gating on it." >&2
        fi
    else
        echo "No nightly toolchain available; skipping the TSan pass." >&2
    fi
fi

if [[ $quick -eq 0 ]]; then
    step "cargo build --release (tier-1)"
    cargo build --release
fi

step "cargo test -q (tier-1)"
cargo test -q

# Bench targets and smoke runs build in release; in --quick mode run
# the smoke steps against the debug profile and skip the bench build
# so no release compilation happens at all.
if [[ $quick -eq 0 ]]; then
    step "cargo bench --no-run (all 16 bench targets must compile)"
    cargo bench --no-run
    step "cargo bench --bench parallel_scaling --no-run (engine scaling target)"
    cargo bench --bench parallel_scaling --no-run
    step "cargo bench --bench substrate_compare --no-run (substrate target)"
    cargo bench --bench substrate_compare --no-run
    step "cargo bench --bench service_throughput --no-run (service QPS target)"
    cargo bench --bench service_throughput --no-run
    step "cargo bench --bench shard_scaling --no-run (coordinator scaling target)"
    cargo bench --bench shard_scaling --no-run
    profile_flag=(--release)
    bindir=target/release
else
    profile_flag=()
    bindir=target/debug
fi

step "smoke: cargo run --example quickstart"
cargo run "${profile_flag[@]}" --example quickstart >/dev/null

step "smoke: cargo run --bin fbe -- --help"
cargo run "${profile_flag[@]}" --bin fbe -- --help >/dev/null

step "smoke: parallel engine — sorted output identical at 1 vs 4 threads"
smokedir=$(mktemp -d)
serve_pid=""
shard1_pid=""
shard2_pid=""
coord_pid=""
trap 'for p in "$serve_pid" "$shard1_pid" "$shard2_pid" "$coord_pid"; do
          [[ -n "$p" ]] && kill "$p" 2>/dev/null || true
      done; rm -rf "$smokedir"' EXIT
cargo run "${profile_flag[@]}" --bin fbe -- \
    generate --uniform 40,40,300 --seed 11 --out "$smokedir/g" >/dev/null
cargo run "${profile_flag[@]}" --bin fbe -- \
    enumerate "$smokedir/g" --alpha 2 --beta 1 --delta 1 --sorted --threads 1 \
    > "$smokedir/t1.out"
cargo run "${profile_flag[@]}" --bin fbe -- \
    enumerate "$smokedir/g" --alpha 2 --beta 1 --delta 1 --sorted --threads 4 \
    > "$smokedir/t4.out"
diff "$smokedir/t1.out" "$smokedir/t4.out"
cargo run "${profile_flag[@]}" --bin fbe -- \
    maximum "$smokedir/g" --alpha 2 --beta 1 --delta 1 --threads 4 >/dev/null

step "smoke: candidate substrates — sorted output identical bitset vs sorted-vec"
cargo run "${profile_flag[@]}" --bin fbe -- \
    enumerate "$smokedir/g" --alpha 2 --beta 1 --delta 1 --sorted \
    --substrate sorted-vec > "$smokedir/sv.out"
cargo run "${profile_flag[@]}" --bin fbe -- \
    enumerate "$smokedir/g" --alpha 2 --beta 1 --delta 1 --sorted \
    --substrate bitset > "$smokedir/bit.out"
diff "$smokedir/sv.out" "$smokedir/bit.out"
cargo run "${profile_flag[@]}" --bin fbe -- \
    enumerate "$smokedir/g" --alpha 2 --beta 1 --delta 1 --sorted \
    --substrate bitset --threads 4 > "$smokedir/bit4.out"
diff "$smokedir/sv.out" "$smokedir/bit4.out"

step "smoke: fbe serve — scripted session (cache hit + mutations + shutdown)"
# The smoke graph from above is reused; the server picks an ephemeral
# port and prints it, the client script LOADs, runs the same query
# twice (the second must come from the plan cache), mutates the graph
# through the dynamic verbs (a pendant edge on a fresh vertex never
# meets alpha=2, so the cached plan must survive every update), checks
# STATS, and shuts the server down. Any hang fails via the bounded
# wait loops.
"$bindir/fbe" serve --port 0 --workers 2 > "$smokedir/serve.log" &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^fbe-service listening on //p' "$smokedir/serve.log" | head -n1)
    [[ -n "$addr" ]] && break
    sleep 0.1
done
[[ -n "$addr" ]] || { echo "fbe serve did not report its address"; exit 1; }
cat > "$smokedir/session.fbe" <<EOF
LOAD g $smokedir/g
ENUM g ssfbc alpha=2 beta=1 delta=1
ENUM g ssfbc alpha=2 beta=1 delta=1
ADDVERTEX g lower attr=0
ADDEDGE g 0 40
DELEDGE g 0 40
ENUM g ssfbc alpha=2 beta=1 delta=1
STATS
TRACE on
ENUM g ssfbc alpha=1 beta=1 delta=1 deadline-ms=0 count-only
METRICS
SLOWLOG
SHUTDOWN
EOF
"$bindir/fbe" batch --connect "$addr" "$smokedir/session.fbe" > "$smokedir/session.out"
grep -q "cached=false" "$smokedir/session.out"
grep -q "vertex=40" "$smokedir/session.out"
grep -q "edges=301" "$smokedir/session.out"
grep -q "edges=300" "$smokedir/session.out"
# Both the repeat query and the post-mutation query hit the cache: all
# three updates were provably outside the (2, 1) core.
[[ $(grep -c "cached=true" "$smokedir/session.out") -eq 2 ]]
[[ $(grep -c "plans_kept=1" "$smokedir/session.out") -eq 3 ]]
grep -q "^plan_cache_hits 2$" "$smokedir/session.out"
grep -q "^plan_cache_invalidated 0$" "$smokedir/session.out"
grep -q "^updates_applied 3$" "$smokedir/session.out"
# Observability verbs: the traced zero-deadline query truncates and is
# recorded; METRICS speaks Prometheus; SLOWLOG replays the span tree.
grep -q "^OK trace=on$" "$smokedir/session.out"
grep -q "truncated=deadline" "$smokedir/session.out"
grep -q "^# span " "$smokedir/session.out"
grep -q "^# TYPE fbe_query_latency_us histogram$" "$smokedir/session.out"
grep -q 'le="+Inf"' "$smokedir/session.out"
grep -q "^query seq=.* truncated=deadline q=ENUM g ssfbc" "$smokedir/session.out"
grep -q "^OK bye$" "$smokedir/session.out"
for _ in $(seq 1 100); do
    kill -0 "$serve_pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$serve_pid" 2>/dev/null; then
    echo "fbe serve did not exit after SHUTDOWN"
    exit 1
fi
wait "$serve_pid"
serve_pid=""

step "smoke: fbe serve --shards — 2-shard coordinator matches single-process"
# Two shard servers plus a coordinator, all on ephemeral ports. The
# same session runs once against the in-process engine and once
# against the coordinator; the sorted ENUM payload lines must be
# byte-identical (status lines carry elapsed_us and are excluded).
# The coordinator's listen line carries a " (coordinator)" role
# suffix, so the address capture takes only the first token.
get_addr() { sed -n 's/^fbe-service listening on \([^ ]*\).*/\1/p' "$1" | head -n1; }
"$bindir/fbe" serve --port 0 > "$smokedir/shard1.log" &
shard1_pid=$!
"$bindir/fbe" serve --port 0 > "$smokedir/shard2.log" &
shard2_pid=$!
s1=""; s2=""
for _ in $(seq 1 100); do
    s1=$(get_addr "$smokedir/shard1.log")
    s2=$(get_addr "$smokedir/shard2.log")
    [[ -n "$s1" && -n "$s2" ]] && break
    sleep 0.1
done
[[ -n "$s1" && -n "$s2" ]] || { echo "shard servers did not report addresses"; exit 1; }
"$bindir/fbe" serve --port 0 --shards "$s1,$s2" > "$smokedir/coord.log" &
coord_pid=$!
coord_addr=""
for _ in $(seq 1 100); do
    coord_addr=$(get_addr "$smokedir/coord.log")
    [[ -n "$coord_addr" ]] && break
    sleep 0.1
done
[[ -n "$coord_addr" ]] || { echo "coordinator did not report its address"; exit 1; }
grep -q "(coordinator)" "$smokedir/coord.log"
cat > "$smokedir/shard_session.fbe" <<EOF
LOAD g $smokedir/g
ENUM g ssfbc alpha=2 beta=1 delta=1
SHUTDOWN
EOF
"$bindir/fbe" batch "$smokedir/shard_session.fbe" > "$smokedir/solo.out"
"$bindir/fbe" batch --connect "$coord_addr" "$smokedir/shard_session.fbe" > "$smokedir/coord.out"
grep '^L=\[' "$smokedir/solo.out" > "$smokedir/solo.lines"
grep '^L=\[' "$smokedir/coord.out" > "$smokedir/coord.lines"
[[ -s "$smokedir/solo.lines" ]] || { echo "smoke query returned no results"; exit 1; }
diff "$smokedir/solo.lines" "$smokedir/coord.lines"
grep -q "^OK bye$" "$smokedir/coord.out"
# SHUTDOWN fans to the shards; all three processes must exit.
for pid in "$coord_pid" "$shard1_pid" "$shard2_pid"; do
    for _ in $(seq 1 100); do
        kill -0 "$pid" 2>/dev/null || break
        sleep 0.1
    done
    if kill -0 "$pid" 2>/dev/null; then
        echo "sharded serve smoke: pid $pid did not exit after SHUTDOWN"
        exit 1
    fi
    wait "$pid"
done
coord_pid=""; shard1_pid=""; shard2_pid=""

if [[ -n "$bench_n" ]]; then
    step "bench snapshot: scripts/bench_snapshot.sh $bench_n (writes BENCH_${bench_n}.json)"
    ./scripts/bench_snapshot.sh "$bench_n"
fi

printf '\n\033[1;32mCI green.\033[0m\n'
