//! Scatter-gather coordinator: fan requests out to shard servers and
//! merge their replies.
//!
//! A coordinator is an ordinary [`crate::server::Server`] whose
//! [`crate::ServiceConfig::shards`] lists the addresses of `K` shard
//! servers. It executes nothing locally; instead:
//!
//! * `LOAD` / `GEN` fan out as `LOAD`/`GEN` followed by
//!   `SHARD <graph> index=i of=K`, so shard `i` keeps only its slice
//!   of the deterministic 2-hop-component partition
//!   ([`bigraph::partition`]). No graph bytes travel through the
//!   coordinator: every shard loads (or deterministically generates)
//!   the full graph and restricts itself — the partition is a pure
//!   function of the graph, so all shards agree without coordination.
//! * `ENUM` fans the query to every shard concurrently and merges the
//!   `K` canonically-sorted result streams with a k-way merge on the
//!   [`fair_biclique::results::canonical_order`] ordering (shard
//!   subgraphs stay in the parent id space, so merged lines are
//!   byte-identical to a single-process run). The global result
//!   budget is enforced the way `SharedBudget` does across threads:
//!   each shard reader decrements the shared countdown *before*
//!   buffering a line, and once the budget is spent the remaining
//!   shard connections are dropped (early cancel).
//! * `STATS` reports the coordinator's own counters (including the
//!   `shard_*` fan-out metrics) plus a per-shard health summary and
//!   each shard's counters under a `shard<i>_` prefix.
//! * A shard that refuses connections, times out, or answers an error
//!   surfaces as a structured `ERR SHARD shard=<i> addr=<a> ...`
//!   reply — never a hang: connects and reads are bounded by the
//!   query deadline (plus a grace period) or a default timeout, and
//!   results already received from healthy shards are accounted in
//!   `STATS` as `shard_partial_results`.
//!
//! Graph mutations (`ADDEDGE`/`DELEDGE`/`ADDVERTEX`) are refused in
//! coordinator mode: an edge insertion can merge two 2-hop components
//! and would invalidate the standing partition.

use crate::engine::{Engine, Outcome, QueryCtx};
use crate::metrics::bump;
use crate::protocol::{EnumMode, EnumOpts, GenSpec, Reply, Request, TERMINATOR};
use crate::slowlog::SlowEntry;
use fair_biclique::config::StopReason;
use fair_biclique::maximum::SizeMetric;
use fair_biclique::obs::SpanRecorder;
use fair_biclique::prepared::QueryModel;
use fair_biclique::Biclique;
use fbe_datasets::corpus::Dataset;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::time::{Duration, Instant};

/// Timeout for shard calls made outside any client deadline
/// (`LOAD`/`GEN`/`DROP`/`STATS`, and `ENUM` without `deadline-ms`).
const DEFAULT_SHARD_TIMEOUT: Duration = Duration::from_secs(30);

/// Extra slack granted on top of a client `deadline-ms` so a shard
/// that finishes right at its (self-enforced) deadline can still get
/// its truncated reply back before the coordinator gives up on it.
const FANOUT_GRACE: Duration = Duration::from_secs(1);

/// Execute `req` by fanning out to `engine.cfg.shards`.
pub fn handle(engine: &Engine, req: Request, ctx: QueryCtx<'_>) -> Outcome {
    match req {
        Request::Ping => Outcome::Reply(Reply::ok("pong")),
        Request::Shutdown => {
            // Stop the shard servers best-effort (a dead shard must
            // not keep the coordinator alive), then stop locally.
            let _ = fan(engine, DEFAULT_SHARD_TIMEOUT, |_, _, conn| {
                conn.call("SHUTDOWN")
            });
            engine.shutdown_token().cancel();
            Outcome::Shutdown(Reply::ok("bye"))
        }
        Request::Graphs => Outcome::Reply(graphs(engine)),
        Request::Drop { name } => Outcome::Reply(fan_simple(engine, &format!("DROP {name}"))),
        Request::Load { name, path, attrs } => Outcome::Reply(load(engine, &name, &path, attrs)),
        Request::Gen { name, spec } => {
            let line = format!("GEN {name} {}", gen_spec_text(&spec));
            Outcome::Reply(fan_with_shard(engine, &name, &line))
        }
        Request::Stats => Outcome::Reply(stats(engine)),
        Request::Enum { graph, model, opts } => {
            Outcome::Reply(enum_scatter_gather(engine, &graph, model, opts, ctx))
        }
        Request::AddEdge { .. } | Request::DelEdge { .. } | Request::AddVertex { .. } => {
            Outcome::Reply(Reply::err(
                "BADARG",
                "graph mutations are not supported in coordinator mode \
                 (an update could merge 2-hop components across shards)",
            ))
        }
        Request::Shard { .. } => Outcome::Reply(Reply::err(
            "BADARG",
            "SHARD is a shard-server verb; the coordinator shards on LOAD/GEN",
        )),
        // Answered by the engine before coordinator delegation;
        // unreachable here, kept only for match exhaustiveness.
        Request::Metrics | Request::Slowlog { .. } | Request::Trace { .. } => {
            Outcome::Reply(Reply::err(
                "INTERNAL",
                "observability verb reached coordinator dispatch",
            ))
        }
    }
}

/// One line-protocol connection to a shard server.
struct ShardConn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl ShardConn {
    /// Connect with `timeout` bounding the connect and every
    /// subsequent read/write, and consume the greeting block.
    fn connect(addr: &str, timeout: Duration) -> Result<ShardConn, String> {
        let sockaddr = addr
            .to_socket_addrs()
            .map_err(|e| format!("bad address: {e}"))?
            .next()
            .ok_or_else(|| "address resolved to nothing".to_string())?;
        let stream = TcpStream::connect_timeout(&sockaddr, timeout)
            .map_err(|e| format!("connect failed: {e}"))?;
        stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| format!("set_read_timeout: {e}"))?;
        stream
            .set_write_timeout(Some(timeout))
            .map_err(|e| format!("set_write_timeout: {e}"))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("clone stream: {e}"))?,
        );
        let mut conn = ShardConn {
            reader,
            writer: BufWriter::new(stream),
        };
        let greeting = conn.read_reply()?;
        if !greeting.is_ok() {
            return Err(format!("bad greeting: {}", greeting.status));
        }
        Ok(conn)
    }

    fn send(&mut self, line: &str) -> Result<(), String> {
        writeln!(self.writer, "{line}").map_err(|e| format!("send failed: {e}"))?;
        self.writer.flush().map_err(|e| format!("send failed: {e}"))
    }

    /// One request, one whole reply block.
    fn call(&mut self, line: &str) -> Result<Reply, String> {
        self.send(line)?;
        self.read_reply()
    }

    /// Like [`ShardConn::call`], failing on `ERR` statuses.
    fn call_ok(&mut self, line: &str) -> Result<Reply, String> {
        let reply = self.call(line)?;
        if reply.is_ok() {
            Ok(reply)
        } else {
            Err(format!("shard replied {}", reply.status))
        }
    }

    fn read_line(&mut self) -> Result<String, String> {
        let mut l = String::new();
        let n = self.reader.read_line(&mut l).map_err(|e| {
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) {
                "shard timed out".to_string()
            } else {
                format!("read failed: {e}")
            }
        })?;
        if n == 0 {
            return Err("shard closed the connection mid-reply".to_string());
        }
        while l.ends_with('\n') || l.ends_with('\r') {
            l.pop();
        }
        Ok(l)
    }

    fn read_reply(&mut self) -> Result<Reply, String> {
        let status = self.read_line()?;
        let mut payload = Vec::new();
        loop {
            let l = self.read_line()?;
            if l == TERMINATOR {
                return Ok(Reply { status, payload });
            }
            payload.push(l);
        }
    }
}

/// Index + address + detail of the first shard failure, rendered as a
/// structured `ERR SHARD`.
fn shard_err(engine: &Engine, index: usize, detail: &str, partial: u64) -> Reply {
    bump(&engine.metrics.queries_err);
    let addr = engine
        .cfg
        .shards
        .get(index)
        .map(String::as_str)
        .unwrap_or("?");
    let partial_note = if partial > 0 {
        format!(" partial={partial}")
    } else {
        String::new()
    };
    Reply::err(
        "SHARD",
        format!("shard={index} addr={addr}{partial_note} {detail}"),
    )
}

/// Run `work(i, connect_elapsed, conn)` against every shard
/// concurrently on a fresh connection each, timing the connect (plus
/// greeting) so the caller can attribute shard latency to connection
/// setup vs. the request itself. Returns per-shard results in shard
/// order; a panic in a worker degrades to an `Err` for that shard.
fn fan<T: Send>(
    engine: &Engine,
    timeout: Duration,
    work: impl Fn(usize, Duration, &mut ShardConn) -> Result<T, String> + Sync,
) -> Vec<Result<T, String>> {
    bump(&engine.metrics.shard_fanouts);
    let shards = &engine.cfg.shards;
    std::thread::scope(|s| {
        let handles: Vec<_> = shards
            .iter()
            .enumerate()
            .map(|(i, addr)| {
                let work = &work;
                s.spawn(move || {
                    let tc = Instant::now();
                    let mut conn = ShardConn::connect(addr, timeout)?;
                    work(i, tc.elapsed(), &mut conn)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("shard worker panicked".to_string()))
            })
            .collect()
    })
}

/// Fan one already-serialized request line to every shard; succeed only
/// if every shard answers `OK`, reporting the first failure otherwise.
fn fan_simple(engine: &Engine, line: &str) -> Reply {
    let results = fan(engine, DEFAULT_SHARD_TIMEOUT, |_, _, conn| {
        conn.call_ok(line)
    });
    merge_ok(engine, results)
}

/// Fan `line` (a `LOAD`/`GEN`) followed by the per-shard
/// `SHARD <name> index=i of=K`, so each shard ends up holding exactly
/// its slice of the partition.
fn fan_with_shard(engine: &Engine, name: &str, line: &str) -> Reply {
    let k = engine.cfg.shards.len();
    let results = fan(engine, DEFAULT_SHARD_TIMEOUT, |i, _, conn| {
        conn.call_ok(line)?;
        conn.call_ok(&format!("SHARD {name} index={i} of={k}"))
    });
    merge_ok(engine, results)
}

/// First failure → `ERR SHARD`; all-OK → the first shard's status with
/// a `shards=K` marker appended.
fn merge_ok(engine: &Engine, results: Vec<Result<Reply, String>>) -> Reply {
    for (i, r) in results.iter().enumerate() {
        if let Err(detail) = r {
            bump(&engine.metrics.shard_errors);
            return shard_err(engine, i, detail, 0);
        }
    }
    let status = results
        .into_iter()
        .flatten()
        .next()
        .map(|r| r.status.trim_start_matches("OK ").to_string())
        .unwrap_or_default();
    Reply::ok(format!("{status} shards={}", engine.cfg.shards.len()))
}

fn load(engine: &Engine, name: &str, path: &str, attrs: (u16, u16)) -> Reply {
    // The coordinator applies its own data-root policy to the stem it
    // is about to hand out; each shard then re-resolves it against its
    // own root.
    if let Err(msg) = engine.resolve_stem(path) {
        return Reply::err("PARSE", msg);
    }
    let line = format!("LOAD {name} {path} attrs={},{}", attrs.0, attrs.1);
    fan_with_shard(engine, name, &line)
}

fn graphs(engine: &Engine) -> Reply {
    // Shards hold the same catalog names (fan-out keeps them in
    // lockstep), so the first shard answers for all of them.
    let results = fan(engine, DEFAULT_SHARD_TIMEOUT, |i, _, conn| {
        if i == 0 {
            conn.call_ok("GRAPHS").map(Some)
        } else {
            Ok(None)
        }
    });
    match results.into_iter().next() {
        Some(Ok(Some(reply))) => reply,
        Some(Err(detail)) => {
            bump(&engine.metrics.shard_errors);
            shard_err(engine, 0, &detail, 0)
        }
        _ => Reply::err("SHARD", "no shards configured"),
    }
}

fn stats(engine: &Engine) -> Reply {
    let results = fan(engine, DEFAULT_SHARD_TIMEOUT, |_, _, conn| {
        conn.call_ok("STATS")
    });
    let mut r = Reply::ok(format!("shards={}", engine.cfg.shards.len()));
    r.payload = engine.metrics.render();
    for (i, res) in results.iter().enumerate() {
        let addr = engine.cfg.shards.get(i).map(String::as_str).unwrap_or("?");
        match res {
            Ok(reply) => {
                r.payload.push(format!("shard{i}_addr {addr}"));
                r.payload.push(format!("shard{i}_status ok"));
                for line in &reply.payload {
                    r.payload.push(format!("shard{i}_{line}"));
                }
            }
            Err(detail) => {
                bump(&engine.metrics.shard_errors);
                r.payload.push(format!("shard{i}_addr {addr}"));
                r.payload.push(format!("shard{i}_status error: {detail}"));
            }
        }
    }
    r
}

fn gen_spec_text(spec: &GenSpec) -> String {
    match spec {
        GenSpec::Dataset(d) => match d {
            Dataset::Youtube => "youtube".to_string(),
            Dataset::Twitter => "twitter".to_string(),
            Dataset::Imdb => "imdb".to_string(),
            Dataset::WikiCat => "wiki-cat".to_string(),
            Dataset::Dblp => "dblp".to_string(),
        },
        GenSpec::Uniform {
            n_upper,
            n_lower,
            m,
            seed,
            attrs,
        } => format!(
            "uniform:{n_upper},{n_lower},{m},{seed},{},{}",
            attrs.0, attrs.1
        ),
    }
}

/// Re-serialize an `ENUM` for the shards. The resolved global result
/// budget is passed explicitly so a shard's own default limit can
/// never truncate below the coordinator's.
fn enum_line(graph: &str, model: QueryModel, opts: &EnumOpts, limit: Option<u64>) -> String {
    let base = model.base();
    let mut s = format!(
        "ENUM {graph} {} alpha={} beta={} delta={}",
        model.name().to_ascii_lowercase(),
        base.alpha,
        base.beta,
        base.delta
    );
    if let Some(theta) = model.theta() {
        s.push_str(&format!(" theta={theta}"));
    }
    if opts.threads > 1 {
        s.push_str(&format!(" threads={}", opts.threads));
    }
    if let Some(k) = limit {
        s.push_str(&format!(" limit={k}"));
    }
    if let Some(d) = opts.deadline {
        s.push_str(&format!(" deadline-ms={}", d.as_millis()));
    }
    s.push_str(&format!(" substrate={}", opts.substrate));
    match opts.mode {
        EnumMode::Collect => {}
        EnumMode::Count => s.push_str(" count-only"),
        EnumMode::Maximum(SizeMetric::Vertices) => s.push_str(" max=vertices"),
        EnumMode::Maximum(SizeMetric::Edges) => s.push_str(" max=edges"),
    }
    s
}

/// `key=value` field extraction from a status line.
fn field<'a>(status: &'a str, key: &str) -> Option<&'a str> {
    status
        .split_whitespace()
        .find_map(|t| t.strip_prefix(&format!("{key}=") as &str))
}

/// Parse a payload line back into a [`Biclique`] (`L=[1, 4] R=[0]`).
fn parse_biclique(line: &str) -> Option<Biclique> {
    let rest = line.strip_prefix("L=[")?;
    let (l, rest) = rest.split_once(']')?;
    let rest = rest.strip_prefix(" R=[")?;
    let (r, rest) = rest.split_once(']')?;
    if !rest.is_empty() {
        return None;
    }
    let parse_side = |s: &str| -> Option<Vec<bigraph::VertexId>> {
        let s = s.trim();
        if s.is_empty() {
            return Some(Vec::new());
        }
        s.split(',').map(|t| t.trim().parse().ok()).collect()
    };
    Some(Biclique {
        upper: parse_side(l)?,
        lower: parse_side(r)?,
    })
}

/// What one shard contributed to a scatter-gather `ENUM`.
struct ShardEnum {
    status: String,
    results: Vec<Biclique>,
    count: u64,
    /// The reader stopped early because the global budget ran out.
    cancelled: bool,
    /// Connect + greeting time.
    connect: Duration,
    /// Send-to-first-status-byte time (queue wait + shard execution).
    request: Duration,
    /// Result-stream drain time.
    stream: Duration,
}

fn enum_scatter_gather(
    engine: &Engine,
    graph: &str,
    model: QueryModel,
    opts: EnumOpts,
    ctx: QueryCtx<'_>,
) -> Reply {
    bump(&engine.metrics.queries_total);
    let t0 = Instant::now();
    let mut rec = if ctx.traced {
        SpanRecorder::enabled()
    } else {
        SpanRecorder::disabled()
    };
    let limit = match opts.mode {
        EnumMode::Collect => Some(opts.limit.unwrap_or(engine.cfg.default_result_limit)),
        _ => opts.limit,
    };
    let timeout = opts
        .deadline
        .map(|d| d + FANOUT_GRACE)
        .unwrap_or(DEFAULT_SHARD_TIMEOUT);
    let line = enum_line(graph, model, &opts, limit);

    // The global result budget, shared by all shard readers the way
    // `SharedBudget` is shared by worker threads: acquire (decrement)
    // strictly before buffering a line; a failed acquire stops the
    // reader and flags the siblings so they stop too (their shard
    // connections drop, early-cancelling the remaining streams).
    let budget = AtomicI64::new(limit.map_or(i64::MAX, |k| k.min(i64::MAX as u64) as i64));
    let exhausted = AtomicBool::new(false);
    let results = fan(engine, timeout, |_, connect, conn| {
        let tr = Instant::now();
        conn.send(&line)?;
        let status = conn.read_line()?;
        let request = tr.elapsed();
        if !status.starts_with("OK") {
            return Err(format!("shard replied {status}"));
        }
        let ts = Instant::now();
        let mut out = ShardEnum {
            count: field(&status, "count")
                .and_then(|v| v.parse().ok())
                .unwrap_or(0),
            status,
            results: Vec::new(),
            cancelled: false,
            connect,
            request,
            stream: Duration::ZERO,
        };
        loop {
            // Budget checks are pure countdowns: no memory is
            // published through them, so relaxed suffices.
            // lint: ordering: relaxed — independent counter/flag, no data ordered after it
            if exhausted.load(Ordering::Relaxed) {
                out.cancelled = true;
                break;
            }
            let l = conn.read_line()?;
            if l == TERMINATOR {
                break;
            }
            // lint: ordering: relaxed — pure countdown, no acquire/release pairing needed
            if budget.fetch_sub(1, Ordering::Relaxed) <= 0 {
                // lint: ordering: relaxed — advisory flag, racy reads only stop siblings late
                exhausted.store(true, Ordering::Relaxed);
                out.cancelled = true;
                break;
            }
            let b = parse_biclique(&l).ok_or_else(|| format!("unparseable result line {l:?}"))?;
            out.results.push(b);
        }
        out.stream = ts.elapsed();
        Ok(out)
    });

    // Any failed shard fails the whole query — with the healthy
    // shards' already-received results accounted as partial.
    if let Some((i, detail)) = results
        .iter()
        .enumerate()
        .find_map(|(i, r)| r.as_ref().err().map(|d| (i, d.clone())))
    {
        let partial: u64 = results
            .iter()
            .flatten()
            .map(|s| s.results.len() as u64)
            .sum();
        bump(&engine.metrics.shard_errors);
        if partial > 0 {
            engine
                .metrics
                .shard_partial_results
                // lint: ordering: relaxed — statistics counter
                .fetch_add(partial, Ordering::Relaxed);
        }
        return shard_err(engine, i, &detail, partial);
    }
    let shards: Vec<ShardEnum> = results.into_iter().flatten().collect();

    // Per-shard attribution: straggler shards show up in the stream
    // histogram (labels `shard="i"` in `METRICS`) and, when traced, as
    // `shard` spans carrying the connect/request/stream split.
    for (i, s) in shards.iter().enumerate() {
        if let Some(h) = engine.metrics.shard_stream.get(i) {
            h.observe(s.request + s.stream);
        }
        rec.leaf_with("shard", s.connect + s.request + s.stream, || {
            format!(
                "index={i} addr={} connect_us={} request_us={} stream_us={} results={} cancelled={}",
                engine.cfg.shards.get(i).map(String::as_str).unwrap_or("?"),
                s.connect.as_micros(),
                s.request.as_micros(),
                s.stream.as_micros(),
                s.results.len(),
                s.cancelled,
            )
        });
    }

    // Propagate the most severe shard truncation (deadline > cap), or
    // report the coordinator's own budget exhaustion as a result cap.
    let shard_trunc = |needle: &str| {
        shards
            .iter()
            .any(|s| field(&s.status, "truncated") == Some(needle))
    };
    // lint: ordering: relaxed — read-only summary after the fan-out joined
    let budget_spent = exhausted.load(Ordering::Relaxed) || shards.iter().any(|s| s.cancelled);

    let (count, payload, stop) = rec.timed("merge", || match opts.mode {
        EnumMode::Count => {
            let total: u64 = shards.iter().map(|s| s.count).sum();
            let capped = limit.map_or(total, |k| total.min(k));
            (
                capped,
                Vec::new(),
                if capped < total || shard_trunc("result-cap") {
                    Some(StopReason::ResultCap)
                } else if shard_trunc("deadline") {
                    Some(StopReason::Deadline)
                } else {
                    None
                },
            )
        }
        EnumMode::Maximum(metric) => {
            let metric_of = |b: &Biclique| -> u64 {
                match metric {
                    SizeMetric::Vertices => (b.upper.len() + b.lower.len()) as u64,
                    SizeMetric::Edges => (b.upper.len() * b.lower.len()) as u64,
                }
            };
            let mut best: Option<Biclique> = None;
            for b in shards.iter().flat_map(|s| s.results.iter()) {
                let better = match &best {
                    None => true,
                    // Canonically smallest wins metric ties, matching
                    // the single-process maximum tie-break.
                    Some(cur) => match metric_of(b).cmp(&metric_of(cur)) {
                        std::cmp::Ordering::Greater => true,
                        std::cmp::Ordering::Equal => b < cur,
                        std::cmp::Ordering::Less => false,
                    },
                };
                if better {
                    best = Some(b.clone());
                }
            }
            let payload: Vec<String> = best.iter().map(|b| b.to_string()).collect();
            let truncated = if shard_trunc("deadline") {
                Some(StopReason::Deadline)
            } else {
                None
            };
            (payload.len() as u64, payload, truncated)
        }
        EnumMode::Collect => {
            let merged = kway_merge(shards.iter().map(|s| s.results.clone()).collect(), limit);
            debug_assert!(
                {
                    let mut check = merged.clone();
                    fair_biclique::results::canonical_order(&mut check);
                    check == merged
                },
                "k-way merge must preserve canonical order"
            );
            let truncated = if shard_trunc("deadline") {
                Some(StopReason::Deadline)
            } else if budget_spent
                || shard_trunc("result-cap")
                || limit.is_some_and(|k| merged.len() as u64 >= k)
            {
                // The cap only truncates if it actually bound: all
                // shards ran to completion below it otherwise.
                limit
                    .is_some_and(|k| merged.len() as u64 >= k)
                    .then_some(StopReason::ResultCap)
            } else {
                None
            };
            let payload: Vec<String> = merged.iter().map(|b| b.to_string()).collect();
            (payload.len() as u64, payload, truncated)
        }
    });

    // Single exit for OK replies, mirroring `Engine::query`: observe,
    // trace-decorate, and offer to the slow-query log exactly once.
    let elapsed = t0.elapsed();
    engine.metrics.observe_latency(elapsed);
    bump(&engine.metrics.queries_ok);
    if let Some(stop) = stop {
        engine.metrics.observe_truncation(stop);
    }
    let mut status = format!(
        "model={} graph={graph} count={count} shards={} threads={} elapsed_us={}",
        model.name(),
        engine.cfg.shards.len(),
        opts.threads,
        elapsed.as_micros()
    );
    if let Some(t) = stop {
        status.push_str(&format!(" truncated={t}"));
    }
    let mut reply = Reply::ok(status);
    reply.payload = payload;
    if rec.is_enabled() {
        reply
            .payload
            .extend(rec.render().into_iter().map(|l| format!("# {l}")));
    }
    engine.slowlog.record(SlowEntry {
        seq: 0,
        query: if ctx.line.is_empty() {
            format!("ENUM {graph} {}", model.name())
        } else {
            ctx.line.to_string()
        },
        graph: graph.to_string(),
        // The coordinator holds no local catalog; shard epochs are
        // reachable through each shard's own SLOWLOG.
        epoch: 0,
        elapsed,
        stop,
        spans: rec.into_spans(),
    });
    reply
}

/// Merge `k` canonically-sorted, pairwise-disjoint result streams into
/// one canonically-sorted stream, stopping at `limit`.
fn kway_merge(streams: Vec<Vec<Biclique>>, limit: Option<u64>) -> Vec<Biclique> {
    let mut iters: Vec<std::vec::IntoIter<Biclique>> =
        streams.into_iter().map(|v| v.into_iter()).collect();
    let mut heap = BinaryHeap::new();
    for (i, it) in iters.iter_mut().enumerate() {
        if let Some(b) = it.next() {
            heap.push(Reverse((b, i)));
        }
    }
    let mut out = Vec::new();
    while let Some(Reverse((b, i))) = heap.pop() {
        out.push(b);
        if limit.is_some_and(|k| out.len() as u64 >= k) {
            break;
        }
        if let Some(next) = iters.get_mut(i).and_then(|it| it.next()) {
            heap.push(Reverse((next, i)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(upper: &[u32], lower: &[u32]) -> Biclique {
        Biclique {
            upper: upper.to_vec(),
            lower: lower.to_vec(),
        }
    }

    #[test]
    fn parses_result_lines_roundtrip() {
        for bc in [
            b(&[1, 4], &[0, 2, 7]),
            b(&[0], &[0]),
            b(&[], &[]),
            b(&[3], &[]),
        ] {
            let line = bc.to_string();
            assert_eq!(parse_biclique(&line), Some(bc), "{line}");
        }
        assert_eq!(parse_biclique("garbage"), None);
        assert_eq!(parse_biclique("L=[1 R=[2]"), None);
        assert_eq!(parse_biclique("L=[x] R=[2]"), None);
        assert_eq!(parse_biclique("L=[1] R=[2] trailing"), None);
    }

    #[test]
    fn kway_merge_interleaves_in_canonical_order() {
        let s1 = vec![b(&[0], &[1]), b(&[2], &[0])];
        let s2 = vec![b(&[0], &[2]), b(&[1], &[0])];
        let s3: Vec<Biclique> = Vec::new();
        let merged = kway_merge(vec![s1.clone(), s2.clone(), s3], None);
        let mut want = [s1, s2].concat();
        fair_biclique::results::canonical_order(&mut want);
        assert_eq!(merged, want);
        // Limit cuts the merged stream, not a per-shard prefix.
        let merged2 = kway_merge(vec![want[2..].to_vec(), want[..2].to_vec()], Some(3));
        assert_eq!(merged2, want[..3]);
    }

    #[test]
    fn enum_line_roundtrips_through_the_parser() {
        use fair_biclique::config::{FairParams, ProParams};
        let opts = EnumOpts {
            threads: 4,
            limit: None,
            deadline: Some(Duration::from_millis(250)),
            substrate: fair_biclique::config::Substrate::Bitset,
            mode: EnumMode::Count,
        };
        let model = QueryModel::Pbsfbc(ProParams::new(2, 1, 1, 0.25).unwrap());
        let line = enum_line("g", model, &opts, Some(7));
        let parsed = crate::protocol::parse_request(&line).unwrap();
        let Request::Enum {
            graph,
            model: m2,
            opts: o2,
        } = parsed
        else {
            panic!("not an ENUM: {line}");
        };
        assert_eq!(graph, "g");
        assert_eq!(m2.name(), "PBSFBC");
        assert_eq!(m2.base(), FairParams::unchecked(2, 1, 1));
        assert_eq!(m2.theta(), Some(0.25));
        assert_eq!(o2.threads, 4);
        assert_eq!(o2.limit, Some(7));
        assert_eq!(o2.deadline, Some(Duration::from_millis(250)));
        assert_eq!(o2.mode, EnumMode::Count);

        // Maximum mode + default substrate too.
        let opts = EnumOpts {
            mode: EnumMode::Maximum(SizeMetric::Edges),
            ..EnumOpts::default()
        };
        let model = QueryModel::Ssfbc(FairParams::new(3, 1, 2).unwrap());
        let line = enum_line("h", model, &opts, None);
        let Request::Enum { opts: o3, .. } = crate::protocol::parse_request(&line).unwrap() else {
            panic!();
        };
        assert_eq!(o3.mode, EnumMode::Maximum(SizeMetric::Edges));
    }

    #[test]
    fn gen_spec_text_roundtrips() {
        for spec in [
            GenSpec::Dataset(Dataset::Youtube),
            GenSpec::Dataset(Dataset::WikiCat),
            GenSpec::Uniform {
                n_upper: 10,
                n_lower: 20,
                m: 30,
                seed: 7,
                attrs: (3, 1),
            },
        ] {
            let line = format!("GEN g {}", gen_spec_text(&spec));
            let parsed = crate::protocol::parse_request(&line).unwrap();
            assert_eq!(
                parsed,
                Request::Gen {
                    name: "g".into(),
                    spec
                },
                "{line}"
            );
        }
    }
}
