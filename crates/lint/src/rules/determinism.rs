//! `determinism-hygiene` — keep nondeterministic iteration out of the
//! enumeration core.
//!
//! # Rationale
//!
//! PR 2 established a contract the whole test strategy leans on:
//! serial and parallel runs of every miner are **byte-identical** in
//! `--sorted` mode, and top-k/maximum results are identical at any
//! thread count. That only holds because every path from candidate
//! generation to `Sink` emission and `results::canonical_order` walks
//! deterministic containers (CSR adjacency, sorted `Vec`s, `BTreeMap`).
//! `std::collections::HashMap`/`HashSet` iteration order varies *per
//! process* (SipHash keyed by a random seed), so a single hash-map
//! iteration feeding an emission path silently breaks golden
//! snapshots, the serial==parallel differential battery, and the plan
//! cache's "identical replies" guarantee — typically only under a
//! different seed than CI's.
//!
//! Rather than chase data flow, the rule bans the types outright in
//! `crates/core/src` non-test code: the core crate's whole job is
//! deterministic enumeration, and membership tests are served equally
//! well by `BTreeSet` or sorted `Vec`s. Other crates (e.g. the
//! service's plan cache, bigraph's generators) may use hash maps for
//! keyed lookup where nothing iterates toward output. If a core use
//! is genuinely iteration-free, say so:
//! `// fbe-lint: allow(determinism-hygiene): <why no iteration
//! reaches emission>`.

use crate::findings::Finding;
use crate::rules::token_positions;
use crate::walk::Analysis;

/// Rule identifier.
pub const NAME: &str = "determinism-hygiene";

/// The crate held to the no-hash-containers bar.
const SCOPE: &str = "crates/core/src/";

/// Run the rule.
pub fn check(analysis: &Analysis, findings: &mut Vec<Finding>) {
    for file in analysis.under(SCOPE) {
        for (idx, line) in file.scrub.lines.iter().enumerate() {
            let lineno = idx + 1;
            if file.in_test(lineno) {
                continue;
            }
            for ty in ["HashMap", "HashSet"] {
                if !token_positions(&line.code, ty).is_empty() {
                    findings.push(Finding::new(
                        NAME,
                        &file.path,
                        lineno,
                        format!(
                            "`{ty}` in the enumeration core: iteration order is \
                             per-process random and would break the \
                             serial==parallel byte-identity contract; use \
                             BTreeMap/BTreeSet or sorted vecs"
                        ),
                    ));
                }
            }
        }
    }
}
