//! Pluggable candidate-set substrate for the enumeration hot path.
//!
//! Every enumerator in the companion crate spends its inner loop
//! intersecting a shrinking candidate set with adjacency lists. Two
//! physical representations are provided behind the [`CandidateOps`]
//! trait:
//!
//! * **Sorted-vec** ([`SortedOps`]) — the classic galloping/linear
//!   merge over the CSR adjacency, `O(|cand| + deg)` per op. Best on
//!   large, sparse, skewed graphs.
//! * **Bitset rows** ([`BitOps`] over [`BitRows`]) — one fixed-width
//!   `u64` bitset row per vertex, intersections by word-wise `AND` +
//!   `popcount`, `O(⌈n/64⌉)` per op. After FCore/CFCore pruning the
//!   surviving core is small and dense — exactly the regime where
//!   bitset rows beat merge-intersection by an order of magnitude.
//!
//! [`Substrate`] selects the representation; `Auto` (the default)
//! picks bitsets when the pruned core fits a size/density threshold
//! and falls back to the merge for skewed sparse inputs. A resolved
//! choice is captured per run in a [`CandidatePlan`], which owns the
//! bitset rows so parallel workers can share them by reference.

use crate::graph::{BipartiteGraph, Side, VertexId};
use serde::{Deserialize, Serialize};

/// Which candidate-set representation an enumeration run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Substrate {
    /// Decide per graph: bitset rows when the (pruned) graph fits the
    /// [`Substrate::AUTO_MAX_SIDE`] / [`Substrate::AUTO_MIN_DENSITY`]
    /// thresholds, sorted-vec merge otherwise.
    #[default]
    Auto,
    /// Always the sorted-vec merge intersection (the classic path).
    SortedVec,
    /// Always fixed-width `u64` bitset rows with popcount counting.
    Bitset,
}

impl Substrate {
    /// `Auto` uses bitsets whenever both sides fit this many vertices
    /// *and* the density threshold holds (a row then spans at most 64
    /// words — well within L1 for the whole row set on pruned cores).
    pub const AUTO_MAX_SIDE: usize = 4096;
    /// Below this side size `Auto` always picks bitsets: rows are a
    /// handful of words, so even sparse intersections win.
    pub const AUTO_SMALL_SIDE: usize = 256;
    /// Minimum edge density for `Auto` to pick bitsets on graphs
    /// larger than [`Substrate::AUTO_SMALL_SIDE`].
    pub const AUTO_MIN_DENSITY: f64 = 0.01;

    /// Resolve `Auto` against a concrete (pruned) graph; explicit
    /// choices pass through. Never returns `Auto`.
    pub fn resolve_for(self, g: &BipartiteGraph) -> Substrate {
        match self {
            Substrate::Auto => {
                let widest = g.n_upper().max(g.n_lower());
                if widest == 0 {
                    Substrate::SortedVec
                } else if widest <= Self::AUTO_SMALL_SIDE
                    || (widest <= Self::AUTO_MAX_SIDE && g.density() >= Self::AUTO_MIN_DENSITY)
                {
                    Substrate::Bitset
                } else {
                    Substrate::SortedVec
                }
            }
            explicit => explicit,
        }
    }
}

impl std::fmt::Display for Substrate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Substrate::Auto => "auto",
            Substrate::SortedVec => "sorted-vec",
            Substrate::Bitset => "bitset",
        })
    }
}

impl std::str::FromStr for Substrate {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(Substrate::Auto),
            "sorted-vec" | "sorted" | "vec" => Ok(Substrate::SortedVec),
            "bitset" | "bit" | "bits" => Ok(Substrate::Bitset),
            other => Err(format!(
                "unknown substrate {other:?} (expected auto, sorted-vec, or bitset)"
            )),
        }
    }
}

/// Per-vertex fixed-width bitset adjacency: row `v` holds one bit per
/// vertex of the opposite side, set iff the edge exists.
///
/// Rows are `⌈n_cols/64⌉` words, stored contiguously, so a row is one
/// cache-friendly slice and two rows combine with word-wise `AND`.
#[derive(Debug, Clone)]
pub struct BitRows {
    n_rows: usize,
    n_cols: usize,
    words: usize,
    bits: Vec<u64>,
}

impl BitRows {
    /// Build rows for the vertices of `side` (columns = other side).
    pub fn from_side(g: &BipartiteGraph, side: Side) -> BitRows {
        let mut r = BitRows::zeroed(g.n(side), g.n(side.other()));
        for v in 0..r.n_rows as VertexId {
            let base = v as usize * r.words;
            for &w in g.neighbors(side, v) {
                r.bits[base + (w as usize >> 6)] |= 1u64 << (w & 63);
            }
        }
        r
    }

    /// Build rows from explicit per-row ascending column sets (used by
    /// tests and benchmarks).
    pub fn from_sets(n_cols: usize, sets: &[&[VertexId]]) -> BitRows {
        let mut r = BitRows::zeroed(sets.len(), n_cols);
        for (i, set) in sets.iter().enumerate() {
            let base = i * r.words;
            for &c in set.iter() {
                assert!((c as usize) < n_cols, "column {c} out of range {n_cols}");
                r.bits[base + (c as usize >> 6)] |= 1u64 << (c & 63);
            }
        }
        r
    }

    fn zeroed(n_rows: usize, n_cols: usize) -> BitRows {
        let words = n_cols.div_ceil(64);
        BitRows {
            n_rows,
            n_cols,
            words,
            bits: vec![0u64; n_rows * words],
        }
    }

    /// Number of rows (vertices on the indexed side).
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns (vertices on the opposite side).
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Words per row (`⌈n_cols/64⌉`).
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.words
    }

    /// The bitset row of vertex `v`.
    #[inline]
    pub fn row(&self, v: VertexId) -> &[u64] {
        let base = v as usize * self.words;
        &self.bits[base..base + self.words]
    }

    /// Whether column `c` is set in row `v`.
    #[inline]
    pub fn contains(&self, v: VertexId, c: VertexId) -> bool {
        self.bits[v as usize * self.words + (c as usize >> 6)] & (1u64 << (c & 63)) != 0
    }

    /// Heap footprint in bytes (the Exp-6 memory model accounts this).
    pub fn heap_bytes(&self) -> usize {
        self.bits.capacity() * std::mem::size_of::<u64>()
    }
}

/// `|a ∩ b|` by word-wise `AND` + popcount, unrolled into 4-wide word
/// chunks with independent accumulators so the popcounts pipeline
/// instead of serializing on one add chain (the enumeration hot loop
/// calls this once per candidate per branch). Rows of exactly 4 words
/// get a branch-free fixed-width path: the `Auto` policy's "side ≤
/// 256" bitset regime is precisely the ≤ 4-word case, so most bitset
/// plans live here and the chunk iterator's setup is pure overhead.
#[inline]
pub fn and_count(a: &[u64], b: &[u64]) -> usize {
    debug_assert_eq!(a.len(), b.len());
    if let ([x0, x1, x2, x3], [y0, y1, y2, y3]) = (a, b) {
        return ((x0 & y0).count_ones()
            + (x1 & y1).count_ones()
            + (x2 & y2).count_ones()
            + (x3 & y3).count_ones()) as usize;
    }
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0usize, 0usize, 0usize, 0usize);
    for (wa, wb) in ca.by_ref().zip(cb.by_ref()) {
        s0 += (wa[0] & wb[0]).count_ones() as usize;
        s1 += (wa[1] & wb[1]).count_ones() as usize;
        s2 += (wa[2] & wb[2]).count_ones() as usize;
        s3 += (wa[3] & wb[3]).count_ones() as usize;
    }
    let tail: usize = ca
        .remainder()
        .iter()
        .zip(cb.remainder())
        .map(|(&x, &y)| (x & y).count_ones() as usize)
        .sum();
    s0 + s1 + s2 + s3 + tail
}

/// `acc &= b`, in place, 4 words per iteration.
#[inline]
pub fn and_assign(acc: &mut [u64], b: &[u64]) {
    debug_assert_eq!(acc.len(), b.len());
    let mut ca = acc.chunks_exact_mut(4);
    let mut cb = b.chunks_exact(4);
    for (wa, wb) in ca.by_ref().zip(cb.by_ref()) {
        wa[0] &= wb[0];
        wa[1] &= wb[1];
        wa[2] &= wb[2];
        wa[3] &= wb[3];
    }
    for (x, &y) in ca.into_remainder().iter_mut().zip(cb.remainder()) {
        *x &= y;
    }
}

/// Total set bits, 4-wide accumulators like [`and_count`].
#[inline]
pub fn count_ones(words: &[u64]) -> usize {
    let mut cw = words.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0usize, 0usize, 0usize, 0usize);
    for w in cw.by_ref() {
        s0 += w[0].count_ones() as usize;
        s1 += w[1].count_ones() as usize;
        s2 += w[2].count_ones() as usize;
        s3 += w[3].count_ones() as usize;
    }
    let tail: usize = cw.remainder().iter().map(|w| w.count_ones() as usize).sum();
    s0 + s1 + s2 + s3 + tail
}

/// Append the set columns of `words` to `out` in ascending order
/// (`out` is cleared first).
pub fn collect_into(words: &[u64], out: &mut Vec<VertexId>) {
    out.clear();
    for (i, &w) in words.iter().enumerate() {
        let mut w = w;
        while w != 0 {
            let b = w.trailing_zeros();
            out.push((i as u32) * 64 + b);
            w &= w - 1;
        }
    }
}

/// The candidate-set operations every enumerator hot loop is written
/// against. An implementor indexes the adjacency of one side's
/// vertices ("row vertices"); candidate sets live on the opposite side
/// and are always ascending-sorted `VertexId` slices at the API
/// boundary, whatever the internal representation.
///
/// All operations are *exact* — both implementations return identical
/// counts and sets, so enumeration trees, node counts, and result sets
/// are bit-identical across substrates (certified by the differential
/// test harness).
pub trait CandidateOps {
    /// The resolved representation this handle uses.
    fn substrate(&self) -> Substrate;

    /// Degree of row vertex `x`.
    fn degree(&self, x: VertexId) -> usize;

    /// `out = cand ∩ N(x)`, ascending (`out` is cleared first).
    fn intersect_into(&mut self, cand: &[VertexId], x: VertexId, out: &mut Vec<VertexId>);

    /// Stage `cand` for a batch of [`CandidateOps::loaded_count`]
    /// calls (the walker counts dozens of rows against one `L'`).
    fn load(&mut self, cand: &[VertexId]);

    /// `|N(x) ∩ staged|` for the set last passed to
    /// [`CandidateOps::load`].
    fn loaded_count(&mut self, x: VertexId) -> usize;

    /// Does `|∩_{v ∈ s} N(v)| == len`? Callers guarantee a known
    /// `len`-sized subset of the closure exists (so the intersection
    /// can never be smaller than `len`). `s` must be non-empty.
    fn closure_matches(&mut self, s: &[VertexId], len: usize) -> bool;

    /// `out =` common neighborhood of `s` (ascending; the full
    /// opposite side when `s` is empty, matching
    /// [`BipartiteGraph::common_neighbors`]).
    fn common_neighbors_into(&mut self, s: &[VertexId], out: &mut Vec<VertexId>);
}

/// Sorted-vec merge implementation of [`CandidateOps`] over the CSR
/// adjacency of `side`'s vertices.
pub struct SortedOps<'a> {
    g: &'a BipartiteGraph,
    side: Side,
    staged: Vec<VertexId>,
    acc: Vec<VertexId>,
    tmp: Vec<VertexId>,
}

impl<'a> SortedOps<'a> {
    /// Ops over the adjacency of `side`'s vertices.
    pub fn new(g: &'a BipartiteGraph, side: Side) -> Self {
        SortedOps {
            g,
            side,
            staged: Vec::new(),
            acc: Vec::new(),
            tmp: Vec::new(),
        }
    }
}

impl CandidateOps for SortedOps<'_> {
    fn substrate(&self) -> Substrate {
        Substrate::SortedVec
    }

    #[inline]
    fn degree(&self, x: VertexId) -> usize {
        self.g.degree(self.side, x)
    }

    #[inline]
    fn intersect_into(&mut self, cand: &[VertexId], x: VertexId, out: &mut Vec<VertexId>) {
        crate::intersect_sorted_into(cand, self.g.neighbors(self.side, x), out);
    }

    #[inline]
    fn load(&mut self, cand: &[VertexId]) {
        self.staged.clear();
        self.staged.extend_from_slice(cand);
    }

    #[inline]
    fn loaded_count(&mut self, x: VertexId) -> usize {
        crate::intersect_sorted_count(self.g.neighbors(self.side, x), &self.staged)
    }

    fn closure_matches(&mut self, s: &[VertexId], len: usize) -> bool {
        debug_assert!(!s.is_empty());
        self.acc.clear();
        self.acc
            .extend_from_slice(self.g.neighbors(self.side, s[0]));
        for &v in &s[1..] {
            if self.acc.len() == len {
                // Already shrunk to `len`; a known len-sized subset of
                // the closure exists, so it can only stay equal.
                break;
            }
            crate::intersect_sorted_into(&self.acc, self.g.neighbors(self.side, v), &mut self.tmp);
            std::mem::swap(&mut self.acc, &mut self.tmp);
        }
        self.acc.len() == len
    }

    fn common_neighbors_into(&mut self, s: &[VertexId], out: &mut Vec<VertexId>) {
        out.clear();
        if s.is_empty() {
            out.extend(0..self.g.n(self.side.other()) as VertexId);
            return;
        }
        out.extend_from_slice(self.g.neighbors(self.side, s[0]));
        for &v in &s[1..] {
            crate::intersect_sorted_into(out, self.g.neighbors(self.side, v), &mut self.tmp);
            std::mem::swap(out, &mut self.tmp);
            if out.is_empty() {
                break;
            }
        }
    }
}

/// Bitset-rows implementation of [`CandidateOps`]: membership tests
/// and word-wise `AND` + popcount against shared [`BitRows`].
pub struct BitOps<'a> {
    g: &'a BipartiteGraph,
    side: Side,
    rows: &'a BitRows,
    staged: Vec<u64>,
    acc: Vec<u64>,
}

impl<'a> BitOps<'a> {
    /// Ops over `rows`, which must have been built with
    /// [`BitRows::from_side`] on the same `g` and `side`.
    pub fn new(g: &'a BipartiteGraph, side: Side, rows: &'a BitRows) -> Self {
        debug_assert_eq!(rows.n_rows(), g.n(side));
        debug_assert_eq!(rows.n_cols(), g.n(side.other()));
        BitOps {
            g,
            side,
            rows,
            staged: vec![0u64; rows.words_per_row()],
            acc: vec![0u64; rows.words_per_row()],
        }
    }
}

impl CandidateOps for BitOps<'_> {
    fn substrate(&self) -> Substrate {
        Substrate::Bitset
    }

    #[inline]
    fn degree(&self, x: VertexId) -> usize {
        self.g.degree(self.side, x)
    }

    #[inline]
    fn intersect_into(&mut self, cand: &[VertexId], x: VertexId, out: &mut Vec<VertexId>) {
        out.clear();
        let base = x as usize * self.rows.words;
        let row = &self.rows.bits[base..base + self.rows.words];
        for &c in cand {
            if row[c as usize >> 6] & (1u64 << (c & 63)) != 0 {
                out.push(c);
            }
        }
    }

    #[inline]
    fn load(&mut self, cand: &[VertexId]) {
        self.staged.fill(0);
        for &c in cand {
            self.staged[c as usize >> 6] |= 1u64 << (c & 63);
        }
    }

    #[inline]
    fn loaded_count(&mut self, x: VertexId) -> usize {
        and_count(self.rows.row(x), &self.staged)
    }

    fn closure_matches(&mut self, s: &[VertexId], len: usize) -> bool {
        debug_assert!(!s.is_empty());
        self.acc.copy_from_slice(self.rows.row(s[0]));
        for &v in &s[1..] {
            and_assign(&mut self.acc, self.rows.row(v));
        }
        count_ones(&self.acc) == len
    }

    fn common_neighbors_into(&mut self, s: &[VertexId], out: &mut Vec<VertexId>) {
        if s.is_empty() {
            out.clear();
            out.extend(0..self.rows.n_cols() as VertexId);
            return;
        }
        self.acc.copy_from_slice(self.rows.row(s[0]));
        for &v in &s[1..] {
            and_assign(&mut self.acc, self.rows.row(v));
        }
        collect_into(&self.acc, out);
    }
}

/// Enum dispatch over the two substrates — one concrete type for the
/// enumerators to hold, no virtual calls in the hot loop.
pub enum AdjOps<'a> {
    /// Sorted-vec merge.
    Sorted(SortedOps<'a>),
    /// Bitset rows.
    Bit(BitOps<'a>),
}

macro_rules! dispatch {
    ($self:ident, $ops:ident, $e:expr) => {
        match $self {
            AdjOps::Sorted($ops) => $e,
            AdjOps::Bit($ops) => $e,
        }
    };
}

impl CandidateOps for AdjOps<'_> {
    #[inline]
    fn substrate(&self) -> Substrate {
        dispatch!(self, o, o.substrate())
    }

    #[inline]
    fn degree(&self, x: VertexId) -> usize {
        dispatch!(self, o, o.degree(x))
    }

    #[inline]
    fn intersect_into(&mut self, cand: &[VertexId], x: VertexId, out: &mut Vec<VertexId>) {
        dispatch!(self, o, o.intersect_into(cand, x, out))
    }

    #[inline]
    fn load(&mut self, cand: &[VertexId]) {
        dispatch!(self, o, o.load(cand))
    }

    #[inline]
    fn loaded_count(&mut self, x: VertexId) -> usize {
        dispatch!(self, o, o.loaded_count(x))
    }

    #[inline]
    fn closure_matches(&mut self, s: &[VertexId], len: usize) -> bool {
        dispatch!(self, o, o.closure_matches(s, len))
    }

    #[inline]
    fn common_neighbors_into(&mut self, s: &[VertexId], out: &mut Vec<VertexId>) {
        dispatch!(self, o, o.common_neighbors_into(s, out))
    }
}

/// A run's resolved substrate choice plus the (optional) bitset rows
/// backing it. Built once per enumeration run on the pruned graph;
/// parallel workers borrow it and spin up cheap per-worker
/// [`AdjOps`] handles (each with its own scratch words).
pub struct CandidatePlan {
    choice: Substrate,
    lower_rows: Option<BitRows>,
    upper_rows: Option<BitRows>,
}

impl CandidatePlan {
    /// Resolve `requested` against `g` and build the backing rows.
    /// `need_upper` additionally builds upper-side rows (the bi-side
    /// expanders intersect upper adjacency; single-side runs skip it).
    pub fn build(g: &BipartiteGraph, requested: Substrate, need_upper: bool) -> CandidatePlan {
        let choice = requested.resolve_for(g);
        let (lower_rows, upper_rows) = match choice {
            Substrate::Bitset => (
                Some(BitRows::from_side(g, Side::Lower)),
                need_upper.then(|| BitRows::from_side(g, Side::Upper)),
            ),
            _ => (None, None),
        };
        CandidatePlan {
            choice,
            lower_rows,
            upper_rows,
        }
    }

    /// The resolved choice (never `Auto`).
    #[inline]
    pub fn choice(&self) -> Substrate {
        self.choice
    }

    /// A fresh ops handle over the adjacency of `side`'s vertices.
    /// Falls back to sorted-vec when no rows were built for `side`.
    pub fn ops<'a>(&'a self, g: &'a BipartiteGraph, side: Side) -> AdjOps<'a> {
        let rows = match side {
            Side::Lower => self.lower_rows.as_ref(),
            Side::Upper => self.upper_rows.as_ref(),
        };
        match rows {
            Some(r) => AdjOps::Bit(BitOps::new(g, side, r)),
            None => AdjOps::Sorted(SortedOps::new(g, side)),
        }
    }

    /// Heap bytes of the bitset rows (0 on the sorted-vec substrate);
    /// accounted by the Exp-6 memory model.
    pub fn heap_bytes(&self) -> usize {
        self.lower_rows.as_ref().map_or(0, BitRows::heap_bytes)
            + self.upper_rows.as_ref().map_or(0, BitRows::heap_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::random_uniform;
    use crate::GraphBuilder;

    /// Build rows at an exact column width and check build / AND /
    /// popcount against naive sets. Exercises the word boundaries the
    /// packing logic can get wrong.
    fn check_width(n_cols: usize) {
        // Two deterministic interleaved sets plus the empty and (when
        // non-degenerate) full set.
        let a: Vec<VertexId> = (0..n_cols as VertexId).filter(|v| v % 3 == 0).collect();
        let b: Vec<VertexId> = (0..n_cols as VertexId).filter(|v| v % 2 == 0).collect();
        let full: Vec<VertexId> = (0..n_cols as VertexId).collect();
        let sets: Vec<&[VertexId]> = vec![&a, &b, &[], &full];
        let rows = BitRows::from_sets(n_cols, &sets);
        assert_eq!(rows.n_rows(), 4);
        assert_eq!(rows.n_cols(), n_cols);
        assert_eq!(rows.words_per_row(), n_cols.div_ceil(64));

        // Membership and popcount per row.
        for (i, set) in sets.iter().enumerate() {
            assert_eq!(count_ones(rows.row(i as VertexId)), set.len(), "row {i}");
            for c in 0..n_cols as VertexId {
                assert_eq!(
                    rows.contains(i as VertexId, c),
                    set.contains(&c),
                    "width {n_cols} row {i} col {c}"
                );
            }
        }

        // AND + popcount against the sorted oracle, all pairs.
        for (i, si) in sets.iter().enumerate() {
            for (j, sj) in sets.iter().enumerate() {
                let want = crate::intersect_sorted_count(si, sj);
                assert_eq!(
                    and_count(rows.row(i as VertexId), rows.row(j as VertexId)),
                    want,
                    "width {n_cols} pair ({i},{j})"
                );
                let mut acc = rows.row(i as VertexId).to_vec();
                and_assign(&mut acc, rows.row(j as VertexId));
                assert_eq!(count_ones(&acc), want);
                let mut got = Vec::new();
                collect_into(&acc, &mut got);
                let mut oracle = Vec::new();
                crate::intersect_sorted_into(si, sj, &mut oracle);
                assert_eq!(got, oracle, "width {n_cols} pair ({i},{j})");
            }
        }
    }

    #[test]
    fn boundary_widths() {
        for n_cols in [0usize, 1, 63, 64, 65, 127, 128, 129] {
            check_width(n_cols);
        }
    }

    #[test]
    fn from_side_matches_adjacency() {
        let g = random_uniform(37, 65, 400, 2, 2, 9);
        for side in [Side::Upper, Side::Lower] {
            let rows = BitRows::from_side(&g, side);
            assert_eq!(rows.n_rows(), g.n(side));
            assert_eq!(rows.n_cols(), g.n(side.other()));
            for v in 0..g.n(side) as VertexId {
                assert_eq!(count_ones(rows.row(v)), g.degree(side, v));
                let mut got = Vec::new();
                collect_into(rows.row(v), &mut got);
                assert_eq!(got, g.neighbors(side, v), "{side} vertex {v}");
            }
        }
    }

    #[test]
    fn ops_agree_between_substrates() {
        let g = random_uniform(20, 24, 160, 2, 2, 4);
        let plan = CandidatePlan::build(&g, Substrate::Bitset, true);
        assert!(plan.heap_bytes() > 0);
        for side in [Side::Lower, Side::Upper] {
            let mut bit = plan.ops(&g, side);
            let mut sorted = AdjOps::Sorted(SortedOps::new(&g, side));
            assert_eq!(bit.substrate(), Substrate::Bitset);
            assert_eq!(sorted.substrate(), Substrate::SortedVec);
            let n_cand = g.n(side.other());
            let cand: Vec<VertexId> = (0..n_cand as VertexId).filter(|v| v % 2 == 1).collect();
            let (mut ob, mut os) = (Vec::new(), Vec::new());
            bit.load(&cand);
            sorted.load(&cand);
            for x in 0..g.n(side) as VertexId {
                assert_eq!(bit.degree(x), sorted.degree(x));
                assert_eq!(bit.loaded_count(x), sorted.loaded_count(x), "{side} {x}");
                bit.intersect_into(&cand, x, &mut ob);
                sorted.intersect_into(&cand, x, &mut os);
                assert_eq!(ob, os, "{side} {x}");
                bit.common_neighbors_into(&[x], &mut ob);
                sorted.common_neighbors_into(&[x], &mut os);
                assert_eq!(ob, os);
            }
            // Multi-vertex closures and common neighborhoods.
            for s in [vec![0, 1], vec![0, 2, 3], vec![]] {
                if s.iter().any(|&v| (v as usize) >= g.n(side)) {
                    continue;
                }
                bit.common_neighbors_into(&s, &mut ob);
                sorted.common_neighbors_into(&s, &mut os);
                assert_eq!(ob, os, "{side} common {s:?}");
                if !s.is_empty() {
                    for len in [ob.len(), ob.len().saturating_sub(1)] {
                        assert_eq!(
                            bit.closure_matches(&s, len),
                            // Sorted closure_matches assumes a known
                            // len-sized subset exists; len == |closure|
                            // and len < |closure| both satisfy that.
                            sorted.closure_matches(&s, len),
                            "{side} closure {s:?} len {len}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn auto_resolution_thresholds() {
        // Small dense block: bitset.
        let mut b = GraphBuilder::new(1, 1);
        for u in 0..8 {
            for v in 0..8 {
                b.add_edge(u, v);
            }
        }
        let dense = b.build().unwrap();
        assert_eq!(Substrate::Auto.resolve_for(&dense), Substrate::Bitset);
        // Large sparse graph: sorted-vec.
        let sparse = random_uniform(5000, 5000, 6000, 1, 1, 1);
        assert_eq!(Substrate::Auto.resolve_for(&sparse), Substrate::SortedVec);
        // Explicit choices pass through.
        assert_eq!(Substrate::Bitset.resolve_for(&sparse), Substrate::Bitset);
        assert_eq!(
            Substrate::SortedVec.resolve_for(&dense),
            Substrate::SortedVec
        );
        // Degenerate empty graph never picks bitset.
        let empty = BipartiteGraph::empty(1, 1);
        assert_eq!(Substrate::Auto.resolve_for(&empty), Substrate::SortedVec);
    }

    /// Pin the exact `Auto` decision boundaries the prepared-plan
    /// cache relies on: a cached plan's resolved substrate must never
    /// silently change for a graph sitting exactly on a threshold.
    #[test]
    fn auto_threshold_boundaries_are_pinned() {
        // Widest side exactly AUTO_SMALL_SIDE (256): bitset even at
        // near-zero density.
        let small = random_uniform(Substrate::AUTO_SMALL_SIDE, 10, 20, 1, 1, 1);
        assert_eq!(small.n_upper(), Substrate::AUTO_SMALL_SIDE);
        assert!(small.density() < Substrate::AUTO_MIN_DENSITY);
        assert_eq!(Substrate::Auto.resolve_for(&small), Substrate::Bitset);

        // One past the small-side bound at the same sparse density:
        // the density test now governs, and fails.
        let just_over = random_uniform(Substrate::AUTO_SMALL_SIDE + 1, 10, 20, 1, 1, 1);
        assert!(just_over.density() < Substrate::AUTO_MIN_DENSITY);
        assert_eq!(
            Substrate::Auto.resolve_for(&just_over),
            Substrate::SortedVec
        );

        // Density exactly AUTO_MIN_DENSITY (300·100 cells, 300 edges
        // = 0.01): the >= comparison admits bitsets.
        let at_density = random_uniform(300, 100, 300, 1, 1, 2);
        assert_eq!(at_density.n_edges(), 300);
        assert!(at_density.density() >= Substrate::AUTO_MIN_DENSITY);
        assert_eq!(Substrate::Auto.resolve_for(&at_density), Substrate::Bitset);
        // One edge fewer: just under the density bound.
        let under_density = random_uniform(300, 100, 299, 1, 1, 2);
        assert!(under_density.density() < Substrate::AUTO_MIN_DENSITY);
        assert_eq!(
            Substrate::Auto.resolve_for(&under_density),
            Substrate::SortedVec
        );

        // Widest side exactly AUTO_MAX_SIDE (4096) at density exactly
        // 0.01 (4096·100 cells, 4096 edges): still bitset.
        let at_max = random_uniform(Substrate::AUTO_MAX_SIDE, 100, 4096, 1, 1, 3);
        assert_eq!(at_max.n_upper(), Substrate::AUTO_MAX_SIDE);
        assert_eq!(at_max.n_edges(), 4096);
        assert_eq!(Substrate::Auto.resolve_for(&at_max), Substrate::Bitset);

        // One vertex past AUTO_MAX_SIDE: sorted-vec no matter how
        // dense.
        let over_max = random_uniform(Substrate::AUTO_MAX_SIDE + 1, 100, 40_000, 1, 1, 4);
        assert!(over_max.density() >= Substrate::AUTO_MIN_DENSITY);
        assert_eq!(Substrate::Auto.resolve_for(&over_max), Substrate::SortedVec);

        // The widest *side* governs: 10 × 256 is small regardless of
        // orientation.
        let tall = random_uniform(10, Substrate::AUTO_SMALL_SIDE, 20, 1, 1, 5);
        assert_eq!(Substrate::Auto.resolve_for(&tall), Substrate::Bitset);
    }

    #[test]
    fn substrate_parsing_and_display() {
        for (s, want) in [
            ("auto", Substrate::Auto),
            ("sorted-vec", Substrate::SortedVec),
            ("sorted", Substrate::SortedVec),
            ("bitset", Substrate::Bitset),
            ("bit", Substrate::Bitset),
        ] {
            assert_eq!(s.parse::<Substrate>().unwrap(), want);
        }
        assert!("bogus".parse::<Substrate>().is_err());
        assert_eq!(Substrate::Bitset.to_string(), "bitset");
        assert_eq!(Substrate::SortedVec.to_string(), "sorted-vec");
        assert_eq!(Substrate::Auto.to_string(), "auto");
    }

    #[test]
    fn plan_falls_back_to_sorted_without_rows() {
        let g = random_uniform(10, 10, 40, 1, 1, 2);
        let plan = CandidatePlan::build(&g, Substrate::Bitset, false);
        assert!(matches!(plan.ops(&g, Side::Lower), AdjOps::Bit(_)));
        // No upper rows were requested: sorted fallback.
        assert!(matches!(plan.ops(&g, Side::Upper), AdjOps::Sorted(_)));
        let sv = CandidatePlan::build(&g, Substrate::SortedVec, true);
        assert_eq!(sv.heap_bytes(), 0);
        assert!(matches!(sv.ops(&g, Side::Lower), AdjOps::Sorted(_)));
    }
}
