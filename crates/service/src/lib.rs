//! `fbe-service` — a resident fair-biclique query service.
//!
//! One-shot CLI runs pay the full pipeline — graph load, FCore/CFCore
//! pruning (with its 2-hop/coloring work), candidate-plan resolution —
//! on every invocation. This crate keeps a process resident and
//! amortizes those costs across queries:
//!
//! * **Graph catalog** ([`catalog`]) — named graphs loaded once
//!   (`LOAD`/`GEN`) and queried many times.
//! * **Prepared-plan cache** ([`plan_cache`]) — an LRU over
//!   [`fair_biclique::prepared::PreparedQuery`] keyed by
//!   `(graph, model, params, substrate)`; repeat queries skip straight
//!   to enumeration.
//! * **Admission control** ([`engine`]) — a bounded worker pool with a
//!   bounded wait queue; overload is refused (`ERR BUSY`) instead of
//!   queued without bound, and per-query wall-clock deadlines cover
//!   queue wait + execution, enforced cooperatively through
//!   [`fair_biclique::config::CancelToken`] / budget deadlines.
//! * **Metrics** ([`metrics`]) — atomic counters plus end-to-end,
//!   per-stage, and per-shard latency histograms, served flat by
//!   `STATS` and in Prometheus text exposition format by `METRICS`.
//! * **Tracing** ([`engine::Session`], [`slowlog`]) — a
//!   per-connection `TRACE` toggle appends span-tree breakdowns
//!   ([`fair_biclique::obs`]) to `ENUM` replies, and a bounded
//!   slow-query log retains the N slowest queries for `SLOWLOG`.
//!
//! Transport is a versioned, line-oriented text protocol
//! ([`protocol`]) served over TCP by [`server::Server`]
//! (`std::net::TcpListener`, thread-per-connection; no async runtime
//! is available in this environment) and, byte-for-byte identically,
//! by the offline [`batch`] runner reading from a file or stdin.
//! `fbe serve` / `fbe batch` in the CLI crate wrap these.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod catalog;
pub mod coordinator;
pub mod engine;
pub mod metrics;
pub mod plan_cache;
pub mod protocol;
pub mod server;
pub mod slowlog;
pub mod sync;

/// Tunables of a service instance.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Maximum queries executing concurrently (the worker pool bound).
    pub workers: usize,
    /// Maximum queries waiting for a worker before new arrivals are
    /// refused with `ERR BUSY`.
    pub queue_depth: usize,
    /// Maximum prepared plans retained by the LRU cache.
    pub plan_cache_capacity: usize,
    /// Result cap applied to collecting queries that do not pass their
    /// own `limit=` (protects the server from unbounded result sets).
    pub default_result_limit: u64,
    /// Enable debug-only commands (currently `CRASH`, which panics
    /// inside the request handler so resilience tests can prove the
    /// server answers `ERR INTERNAL` and keeps serving). Off by
    /// default; not part of the public protocol.
    pub debug_commands: bool,
    /// Confine `LOAD` stems under this directory. When set, absolute
    /// stems and stems containing `..` are refused with `ERR PARSE`
    /// and relative stems resolve against this root; when unset (the
    /// default), stems are used verbatim (trusted-client mode).
    pub data_root: Option<std::path::PathBuf>,
    /// Shard server addresses (`host:port`). Non-empty turns this
    /// instance into a scatter-gather coordinator ([`coordinator`]):
    /// `LOAD`/`GEN`/`ENUM`/`DROP`/`STATS`/`SHUTDOWN` fan out to the
    /// shard servers instead of executing locally.
    pub shards: Vec<String>,
    /// Entries retained by the slow-query log (`SLOWLOG`): the N
    /// slowest queries since startup. 0 disables the log.
    pub slowlog_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue_depth: 16,
            plan_cache_capacity: 32,
            default_result_limit: 1000,
            debug_commands: false,
            data_root: None,
            shards: Vec::new(),
            slowlog_capacity: 32,
        }
    }
}
