//! `forbid-unsafe` — crates that are safe today stay safe tomorrow.
//!
//! # Rationale
//!
//! The entire workspace is currently written in safe Rust (the
//! accelerator substrate uses `u64` words and popcounts, not SIMD
//! intrinsics). That is a property worth pinning: with
//! `#![forbid(unsafe_code)]` in the crate root, a future PR that
//! introduces `unsafe` must *also* visibly remove the attribute,
//! turning a silent soundness surface into a reviewable decision.
//!
//! The rule counts `unsafe` tokens in each crate's sources (comment-
//! and string-aware, so prose about unsafety does not count). A crate
//! with zero tokens must carry `#![forbid(unsafe_code)]` in its root
//! (`src/lib.rs` / `src/main.rs`); a crate with genuine `unsafe` is
//! left alone — the compiler already forces those blocks to be
//! scrutinized.

use crate::findings::Finding;
use crate::rules::token_positions;
use crate::walk::Analysis;
use std::collections::BTreeMap;

/// Rule identifier.
pub const NAME: &str = "forbid-unsafe";

/// Crate-root files: `<dir>/src/lib.rs` or `<dir>/src/main.rs`.
fn root_of(path: &str) -> Option<&str> {
    if path.ends_with("/src/lib.rs") || path.ends_with("/src/main.rs") {
        Some(path)
    } else {
        None
    }
}

/// The `<dir>/src/` prefix of a source path.
fn src_prefix(path: &str) -> Option<&str> {
    path.find("/src/").map(|i| &path[..i + "/src/".len()])
}

/// Run the rule.
pub fn check(analysis: &Analysis, findings: &mut Vec<Finding>) {
    // Count unsafe tokens per src tree.
    let mut unsafe_counts: BTreeMap<&str, usize> = BTreeMap::new();
    for file in &analysis.files {
        let Some(prefix) = src_prefix(&file.path) else {
            continue;
        };
        let n: usize = file
            .scrub
            .lines
            .iter()
            .map(|l| token_positions(&l.code, "unsafe").len())
            .sum();
        *unsafe_counts.entry(prefix).or_insert(0) += n;
    }
    for file in &analysis.files {
        let Some(root) = root_of(&file.path) else {
            continue;
        };
        let prefix = match src_prefix(root) {
            Some(p) => p,
            None => continue,
        };
        if unsafe_counts.get(prefix).copied().unwrap_or(0) > 0 {
            continue; // genuine unsafe: the attribute cannot be added
        }
        let has_forbid = file
            .scrub
            .lines
            .iter()
            .any(|l| l.code.contains("#![forbid(unsafe_code)]"));
        if !has_forbid {
            findings.push(Finding::new(
                NAME,
                &file.path,
                1,
                "crate has zero `unsafe` tokens but its root lacks \
                 `#![forbid(unsafe_code)]`: pin the safety property",
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_and_prefix_detection() {
        assert!(root_of("crates/core/src/lib.rs").is_some());
        assert!(root_of("crates/cli/src/main.rs").is_some());
        assert!(root_of("crates/core/src/mbea.rs").is_none());
        assert_eq!(
            src_prefix("crates/core/src/mbea.rs"),
            Some("crates/core/src/")
        );
        assert_eq!(src_prefix("README.md"), None);
    }
}
