//! One entry point per table/figure of the paper's evaluation (§V).
//!
//! Each `expN_*` function runs the corresponding sweep on the scaled
//! synthetic corpus and returns paper-style [`Table`]s (the bench
//! targets print them and save TSVs). Runs that exceed the harness
//! budget report `INF`, mirroring the paper's 24-hour cutoff.

use crate::{fmt_time, timed, Opts, Table};
use bigraph::subgraph::sample_edges;
use bigraph::BipartiteGraph;
use fair_biclique::biclique::CountSink;
use fair_biclique::config::{Budget, FairParams, ProParams, PruneKind, RunConfig, VertexOrder};
use fair_biclique::fcore::PruneOutcome;
use fair_biclique::mbea::maximal_bicliques;
use fair_biclique::memory::{measure_bsfbc, measure_ssfbc};
use fair_biclique::pipeline::{
    prune_bi_side, prune_single_side, run_bsfbc, run_pbsfbc, run_pssfbc, run_ssfbc, BiAlgorithm,
    SsAlgorithm,
};
use fbe_datasets::corpus::{spec, Dataset, DatasetSpec};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

// ---------------------------------------------------------------
// Corpus access (graphs are built once per process).
// ---------------------------------------------------------------

static GRAPH_CACHE: Mutex<Option<HashMap<Dataset, Arc<BipartiteGraph>>>> = Mutex::new(None);

/// The (cached) graph for `dataset`.
pub fn graph_for(dataset: Dataset) -> Arc<BipartiteGraph> {
    // Ignore poisoning (parking_lot semantics): a panicking build must
    // not cascade "poisoned" panics into unrelated callers.
    let mut guard = GRAPH_CACHE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let map = guard.get_or_insert_with(HashMap::new);
    map.entry(dataset)
        .or_insert_with(|| Arc::new(spec(dataset).build()))
        .clone()
}

fn datasets(opts: &Opts) -> Vec<DatasetSpec> {
    if opts.quick {
        vec![spec(Dataset::Youtube)]
    } else {
        fbe_datasets::corpus::all_specs()
    }
}

fn cfg(opts: &Opts, order: VertexOrder) -> RunConfig {
    RunConfig {
        prune: PruneKind::Colorful,
        order,
        budget: Budget::time(opts.budget),
        ..RunConfig::default()
    }
}

/// The α/β x-axis of Fig. 2 per dataset (also used for β).
fn fig2_range(d: Dataset, opts: &Opts) -> Vec<u32> {
    let full: Vec<u32> = match d {
        Dataset::Youtube | Dataset::WikiCat | Dataset::Dblp => (5..=10).collect(),
        Dataset::Twitter => (6..=11).collect(),
        Dataset::Imdb => (8..=13).collect(),
    };
    thin(full, opts)
}

/// The α x-axis of Fig. 5 per dataset.
fn fig5_alpha_range(d: Dataset, opts: &Opts) -> Vec<u32> {
    let full: Vec<u32> = match d {
        Dataset::Youtube => (3..=8).collect(),
        Dataset::Twitter | Dataset::Imdb | Dataset::WikiCat => (4..=9).collect(),
        Dataset::Dblp => (2..=7).collect(),
    };
    thin(full, opts)
}

/// The β x-axis of Fig. 5 per dataset.
fn fig5_beta_range(d: Dataset, opts: &Opts) -> Vec<u32> {
    let full: Vec<u32> = match d {
        Dataset::Youtube => (3..=8).collect(),
        Dataset::Twitter => (5..=10).collect(),
        Dataset::Imdb | Dataset::WikiCat => (4..=9).collect(),
        Dataset::Dblp => (2..=7).collect(),
    };
    thin(full, opts)
}

fn delta_range(opts: &Opts) -> Vec<u32> {
    thin((0..=5).collect(), opts)
}

fn thin(full: Vec<u32>, opts: &Opts) -> Vec<u32> {
    if opts.quick {
        full.into_iter().step_by(2).collect()
    } else {
        full
    }
}

// ---------------------------------------------------------------
// Single runs.
// ---------------------------------------------------------------

/// Outcome of one timed enumeration run.
#[derive(Debug, Clone, Copy)]
pub struct RunResult {
    /// Number of fair bicliques found (a lower bound when aborted).
    pub count: u64,
    /// Wall-clock including pruning.
    pub time: Duration,
    /// True when the budget expired (`INF`).
    pub aborted: bool,
}

impl RunResult {
    fn cell(&self) -> String {
        fmt_time(self.time, self.aborted)
    }
}

/// Time one single-side enumeration (pruning included, like the paper).
pub fn time_ssfbc(
    g: &BipartiteGraph,
    params: FairParams,
    algo: SsAlgorithm,
    opts: &Opts,
    order: VertexOrder,
) -> RunResult {
    let mut sink = CountSink::default();
    let ((_, stats), time) = timed(|| run_ssfbc(g, params, algo, &cfg(opts, order), &mut sink));
    RunResult {
        count: sink.count,
        time,
        aborted: stats.aborted,
    }
}

/// Time one bi-side enumeration.
pub fn time_bsfbc(
    g: &BipartiteGraph,
    params: FairParams,
    algo: BiAlgorithm,
    opts: &Opts,
    order: VertexOrder,
) -> RunResult {
    let mut sink = CountSink::default();
    let ((_, stats), time) = timed(|| run_bsfbc(g, params, algo, &cfg(opts, order), &mut sink));
    RunResult {
        count: sink.count,
        time,
        aborted: stats.aborted,
    }
}

// ---------------------------------------------------------------
// Exp-1: pruning techniques (Fig. 3 and Fig. 4).
// ---------------------------------------------------------------

fn prune_row(out: &PruneOutcome, time: Duration) -> (String, String) {
    (
        out.stats.remaining_vertices().to_string(),
        format!("{:.4}", time.as_secs_f64()),
    )
}

/// Fig. 3: FCore vs CFCore remaining nodes and time on IMDB,
/// varying α (a, c) and β (b, d).
pub fn exp1_fig3(opts: &Opts) -> Vec<Table> {
    let d = if opts.quick {
        Dataset::Youtube
    } else {
        Dataset::Imdb
    };
    let s = spec(d);
    let g = graph_for(d);
    let range: Vec<u32> = if opts.quick {
        fig2_range(d, opts)
    } else {
        (8..=13).collect()
    };
    let mut nodes_a = Table::new(
        format!(
            "Fig. 3(a) {d} remaining nodes (vary alpha; beta={})",
            s.default_single.1
        ),
        &["alpha", "FCore", "CFCore"],
    );
    let mut time_a = Table::new(
        format!("Fig. 3(c) {d} pruning time (vary alpha)"),
        &["alpha", "FCore(s)", "CFCore(s)"],
    );
    for &a in &range {
        let p = FairParams::unchecked(a, s.default_single.1, s.default_delta);
        let (f, ft) = timed(|| prune_single_side(&g, p, PruneKind::FCore));
        let (c, ct) = timed(|| prune_single_side(&g, p, PruneKind::Colorful));
        let (fn_, fts) = prune_row(&f, ft);
        let (cn, cts) = prune_row(&c, ct);
        nodes_a.push(vec![a.to_string(), fn_, cn]);
        time_a.push(vec![a.to_string(), fts, cts]);
    }
    let mut nodes_b = Table::new(
        format!(
            "Fig. 3(b) {d} remaining nodes (vary beta; alpha={})",
            s.default_single.0
        ),
        &["beta", "FCore", "CFCore"],
    );
    let mut time_b = Table::new(
        format!("Fig. 3(d) {d} pruning time (vary beta)"),
        &["beta", "FCore(s)", "CFCore(s)"],
    );
    for &b in &range {
        let p = FairParams::unchecked(s.default_single.0, b, s.default_delta);
        let (f, ft) = timed(|| prune_single_side(&g, p, PruneKind::FCore));
        let (c, ct) = timed(|| prune_single_side(&g, p, PruneKind::Colorful));
        let (fn_, fts) = prune_row(&f, ft);
        let (cn, cts) = prune_row(&c, ct);
        nodes_b.push(vec![b.to_string(), fn_, cn]);
        time_b.push(vec![b.to_string(), fts, cts]);
    }
    vec![nodes_a, nodes_b, time_a, time_b]
}

/// Fig. 4: BFCore vs BCFCore on Twitter, varying α and β.
pub fn exp1_fig4(opts: &Opts) -> Vec<Table> {
    let d = if opts.quick {
        Dataset::Youtube
    } else {
        Dataset::Twitter
    };
    let s = spec(d);
    let g = graph_for(d);
    let mut out = Vec::new();
    for (panel, vary_alpha) in [("a/c", true), ("b/d", false)] {
        let range = if vary_alpha {
            fig5_alpha_range(d, opts)
        } else {
            fig5_beta_range(d, opts)
        };
        let axis = if vary_alpha { "alpha" } else { "beta" };
        let mut nodes = Table::new(
            format!("Fig. 4({panel}) {d} remaining nodes (vary {axis})"),
            &[axis, "BFCore", "BCFCore"],
        );
        let mut times = Table::new(
            format!("Fig. 4({panel}) {d} pruning time (vary {axis})"),
            &[axis, "BFCore(s)", "BCFCore(s)"],
        );
        for &x in &range {
            let p = if vary_alpha {
                FairParams::unchecked(x, s.default_bi.1, s.default_delta)
            } else {
                FairParams::unchecked(s.default_bi.0, x, s.default_delta)
            };
            let (f, ft) = timed(|| prune_bi_side(&g, p, PruneKind::FCore));
            let (c, ct) = timed(|| prune_bi_side(&g, p, PruneKind::Colorful));
            let (fn_, fts) = prune_row(&f, ft);
            let (cn, cts) = prune_row(&c, ct);
            nodes.push(vec![x.to_string(), fn_, cn]);
            times.push(vec![x.to_string(), fts, cts]);
        }
        out.push(nodes);
        out.push(times);
    }
    out
}

// ---------------------------------------------------------------
// Exp-2 / Exp-3: enumeration runtimes (Fig. 2 and Fig. 5).
// ---------------------------------------------------------------

/// Which parameter a sweep varies.
#[derive(Debug, Clone, Copy)]
enum Axis {
    Alpha,
    Beta,
    Delta,
}

impl Axis {
    fn name(&self) -> &'static str {
        match self {
            Axis::Alpha => "alpha",
            Axis::Beta => "beta",
            Axis::Delta => "delta",
        }
    }

    fn apply(&self, base: FairParams, x: u32) -> FairParams {
        match self {
            Axis::Alpha => FairParams::unchecked(x, base.beta, base.delta),
            Axis::Beta => FairParams::unchecked(base.alpha, x, base.delta),
            Axis::Delta => FairParams::unchecked(base.alpha, base.beta, x),
        }
    }
}

/// Fig. 2: NSF / FairBCEM / FairBCEM++ runtimes, varying α, β, δ on
/// every dataset (NSF only on DBLP, as in the paper).
pub fn exp2_fig2(opts: &Opts) -> Vec<Table> {
    let mut out = Vec::new();
    for s in datasets(opts) {
        let g = graph_for(s.dataset);
        let with_nsf = s.dataset == Dataset::Dblp || opts.quick;
        for axis in [Axis::Alpha, Axis::Beta, Axis::Delta] {
            let range = match axis {
                Axis::Delta => delta_range(opts),
                _ => fig2_range(s.dataset, opts),
            };
            let mut headers = vec![axis.name(), "FairBCEM(s)", "FairBCEM++(s)", "#SSFBC"];
            if with_nsf {
                headers.insert(1, "NSF(s)");
            }
            let mut t = Table::new(
                format!("Fig. 2 {} (vary {})", s.dataset, axis.name()),
                &headers,
            );
            for &x in &range {
                let p = axis.apply(s.single_params(), x);
                let mut row = vec![x.to_string()];
                if with_nsf {
                    row.push(
                        time_ssfbc(&g, p, SsAlgorithm::Nsf, opts, VertexOrder::DegreeDesc).cell(),
                    );
                }
                let bcem = time_ssfbc(&g, p, SsAlgorithm::FairBcem, opts, VertexOrder::DegreeDesc);
                let pp = time_ssfbc(
                    &g,
                    p,
                    SsAlgorithm::FairBcemPP,
                    opts,
                    VertexOrder::DegreeDesc,
                );
                row.push(bcem.cell());
                row.push(pp.cell());
                row.push(pp.count.to_string());
                t.push(row);
            }
            out.push(t);
        }
    }
    out
}

/// Fig. 5: BNSF / BFairBCEM / BFairBCEM++ runtimes, varying α, β, δ.
pub fn exp3_fig5(opts: &Opts) -> Vec<Table> {
    let mut out = Vec::new();
    for s in datasets(opts) {
        let g = graph_for(s.dataset);
        let with_nsf = s.dataset == Dataset::Dblp || opts.quick;
        for axis in [Axis::Alpha, Axis::Beta, Axis::Delta] {
            let range = match axis {
                Axis::Alpha => fig5_alpha_range(s.dataset, opts),
                Axis::Beta => fig5_beta_range(s.dataset, opts),
                Axis::Delta => delta_range(opts),
            };
            let mut headers = vec![axis.name(), "BFairBCEM(s)", "BFairBCEM++(s)", "#BSFBC"];
            if with_nsf {
                headers.insert(1, "BNSF(s)");
            }
            let mut t = Table::new(
                format!("Fig. 5 {} (vary {})", s.dataset, axis.name()),
                &headers,
            );
            for &x in &range {
                let p = axis.apply(s.bi_params(), x);
                let mut row = vec![x.to_string()];
                if with_nsf {
                    row.push(
                        time_bsfbc(&g, p, BiAlgorithm::Bnsf, opts, VertexOrder::DegreeDesc).cell(),
                    );
                }
                let bcem = time_bsfbc(&g, p, BiAlgorithm::BFairBcem, opts, VertexOrder::DegreeDesc);
                let pp = time_bsfbc(
                    &g,
                    p,
                    BiAlgorithm::BFairBcemPP,
                    opts,
                    VertexOrder::DegreeDesc,
                );
                row.push(bcem.cell());
                row.push(pp.cell());
                row.push(pp.count.to_string());
                t.push(row);
            }
            out.push(t);
        }
    }
    out
}

/// Table II: `IDOrd` vs `DegOrd` for all four algorithms at default
/// parameters, per dataset.
pub fn exp2_table2(opts: &Opts) -> Vec<Table> {
    let mut t = Table::new(
        "Table II: runtime (s) with IDOrd and DegOrd orderings",
        &[
            "Algorithm",
            "Ordering",
            "Youtube",
            "Twitter",
            "IMDB",
            "Wiki-cat",
            "DBLP",
        ],
    );
    let ds = if opts.quick {
        vec![Dataset::Youtube]
    } else {
        Dataset::ALL.to_vec()
    };
    if opts.quick {
        t.headers = vec!["Algorithm".into(), "Ordering".into(), "Youtube".into()];
    }
    for (name, algo) in [
        ("FairBCEM", SsAlgorithm::FairBcem),
        ("FairBCEM++", SsAlgorithm::FairBcemPP),
    ] {
        for (oname, order) in [
            ("IDOrd", VertexOrder::IdAsc),
            ("DegOrd", VertexOrder::DegreeDesc),
        ] {
            let mut row = vec![name.to_string(), oname.to_string()];
            for &d in &ds {
                let g = graph_for(d);
                let r = time_ssfbc(&g, spec(d).single_params(), algo, opts, order);
                row.push(r.cell());
            }
            t.push(row);
        }
    }
    for (name, algo) in [
        ("BFairBCEM", BiAlgorithm::BFairBcem),
        ("BFairBCEM++", BiAlgorithm::BFairBcemPP),
    ] {
        for (oname, order) in [
            ("IDOrd", VertexOrder::IdAsc),
            ("DegOrd", VertexOrder::DegreeDesc),
        ] {
            let mut row = vec![name.to_string(), oname.to_string()];
            for &d in &ds {
                let g = graph_for(d);
                let r = time_bsfbc(&g, spec(d).bi_params(), algo, opts, order);
                row.push(r.cell());
            }
            t.push(row);
        }
    }
    vec![t]
}

// ---------------------------------------------------------------
// Exp-4: result counts (Fig. 6).
// ---------------------------------------------------------------

/// Fig. 6: numbers of maximal bicliques (MBC), SSFBCs and BSFBCs on
/// Wiki-cat, varying α, β, δ.
///
/// Per the paper's protocol, the MBC baseline counts maximal bicliques
/// with `|L| ≥ α, |R| ≥ 2β` against SSFBC and `|L| ≥ 2α, |R| ≥ 2β`
/// against BSFBC.
pub fn exp4_fig6(opts: &Opts) -> Vec<Table> {
    let d = if opts.quick {
        Dataset::Youtube
    } else {
        Dataset::WikiCat
    };
    let s = spec(d);
    let g = graph_for(d);
    let budget = Budget::time(opts.budget);
    let mut out = Vec::new();

    let count_mbc = |params: FairParams, bi: bool| -> String {
        // Count on the colorful-core-pruned graph (a superset of all
        // fair bicliques' vertices) like the fair counts.
        let pruned = if bi {
            prune_bi_side(&g, params, PruneKind::Colorful)
        } else {
            prune_single_side(&g, params, PruneKind::Colorful)
        };
        let (min_l, min_r) = if bi {
            (2 * params.alpha as usize, 2 * params.beta as usize)
        } else {
            (params.alpha as usize, 2 * params.beta as usize)
        };
        let mut sink = CountSink::default();
        let stats = maximal_bicliques(
            &pruned.sub.graph,
            min_l,
            min_r,
            VertexOrder::DegreeDesc,
            budget.clone(),
            &mut sink,
        );
        if stats.aborted {
            format!(">{}", sink.count)
        } else {
            sink.count.to_string()
        }
    };

    for axis in [Axis::Alpha, Axis::Beta, Axis::Delta] {
        let range = match axis {
            Axis::Delta => delta_range(opts),
            _ => thin((5..=10).collect(), opts),
        };
        // SSFBC vs MBC.
        let mut t = Table::new(
            format!("Fig. 6 {} #SSFBC vs #MBC (vary {})", d, axis.name()),
            &[axis.name(), "SSFBC", "MBC"],
        );
        for &x in &range {
            let p = axis.apply(s.single_params(), x);
            let r = time_ssfbc(
                &g,
                p,
                SsAlgorithm::FairBcemPP,
                opts,
                VertexOrder::DegreeDesc,
            );
            let c = if r.aborted {
                format!(">{}", r.count)
            } else {
                r.count.to_string()
            };
            t.push(vec![x.to_string(), c, count_mbc(p, false)]);
        }
        out.push(t);
        // BSFBC vs MBC.
        let mut t = Table::new(
            format!("Fig. 6 {} #BSFBC vs #MBC (vary {})", d, axis.name()),
            &[axis.name(), "BSFBC", "MBC"],
        );
        let range_bi = match axis {
            Axis::Delta => delta_range(opts),
            Axis::Alpha => fig5_alpha_range(d, opts),
            Axis::Beta => fig5_beta_range(d, opts),
        };
        for &x in &range_bi {
            let p = axis.apply(s.bi_params(), x);
            let r = time_bsfbc(
                &g,
                p,
                BiAlgorithm::BFairBcemPP,
                opts,
                VertexOrder::DegreeDesc,
            );
            let c = if r.aborted {
                format!(">{}", r.count)
            } else {
                r.count.to_string()
            };
            t.push(vec![x.to_string(), c, count_mbc(p, true)]);
        }
        out.push(t);
    }
    out
}

// ---------------------------------------------------------------
// Exp-5: scalability (Fig. 7).
// ---------------------------------------------------------------

/// Fig. 7: runtime on 20%–100% edge samples of DBLP, for the
/// single-side (a) and bi-side (b) algorithms.
pub fn exp5_fig7(opts: &Opts) -> Vec<Table> {
    let d = if opts.quick {
        Dataset::Youtube
    } else {
        Dataset::Dblp
    };
    let s = spec(d);
    let g = graph_for(d);
    let fractions = [0.2, 0.4, 0.6, 0.8, 1.0];
    let mut ss = Table::new(
        format!("Fig. 7(a) {d} SSFBC scalability (vary m)"),
        &["m", "FairBCEM(s)", "FairBCEM++(s)"],
    );
    let mut bi = Table::new(
        format!("Fig. 7(b) {d} BSFBC scalability (vary m)"),
        &["m", "BFairBCEM(s)", "BFairBCEM++(s)"],
    );
    for &f in &fractions {
        let sub = if f >= 1.0 {
            (*g).clone()
        } else {
            sample_edges(&g, f, 0xf7)
        };
        let label = format!("{:.0}%", f * 100.0);
        let a = time_ssfbc(
            &sub,
            s.single_params(),
            SsAlgorithm::FairBcem,
            opts,
            VertexOrder::DegreeDesc,
        );
        let b = time_ssfbc(
            &sub,
            s.single_params(),
            SsAlgorithm::FairBcemPP,
            opts,
            VertexOrder::DegreeDesc,
        );
        ss.push(vec![label.clone(), a.cell(), b.cell()]);
        let a = time_bsfbc(
            &sub,
            s.bi_params(),
            BiAlgorithm::BFairBcem,
            opts,
            VertexOrder::DegreeDesc,
        );
        let b = time_bsfbc(
            &sub,
            s.bi_params(),
            BiAlgorithm::BFairBcemPP,
            opts,
            VertexOrder::DegreeDesc,
        );
        bi.push(vec![label, a.cell(), b.cell()]);
    }
    vec![ss, bi]
}

// ---------------------------------------------------------------
// Exp-6: memory (Fig. 8).
// ---------------------------------------------------------------

/// Fig. 8: memory overhead (MB, graph storage excluded) of the four
/// enumeration pipelines on every dataset.
pub fn exp6_fig8(opts: &Opts) -> Vec<Table> {
    let mut ss = Table::new(
        "Fig. 8(a) memory overhead (MB), SSFBC algorithms",
        &["dataset", "FairBCEM", "FairBCEM++"],
    );
    let mut bi = Table::new(
        "Fig. 8(b) memory overhead (MB), BSFBC algorithms",
        &["dataset", "BFairBCEM", "BFairBCEM++"],
    );
    let mb = |bytes: usize| format!("{:.3}", bytes as f64 / (1024.0 * 1024.0));
    for s in datasets(opts) {
        let g = graph_for(s.dataset);
        let c = cfg(opts, VertexOrder::DegreeDesc);
        let m1 = measure_ssfbc(&g, s.single_params(), SsAlgorithm::FairBcem, &c);
        let m2 = measure_ssfbc(&g, s.single_params(), SsAlgorithm::FairBcemPP, &c);
        ss.push(vec![s.dataset.to_string(), mb(m1.total()), mb(m2.total())]);
        let m3 = measure_bsfbc(&g, s.bi_params(), BiAlgorithm::BFairBcem, &c);
        let m4 = measure_bsfbc(&g, s.bi_params(), BiAlgorithm::BFairBcemPP, &c);
        bi.push(vec![s.dataset.to_string(), mb(m3.total()), mb(m4.total())]);
    }
    vec![ss, bi]
}

// ---------------------------------------------------------------
// Exp-7: proportion models (Fig. 11 and Fig. 12).
// ---------------------------------------------------------------

/// Fig. 11 + Fig. 12: number of PSSFBCs/PBSFBCs and runtime of
/// `FairBCEMPro++` / `BFairBCEMPro++` on Youtube, varying θ.
pub fn exp7_fig11_12(opts: &Opts) -> Vec<Table> {
    let d = Dataset::Youtube;
    let s = spec(d);
    let g = graph_for(d);
    let thetas = [0.30, 0.35, 0.40, 0.45, 0.50];
    let mut counts = Table::new(
        format!("Fig. 11 {d} #PSSFBC / #PBSFBC (vary theta)"),
        &["theta", "PSSFBC", "PBSFBC"],
    );
    let mut times = Table::new(
        format!("Fig. 12 {d} FairBCEMPro++ / BFairBCEMPro++ time (vary theta)"),
        &["theta", "FairBCEMPro++(s)", "BFairBCEMPro++(s)"],
    );
    for &theta in &thetas {
        let pro_s = ProParams::new(
            s.default_single.0,
            s.default_single.1,
            s.default_delta,
            theta,
        )
        .expect("valid");
        let pro_b =
            ProParams::new(s.default_bi.0, s.default_bi.1, s.default_delta, theta).expect("valid");
        let c = cfg(opts, VertexOrder::DegreeDesc);
        let mut sink = CountSink::default();
        let ((_, st_s), t_s) = timed(|| run_pssfbc(&g, pro_s, &c, &mut sink));
        let n_s = sink.count;
        let mut sink = CountSink::default();
        let ((_, st_b), t_b) = timed(|| run_pbsfbc(&g, pro_b, &c, &mut sink));
        let n_b = sink.count;
        counts.push(vec![theta.to_string(), n_s.to_string(), n_b.to_string()]);
        times.push(vec![
            theta.to_string(),
            fmt_time(t_s, st_s.aborted),
            fmt_time(t_b, st_b.aborted),
        ]);
    }
    vec![counts, times]
}

// ---------------------------------------------------------------
// Ablation: contribution of each pruning stage (DESIGN.md §4).
// ---------------------------------------------------------------

/// Ablation: end-to-end enumeration time with pruning disabled
/// (`None`), degree-only (`FCore`/`BFCore`), and full colorful pruning
/// (`CFCore`/`BCFCore`) — quantifies how much of the paper's speedup
/// comes from each stage.
pub fn ablation_pruning(opts: &Opts) -> Vec<Table> {
    let ds = if opts.quick {
        vec![Dataset::Youtube]
    } else {
        vec![Dataset::Youtube, Dataset::WikiCat, Dataset::Dblp]
    };
    let mut ss = Table::new(
        "Ablation: SSFBC (FairBCEM++) end-to-end time by pruning stage",
        &["dataset", "NoPrune(s)", "FCore(s)", "CFCore(s)", "#SSFBC"],
    );
    let mut bi = Table::new(
        "Ablation: BSFBC (BFairBCEM++) end-to-end time by pruning stage",
        &["dataset", "NoPrune(s)", "BFCore(s)", "BCFCore(s)", "#BSFBC"],
    );
    for d in ds {
        let s = spec(d);
        let g = graph_for(d);
        let mut row = vec![d.to_string()];
        let mut count = 0u64;
        for prune in [PruneKind::None, PruneKind::FCore, PruneKind::Colorful] {
            let mut sink = CountSink::default();
            let c = RunConfig {
                prune,
                order: VertexOrder::DegreeDesc,
                budget: Budget::time(opts.budget),
                ..RunConfig::default()
            };
            let ((_, stats), t) = timed(|| {
                run_ssfbc(
                    &g,
                    s.single_params(),
                    SsAlgorithm::FairBcemPP,
                    &c,
                    &mut sink,
                )
            });
            row.push(fmt_time(t, stats.aborted));
            count = sink.count;
        }
        row.push(count.to_string());
        ss.push(row);

        let mut row = vec![d.to_string()];
        let mut count = 0u64;
        for prune in [PruneKind::None, PruneKind::FCore, PruneKind::Colorful] {
            let mut sink = CountSink::default();
            let c = RunConfig {
                prune,
                order: VertexOrder::DegreeDesc,
                budget: Budget::time(opts.budget),
                ..RunConfig::default()
            };
            let ((_, stats), t) =
                timed(|| run_bsfbc(&g, s.bi_params(), BiAlgorithm::BFairBcemPP, &c, &mut sink));
            row.push(fmt_time(t, stats.aborted));
            count = sink.count;
        }
        row.push(count.to_string());
        bi.push(row);
    }
    vec![ss, bi]
}

// ---------------------------------------------------------------
// Exp-8: parallel engine scaling (extension; not in the paper).
// ---------------------------------------------------------------

/// Runtime of every miner on the work-stealing engine at 1/2/4/8
/// worker threads (1 = the serial pipeline; all runs on one shared
/// global budget).
pub fn exp8_parallel_scaling(opts: &Opts) -> Vec<Table> {
    use fair_biclique::maximum::{max_ssfbc, SizeMetric};
    use fair_biclique::pipeline::{
        enumerate_bsfbc, enumerate_pbsfbc, enumerate_pssfbc, enumerate_ssfbc,
    };

    let d = if opts.quick {
        Dataset::Youtube
    } else {
        Dataset::Dblp
    };
    let s = spec(d);
    let g = graph_for(d);
    let threads = [1usize, 2, 4, 8];
    let mut t = Table::new(
        format!("Parallel scaling {d} (work-stealing engine, vary threads)"),
        &["miner", "t=1(s)", "t=2(s)", "t=4(s)", "t=8(s)", "results"],
    );
    let params = s.single_params();
    let bi = s.bi_params();
    let pro = s.single_pro_params();
    let bi_pro = s.bi_pro_params();
    type Runner<'a> = Box<dyn Fn(&RunConfig) -> (usize, bool) + 'a>;
    let report = |r: fair_biclique::pipeline::RunReport| (r.bicliques.len(), r.stats.aborted);
    let miners: Vec<(&str, Runner)> = vec![
        (
            "FairBCEM++ (SSFBC)",
            Box::new(|cfg: &RunConfig| report(enumerate_ssfbc(&g, params, cfg))),
        ),
        (
            "BFairBCEM++ (BSFBC)",
            Box::new(|cfg: &RunConfig| report(enumerate_bsfbc(&g, bi, cfg))),
        ),
        (
            "FairBCEMPro++ (PSSFBC)",
            Box::new(|cfg: &RunConfig| report(enumerate_pssfbc(&g, pro, cfg))),
        ),
        (
            "BFairBCEMPro++ (PBSFBC)",
            Box::new(|cfg: &RunConfig| report(enumerate_pbsfbc(&g, bi_pro, cfg))),
        ),
        (
            "maximum (SSFBC)",
            Box::new(|cfg: &RunConfig| {
                let (best, _) = max_ssfbc(&g, params, SizeMetric::Vertices, cfg);
                (usize::from(best.is_some()), false)
            }),
        ),
    ];
    // The DBLP cells finish in tens of milliseconds, where a single
    // timing is dominated by scheduler noise; report the median of a
    // few repeats so snapshot-to-snapshot deltas reflect the code.
    let reps = if opts.quick { 3 } else { 5 };
    for (name, run) in miners {
        let mut row = vec![name.to_string()];
        let mut count = 0usize;
        for &n in &threads {
            let cfg = RunConfig {
                budget: Budget::time(opts.budget),
                threads: n,
                ..RunConfig::default()
            };
            let mut elapsed = Vec::with_capacity(reps);
            let mut aborted = false;
            for _ in 0..reps {
                let ((c, a), e) = timed(|| run(&cfg));
                count = c;
                aborted = a;
                elapsed.push(e);
                if aborted {
                    break;
                }
            }
            elapsed.sort();
            row.push(fmt_time(elapsed[elapsed.len() / 2], aborted));
        }
        row.push(count.to_string());
        t.push(row);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> Opts {
        Opts {
            quick: true,
            budget: Duration::from_secs(2),
        }
    }

    #[test]
    fn fig3_and_fig4_quick() {
        let tables = exp1_fig3(&quick_opts());
        assert_eq!(tables.len(), 4);
        assert!(!tables[0].rows.is_empty());
        let tables = exp1_fig4(&quick_opts());
        assert_eq!(tables.len(), 4);
        // CFCore keeps no more nodes than FCore in every row.
        for t in &tables {
            if !t.headers[1].contains("(s)") {
                for row in &t.rows {
                    let f: usize = row[1].parse().unwrap();
                    let c: usize = row[2].parse().unwrap();
                    assert!(c <= f, "{}: {row:?}", t.title);
                }
            }
        }
    }

    #[test]
    fn fig2_quick_runs() {
        let tables = exp2_fig2(&quick_opts());
        assert_eq!(tables.len(), 3); // one dataset x three axes
        for t in &tables {
            assert!(!t.rows.is_empty());
        }
    }

    #[test]
    fn ablation_quick_runs() {
        let tables = ablation_pruning(&quick_opts());
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].rows.len(), 1);
    }

    #[test]
    fn table2_quick_runs() {
        let tables = exp2_table2(&quick_opts());
        assert_eq!(tables[0].rows.len(), 8);
    }

    #[test]
    fn parallel_scaling_quick() {
        let tables = exp8_parallel_scaling(&quick_opts());
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), 5, "one row per miner");
        assert_eq!(tables[0].headers.len(), 6);
    }

    #[test]
    fn fig7_fig8_fig11_quick() {
        assert_eq!(exp5_fig7(&quick_opts()).len(), 2);
        assert_eq!(exp6_fig8(&quick_opts()).len(), 2);
        let t = exp7_fig11_12(&quick_opts());
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].rows.len(), 5);
    }
}
