//! Regenerates Fig. 6 (result counts) of the paper. Run: `cargo bench --bench fig6_counts`
//! (add `-- --quick` for a reduced sweep).

fn main() {
    let opts = fbe_bench::Opts::from_args();
    println!(
        "=== Fig. 6 (result counts) (budget {:?}/run, quick={}) ===",
        opts.budget, opts.quick
    );
    for (i, t) in fbe_bench::experiments::exp4_fig6(&opts)
        .into_iter()
        .enumerate()
    {
        t.print();
        t.save(&format!("fig6_counts_{i}"));
    }
}
