//! Head-to-head comparison of the two candidate substrates (sorted-vec
//! merge vs `u64` bitset rows) on the regimes the `Auto` policy
//! distinguishes:
//!
//! * raw pairwise intersection counting at several set widths, each
//!   width on an **independently seeded** corpus (identical warmed
//!   allocations would flatter whichever variant runs second);
//! * the dense pruned-core micro case: full `FairBCEM++` enumeration
//!   over a planted-biclique corpus after CFCore pruning, where bitset
//!   rows should clearly beat the merge;
//! * a sparse skewed case where `Auto` resolves to the merge on the
//!   raw graph but re-resolves (and usually flips to bitsets) on the
//!   pruned core.

use criterion::{criterion_group, criterion_main, Criterion};
use fair_biclique::biclique::CountSink;
use fair_biclique::config::{PruneKind, RunConfig, Substrate};
use fair_biclique::pipeline::{run_ssfbc, SsAlgorithm};
use std::hint::black_box;

/// Deterministic splitmix64 — the bench crate carries no RNG
/// dependency, and each width below derives its own stream.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// An ascending set over `0..width` with ~`density` fill from `seed`.
fn random_set(width: u32, density: f64, seed: u64) -> Vec<u32> {
    let mut s = seed;
    (0..width)
        .filter(|_| (splitmix64(&mut s) as f64 / u64::MAX as f64) < density)
        .collect()
}

fn bench_intersection_widths(c: &mut Criterion) {
    // Each width gets its own independently seeded corpus.
    for (width, seed) in [
        (256u32, 0xA11C_E001u64),
        (1024, 0xA11C_E002),
        (4096, 0xA11C_E003),
    ] {
        let n_rows = 64usize;
        let sets: Vec<Vec<u32>> = (0..n_rows)
            .map(|i| random_set(width, 0.5, seed ^ (i as u64).wrapping_mul(0x5851_f42d)))
            .collect();
        let refs: Vec<&[u32]> = sets.iter().map(|s| s.as_slice()).collect();
        let rows = bigraph::BitRows::from_sets(width as usize, &refs);

        let mut group = c.benchmark_group(&format!("substrate_intersect_{width}"));
        group.bench_function("sorted_vec", |b| {
            b.iter(|| {
                let mut total = 0usize;
                for i in 0..n_rows {
                    for j in (i + 1)..n_rows {
                        total += bigraph::intersect_sorted_count(
                            black_box(&sets[i]),
                            black_box(&sets[j]),
                        );
                    }
                }
                total
            })
        });
        group.bench_function("bitset", |b| {
            b.iter(|| {
                let mut total = 0usize;
                for i in 0..n_rows as u32 {
                    for j in (i + 1)..n_rows as u32 {
                        total += bigraph::candidate::and_count(
                            black_box(rows.row(i)),
                            black_box(rows.row(j)),
                        );
                    }
                }
                total
            })
        });
        group.finish();
    }
}

/// The dense pruned-core case: after CFCore pruning the surviving
/// planted blocks are small and dense — the bitset regime.
fn bench_dense_pruned_core(c: &mut Criterion) {
    let base = bigraph::generate::random_uniform(150, 150, 1800, 2, 2, 71);
    let g = bigraph::generate::plant_bicliques(&base, 4, 12, 14, 1.0, 72);
    let params = fair_biclique::config::FairParams::unchecked(3, 2, 2);

    let mut group = c.benchmark_group("substrate_dense_pruned_core");
    group.sample_size(10);
    let mut counts = std::collections::BTreeMap::new();
    for substrate in [Substrate::SortedVec, Substrate::Bitset, Substrate::Auto] {
        let cfg = RunConfig {
            prune: PruneKind::Colorful,
            substrate,
            ..RunConfig::default()
        };
        group.bench_function(&substrate.to_string(), |b| {
            b.iter(|| {
                let mut sink = CountSink::default();
                run_ssfbc(
                    black_box(&g),
                    params,
                    SsAlgorithm::FairBcemPP,
                    &cfg,
                    &mut sink,
                );
                sink.count
            })
        });
        let mut sink = CountSink::default();
        run_ssfbc(&g, params, SsAlgorithm::FairBcemPP, &cfg, &mut sink);
        counts.insert(substrate.to_string(), sink.count);
    }
    group.finish();
    let distinct: std::collections::BTreeSet<u64> = counts.values().copied().collect();
    assert_eq!(
        distinct.len(),
        1,
        "substrates must agree on result counts: {counts:?}"
    );
}

/// Sparse skewed case (power-law degrees, large sides). On the *raw*
/// graph `Auto` resolves to the merge (asserted below); inside the
/// pipeline the choice is re-resolved against the *pruned* core,
/// which shrinks into the bitset regime — so `Auto` adapts while the
/// explicit `sorted-vec` run shows the conservative baseline. The
/// search is node-budgeted — sparse instances can hold astronomically
/// many maximal bicliques, and a fixed budget keeps the variants on
/// the same deterministic slice of the tree.
fn bench_sparse_skewed(c: &mut Criterion) {
    let g = bigraph::generate::chung_lu_power_law(3000, 3000, 9000, 2.1, 2.1, 2, 2, 73);
    assert_eq!(
        Substrate::Auto.resolve_for(&g),
        Substrate::SortedVec,
        "Auto must fall back to the merge on sparse skewed inputs"
    );
    let params = fair_biclique::config::FairParams::unchecked(2, 1, 1);
    let mut group = c.benchmark_group("substrate_sparse_skewed");
    group.sample_size(10);
    for substrate in [Substrate::SortedVec, Substrate::Auto] {
        let cfg = RunConfig {
            prune: PruneKind::Colorful,
            substrate,
            budget: fair_biclique::config::Budget::nodes(50_000),
            ..RunConfig::default()
        };
        group.bench_function(&substrate.to_string(), |b| {
            b.iter(|| {
                let mut sink = CountSink::default();
                run_ssfbc(
                    black_box(&g),
                    params,
                    SsAlgorithm::FairBcemPP,
                    &cfg,
                    &mut sink,
                );
                sink.count
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_intersection_widths,
    bench_dense_pruned_core,
    bench_sparse_skewed
);
criterion_main!(benches);
