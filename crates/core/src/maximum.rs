//! Maximum (largest) fair biclique search.
//!
//! The paper's related work motivates *maximum* biclique search
//! (\[17\]–\[20\]) next to enumeration; this module provides the fair
//! analog: the single largest SSFBC/BSFBC under a size metric. It
//! reuses the enumeration pipelines with a best-so-far sink — exact,
//! and cheap whenever enumeration itself is feasible.

use crate::biclique::{Biclique, BicliqueSink};
use crate::config::{FairParams, RunConfig};
use crate::fcore::PruneStats;
use crate::pipeline::{run_bsfbc, run_ssfbc, BiAlgorithm, SsAlgorithm};
use bigraph::{BipartiteGraph, VertexId};
use serde::{Deserialize, Serialize};

/// What "largest" means.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SizeMetric {
    /// Total vertex count `|L| + |R|`.
    #[default]
    Vertices,
    /// Edge count `|L| · |R|` (bicliques are complete).
    Edges,
}

impl SizeMetric {
    fn score(&self, upper: &[VertexId], lower: &[VertexId]) -> u64 {
        match self {
            SizeMetric::Vertices => (upper.len() + lower.len()) as u64,
            SizeMetric::Edges => upper.len() as u64 * lower.len() as u64,
        }
    }
}

/// Sink retaining the best biclique under a metric (ties broken
/// lexicographically so results are deterministic).
#[derive(Debug, Clone)]
pub struct MaxSink {
    metric: SizeMetric,
    /// Best result so far.
    pub best: Option<Biclique>,
    best_score: u64,
    /// Total results observed.
    pub seen: u64,
}

impl MaxSink {
    /// New empty sink.
    pub fn new(metric: SizeMetric) -> Self {
        MaxSink {
            metric,
            best: None,
            best_score: 0,
            seen: 0,
        }
    }
}

impl BicliqueSink for MaxSink {
    fn emit(&mut self, upper: &[VertexId], lower: &[VertexId]) {
        self.seen += 1;
        let score = self.metric.score(upper, lower);
        let better = match &self.best {
            None => true,
            Some(b) => {
                score > self.best_score
                    || (score == self.best_score
                        && (upper, lower) < (b.upper.as_slice(), b.lower.as_slice()))
            }
        };
        if better {
            self.best = Some(Biclique {
                upper: upper.to_vec(),
                lower: lower.to_vec(),
            });
            self.best_score = score;
        }
    }
}

/// The largest single-side fair biclique of `g` under `metric`
/// (`None` when no SSFBC exists). Exact; runs the `FairBCEM++`
/// pipeline under the hood. `cfg.threads > 1` searches on the
/// parallel engine ([`crate::parallel`]) with per-worker best-so-far
/// sinks merged under the same deterministic tie-break.
pub fn max_ssfbc(
    g: &BipartiteGraph,
    params: FairParams,
    metric: SizeMetric,
    cfg: &RunConfig,
) -> (Option<Biclique>, PruneStats) {
    if cfg.threads > 1 {
        let pruned = crate::pipeline::prune_single_side(g, params, cfg.prune);
        let sink = crate::parallel::par_max_ssfbc(&pruned, params, metric, cfg);
        return (sink.best, pruned.stats);
    }
    let mut sink = MaxSink::new(metric);
    let (prune, _) = run_ssfbc(g, params, SsAlgorithm::FairBcemPP, cfg, &mut sink);
    (sink.best, prune)
}

/// The largest bi-side fair biclique of `g` under `metric`.
/// `cfg.threads > 1` searches on the parallel engine.
pub fn max_bsfbc(
    g: &BipartiteGraph,
    params: FairParams,
    metric: SizeMetric,
    cfg: &RunConfig,
) -> (Option<Biclique>, PruneStats) {
    if cfg.threads > 1 {
        let pruned = crate::pipeline::prune_bi_side(g, params, cfg.prune);
        let sink = crate::parallel::par_max_bsfbc(&pruned, params, metric, cfg);
        return (sink.best, pruned.stats);
    }
    let mut sink = MaxSink::new(metric);
    let (prune, _) = run_bsfbc(g, params, BiAlgorithm::BFairBcemPP, cfg, &mut sink);
    (sink.best, prune)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{oracle_bsfbc, oracle_ssfbc};
    use bigraph::generate::random_uniform;

    fn oracle_max(
        set: &std::collections::BTreeSet<Biclique>,
        metric: SizeMetric,
    ) -> Option<Biclique> {
        set.iter()
            .map(|b| (metric.score(&b.upper, &b.lower), b.clone()))
            .fold(None, |acc: Option<(u64, Biclique)>, (s, b)| match acc {
                None => Some((s, b)),
                Some((bs, bb)) => {
                    if s > bs
                        || (s == bs
                            && (b.upper.clone(), b.lower.clone())
                                < (bb.upper.clone(), bb.lower.clone()))
                    {
                        Some((s, b))
                    } else {
                        Some((bs, bb))
                    }
                }
            })
            .map(|(_, b)| b)
    }

    #[test]
    fn matches_oracle_max_on_random_graphs() {
        for seed in 0..15u64 {
            let g = random_uniform(8, 10, 34, 2, 2, seed);
            let params = FairParams::unchecked(2, 1, 1);
            let all = oracle_ssfbc(&g, params);
            for metric in [SizeMetric::Vertices, SizeMetric::Edges] {
                let (got, _) = max_ssfbc(&g, params, metric, &RunConfig::default());
                let want = oracle_max(&all, metric);
                assert_eq!(got, want, "seed {seed} metric {metric:?}");
            }
        }
    }

    #[test]
    fn bi_side_max_matches_oracle() {
        for seed in 0..8u64 {
            let g = random_uniform(7, 8, 26, 2, 2, seed);
            let params = FairParams::unchecked(1, 1, 1);
            let all = oracle_bsfbc(&g, params);
            let (got, _) = max_bsfbc(&g, params, SizeMetric::Vertices, &RunConfig::default());
            assert_eq!(got, oracle_max(&all, SizeMetric::Vertices), "seed {seed}");
        }
    }

    #[test]
    fn none_when_infeasible() {
        let g = random_uniform(6, 6, 10, 2, 2, 1);
        let params = FairParams::unchecked(6, 6, 0);
        let (got, prune) = max_ssfbc(&g, params, SizeMetric::Vertices, &RunConfig::default());
        assert!(got.is_none());
        assert_eq!(prune.remaining_vertices(), 0);
    }

    #[test]
    fn metric_scores() {
        assert_eq!(SizeMetric::Vertices.score(&[0, 1], &[0, 1, 2]), 5);
        assert_eq!(SizeMetric::Edges.score(&[0, 1], &[0, 1, 2]), 6);
    }
}
