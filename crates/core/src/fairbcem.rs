//! `FairBCEM` (Algorithm 5): branch-and-bound enumeration of all
//! single-side fair bicliques.
//!
//! The search maintains the paper's four sets:
//!
//! * `R` — chosen fair-side (lower) vertices,
//! * `L` — upper vertices adjacent to *all* of `R`,
//! * `P` — fair-side candidates that may still extend `R`,
//! * `Q` — fair-side vertices already expanded on sibling branches
//!   (duplicate suppression and maximality witnesses).
//!
//! Pruning rules (Observations 2–5):
//!
//! * **Obs. 2** — if for every attribute some `Q`-vertex is fully
//!   connected to `L'`, adding one of each keeps every descendant
//!   extendable: kill the whole branch.
//! * **Obs. 3** — `(L', R')` is a result iff `R'` is fair and a maximal
//!   fair subset of `R' ∪ PFC ∪ QFC` (`MFSCheck`, Algorithm 4).
//! * **Obs. 4** — if every remaining candidate is fully connected and
//!   `R' ∪ P` is fair, absorb all of `P` at once.
//! * **Obs. 5** — cut when `|L'| < α` or some attribute can no longer
//!   reach `β` even using all of `P'`.
//!
//! This module enumerates on an already-pruned graph; the public
//! pipeline in [`crate::pipeline`] composes pruning + id remapping.

use crate::biclique::{BicliqueSink, EnumStats};
use crate::config::{Budget, BudgetClock, FairParams, VertexOrder};
use crate::fairset::{is_fair, is_maximal_fair_subset, AttrCounts};
use crate::ordering::side_order;
use bigraph::{intersect_sorted_count, intersect_sorted_into, BipartiteGraph, Side, VertexId};

/// Run `FairBCEM` on `g` (assumed already pruned; fair side = lower).
/// Results are emitted with `g`'s vertex ids.
pub fn fairbcem_on_pruned(
    g: &BipartiteGraph,
    params: FairParams,
    order: VertexOrder,
    budget: Budget,
    sink: &mut dyn BicliqueSink,
) -> EnumStats {
    fairbcem_with_clock(g, params, order, budget.start(), sink)
}

/// [`fairbcem_on_pruned`] with an explicit clock — bi-side drivers
/// hand in a shared-budget clock so the whole chain stops together.
pub(crate) fn fairbcem_with_clock(
    g: &BipartiteGraph,
    params: FairParams,
    order: VertexOrder,
    clock: BudgetClock,
    sink: &mut dyn BicliqueSink,
) -> EnumStats {
    let mut search = Search {
        g,
        params,
        n_attrs: (g.n_attr_values(Side::Lower) as usize).max(1),
        attrs: g.attrs(Side::Lower),
        sink,
        clock,
        emitted: 0,
        cur_bytes: 0,
        peak_bytes: 0,
    };
    let l: Vec<VertexId> = (0..g.n_upper() as VertexId).collect();
    let p = side_order(g, Side::Lower, order);
    let mut r = Vec::new();
    let mut r_counts = AttrCounts::zeros(search.n_attrs);
    search.backtrack(&l, &mut r, &mut r_counts, &p, &[]);
    EnumStats {
        nodes: search.clock.nodes,
        emitted: search.emitted,
        aborted: search.clock.exhausted,
        stop: search.clock.stop_reason(),
        peak_search_bytes: search.peak_bytes,
    }
}

struct Search<'a> {
    g: &'a BipartiteGraph,
    params: FairParams,
    n_attrs: usize,
    attrs: &'a [bigraph::AttrValueId],
    sink: &'a mut dyn BicliqueSink,
    clock: BudgetClock,
    emitted: u64,
    cur_bytes: usize,
    peak_bytes: usize,
}

impl Search<'_> {
    /// `BackTrackFBCEM`. `p` is in global processing order; `q` holds
    /// previously expanded vertices. `r`/`r_counts` are restored before
    /// returning.
    fn backtrack(
        &mut self,
        l: &[VertexId],
        r: &mut Vec<VertexId>,
        r_counts: &mut AttrCounts,
        p: &[VertexId],
        q: &[VertexId],
    ) {
        let alpha = self.params.alpha as usize;
        let mut l_new: Vec<VertexId> = Vec::new();

        for i in 0..p.len() {
            if !self.clock.tick() {
                return;
            }
            let x = p[i];
            // L' = L ∩ N(x).
            intersect_sorted_into(l, self.g.neighbors(Side::Lower, x), &mut l_new);
            let mut flag = l_new.len() >= alpha;

            let mut q_new: Vec<VertexId> = Vec::new();
            let mut qfc_counts = AttrCounts::zeros(self.n_attrs);
            if flag {
                // Q of this iteration: the inherited q plus the p-prefix
                // already expanded in this frame.
                for &u in q.iter().chain(&p[..i]) {
                    let c = intersect_sorted_count(self.g.neighbors(Side::Lower, u), &l_new);
                    if c == l_new.len() {
                        qfc_counts.inc(self.attrs[u as usize]);
                    }
                    if c >= alpha {
                        q_new.push(u);
                    }
                }
                // Observation 2: every attribute has a fully-connected
                // Q witness -> nothing below is maximal.
                if qfc_counts.as_slice().iter().all(|&c| c > 0) {
                    flag = false;
                }
            }

            if flag {
                r.push(x);
                r_counts.inc(self.attrs[x as usize]);

                let mut pfc: Vec<VertexId> = Vec::new();
                let mut p_new: Vec<VertexId> = Vec::new();
                for &v in &p[i + 1..] {
                    let c = intersect_sorted_count(self.g.neighbors(Side::Lower, v), &l_new);
                    if c == l_new.len() {
                        pfc.push(v);
                    }
                    if c >= alpha {
                        p_new.push(v);
                    }
                }

                // Observation 4: all candidates fully connected and the
                // union fair -> absorb them all.
                let mut merged = 0usize;
                if pfc.len() == p_new.len() && !pfc.is_empty() {
                    let mut union = r_counts.clone();
                    for &v in &pfc {
                        union.inc(self.attrs[v as usize]);
                    }
                    if is_fair(union.as_slice(), self.params.beta, self.params.delta) {
                        for &v in &pfc {
                            r.push(v);
                            r_counts.inc(self.attrs[v as usize]);
                        }
                        merged = pfc.len();
                        pfc.clear();
                        p_new.clear();
                    }
                }

                // Observation 3: emit iff R' is a maximal fair subset
                // of R' ∪ PFC ∪ QFC.
                if is_fair(r_counts.as_slice(), self.params.beta, self.params.delta) {
                    let mut cand = qfc_counts.clone();
                    for &v in &pfc {
                        cand.inc(self.attrs[v as usize]);
                    }
                    if is_maximal_fair_subset(
                        r_counts.as_slice(),
                        cand.as_slice(),
                        self.params.beta,
                        self.params.delta,
                    ) && self.clock.try_result()
                    {
                        let mut r_sorted = r.clone();
                        r_sorted.sort_unstable();
                        self.sink.emit(&l_new, &r_sorted);
                        self.emitted += 1;
                    }
                }

                // Observation 5 (second half): every attribute must be
                // able to reach beta using R' plus candidates.
                if !p_new.is_empty() {
                    let mut reach = r_counts.clone();
                    for &v in &p_new {
                        reach.inc(self.attrs[v as usize]);
                    }
                    if reach.as_slice().iter().all(|&c| c >= self.params.beta) {
                        let frame_bytes = (l_new.len() + p_new.len() + q_new.len())
                            * std::mem::size_of::<VertexId>();
                        self.cur_bytes += frame_bytes;
                        self.peak_bytes = self.peak_bytes.max(self.cur_bytes);
                        self.backtrack(&l_new.clone(), r, r_counts, &p_new, &q_new);
                        self.cur_bytes -= frame_bytes;
                    }
                }

                // Restore R'.
                for _ in 0..merged + 1 {
                    let v = r.pop().expect("restore");
                    r_counts.dec(self.attrs[v as usize]);
                }
            }

            if self.clock.exhausted {
                return;
            }
            // x implicitly moves from P to Q (it is in p[..i+1] now).
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::biclique::{Biclique, CollectSink};
    use crate::verify::oracle_ssfbc;
    use bigraph::generate::random_uniform;
    use bigraph::GraphBuilder;
    use std::collections::BTreeSet;

    fn run(g: &BipartiteGraph, params: FairParams, order: VertexOrder) -> BTreeSet<Biclique> {
        let mut sink = CollectSink::default();
        let stats = fairbcem_on_pruned(g, params, order, Budget::UNLIMITED, &mut sink);
        assert!(!stats.aborted);
        let set: BTreeSet<Biclique> = sink.bicliques.iter().cloned().collect();
        assert_eq!(set.len(), sink.bicliques.len(), "no duplicate emissions");
        assert_eq!(stats.emitted as usize, sink.bicliques.len());
        set
    }

    #[test]
    fn matches_oracle_on_block_graph() {
        let mut b = GraphBuilder::new(2, 2);
        for u in 0..3 {
            for v in 0..4 {
                b.add_edge(u, v);
            }
        }
        b.add_edge(3, 4);
        b.set_attrs_upper(&[0, 1, 0, 1]);
        b.set_attrs_lower(&[0, 0, 1, 1, 0]);
        let g = b.build().unwrap();
        for params in [
            FairParams::unchecked(2, 1, 1),
            FairParams::unchecked(2, 2, 0),
            FairParams::unchecked(1, 1, 2),
            FairParams::unchecked(3, 2, 1),
        ] {
            let want = oracle_ssfbc(&g, params);
            let got = run(&g, params, VertexOrder::DegreeDesc);
            assert_eq!(got, want, "params {params}");
        }
    }

    #[test]
    fn matches_oracle_on_random_graphs() {
        for seed in 0..30u64 {
            let g = random_uniform(8, 10, 32, 2, 2, seed);
            for params in [
                FairParams::unchecked(1, 1, 1),
                FairParams::unchecked(2, 1, 0),
                FairParams::unchecked(2, 2, 1),
                FairParams::unchecked(1, 0, 3),
            ] {
                let want = oracle_ssfbc(&g, params);
                for order in [VertexOrder::IdAsc, VertexOrder::DegreeDesc] {
                    let got = run(&g, params, order);
                    assert_eq!(got, want, "seed {seed} params {params} order {order:?}");
                }
            }
        }
    }

    #[test]
    fn budget_abort_returns_subset() {
        let g = random_uniform(10, 12, 60, 2, 2, 5);
        let params = FairParams::unchecked(1, 1, 2);
        let mut full = CollectSink::default();
        fairbcem_on_pruned(&g, params, VertexOrder::IdAsc, Budget::UNLIMITED, &mut full);
        let mut capped = CollectSink::default();
        let stats = fairbcem_on_pruned(
            &g,
            params,
            VertexOrder::IdAsc,
            Budget::nodes(10),
            &mut capped,
        );
        assert!(stats.aborted);
        assert!(stats.nodes <= 11);
        let full_set: BTreeSet<_> = full.bicliques.into_iter().collect();
        for b in capped.bicliques {
            assert!(full_set.contains(&b));
        }
    }

    #[test]
    fn empty_graph_yields_nothing() {
        let g = GraphBuilder::new(2, 2).build().unwrap();
        let got = run(&g, FairParams::unchecked(1, 1, 1), VertexOrder::IdAsc);
        assert!(got.is_empty());
    }

    #[test]
    fn single_attribute_domain() {
        // One attribute value: fairness degenerates to |R| >= beta.
        let mut b = GraphBuilder::new(1, 1);
        for u in 0..3 {
            for v in 0..3 {
                if u != v {
                    b.add_edge(u, v);
                }
            }
        }
        let g = b.build().unwrap();
        let params = FairParams::unchecked(1, 2, 0);
        let want = oracle_ssfbc(&g, params);
        let got = run(&g, params, VertexOrder::DegreeDesc);
        assert_eq!(got, want);
        assert!(!got.is_empty());
    }

    #[test]
    fn observation2_kills_branches() {
        // A graph where every lower vertex is fully connected: the
        // first top-level branch absorbs everything (Observation 4);
        // later branches still recurse while only one attribute has a
        // fully-connected Q witness, but as soon as both attributes
        // are covered Observation 2 kills the subtree — keeping the
        // node count far below the 2^8 subset tree.
        let mut b = GraphBuilder::new(2, 2);
        for u in 0..4 {
            for v in 0..8 {
                b.add_edge(u, v);
            }
        }
        b.set_attrs_upper(&[0, 1, 0, 1]);
        b.set_attrs_lower(&[0, 0, 0, 0, 1, 1, 1, 1]);
        let g = b.build().unwrap();
        let mut sink = CollectSink::default();
        let stats = fairbcem_on_pruned(
            &g,
            FairParams::unchecked(2, 2, 0),
            VertexOrder::IdAsc,
            Budget::UNLIMITED,
            &mut sink,
        );
        assert_eq!(sink.bicliques.len(), 1, "single balanced block");
        assert!(
            stats.nodes < 128,
            "observations 2/4 must keep the tree well below 2^8, got {} nodes",
            stats.nodes
        );
    }

    #[test]
    fn observation5_beta_bound_prunes() {
        // With beta larger than any attribute's reachable count the
        // search must terminate after the first level (no recursion
        // can satisfy beta).
        let g = random_uniform(10, 10, 40, 2, 2, 2);
        let mut sink = CollectSink::default();
        let stats = fairbcem_on_pruned(
            &g,
            FairParams::unchecked(1, 20, 0),
            VertexOrder::IdAsc,
            Budget::UNLIMITED,
            &mut sink,
        );
        assert!(sink.bicliques.is_empty());
        assert!(
            stats.nodes <= 10,
            "beta bound must cut depth, got {}",
            stats.nodes
        );
    }

    #[test]
    fn emission_requires_alpha() {
        // alpha larger than |U| -> nothing, few nodes.
        let g = random_uniform(5, 8, 25, 2, 2, 6);
        let mut sink = CollectSink::default();
        let stats = fairbcem_on_pruned(
            &g,
            FairParams::unchecked(6, 1, 1),
            VertexOrder::DegreeDesc,
            Budget::UNLIMITED,
            &mut sink,
        );
        assert!(sink.bicliques.is_empty());
        assert!(stats.nodes <= 8);
    }

    #[test]
    fn stats_track_nodes_and_bytes() {
        let g = random_uniform(10, 10, 50, 2, 2, 8);
        let mut sink = CollectSink::default();
        let stats = fairbcem_on_pruned(
            &g,
            FairParams::unchecked(1, 1, 1),
            VertexOrder::DegreeDesc,
            Budget::UNLIMITED,
            &mut sink,
        );
        assert!(stats.nodes >= 10);
        assert!(!sink.bicliques.is_empty());
    }
}
