//! `branch-state-clone` — the walkers' branch state is cloned only at
//! task-split points.
//!
//! # Rationale
//!
//! The enumeration walkers keep one mutable `(L, R, P, Q)` branch
//! state per recursion *level* in pooled, undo-restored frames, which
//! makes the steady-state walk allocation-free (see the README's
//! "Branch state & memory model"). That property is easy to lose: a
//! single `.clone()` / `.to_vec()` of a branch set inside a branch
//! body reintroduces a per-node allocation, and on deep skewed
//! instances the walk regresses from "allocates nothing" to "allocates
//! `O(depth · width)` per node" without any test failing — the output
//! is still correct, only the perf trajectory silently decays.
//!
//! The one place branch state legitimately becomes an owned copy is
//! the copy-on-steal snapshot at a task-split point
//! (`BranchTask::snapshot`): the parallel engine needs an immutable,
//! exactly-serial `(L, R, P, Q)` payload there, and nowhere else.
//!
//! The rule therefore forbids, in non-test code of the four walker
//! files, `.clone()` / `.to_vec()` whose receiver is a branch-state
//! set (`l`, `r`, `p`, `q`, `nl` — bare or as a field), except inside
//! the body of a `fn snapshot` (the blessed split-point helper).
//! Scratch state with distinct names (`r_counts`, `budget`, …) is not
//! matched. Suppress a deliberate site with
//! `// fbe-lint: allow(branch-state-clone): <reason>`.

use crate::findings::Finding;
use crate::rules::{is_ident, token_positions};
use crate::walk::{Analysis, SourceFile};

/// Rule identifier.
pub const NAME: &str = "branch-state-clone";

/// The walker files holding branch-state hot loops.
const SCOPES: &[&str] = &[
    "crates/core/src/mbea.rs",
    "crates/core/src/fairbcem_pp.rs",
    "crates/core/src/bfairbcem.rs",
    "crates/core/src/proportion.rs",
];

/// Identifiers that name branch-state sets in the walkers.
const BRANCH_SETS: &[&str] = &["l", "r", "p", "q", "nl"];

/// The cloning calls the rule polices.
const CLONE_TOKENS: &[&str] = &[".clone()", ".to_vec()"];

/// Per-line mask: true inside the body (signature through closing
/// brace) of any `fn snapshot` — the blessed copy-on-steal helper.
fn snapshot_mask(file: &SourceFile) -> Vec<bool> {
    let mut mask = vec![false; file.scrub.lines.len()];
    let mut inside = false;
    let mut depth: i64 = 0;
    let mut seen_brace = false;
    for (idx, line) in file.scrub.lines.iter().enumerate() {
        if !inside && !token_positions(&line.code, "fn snapshot").is_empty() {
            inside = true;
            depth = 0;
            seen_brace = false;
        }
        if inside {
            mask[idx] = true;
            for c in line.code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        seen_brace = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if seen_brace && depth <= 0 {
                inside = false;
            }
        }
    }
    mask
}

/// The identifier directly preceding byte `at` in `code`, if any
/// (`"x.q.to_vec()"` at the token start yields `"q"`).
fn receiver_ident(code: &str, at: usize) -> &str {
    let head = &code[..at];
    let start = head
        .char_indices()
        .rev()
        .take_while(|&(_, c)| is_ident(c))
        .last()
        .map_or(at, |(i, _)| i);
    &head[start..]
}

/// Run the rule.
pub fn check(analysis: &Analysis, findings: &mut Vec<Finding>) {
    for file in &analysis.files {
        if !SCOPES.contains(&file.path.as_str()) {
            continue;
        }
        let blessed = snapshot_mask(file);
        for (idx, line) in file.scrub.lines.iter().enumerate() {
            let lineno = idx + 1;
            if file.in_test(lineno) || blessed.get(idx).copied() == Some(true) {
                continue;
            }
            for tok in CLONE_TOKENS {
                for at in token_positions(&line.code, tok) {
                    let recv = receiver_ident(&line.code, at);
                    if BRANCH_SETS.contains(&recv) {
                        findings.push(Finding::new(
                            NAME,
                            &file.path,
                            lineno,
                            format!(
                                "`{recv}{tok}` clones branch state inside a walker \
                                 branch body: mutate the pooled frame in place and \
                                 restore on backtrack; owned copies are allowed \
                                 only in the split-point `snapshot` helper"
                            ),
                        ));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn receiver_extraction() {
        let code = "let a = q.to_vec();";
        let at = code.find(".to_vec()").unwrap();
        assert_eq!(receiver_ident(code, at), "q");
        let code = "l: self.nl.clone(),";
        let at = code.find(".clone()").unwrap();
        assert_eq!(receiver_ident(code, at), "nl");
        let code = "r_counts.clone()";
        let at = code.find(".clone()").unwrap();
        assert_eq!(receiver_ident(code, at), "r_counts");
        // No receiver at all.
        assert_eq!(receiver_ident(".clone()", 0), "");
    }

    #[test]
    fn snapshot_mask_tracks_braces() {
        let src = "\
fn a() {}\n\
pub(crate) fn snapshot(\n\
    l: &[u32],\n\
) -> Vec<u32> {\n\
    l.to_vec()\n\
}\n\
fn b() {}\n";
        let f = SourceFile::parse("crates/core/src/mbea.rs", src);
        let mask = snapshot_mask(&f);
        assert_eq!(mask, vec![false, true, true, true, true, true, false]);
    }
}
