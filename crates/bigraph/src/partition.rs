//! Sharding the enumeration workload over connected components of the
//! pruned 2-hop structure.
//!
//! Observation 1 of the paper makes the fair side of every single-side
//! fair biclique a clique in the 2-hop projection
//! ([`crate::twohop::construct_2hop`] at the query's `α`): any two
//! fair-side members share the whole (≥ α)-sized non-fair side. A
//! clique never spans two connected components, so the enumeration
//! workload decomposes *exactly* along those components — no fair
//! biclique crosses a component boundary, and the union of per-
//! component enumerations is the whole-graph result set with no
//! duplicates. (The bi-side 2-hop of Definition 4 is a subgraph of the
//! single-side projection, so the same components are valid — merely
//! coarser — for the bi-side models too.)
//!
//! At `α = 1` the projection's components coincide with the connected
//! components of the bipartite graph itself, which makes the
//! decomposition exact for *every* model and parameter choice (a
//! biclique is connected, and `α ≥ 1` always holds). Sharding at a
//! larger `α` decomposes finer but is exact only for queries whose
//! `α` is at least the shard `α`.
//!
//! [`plan_shards`] labels the components and bin-packs them into `k`
//! size-balanced shards (greedy longest-processing-time by incident
//! bipartite edge count — deterministic, so independent processes
//! sharding the same graph agree without coordination).
//! [`shard_edges`] materializes one shard as a same-id-space subgraph:
//! all vertices are kept, only the shard's edges survive, so
//! enumeration results come out in *parent* vertex ids and per-shard
//! result streams merge without any translation. [`shard_induced`]
//! is the compacted variant for callers that want dense ids.

use crate::builder::GraphBuilder;
use crate::graph::{BipartiteGraph, Side, VertexId};
use crate::subgraph::{induce, InducedSubgraph};
use crate::twohop::construct_2hop;
use crate::unigraph::UniGraph;

/// Shard label of fair-side vertices that belong to no shard (isolated
/// vertices with no bipartite edge: they can join no biclique).
pub const UNASSIGNED: u32 = u32::MAX;

/// A deterministic assignment of 2-hop components to shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// The fair side the 2-hop structure was projected from.
    pub fair_side: Side,
    /// The common-neighbor threshold the projection used.
    pub alpha: usize,
    /// Number of shards planned (some may be empty when the component
    /// count is below `k`).
    pub shards: usize,
    /// Number of connected components packed (excluding edgeless
    /// vertices).
    pub n_components: usize,
    /// `assignment[v]` is the shard of fair-side vertex `v`, or
    /// [`UNASSIGNED`] for edgeless vertices.
    pub assignment: Vec<u32>,
    /// Total incident bipartite edges per shard (the balance weight).
    pub shard_weights: Vec<u64>,
}

impl ShardPlan {
    /// Shard of fair-side vertex `v` (`None` for edgeless vertices).
    pub fn shard_of(&self, v: VertexId) -> Option<usize> {
        match self.assignment.get(v as usize) {
            Some(&s) if s != UNASSIGNED => Some(s as usize),
            _ => None,
        }
    }
}

/// Label the connected components of `h`: returns `(labels, count)`
/// with labels dense in `0..count`, numbered in order of their
/// smallest vertex id (deterministic).
pub fn connected_components(h: &UniGraph) -> (Vec<u32>, usize) {
    let n = h.n();
    let mut label = vec![UNASSIGNED; n];
    let mut next = 0u32;
    let mut stack: Vec<VertexId> = Vec::new();
    for v in 0..n as VertexId {
        if label[v as usize] != UNASSIGNED {
            continue;
        }
        label[v as usize] = next;
        stack.push(v);
        while let Some(x) = stack.pop() {
            for &y in h.neighbors(x) {
                if label[y as usize] == UNASSIGNED {
                    label[y as usize] = next;
                    stack.push(y);
                }
            }
        }
        next += 1;
    }
    (label, next as usize)
}

/// Plan a `k`-way sharding of `g` along the connected components of
/// the `α`-threshold 2-hop projection of `fair_side`.
///
/// Exactness: every fair biclique whose query `α` is at least this
/// `alpha` lies entirely inside one shard (see the module docs); with
/// `alpha = 1` that covers every model and parameter choice.
/// Edgeless fair-side vertices are left [`UNASSIGNED`] — they cannot
/// join any biclique (`α ≥ 1` forces a non-empty other side).
///
/// Deterministic in `(g, fair_side, alpha, k)`: components are packed
/// largest-first (by incident bipartite edge count, ties by smallest
/// vertex id) onto the currently lightest shard (ties by lowest shard
/// index), so independent processes agree on the same plan.
pub fn plan_shards(g: &BipartiteGraph, fair_side: Side, alpha: usize, k: usize) -> ShardPlan {
    let k = k.max(1);
    let h = construct_2hop(g, fair_side, alpha.max(1));
    let (labels, raw_count) = connected_components(&h);

    // Weight per raw component = incident bipartite edges; drop the
    // edgeless singletons entirely.
    let n = g.n(fair_side);
    let mut weight = vec![0u64; raw_count];
    let mut min_vertex = vec![VertexId::MAX; raw_count];
    for v in 0..n as VertexId {
        let d = g.degree(fair_side, v) as u64;
        if d == 0 {
            continue;
        }
        let c = labels[v as usize] as usize;
        weight[c] += d;
        min_vertex[c] = min_vertex[c].min(v);
    }
    let mut comps: Vec<usize> = (0..raw_count).filter(|&c| weight[c] > 0).collect();
    comps.sort_by_key(|&c| (std::cmp::Reverse(weight[c]), min_vertex[c]));

    // Longest-processing-time greedy: largest component onto the
    // currently lightest shard.
    let mut shard_weights = vec![0u64; k];
    let mut comp_shard = vec![UNASSIGNED; raw_count];
    for &c in &comps {
        let lightest = shard_weights
            .iter()
            .enumerate()
            .min_by_key(|&(i, &w)| (w, i))
            .map(|(i, _)| i)
            .unwrap_or(0);
        comp_shard[c] = lightest as u32;
        shard_weights[lightest] += weight[c];
    }

    let assignment = (0..n)
        .map(|v| {
            if g.degree(fair_side, v as VertexId) == 0 {
                UNASSIGNED
            } else {
                comp_shard[labels[v] as usize]
            }
        })
        .collect();
    ShardPlan {
        fair_side,
        alpha: alpha.max(1),
        shards: k,
        n_components: comps.len(),
        assignment,
        shard_weights,
    }
}

/// Materialize shard `shard` of `plan` as a subgraph of `g` in the
/// *same vertex-id space*: every vertex is kept (possibly isolated),
/// and an edge survives iff its fair-side endpoint is assigned to
/// `shard`. Enumeration on the result therefore reports parent ids
/// directly, so per-shard result streams merge with no translation —
/// and the edge sets of the `k` shards partition `E(g)` exactly.
pub fn shard_edges(g: &BipartiteGraph, plan: &ShardPlan, shard: usize) -> BipartiteGraph {
    assert_eq!(
        plan.assignment.len(),
        g.n(plan.fair_side),
        "plan was built for a graph with a different fair side size"
    );
    let want = shard as u32;
    let mut b = GraphBuilder::new(g.n_attr_values(Side::Upper), g.n_attr_values(Side::Lower));
    b.ensure_vertices(g.n_upper(), g.n_lower());
    for (u, v) in g.edges() {
        let fair = match plan.fair_side {
            Side::Upper => u,
            Side::Lower => v,
        };
        if plan.assignment[fair as usize] == want {
            b.add_edge(u, v);
        }
    }
    b.set_attrs_upper(g.attrs(Side::Upper));
    b.set_attrs_lower(g.attrs(Side::Lower));
    b.build().expect("shard subgraphs are valid")
}

/// Compacted variant of [`shard_edges`]: keep only the shard's
/// fair-side vertices plus their bipartite neighborhood, with dense
/// ids and the maps back to the parent graph.
pub fn shard_induced(g: &BipartiteGraph, plan: &ShardPlan, shard: usize) -> InducedSubgraph {
    assert_eq!(
        plan.assignment.len(),
        g.n(plan.fair_side),
        "plan was built for a graph with a different fair side size"
    );
    let want = shard as u32;
    let n_fair = g.n(plan.fair_side);
    let n_other = g.n(plan.fair_side.other());
    let mut keep_fair = vec![false; n_fair];
    let mut keep_other = vec![false; n_other];
    for v in 0..n_fair as VertexId {
        if plan.assignment[v as usize] == want {
            keep_fair[v as usize] = true;
            for &u in g.neighbors(plan.fair_side, v) {
                keep_other[u as usize] = true;
            }
        }
    }
    match plan.fair_side {
        Side::Lower => induce(g, &keep_other, &keep_fair),
        Side::Upper => induce(g, &keep_fair, &keep_other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::random_uniform;
    use crate::intersect_sorted_count;

    fn toy_two_islands() -> BipartiteGraph {
        // Two bipartite islands: {u0,u1}×{v0,v1,v2} and {u2,u3}×{v3,v4}.
        let mut b = GraphBuilder::new(2, 2);
        for (u, v) in [(0, 0), (0, 1), (1, 1), (1, 2), (2, 3), (3, 3), (3, 4)] {
            b.add_edge(u, v);
        }
        // One isolated lower vertex v5.
        b.ensure_vertices(4, 6);
        b.set_attrs_upper(&[0, 1, 0, 1]);
        b.set_attrs_lower(&[0, 1, 0, 1, 0, 1]);
        b.build().unwrap()
    }

    #[test]
    fn components_match_bruteforce() {
        let g = random_uniform(15, 25, 90, 2, 2, 5);
        let h = construct_2hop(&g, Side::Lower, 2);
        let (labels, count) = connected_components(&h);
        assert_eq!(labels.len(), h.n());
        assert!(count >= 1);
        // Same-component iff connected (brute-force reachability).
        for x in 0..h.n() as VertexId {
            for &y in h.neighbors(x) {
                assert_eq!(labels[x as usize], labels[y as usize]);
            }
        }
        // Labels are dense and numbered by smallest member.
        let mut firsts = vec![None; count];
        for (v, &l) in labels.iter().enumerate() {
            firsts[l as usize].get_or_insert(v);
        }
        let firsts: Vec<usize> = firsts.into_iter().map(|f| f.unwrap()).collect();
        assert!(firsts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn islands_never_share_a_shard_partner_across_components() {
        let g = toy_two_islands();
        let plan = plan_shards(&g, Side::Lower, 1, 2);
        assert_eq!(plan.n_components, 2);
        // Each island is one component; the isolated v5 is unassigned.
        assert_eq!(plan.shard_of(5), None);
        let island_a = plan.shard_of(0).unwrap();
        assert_eq!(plan.shard_of(1), Some(island_a));
        assert_eq!(plan.shard_of(2), Some(island_a));
        let island_b = plan.shard_of(3).unwrap();
        assert_eq!(plan.shard_of(4), Some(island_b));
        assert_ne!(island_a, island_b, "two islands, two shards");
        // Weights: island A has 4 incident edges, island B has 3.
        assert_eq!(plan.shard_weights[island_a], 4);
        assert_eq!(plan.shard_weights[island_b], 3);
    }

    #[test]
    fn twohop_edges_never_cross_shards() {
        let g = random_uniform(20, 30, 140, 2, 2, 11);
        for alpha in [1usize, 2, 3] {
            let h = construct_2hop(&g, Side::Lower, alpha);
            for k in [1usize, 2, 3, 5] {
                let plan = plan_shards(&g, Side::Lower, alpha, k);
                for x in 0..h.n() as VertexId {
                    for &y in h.neighbors(x) {
                        assert_eq!(
                            plan.assignment[x as usize], plan.assignment[y as usize],
                            "α={alpha} k={k}: 2-hop edge ({x},{y}) split across shards"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fair_pairs_with_alpha_common_neighbors_stay_together() {
        // The exactness invariant behind the whole design: any two
        // fair-side vertices that could co-occur in a fair biclique at
        // the plan's α (≥ α common neighbors) are in the same shard.
        let g = random_uniform(18, 24, 160, 2, 2, 23);
        for alpha in [1usize, 2] {
            let plan = plan_shards(&g, Side::Lower, alpha, 3);
            for x in 0..g.n_lower() as VertexId {
                for y in (x + 1)..g.n_lower() as VertexId {
                    let common = intersect_sorted_count(
                        g.neighbors(Side::Lower, x),
                        g.neighbors(Side::Lower, y),
                    );
                    if common >= alpha {
                        assert_eq!(
                            plan.assignment[x as usize], plan.assignment[y as usize],
                            "α={alpha}: pair ({x},{y}) shares {common} neighbors but is split"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn shard_edge_sets_partition_the_graph() {
        let g = random_uniform(20, 30, 140, 3, 2, 9);
        for k in [1usize, 2, 4] {
            let plan = plan_shards(&g, Side::Lower, 1, k);
            let shards: Vec<BipartiteGraph> = (0..k).map(|i| shard_edges(&g, &plan, i)).collect();
            // Same id space and attributes everywhere.
            for s in &shards {
                assert_eq!(s.n_upper(), g.n_upper());
                assert_eq!(s.n_lower(), g.n_lower());
                assert_eq!(s.attrs(Side::Upper), g.attrs(Side::Upper));
                assert_eq!(s.attrs(Side::Lower), g.attrs(Side::Lower));
                s.validate().unwrap();
            }
            // Every parent edge lands in exactly one shard.
            let total: usize = shards.iter().map(|s| s.n_edges()).sum();
            assert_eq!(total, g.n_edges(), "k={k}");
            for (u, v) in g.edges() {
                let holders = shards.iter().filter(|s| s.has_edge(u, v)).count();
                assert_eq!(holders, 1, "edge ({u},{v}) in {holders} shards");
            }
            // Reported weights match materialized edge counts.
            for (i, s) in shards.iter().enumerate() {
                assert_eq!(plan.shard_weights[i], s.n_edges() as u64, "k={k} shard {i}");
            }
        }
    }

    #[test]
    fn planning_is_deterministic_and_balances() {
        let g = random_uniform(40, 60, 400, 2, 2, 3);
        let a = plan_shards(&g, Side::Lower, 1, 4);
        let b = plan_shards(&g, Side::Lower, 1, 4);
        assert_eq!(a, b);
        // LPT bound: no shard exceeds the mean by more than the
        // largest component's weight.
        let max_comp = {
            let h = construct_2hop(&g, Side::Lower, 1);
            let (labels, count) = connected_components(&h);
            let mut w = vec![0u64; count];
            for v in 0..g.n_lower() as VertexId {
                w[labels[v as usize] as usize] += g.degree(Side::Lower, v) as u64;
            }
            w.into_iter().max().unwrap_or(0)
        };
        let total: u64 = a.shard_weights.iter().sum();
        assert_eq!(total, g.n_edges() as u64);
        let mean = total / 4;
        for &w in &a.shard_weights {
            assert!(w <= mean + max_comp, "w={w} mean={mean} max={max_comp}");
        }
    }

    #[test]
    fn more_shards_than_components_leaves_empties() {
        let g = toy_two_islands();
        let plan = plan_shards(&g, Side::Lower, 1, 5);
        assert_eq!(plan.shards, 5);
        assert_eq!(plan.n_components, 2);
        let empty = plan.shard_weights.iter().filter(|&&w| w == 0).count();
        assert_eq!(empty, 3);
        for i in 0..5 {
            let s = shard_edges(&g, &plan, i);
            assert_eq!(s.n_edges() as u64, plan.shard_weights[i]);
        }
    }

    #[test]
    fn induced_shard_matches_edge_shard() {
        let g = random_uniform(16, 22, 110, 2, 2, 17);
        let plan = plan_shards(&g, Side::Lower, 2, 3);
        for i in 0..3 {
            let flat = shard_edges(&g, &plan, i);
            let sub = shard_induced(&g, &plan, i);
            sub.graph.validate().unwrap();
            assert_eq!(sub.graph.n_edges(), flat.n_edges(), "shard {i}");
            for (u, v) in sub.graph.edges() {
                let (pu, pv) = (sub.to_parent(Side::Upper, u), sub.to_parent(Side::Lower, v));
                assert!(flat.has_edge(pu, pv), "shard {i}: edge ({pu},{pv})");
            }
        }
    }

    #[test]
    fn upper_fair_side_plans_too() {
        let g = random_uniform(25, 15, 120, 2, 2, 29);
        let plan = plan_shards(&g, Side::Upper, 1, 2);
        assert_eq!(plan.assignment.len(), g.n_upper());
        let total: u64 = plan.shard_weights.iter().sum();
        assert_eq!(total, g.n_edges() as u64);
        let s0 = shard_edges(&g, &plan, 0);
        let s1 = shard_edges(&g, &plan, 1);
        assert_eq!(s0.n_edges() + s1.n_edges(), g.n_edges());
    }
}
