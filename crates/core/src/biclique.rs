//! Biclique results, result sinks, and enumeration statistics.

use bigraph::VertexId;
use serde::{Deserialize, Serialize};

/// One biclique `(L ⊆ U, R ⊆ V)`; both sides sorted ascending.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Biclique {
    /// Upper-side vertices (`L`), sorted ascending.
    pub upper: Vec<VertexId>,
    /// Lower-side vertices (`R`), sorted ascending.
    pub lower: Vec<VertexId>,
}

impl Biclique {
    /// Construct from unsorted sides.
    pub fn new(mut upper: Vec<VertexId>, mut lower: Vec<VertexId>) -> Self {
        upper.sort_unstable();
        lower.sort_unstable();
        Biclique { upper, lower }
    }

    /// Total number of vertices.
    pub fn len(&self) -> usize {
        self.upper.len() + self.lower.len()
    }

    /// True when both sides are empty.
    pub fn is_empty(&self) -> bool {
        self.upper.is_empty() && self.lower.is_empty()
    }
}

impl std::fmt::Display for Biclique {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L={:?} R={:?}", self.upper, self.lower)
    }
}

/// Receives bicliques as the enumerators discover them.
///
/// Enumerators hand over *borrowed, sorted* slices so counting sinks pay
/// no allocation. Sinks must not assume any discovery order.
pub trait BicliqueSink {
    /// One result. `upper`/`lower` are sorted ascending.
    fn emit(&mut self, upper: &[VertexId], lower: &[VertexId]);
}

/// Counts results without storing them.
#[derive(Debug, Default, Clone)]
pub struct CountSink {
    /// Number of bicliques emitted.
    pub count: u64,
}

impl BicliqueSink for CountSink {
    #[inline]
    fn emit(&mut self, _upper: &[VertexId], _lower: &[VertexId]) {
        self.count += 1;
    }
}

/// Collects results into a vector.
#[derive(Debug, Default, Clone)]
pub struct CollectSink {
    /// Collected bicliques in discovery order.
    pub bicliques: Vec<Biclique>,
}

impl BicliqueSink for CollectSink {
    fn emit(&mut self, upper: &[VertexId], lower: &[VertexId]) {
        self.bicliques.push(Biclique {
            upper: upper.to_vec(),
            lower: lower.to_vec(),
        });
    }
}

/// Forwards results after translating pruned-subgraph ids back to the
/// parent graph's ids (the enumerators run on compacted pruned graphs).
pub struct MappingSink<'a, S: BicliqueSink + ?Sized> {
    upper_map: &'a [VertexId],
    lower_map: &'a [VertexId],
    inner: &'a mut S,
    upper_buf: Vec<VertexId>,
    lower_buf: Vec<VertexId>,
}

impl<'a, S: BicliqueSink + ?Sized> MappingSink<'a, S> {
    /// Wrap `inner` with `new_id -> parent_id` maps for both sides.
    pub fn new(upper_map: &'a [VertexId], lower_map: &'a [VertexId], inner: &'a mut S) -> Self {
        MappingSink {
            upper_map,
            lower_map,
            inner,
            upper_buf: Vec::new(),
            lower_buf: Vec::new(),
        }
    }
}

impl<S: BicliqueSink + ?Sized> BicliqueSink for MappingSink<'_, S> {
    fn emit(&mut self, upper: &[VertexId], lower: &[VertexId]) {
        self.upper_buf.clear();
        self.upper_buf
            .extend(upper.iter().map(|&v| self.upper_map[v as usize]));
        self.upper_buf.sort_unstable();
        self.lower_buf.clear();
        self.lower_buf
            .extend(lower.iter().map(|&v| self.lower_map[v as usize]));
        self.lower_buf.sort_unstable();
        self.inner.emit(&self.upper_buf, &self.lower_buf);
    }
}

/// Keeps only the `k` largest bicliques seen (by total vertex count,
/// ties broken lexicographically — largest vertex sets win).
///
/// Retention depends only on the *set* of emissions, never their
/// order, so serial runs, parallel per-worker sinks, and merges of
/// either all retain the same `k` results (the parallel engine's
/// discovery order is nondeterministic; an arrival-order tie-break
/// would make `--top` output flap across runs).
///
/// Useful for the case studies, where millions of fair bicliques exist
/// but only the most substantial few are displayed.
#[derive(Debug, Clone)]
pub struct TopKSink {
    k: usize,
    /// Total number of bicliques seen (not just the retained ones).
    pub seen: u64,
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(usize, Biclique)>>,
}

impl TopKSink {
    /// Retain the `k` largest results.
    pub fn new(k: usize) -> Self {
        TopKSink {
            k,
            seen: 0,
            heap: std::collections::BinaryHeap::new(),
        }
    }

    /// The retained bicliques, largest first.
    pub fn into_sorted(self) -> Vec<Biclique> {
        let mut v: Vec<(usize, Biclique)> = self
            .heap
            .into_iter()
            .map(|std::cmp::Reverse(x)| x)
            .collect();
        v.sort_by(|a, b| b.cmp(a));
        v.into_iter().map(|(_, bc)| bc).collect()
    }
}

impl BicliqueSink for TopKSink {
    fn emit(&mut self, upper: &[VertexId], lower: &[VertexId]) {
        self.seen += 1;
        if self.k == 0 {
            return;
        }
        let size = upper.len() + lower.len();
        if self.heap.len() < self.k {
            self.heap.push(std::cmp::Reverse((
                size,
                Biclique {
                    upper: upper.to_vec(),
                    lower: lower.to_vec(),
                },
            )));
        } else if let Some(std::cmp::Reverse((min_size, min_bc))) = self.heap.peek() {
            // Full (size, sets) comparison: the retained set is the
            // true top-k under a total order, independent of emission
            // order (ties on size resolve lexicographically).
            if (size, upper, lower) > (*min_size, min_bc.upper.as_slice(), min_bc.lower.as_slice())
            {
                self.heap.pop();
                self.heap.push(std::cmp::Reverse((
                    size,
                    Biclique {
                        upper: upper.to_vec(),
                        lower: lower.to_vec(),
                    },
                )));
            }
        }
    }
}

/// Statistics of one enumeration run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnumStats {
    /// Search-tree nodes visited.
    pub nodes: u64,
    /// Results emitted.
    pub emitted: u64,
    /// True when the run hit its [`crate::config::Budget`] and aborted;
    /// results are then a (correct) subset.
    pub aborted: bool,
    /// Which limit stopped the run first (`None` when it ran to
    /// completion); set whenever `aborted` is.
    pub stop: Option<crate::config::StopReason>,
    /// Rough peak heap bytes attributable to the search state (graph
    /// storage excluded, matching the paper's Exp-6 protocol).
    pub peak_search_bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn biclique_sorts() {
        let b = Biclique::new(vec![3, 1], vec![2, 0]);
        assert_eq!(b.upper, vec![1, 3]);
        assert_eq!(b.lower, vec![0, 2]);
        assert_eq!(b.len(), 4);
        assert!(!b.is_empty());
        assert!(Biclique::new(vec![], vec![]).is_empty());
        assert!(b.to_string().contains("L=[1, 3]"));
    }

    #[test]
    fn sinks_count_and_collect() {
        let mut c = CountSink::default();
        c.emit(&[0], &[1]);
        c.emit(&[0], &[2]);
        assert_eq!(c.count, 2);

        let mut v = CollectSink::default();
        v.emit(&[0, 1], &[2]);
        assert_eq!(v.bicliques, vec![Biclique::new(vec![0, 1], vec![2])]);
    }

    #[test]
    fn topk_sink_keeps_largest() {
        let mut t = TopKSink::new(2);
        t.emit(&[0], &[0]); // size 2
        t.emit(&[0, 1, 2], &[0, 1]); // size 5
        t.emit(&[0, 1], &[0, 1]); // size 4
        t.emit(&[9], &[9, 10]); // size 3
        assert_eq!(t.seen, 4);
        let top = t.into_sorted();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].len(), 5);
        assert_eq!(top[1].len(), 4);
    }

    #[test]
    fn topk_sink_zero_k() {
        let mut t = TopKSink::new(0);
        t.emit(&[0], &[0]);
        assert_eq!(t.seen, 1);
        assert!(t.into_sorted().is_empty());
    }

    #[test]
    fn mapping_sink_translates_and_sorts() {
        let upper_map = vec![10, 5, 7];
        let lower_map = vec![100, 50];
        let mut inner = CollectSink::default();
        {
            let mut m = MappingSink::new(&upper_map, &lower_map, &mut inner);
            m.emit(&[0, 1, 2], &[1, 0]);
        }
        assert_eq!(
            inner.bicliques,
            vec![Biclique::new(vec![5, 7, 10], vec![50, 100])]
        );
    }
}
