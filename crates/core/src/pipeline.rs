//! End-to-end drivers: pruning → enumeration → id remapping.
//!
//! The enumerators in the sibling modules operate on compacted pruned
//! graphs; the functions here compose the paper's full pipelines and
//! translate results back to the caller's vertex ids.

use crate::bfairbcem::{bfairbcem_on_pruned_with, bfairbcem_pp_on_pruned_with};
use crate::bfcore::{bcfcore_rec, bfcore_ctl};
use crate::biclique::{Biclique, BicliqueSink, EnumStats, MappingSink};
use crate::cfcore::cfcore_rec;
use crate::config::{FairParams, PrepareCtl, ProParams, PruneKind, RunConfig, StopReason};
use crate::fairbcem::fairbcem_on_pruned;
use crate::fairbcem_pp::fairbcem_pp_on_pruned_with;
use crate::fcore::{fcore_ctl, no_prune, PruneOutcome, PruneStats};
use crate::naive::{bnsf_on_pruned, nsf_on_pruned};
use crate::obs::SpanRecorder;
use crate::proportion::{bfairbcem_pro_pp_on_pruned_with, fairbcem_pro_pp_on_pruned_with};
use bigraph::BipartiteGraph;
use serde::{Deserialize, Serialize};

/// Which single-side enumeration algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SsAlgorithm {
    /// Naive baseline (`NSF`).
    Nsf,
    /// Branch-and-bound (`FairBCEM`, Algorithm 5).
    FairBcem,
    /// Combinatorial (`FairBCEM++`, Algorithm 6) — the paper's best.
    #[default]
    FairBcemPP,
}

/// Which bi-side enumeration algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BiAlgorithm {
    /// Naive baseline (`BNSF`).
    Bnsf,
    /// `BFairBCEM` (Algorithm 9 over `FairBCEM`).
    BFairBcem,
    /// `BFairBCEM++` (Algorithm 9 over `FairBCEM++`) — the paper's best.
    #[default]
    BFairBcemPP,
}

/// Result of a collected enumeration run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The fair bicliques, in the original graph's vertex ids.
    /// Discovery order, unless the run's [`RunConfig::sorted`] put
    /// them in [`crate::results::canonical_order`].
    pub bicliques: Vec<Biclique>,
    /// Pruning statistics.
    pub prune: PruneStats,
    /// Search statistics (parallel runs merge per-worker stats; see
    /// [`crate::parallel`]).
    pub stats: EnumStats,
    /// Worker threads the run was configured with (1 = serial; the
    /// engine may clamp the spawned count to the available work).
    pub threads: usize,
    /// Which budget limit cut the run short (`None` when it ran to
    /// completion): node cap, deadline, result cap, or cooperative
    /// cancellation. Equal to `stats.stop`.
    pub truncated_by: Option<crate::config::StopReason>,
    /// End-to-end wall-clock time of this run (preparation —
    /// possibly amortized from a cached plan — plus enumeration).
    pub elapsed: std::time::Duration,
    /// Wall-clock time of the preparation phases: pruning (including
    /// the colorful core's 2-hop/coloring work) and candidate-plan
    /// construction. When the run executed a cached
    /// [`crate::prepared::PreparedQuery`], this is the *original*
    /// (amortized) preparation cost, not time spent by this call.
    pub prune_elapsed: std::time::Duration,
    /// Wall-clock time of the enumeration phase alone.
    pub enumerate_elapsed: std::time::Duration,
}

/// Run the pruning stage configured for a single-side problem.
pub fn prune_single_side(g: &BipartiteGraph, params: FairParams, kind: PruneKind) -> PruneOutcome {
    prune_single_side_ctl(g, params, kind, &PrepareCtl::UNBOUNDED)
        .expect("unbounded prepare is never interrupted")
}

/// [`prune_single_side`] with cooperative interruption: the prune
/// cascade probes `ctl` at stage boundaries and (counter-gated) inside
/// the peel loops, aborting with the interrupting [`StopReason`].
pub fn prune_single_side_ctl(
    g: &BipartiteGraph,
    params: FairParams,
    kind: PruneKind,
    ctl: &PrepareCtl,
) -> Result<PruneOutcome, StopReason> {
    prune_single_side_rec(g, params, kind, ctl, &mut SpanRecorder::disabled())
}

/// [`prune_single_side_ctl`] with a [`SpanRecorder`] attributing wall
/// time to the prune stages. A disabled recorder makes this identical
/// to [`prune_single_side_ctl`].
pub fn prune_single_side_rec(
    g: &BipartiteGraph,
    params: FairParams,
    kind: PruneKind,
    ctl: &PrepareCtl,
    rec: &mut SpanRecorder,
) -> Result<PruneOutcome, StopReason> {
    match kind {
        PruneKind::None => Ok(no_prune(g)),
        PruneKind::FCore => rec.timed("core-peel", || fcore_ctl(g, params, ctl)),
        PruneKind::Colorful => cfcore_rec(g, params, ctl, rec),
    }
}

/// Run the pruning stage configured for a bi-side problem
/// (`FCore` maps to `BFCore`, `Colorful` to `BCFCore`).
pub fn prune_bi_side(g: &BipartiteGraph, params: FairParams, kind: PruneKind) -> PruneOutcome {
    prune_bi_side_ctl(g, params, kind, &PrepareCtl::UNBOUNDED)
        .expect("unbounded prepare is never interrupted")
}

/// [`prune_bi_side`] with cooperative interruption (see
/// [`prune_single_side_ctl`]).
pub fn prune_bi_side_ctl(
    g: &BipartiteGraph,
    params: FairParams,
    kind: PruneKind,
    ctl: &PrepareCtl,
) -> Result<PruneOutcome, StopReason> {
    prune_bi_side_rec(g, params, kind, ctl, &mut SpanRecorder::disabled())
}

/// [`prune_bi_side_ctl`] with a [`SpanRecorder`] (see
/// [`prune_single_side_rec`]).
pub fn prune_bi_side_rec(
    g: &BipartiteGraph,
    params: FairParams,
    kind: PruneKind,
    ctl: &PrepareCtl,
    rec: &mut SpanRecorder,
) -> Result<PruneOutcome, StopReason> {
    match kind {
        PruneKind::None => Ok(no_prune(g)),
        PruneKind::FCore => rec.timed("core-peel", || bfcore_ctl(g, params, ctl)),
        PruneKind::Colorful => bcfcore_rec(g, params, ctl, rec),
    }
}

/// Streaming single-side enumeration: prune, enumerate with `algo`,
/// emit results (original ids) into `sink`.
pub fn run_ssfbc(
    g: &BipartiteGraph,
    params: FairParams,
    algo: SsAlgorithm,
    cfg: &RunConfig,
    sink: &mut dyn BicliqueSink,
) -> (PruneStats, EnumStats) {
    let pruned = prune_single_side(g, params, cfg.prune);
    let mut mapped = MappingSink::new(
        &pruned.sub.upper_to_parent,
        &pruned.sub.lower_to_parent,
        sink,
    );
    let stats = match algo {
        SsAlgorithm::Nsf => nsf_on_pruned(
            &pruned.sub.graph,
            params,
            cfg.order,
            cfg.budget.clone(),
            &mut mapped,
        ),
        SsAlgorithm::FairBcem => fairbcem_on_pruned(
            &pruned.sub.graph,
            params,
            cfg.order,
            cfg.budget.clone(),
            &mut mapped,
        ),
        SsAlgorithm::FairBcemPP => fairbcem_pp_on_pruned_with(
            &pruned.sub.graph,
            params,
            cfg.order,
            cfg.budget.clone(),
            cfg.substrate,
            &mut mapped,
        ),
    };
    (pruned.stats, stats)
}

/// Streaming bi-side enumeration.
pub fn run_bsfbc(
    g: &BipartiteGraph,
    params: FairParams,
    algo: BiAlgorithm,
    cfg: &RunConfig,
    sink: &mut dyn BicliqueSink,
) -> (PruneStats, EnumStats) {
    let pruned = prune_bi_side(g, params, cfg.prune);
    let mut mapped = MappingSink::new(
        &pruned.sub.upper_to_parent,
        &pruned.sub.lower_to_parent,
        sink,
    );
    let stats = match algo {
        BiAlgorithm::Bnsf => bnsf_on_pruned(
            &pruned.sub.graph,
            params,
            cfg.order,
            cfg.budget.clone(),
            &mut mapped,
        ),
        BiAlgorithm::BFairBcem => bfairbcem_on_pruned_with(
            &pruned.sub.graph,
            params,
            cfg.order,
            cfg.budget.clone(),
            cfg.substrate,
            &mut mapped,
        ),
        BiAlgorithm::BFairBcemPP => bfairbcem_pp_on_pruned_with(
            &pruned.sub.graph,
            params,
            cfg.order,
            cfg.budget.clone(),
            cfg.substrate,
            &mut mapped,
        ),
    };
    (pruned.stats, stats)
}

/// Streaming proportion single-side enumeration (`FairBCEMPro++`).
pub fn run_pssfbc(
    g: &BipartiteGraph,
    pro: ProParams,
    cfg: &RunConfig,
    sink: &mut dyn BicliqueSink,
) -> (PruneStats, EnumStats) {
    let pruned = prune_single_side(g, pro.base, cfg.prune);
    let mut mapped = MappingSink::new(
        &pruned.sub.upper_to_parent,
        &pruned.sub.lower_to_parent,
        sink,
    );
    let stats = fairbcem_pro_pp_on_pruned_with(
        &pruned.sub.graph,
        pro,
        cfg.order,
        cfg.budget.clone(),
        cfg.substrate,
        &mut mapped,
    );
    (pruned.stats, stats)
}

/// Streaming proportion bi-side enumeration (`BFairBCEMPro++`).
pub fn run_pbsfbc(
    g: &BipartiteGraph,
    pro: ProParams,
    cfg: &RunConfig,
    sink: &mut dyn BicliqueSink,
) -> (PruneStats, EnumStats) {
    let pruned = prune_bi_side(g, pro.base, cfg.prune);
    let mut mapped = MappingSink::new(
        &pruned.sub.upper_to_parent,
        &pruned.sub.lower_to_parent,
        sink,
    );
    let stats = bfairbcem_pro_pp_on_pruned_with(
        &pruned.sub.graph,
        pro,
        cfg.order,
        cfg.budget.clone(),
        cfg.substrate,
        &mut mapped,
    );
    (pruned.stats, stats)
}

/// Prepare-then-execute: the collected pipelines are one-shot uses of
/// the prepared-plan layer ([`crate::prepared`]), so a cached plan in
/// the query service executes bit-identically to these.
fn enumerate(g: &BipartiteGraph, model: crate::prepared::QueryModel, cfg: &RunConfig) -> RunReport {
    crate::prepared::PreparedQuery::prepare(g, model, cfg.prune, cfg.substrate).execute(cfg)
}

/// Enumerate and collect all single-side fair bicliques (Definition 3)
/// with the paper's best pipeline (`CFCore` + `FairBCEM++` by default).
/// `cfg.threads > 1` runs on the parallel engine ([`crate::parallel`]).
pub fn enumerate_ssfbc(g: &BipartiteGraph, params: FairParams, cfg: &RunConfig) -> RunReport {
    enumerate(g, crate::prepared::QueryModel::Ssfbc(params), cfg)
}

/// Enumerate and collect all bi-side fair bicliques (Definition 4).
/// `cfg.threads > 1` runs on the parallel engine.
pub fn enumerate_bsfbc(g: &BipartiteGraph, params: FairParams, cfg: &RunConfig) -> RunReport {
    enumerate(g, crate::prepared::QueryModel::Bsfbc(params), cfg)
}

/// Enumerate and collect all proportion single-side fair bicliques
/// (Definition 5). `cfg.threads > 1` runs on the parallel engine.
pub fn enumerate_pssfbc(g: &BipartiteGraph, pro: ProParams, cfg: &RunConfig) -> RunReport {
    enumerate(g, crate::prepared::QueryModel::Pssfbc(pro), cfg)
}

/// Enumerate and collect all proportion bi-side fair bicliques
/// (Definition 6). `cfg.threads > 1` runs on the parallel engine.
pub fn enumerate_pbsfbc(g: &BipartiteGraph, pro: ProParams, cfg: &RunConfig) -> RunReport {
    enumerate(g, crate::prepared::QueryModel::Pbsfbc(pro), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::biclique::{CollectSink, CountSink};
    use crate::config::VertexOrder;
    use crate::verify::{oracle_bsfbc, oracle_ssfbc};
    use bigraph::generate::{plant_bicliques, random_uniform};
    use std::collections::BTreeSet;

    #[test]
    fn full_pipeline_matches_oracle_all_prunings() {
        for seed in 0..12u64 {
            let g = random_uniform(9, 10, 38, 2, 2, seed);
            let params = FairParams::unchecked(2, 1, 1);
            let want = oracle_ssfbc(&g, params);
            for prune in [PruneKind::None, PruneKind::FCore, PruneKind::Colorful] {
                for algo in [
                    SsAlgorithm::Nsf,
                    SsAlgorithm::FairBcem,
                    SsAlgorithm::FairBcemPP,
                ] {
                    let cfg = RunConfig::with_prune(prune);
                    let mut sink = CollectSink::default();
                    run_ssfbc(&g, params, algo, &cfg, &mut sink);
                    let got: BTreeSet<_> = sink.bicliques.into_iter().collect();
                    assert_eq!(got, want, "seed {seed} prune {prune:?} algo {algo:?}");
                }
            }
        }
    }

    #[test]
    fn bi_pipeline_matches_oracle_all_prunings() {
        for seed in 0..8u64 {
            let g = random_uniform(7, 8, 28, 2, 2, seed);
            let params = FairParams::unchecked(1, 1, 1);
            let want = oracle_bsfbc(&g, params);
            for prune in [PruneKind::None, PruneKind::FCore, PruneKind::Colorful] {
                for algo in [
                    BiAlgorithm::Bnsf,
                    BiAlgorithm::BFairBcem,
                    BiAlgorithm::BFairBcemPP,
                ] {
                    let cfg = RunConfig::with_prune(prune);
                    let mut sink = CollectSink::default();
                    run_bsfbc(&g, params, algo, &cfg, &mut sink);
                    let got: BTreeSet<_> = sink.bicliques.into_iter().collect();
                    assert_eq!(got, want, "seed {seed} prune {prune:?} algo {algo:?}");
                }
            }
        }
    }

    #[test]
    fn report_ids_are_original() {
        // Plant a block away from id 0 so pruning must remap.
        let base = random_uniform(30, 30, 60, 2, 2, 3);
        let g = plant_bicliques(&base, 1, 5, 8, 1.0, 9);
        let params = FairParams::unchecked(2, 2, 2);
        let report = enumerate_ssfbc(&g, params, &RunConfig::default());
        for bc in &report.bicliques {
            for &u in &bc.upper {
                for &v in &bc.lower {
                    assert!(
                        g.has_edge(u, v),
                        "result must be a biclique in the ORIGINAL graph"
                    );
                }
            }
        }
        assert!(report.prune.upper_after <= report.prune.upper_before);
    }

    #[test]
    fn orderings_agree_on_results() {
        let g = random_uniform(12, 14, 70, 2, 2, 21);
        let params = FairParams::unchecked(2, 1, 1);
        let mut res = Vec::new();
        for order in [VertexOrder::IdAsc, VertexOrder::DegreeDesc] {
            let cfg = RunConfig::with_order(order);
            let report = enumerate_ssfbc(&g, params, &cfg);
            res.push(report.bicliques.into_iter().collect::<BTreeSet<_>>());
        }
        assert_eq!(res[0], res[1]);
    }

    #[test]
    fn counting_sink_streams() {
        let g = random_uniform(12, 14, 70, 2, 2, 22);
        let params = FairParams::unchecked(2, 1, 1);
        let mut count = CountSink::default();
        let (_, stats) = run_ssfbc(
            &g,
            params,
            SsAlgorithm::FairBcemPP,
            &RunConfig::default(),
            &mut count,
        );
        let report = enumerate_ssfbc(&g, params, &RunConfig::default());
        assert_eq!(count.count as usize, report.bicliques.len());
        assert_eq!(stats.emitted, count.count);
    }

    #[test]
    fn pro_pipelines_run_end_to_end() {
        let g = random_uniform(10, 12, 50, 2, 2, 31);
        let pro = ProParams::new(2, 1, 2, 0.4).unwrap();
        let ss = enumerate_pssfbc(&g, pro, &RunConfig::default());
        let bs = enumerate_pbsfbc(&g, pro, &RunConfig::default());
        // PBSFBC lower sides appear among PSSFBC lower sides.
        let ss_lowers: BTreeSet<_> = ss.bicliques.iter().map(|b| b.lower.clone()).collect();
        for b in &bs.bicliques {
            assert!(ss_lowers.contains(&b.lower));
        }
    }
}
