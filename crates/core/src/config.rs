//! Parameters and run configuration for the fair biclique models.

use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// The three integer thresholds of the absolute fairness models
/// (Definitions 3 and 4 of the paper).
///
/// * `alpha` — minimum size of the non-fair side (SSFBC) or per-
///   attribute minimum on the upper side (BSFBC).
/// * `beta` — per-attribute minimum on the lower (fair) side.
/// * `delta` — maximum pairwise difference between attribute counts on
///   a fair side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FairParams {
    /// `α ≥ 1`.
    pub alpha: u32,
    /// `β ≥ 0`.
    pub beta: u32,
    /// `δ ≥ 0`.
    pub delta: u32,
}

/// Parameter validation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamError {
    /// `alpha` must be at least 1 (an empty non-fair side is degenerate).
    AlphaZero,
    /// `theta` must lie in `[0, 0.5]` (the paper derives `θ ≤ 0.5` for
    /// two attribute values; above `1/n` no set can be proportional).
    ThetaOutOfRange(f64),
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamError::AlphaZero => f.write_str("alpha must be >= 1"),
            ParamError::ThetaOutOfRange(t) => write!(f, "theta {t} outside [0, 0.5]"),
        }
    }
}

impl std::error::Error for ParamError {}

impl FairParams {
    /// Validated constructor.
    pub fn new(alpha: u32, beta: u32, delta: u32) -> Result<Self, ParamError> {
        if alpha == 0 {
            return Err(ParamError::AlphaZero);
        }
        Ok(FairParams { alpha, beta, delta })
    }

    /// Unchecked constructor for tests and sweeps (still asserts in
    /// debug builds).
    pub fn unchecked(alpha: u32, beta: u32, delta: u32) -> Self {
        debug_assert!(alpha >= 1);
        FairParams { alpha, beta, delta }
    }
}

impl std::fmt::Display for FairParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "α={} β={} δ={}", self.alpha, self.beta, self.delta)
    }
}

/// Parameters of the proportion models (Definitions 5 and 6): the
/// absolute thresholds plus the fairness-ratio threshold `θ`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProParams {
    /// Absolute thresholds.
    pub base: FairParams,
    /// Ratio threshold `θ ∈ [0, 0.5]`: every attribute value must make
    /// up at least a `θ` fraction of its fair side.
    pub theta: f64,
}

impl ProParams {
    /// Validated constructor.
    pub fn new(alpha: u32, beta: u32, delta: u32, theta: f64) -> Result<Self, ParamError> {
        let base = FairParams::new(alpha, beta, delta)?;
        if !(0.0..=0.5).contains(&theta) {
            return Err(ParamError::ThetaOutOfRange(theta));
        }
        Ok(ProParams { base, theta })
    }
}

impl std::fmt::Display for ProParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} θ={}", self.base, self.theta)
    }
}

/// Which pruning stage to run before enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PruneKind {
    /// No pruning (baseline for the pruning-effect experiments).
    None,
    /// Fair α-β core only (Algorithm 1 / BFCore for bi-side runs).
    FCore,
    /// Colorful fair α-β core (Algorithm 2 / BCFCore for bi-side runs);
    /// the paper's default.
    #[default]
    Colorful,
}

/// Vertex selection order for the branch-and-bound search
/// (`IDOrd` / `DegOrd` in the paper's Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum VertexOrder {
    /// Ascending vertex id (`IDOrd`).
    IdAsc,
    /// Non-increasing degree, ties by id (`DegOrd`); the paper's
    /// recommended ordering.
    #[default]
    DegreeDesc,
}

/// Resource limits for a single enumeration run.
///
/// The paper uses a 24-hour wall-clock limit and prints `INF` for runs
/// that exceed it; [`Budget`] supports both a deadline and a
/// deterministic search-node cap (the latter is what tests use).
#[derive(Debug, Clone, Copy, Default)]
pub struct Budget {
    /// Abort after visiting this many search-tree nodes.
    pub max_nodes: Option<u64>,
    /// Abort after this much wall-clock time.
    pub max_time: Option<Duration>,
}

impl Budget {
    /// No limits.
    pub const UNLIMITED: Budget = Budget {
        max_nodes: None,
        max_time: None,
    };

    /// Only a node cap.
    pub fn nodes(max_nodes: u64) -> Budget {
        Budget {
            max_nodes: Some(max_nodes),
            max_time: None,
        }
    }

    /// Only a wall-clock cap.
    pub fn time(max_time: Duration) -> Budget {
        Budget {
            max_nodes: None,
            max_time: Some(max_time),
        }
    }

    pub(crate) fn start(&self) -> BudgetClock {
        BudgetClock {
            max_nodes: self.max_nodes.unwrap_or(u64::MAX),
            deadline: self.max_time.map(|d| Instant::now() + d),
            nodes: 0,
            exhausted: false,
        }
    }
}

/// Running budget state threaded through the enumerators.
#[derive(Debug, Clone)]
pub(crate) struct BudgetClock {
    max_nodes: u64,
    deadline: Option<Instant>,
    pub(crate) nodes: u64,
    pub(crate) exhausted: bool,
}

impl BudgetClock {
    /// Record one search node; returns false when the budget is spent.
    #[inline]
    pub(crate) fn tick(&mut self) -> bool {
        if self.exhausted {
            return false;
        }
        self.nodes += 1;
        if self.nodes > self.max_nodes {
            self.exhausted = true;
            return false;
        }
        // Check the clock rarely; Instant::now is not free.
        if self.nodes % 1024 == 0 {
            if let Some(d) = self.deadline {
                if Instant::now() >= d {
                    self.exhausted = true;
                    return false;
                }
            }
        }
        true
    }
}

/// Full configuration of an enumeration run.
#[derive(Debug, Clone, Default)]
pub struct RunConfig {
    /// Pruning stage (default: colorful core, the paper's setting).
    pub prune: PruneKind,
    /// Vertex selection order (default: `DegOrd`).
    pub order: VertexOrder,
    /// Resource limits (default: unlimited).
    pub budget: Budget,
}

impl RunConfig {
    /// Config with everything default except the ordering.
    pub fn with_order(order: VertexOrder) -> Self {
        RunConfig {
            order,
            ..Default::default()
        }
    }

    /// Config with everything default except the pruning stage.
    pub fn with_prune(prune: PruneKind) -> Self {
        RunConfig {
            prune,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_validation() {
        assert!(FairParams::new(1, 0, 0).is_ok());
        assert_eq!(FairParams::new(0, 1, 1), Err(ParamError::AlphaZero));
        assert!(ProParams::new(1, 1, 1, 0.5).is_ok());
        assert!(ProParams::new(1, 1, 1, 0.0).is_ok());
        assert!(matches!(
            ProParams::new(1, 1, 1, 0.6),
            Err(ParamError::ThetaOutOfRange(_))
        ));
        assert!(matches!(
            ProParams::new(1, 1, 1, -0.1),
            Err(ParamError::ThetaOutOfRange(_))
        ));
        assert!(FairParams::new(0, 0, 0)
            .unwrap_err()
            .to_string()
            .contains("alpha"));
    }

    #[test]
    fn budget_node_cap() {
        let mut c = Budget::nodes(3).start();
        assert!(c.tick());
        assert!(c.tick());
        assert!(c.tick());
        assert!(!c.tick());
        assert!(c.exhausted);
        assert!(!c.tick()); // stays exhausted
        assert_eq!(c.nodes, 4);
    }

    #[test]
    fn budget_unlimited() {
        let mut c = Budget::UNLIMITED.start();
        for _ in 0..10_000 {
            assert!(c.tick());
        }
        assert!(!c.exhausted);
    }

    #[test]
    fn budget_deadline_expires() {
        let mut c = Budget::time(Duration::from_millis(0)).start();
        // Deadline is checked every 1024 nodes.
        let mut ok = true;
        for _ in 0..2048 {
            ok = c.tick();
            if !ok {
                break;
            }
        }
        assert!(!ok);
    }

    #[test]
    fn display_formats() {
        assert_eq!(FairParams::unchecked(2, 3, 1).to_string(), "α=2 β=3 δ=1");
        let p = ProParams::new(2, 3, 1, 0.4).unwrap();
        assert!(p.to_string().contains("θ=0.4"));
    }
}
