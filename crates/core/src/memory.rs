//! Memory accounting for the paper's Exp-6 ("the memory costs of
//! different algorithms do not include the size of the graph").
//!
//! The dominant extra allocations are (a) the pruning stage's working
//! structures — most importantly the 2-hop graph and the per-vertex
//! `(attribute, color)` multiplicity tables of the colorful core — and
//! (b) the depth-first search state. [`measure_ssfbc`] /
//! [`measure_bsfbc`] reproduce the paper's accounting: bytes beyond the
//! input graph itself.

use crate::config::{FairParams, PruneKind, RunConfig};
use crate::pipeline::{run_bsfbc, run_ssfbc, BiAlgorithm, SsAlgorithm};
use bigraph::candidate::CandidatePlan;
use bigraph::coloring::greedy_color_by_degree;
use bigraph::twohop::{construct_2hop, construct_2hop_biside};
use bigraph::{BipartiteGraph, Side};
use serde::{Deserialize, Serialize};

/// Byte breakdown of one run (graph storage excluded).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryReport {
    /// Pruned-subgraph copy produced by the pruning stage.
    pub pruned_graph_bytes: usize,
    /// 2-hop projection used by the colorful pruning (0 when pruning
    /// is not colorful).
    pub twohop_bytes: usize,
    /// Per-vertex `(attr, color)` multiplicity tables of the ego
    /// colorful core (0 when pruning is not colorful).
    pub colorful_tables_bytes: usize,
    /// Bitset adjacency rows built over the pruned vertex set (0 on
    /// the sorted-vec substrate; see
    /// [`crate::config::RunConfig::substrate`]).
    pub bitset_rows_bytes: usize,
    /// Peak depth-first search state: the per-level `(L, P, Q)`
    /// branch sets live at the deepest point of the walk. The walkers
    /// keep this state in pooled, undo-restored frames (recycled
    /// across siblings, so the steady-state walk allocates nothing),
    /// but the *accounted* bytes are the logical per-level set sizes —
    /// the same formula as the previous clone-per-branch walkers, so
    /// Exp-6 numbers stay comparable across versions. Parallel runs
    /// additionally snapshot branch state at task-split points
    /// (copy-on-steal); those snapshots are transient task payloads
    /// and are not part of this peak.
    pub search_bytes: usize,
}

impl MemoryReport {
    /// Total accounted bytes.
    pub fn total(&self) -> usize {
        self.pruned_graph_bytes
            + self.twohop_bytes
            + self.colorful_tables_bytes
            + self.bitset_rows_bytes
            + self.search_bytes
    }
}

fn colorful_cost(g: &BipartiteGraph, alpha: u32, bi: bool) -> (usize, usize) {
    let h = if bi {
        construct_2hop_biside(g, Side::Lower, alpha as usize)
    } else {
        construct_2hop(g, Side::Lower, alpha as usize)
    };
    let coloring = greedy_color_by_degree(&h);
    let n_attrs = (h.n_attr_values() as usize).max(1);
    let tables = h.n() * n_attrs * (coloring.n_colors as usize).max(1) * std::mem::size_of::<u32>();
    (h.heap_bytes(), tables)
}

/// Measure the single-side pipeline's memory overhead.
pub fn measure_ssfbc(
    g: &BipartiteGraph,
    params: FairParams,
    algo: SsAlgorithm,
    cfg: &RunConfig,
) -> MemoryReport {
    let pruned = crate::pipeline::prune_single_side(g, params, cfg.prune);
    let (twohop_bytes, colorful_tables_bytes) = if cfg.prune == PruneKind::Colorful {
        colorful_cost(&pruned.sub.graph, params.alpha, false)
    } else {
        (0, 0)
    };
    // The enumeration run builds the same plan internally; rebuild it
    // here to account the row bytes it allocates (only FairBCEM++
    // runs on the substrate; the baselines never build rows).
    let bitset_rows_bytes = if algo == SsAlgorithm::FairBcemPP {
        CandidatePlan::build(&pruned.sub.graph, cfg.substrate, false).heap_bytes()
    } else {
        0
    };
    let mut sink = crate::biclique::CountSink::default();
    let (_, stats) = run_ssfbc(g, params, algo, cfg, &mut sink);
    MemoryReport {
        pruned_graph_bytes: pruned.sub.graph.heap_bytes(),
        twohop_bytes,
        colorful_tables_bytes,
        bitset_rows_bytes,
        search_bytes: stats.peak_search_bytes,
    }
}

/// Measure the bi-side pipeline's memory overhead.
pub fn measure_bsfbc(
    g: &BipartiteGraph,
    params: FairParams,
    algo: BiAlgorithm,
    cfg: &RunConfig,
) -> MemoryReport {
    let pruned = crate::pipeline::prune_bi_side(g, params, cfg.prune);
    let (twohop_bytes, colorful_tables_bytes) = if cfg.prune == PruneKind::Colorful {
        colorful_cost(&pruned.sub.graph, params.alpha, true)
    } else {
        (0, 0)
    };
    // Bi-side chains build rows for both sides (the upper-side
    // expansion intersects upper adjacency). BNSF never builds rows.
    let bitset_rows_bytes = if algo == BiAlgorithm::Bnsf {
        0
    } else {
        CandidatePlan::build(&pruned.sub.graph, cfg.substrate, true).heap_bytes()
    };
    let mut sink = crate::biclique::CountSink::default();
    let (_, stats) = run_bsfbc(g, params, algo, cfg, &mut sink);
    MemoryReport {
        pruned_graph_bytes: pruned.sub.graph.heap_bytes(),
        twohop_bytes,
        colorful_tables_bytes,
        bitset_rows_bytes,
        search_bytes: stats.peak_search_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::generate::{plant_bicliques, random_uniform};

    #[test]
    fn reports_are_nonzero_and_consistent() {
        let base = random_uniform(40, 40, 200, 2, 2, 5);
        let g = plant_bicliques(&base, 2, 4, 6, 1.0, 6);
        let params = FairParams::unchecked(2, 2, 1);
        let cfg = RunConfig::default();
        let m = measure_ssfbc(&g, params, SsAlgorithm::FairBcemPP, &cfg);
        assert!(m.pruned_graph_bytes > 0);
        assert!(m.total() >= m.pruned_graph_bytes);
        let mb = measure_bsfbc(&g, params, BiAlgorithm::BFairBcemPP, &cfg);
        assert!(mb.total() > 0);
    }

    #[test]
    fn no_colorful_cost_without_colorful_pruning() {
        let g = random_uniform(20, 20, 100, 2, 2, 7);
        let params = FairParams::unchecked(2, 1, 1);
        let cfg = RunConfig::with_prune(PruneKind::FCore);
        let m = measure_ssfbc(&g, params, SsAlgorithm::FairBcem, &cfg);
        assert_eq!(m.twohop_bytes, 0);
        assert_eq!(m.colorful_tables_bytes, 0);
    }
}
