//! The `fbe` binary: thin wrapper around [`fbe_cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match fbe_cli::run(&args) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
