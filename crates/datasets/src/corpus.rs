//! Scaled synthetic analogs of the paper's five benchmark graphs
//! (Table I), with their default parameters.
//!
//! Scaling protocol: vertex and edge counts are the paper's divided by
//! 64 (so the largest graph, DBLP, stays under 200k edges and a full
//! parameter sweep finishes in minutes on a laptop), side ratios and
//! mean degrees are preserved, the degree skew comes from a Chung–Lu
//! power-law (`γ ≈ 2.1–2.5` like real affiliation networks), and a
//! sprinkle of planted dense blocks recreates the community structure
//! that makes (fair) bicliques exist at the paper's default `α/β`.
//!
//! Everything is deterministic in the per-dataset seed.

use bigraph::generate::{chung_lu_power_law, plant_bicliques};
use bigraph::BipartiteGraph;
use fair_biclique::config::{FairParams, ProParams};
use serde::{Deserialize, Serialize};

/// The five benchmark datasets of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// Affiliation network (`Youtube` in Table I).
    Youtube,
    /// Interaction network (`Twitter`).
    Twitter,
    /// Affiliation network (`IMDB`).
    Imdb,
    /// Feature network (`Wiki-cat`).
    WikiCat,
    /// Authorship network (`DBLP`).
    Dblp,
}

impl Dataset {
    /// All five datasets in the paper's order.
    pub const ALL: [Dataset; 5] = [
        Dataset::Youtube,
        Dataset::Twitter,
        Dataset::Imdb,
        Dataset::WikiCat,
        Dataset::Dblp,
    ];
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Dataset::Youtube => "Youtube",
            Dataset::Twitter => "Twitter",
            Dataset::Imdb => "IMDB",
            Dataset::WikiCat => "Wiki-cat",
            Dataset::Dblp => "DBLP",
        })
    }
}

/// Generation recipe plus the paper's default parameters for one
/// dataset (Table I's `α*_s, β*_s, α*_b, β*_b, δ*, θ*` columns).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Which dataset this models.
    pub dataset: Dataset,
    /// `|U|` of the scaled graph.
    pub n_upper: usize,
    /// `|V|` of the scaled graph.
    pub n_lower: usize,
    /// Edge-sample count fed to the Chung–Lu generator (realized edge
    /// count is slightly lower after deduplication).
    pub m: usize,
    /// Power-law exponent of the upper side.
    pub gamma_upper: f64,
    /// Power-law exponent of the lower side.
    pub gamma_lower: f64,
    /// Number of planted dense blocks.
    pub blocks: usize,
    /// Planted block size (upper × lower vertices).
    pub block_shape: (usize, usize),
    /// Default `(α, β)` for the single-side model (`α*_s, β*_s`).
    pub default_single: (u32, u32),
    /// Default `(α, β)` for the bi-side model (`α*_b, β*_b`).
    pub default_bi: (u32, u32),
    /// Default `δ*`.
    pub default_delta: u32,
    /// Default `θ*`.
    pub default_theta: f64,
    /// Generator seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// Default single-side parameters as a [`FairParams`].
    pub fn single_params(&self) -> FairParams {
        FairParams::unchecked(
            self.default_single.0,
            self.default_single.1,
            self.default_delta,
        )
    }

    /// Default bi-side parameters as a [`FairParams`].
    pub fn bi_params(&self) -> FairParams {
        FairParams::unchecked(self.default_bi.0, self.default_bi.1, self.default_delta)
    }

    /// Default proportion single-side parameters.
    pub fn single_pro_params(&self) -> ProParams {
        ProParams::new(
            self.default_single.0,
            self.default_single.1,
            self.default_delta,
            self.default_theta,
        )
        .expect("table defaults are valid")
    }

    /// Default proportion bi-side parameters.
    pub fn bi_pro_params(&self) -> ProParams {
        ProParams::new(
            self.default_bi.0,
            self.default_bi.1,
            self.default_delta,
            self.default_theta,
        )
        .expect("table defaults are valid")
    }

    /// Build the graph (deterministic in `self.seed`).
    pub fn build(&self) -> BipartiteGraph {
        let base = chung_lu_power_law(
            self.n_upper,
            self.n_lower,
            self.m,
            self.gamma_upper,
            self.gamma_lower,
            2,
            2,
            self.seed,
        );
        plant_bicliques(
            &base,
            self.blocks,
            self.block_shape.0,
            self.block_shape.1,
            0.97,
            self.seed ^ 0x5eed_b10c,
        )
    }

    /// A quarter-scale variant (used where the paper's 24h-limit
    /// baselines would otherwise dominate bench time).
    pub fn small(&self) -> DatasetSpec {
        DatasetSpec {
            n_upper: (self.n_upper / 4).max(40),
            n_lower: (self.n_lower / 4).max(40),
            m: (self.m / 4).max(200),
            blocks: (self.blocks / 2).max(2),
            ..self.clone()
        }
    }
}

/// The spec for one dataset.
///
/// Block shapes are sized to the dataset's default parameters so the
/// planted communities can host fair bicliques:
/// `upper ≥ 2·α_b + 2` and `lower ≥ 2·β_s + 4`.
pub fn spec(dataset: Dataset) -> DatasetSpec {
    match dataset {
        // Paper: |U|=94,238 |V|=30,087 |E|=293,360; α_s=β_s=8, α_b=β_b=5.
        Dataset::Youtube => DatasetSpec {
            dataset,
            n_upper: 1473,
            n_lower: 470,
            m: 4584,
            gamma_upper: 2.3,
            gamma_lower: 2.2,
            blocks: 6,
            block_shape: (14, 22),
            default_single: (8, 8),
            default_bi: (5, 5),
            default_delta: 2,
            default_theta: 0.4,
            seed: seed_for(1),
        },
        // Paper: |U|=175,214 |V|=530,418 |E|=1,890,661; α_s=β_s=8, bi 6/7.
        Dataset::Twitter => DatasetSpec {
            dataset,
            n_upper: 2738,
            n_lower: 8288,
            m: 29541,
            gamma_upper: 2.2,
            gamma_lower: 2.4,
            blocks: 10,
            block_shape: (16, 22),
            default_single: (8, 8),
            default_bi: (6, 7),
            default_delta: 2,
            default_theta: 0.4,
            seed: seed_for(2),
        },
        // Paper: |U|=303,617 |V|=896,302 |E|=3,782,463; α_s=β_s=10, bi 6/6.
        Dataset::Imdb => DatasetSpec {
            dataset,
            n_upper: 4744,
            n_lower: 14005,
            m: 59101,
            gamma_upper: 2.2,
            gamma_lower: 2.4,
            blocks: 12,
            block_shape: (16, 26),
            default_single: (10, 10),
            default_bi: (6, 6),
            default_delta: 2,
            default_theta: 0.4,
            seed: seed_for(3),
        },
        // Paper: |U|=1,853,493 |V|=182,947 |E|=3,795,796; α_s=β_s=7, bi 6/6.
        Dataset::WikiCat => DatasetSpec {
            dataset,
            n_upper: 28961,
            n_lower: 2859,
            m: 59309,
            gamma_upper: 2.5,
            gamma_lower: 2.1,
            blocks: 12,
            block_shape: (16, 20),
            default_single: (7, 7),
            default_bi: (6, 6),
            default_delta: 2,
            default_theta: 0.4,
            seed: seed_for(4),
        },
        // Paper: |U|=1,953,085 |V|=5,624,219 |E|=12,282,059; α_s=β_s=7, bi 4/4.
        Dataset::Dblp => DatasetSpec {
            dataset,
            n_upper: 30517,
            n_lower: 87878,
            m: 191907,
            gamma_upper: 2.4,
            gamma_lower: 2.5,
            blocks: 16,
            block_shape: (12, 20),
            default_single: (7, 7),
            default_bi: (4, 4),
            default_delta: 2,
            default_theta: 0.4,
            seed: seed_for(5),
        },
    }
}

/// Per-dataset deterministic seed (stable across releases).
fn seed_for(i: u64) -> u64 {
    0xfa17_b1c1_0000_0000 | i
}

/// Specs for all five datasets.
pub fn all_specs() -> Vec<DatasetSpec> {
    Dataset::ALL.iter().map(|&d| spec(d)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::stats::graph_stats;

    #[test]
    fn all_specs_build_and_are_deterministic() {
        for s in all_specs() {
            let g1 = s.build();
            g1.validate().unwrap();
            assert_eq!(g1.n_upper(), s.n_upper, "{}", s.dataset);
            assert_eq!(g1.n_lower(), s.n_lower, "{}", s.dataset);
            let g2 = s.build();
            assert_eq!(g1.n_edges(), g2.n_edges());
        }
    }

    #[test]
    fn side_ratios_match_table_one() {
        // |U|/|V| ratios from the paper, within 5%.
        let want = [
            (Dataset::Youtube, 94238.0 / 30087.0),
            (Dataset::Twitter, 175214.0 / 530418.0),
            (Dataset::Imdb, 303617.0 / 896302.0),
            (Dataset::WikiCat, 1853493.0 / 182947.0),
            (Dataset::Dblp, 1953085.0 / 5624219.0),
        ];
        for (d, ratio) in want {
            let s = spec(d);
            let got = s.n_upper as f64 / s.n_lower as f64;
            assert!((got / ratio - 1.0).abs() < 0.05, "{d}: {got} vs {ratio}");
        }
    }

    #[test]
    fn degree_skew_present() {
        let g = spec(Dataset::Youtube).build();
        let st = graph_stats(&g);
        assert!(st.upper.max_degree as f64 > 8.0 * st.upper.mean_degree);
    }

    #[test]
    fn default_params_accessible() {
        let s = spec(Dataset::Imdb);
        assert_eq!(s.single_params().alpha, 10);
        assert_eq!(s.bi_params().beta, 6);
        assert!((s.single_pro_params().theta - 0.4).abs() < 1e-12);
        assert_eq!(s.bi_pro_params().base.delta, 2);
    }

    #[test]
    fn small_variant_shrinks() {
        let s = spec(Dataset::Dblp);
        let sm = s.small();
        assert!(sm.n_upper < s.n_upper);
        assert!(sm.m < s.m);
        sm.build().validate().unwrap();
    }
}
