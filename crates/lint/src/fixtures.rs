//! Embedded fixture self-tests: one positive/negative source pair per
//! rule, run through the full [`crate::check_analysis`] pipeline (so
//! scrubbing, test-region masking, and allow filtering are all in the
//! loop). These are the linter's own regression suite — if a rule's
//! heuristics change, these fixtures define what must keep firing and
//! what must stay quiet.

use crate::check_analysis;
use crate::walk::{Analysis, SourceFile};

/// Build an analysis from `(path, source)` pairs plus README lines.
fn analysis(files: &[(&str, &str)], readme: &str) -> Analysis {
    let mut a = Analysis::default();
    for (path, src) in files {
        a.files.push(SourceFile::parse(*path, src));
    }
    a.readme = readme.lines().map(|l| l.to_string()).collect();
    a
}

/// Lines on which `rule` fired in `path`.
fn fired(a: &Analysis, rule: &str, path: &str) -> Vec<usize> {
    check_analysis(a, None)
        .into_iter()
        .filter(|f| f.rule == rule && f.path == path)
        .map(|f| f.line)
        .collect()
}

// ---------------------------------------------------------------- panic paths

const PANIC_POSITIVE: &str = r#"
pub fn handle(x: Option<u32>, v: &[u32]) -> u32 {
    let a = x.unwrap();
    let b = x.expect("always set");
    if a == 0 {
        panic!("boom");
    }
    a + b + v[0]
}
"#;

const PANIC_NEGATIVE: &str = r#"
pub fn handle(x: Option<u32>) -> Result<u32, String> {
    // Strings and comments mentioning unwrap() or panic! are not code.
    let msg = "do not panic!(now) or .unwrap() anything";
    x.ok_or_else(|| msg.to_string())
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        let v = vec![1u32];
        assert_eq!(v[0], Some(1).unwrap());
        if false {
            panic!("fine in tests");
        }
    }
}
"#;

#[test]
fn panic_paths_fixture_positive() {
    let a = analysis(&[("crates/service/src/fix.rs", PANIC_POSITIVE)], "");
    let lines = fired(&a, "no-panic-paths", "crates/service/src/fix.rs");
    // unwrap, expect, panic!, and the literal index v[0].
    assert_eq!(lines, vec![3, 4, 6, 8]);
}

#[test]
fn panic_paths_fixture_negative() {
    let a = analysis(
        &[
            ("crates/service/src/fix.rs", PANIC_NEGATIVE),
            // Same panicky source outside the scoped crates: not flagged.
            ("crates/core/src/fix.rs", PANIC_POSITIVE),
        ],
        "",
    );
    assert!(fired(&a, "no-panic-paths", "crates/service/src/fix.rs").is_empty());
    assert!(fired(&a, "no-panic-paths", "crates/core/src/fix.rs").is_empty());
}

// ------------------------------------------------------------ lock discipline

const LOCKS_POSITIVE: &str = r#"
pub fn transfer(a: &std::sync::Mutex<u32>, b: &std::sync::Mutex<u32>) {
    let mut ga = a.lock().unwrap();
    let gb = b.lock();
    *ga += 1;
    drop(gb);
}
"#;

const LOCKS_NEGATIVE: &str = r#"
pub fn transfer(a: &std::sync::Mutex<u32>, b: &std::sync::Mutex<u32>) {
    {
        // Writers never panic while holding this lock: poisoned is unreachable.
        let mut ga = a.lock().unwrap();
        *ga += 1;
    }
    let gb = b.lock();
    drop(gb);
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_nest() {
        let m = std::sync::Mutex::new(0u32);
        let g = m.lock().unwrap();
        let h = std::sync::Mutex::new(1u32).lock();
        drop((g, h));
    }
}
"#;

#[test]
fn locks_fixture_positive() {
    let a = analysis(&[("crates/bench/src/fix.rs", LOCKS_POSITIVE)], "");
    let lines = fired(&a, "lock-discipline", "crates/bench/src/fix.rs");
    // Line 3: lock().unwrap() with no poisoning note.
    // Line 4: second .lock() while `ga` is still held.
    assert_eq!(lines, vec![3, 4]);
}

#[test]
fn locks_fixture_negative() {
    let a = analysis(&[("crates/bench/src/fix.rs", LOCKS_NEGATIVE)], "");
    assert!(fired(&a, "lock-discipline", "crates/bench/src/fix.rs").is_empty());
}

// ------------------------------------------------------------ atomic ordering

const ATOMICS_POSITIVE: &str = r#"
use std::sync::atomic::{AtomicU64, Ordering};
pub fn bump(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::SeqCst)
}
"#;

const ATOMICS_NEGATIVE: &str = r#"
use std::sync::atomic::{AtomicU64, Ordering};
pub fn bump(c: &AtomicU64) -> u64 {
    // lint: ordering: monotonic counter, readers only need eventual counts
    c.fetch_add(1, Ordering::Relaxed)
}
"#;

#[test]
fn atomics_fixture_positive() {
    let a = analysis(&[("crates/bench/src/fix.rs", ATOMICS_POSITIVE)], "");
    assert_eq!(
        fired(&a, "atomic-ordering", "crates/bench/src/fix.rs"),
        vec![4]
    );
}

#[test]
fn atomics_fixture_negative() {
    let a = analysis(
        &[
            ("crates/bench/src/fix.rs", ATOMICS_NEGATIVE),
            // Audited core: no justification needed.
            ("crates/service/src/metrics.rs", ATOMICS_POSITIVE),
        ],
        "",
    );
    assert!(fired(&a, "atomic-ordering", "crates/bench/src/fix.rs").is_empty());
    assert!(fired(&a, "atomic-ordering", "crates/service/src/metrics.rs").is_empty());
}

// -------------------------------------------------------------- api symmetry

const SYMMETRY_POSITIVE: &str = r#"
pub fn scan_with(s: &str, k: usize) -> usize {
    s.len() + k
}
"#;

const SYMMETRY_NEGATIVE: &str = r#"
pub fn scan_with(s: &str, k: usize) -> usize {
    s.len() + k
}
pub fn scan(s: &str) -> usize {
    scan_with(s, 0)
}
"#;

const PROTOCOL_FIXTURE: &str = r#"
pub fn parse_request(line: &str) -> u32 {
    match line {
        "PING" => 0,
        "ENUM" => 1,
        _ => 2,
    }
}
"#;

const README_OK: &str = "\
### Protocol
```text
PING
ENUM <graph> alpha=A
```
";

const README_STALE: &str = "\
### Protocol
```text
PING
STATUS
```
";

#[test]
fn symmetry_fixture_positive() {
    let a = analysis(
        &[
            ("crates/core/src/fix.rs", SYMMETRY_POSITIVE),
            ("crates/service/src/protocol.rs", PROTOCOL_FIXTURE),
        ],
        README_STALE,
    );
    let core = fired(&a, "api-symmetry", "crates/core/src/fix.rs");
    assert_eq!(core, vec![2], "scan_with without scan must fire");
    let proto = fired(&a, "api-symmetry", "crates/service/src/protocol.rs");
    // ENUM matched but undocumented + STATUS documented but unmatched.
    assert_eq!(proto.len(), 2, "verb drift must fire both directions");
}

#[test]
fn symmetry_fixture_negative() {
    let a = analysis(
        &[
            ("crates/core/src/fix.rs", SYMMETRY_NEGATIVE),
            ("crates/service/src/protocol.rs", PROTOCOL_FIXTURE),
        ],
        README_OK,
    );
    assert!(fired(&a, "api-symmetry", "crates/core/src/fix.rs").is_empty());
    assert!(fired(&a, "api-symmetry", "crates/service/src/protocol.rs").is_empty());
}

// ------------------------------------------------------ determinism hygiene

const DETERMINISM_POSITIVE: &str = r#"
use std::collections::HashMap;
pub fn tally(xs: &[u32]) -> HashMap<u32, u32> {
    let mut m = HashMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}
"#;

const DETERMINISM_NEGATIVE: &str = r#"
use std::collections::BTreeMap;
pub fn tally(xs: &[u32]) -> BTreeMap<u32, u32> {
    let mut m = BTreeMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}
"#;

#[test]
fn determinism_fixture_positive() {
    let a = analysis(&[("crates/core/src/fix.rs", DETERMINISM_POSITIVE)], "");
    let lines = fired(&a, "determinism-hygiene", "crates/core/src/fix.rs");
    assert_eq!(lines, vec![2, 3, 4]);
}

#[test]
fn determinism_fixture_negative() {
    let a = analysis(
        &[
            ("crates/core/src/fix.rs", DETERMINISM_NEGATIVE),
            // Hash maps outside the core are keyed lookup, not emission.
            ("crates/service/src/fix.rs", DETERMINISM_POSITIVE),
        ],
        "",
    );
    assert!(fired(&a, "determinism-hygiene", "crates/core/src/fix.rs").is_empty());
    assert!(fired(&a, "determinism-hygiene", "crates/service/src/fix.rs").is_empty());
}

// ------------------------------------------------------------- forbid unsafe

const UNSAFE_FREE_ROOT: &str = "pub fn f() -> u32 { 1 }\n";
const PINNED_ROOT: &str = "#![forbid(unsafe_code)]\npub fn f() -> u32 { 1 }\n";
const GENUINE_UNSAFE_ROOT: &str = "pub fn f(p: *const u32) -> u32 { unsafe { *p } }\n";

#[test]
fn forbid_unsafe_fixture_positive() {
    let a = analysis(&[("crates/foo/src/lib.rs", UNSAFE_FREE_ROOT)], "");
    assert_eq!(fired(&a, "forbid-unsafe", "crates/foo/src/lib.rs"), vec![1]);
}

#[test]
fn forbid_unsafe_fixture_negative() {
    let a = analysis(
        &[
            ("crates/foo/src/lib.rs", PINNED_ROOT),
            // A crate with genuine unsafe cannot carry the attribute.
            ("crates/bar/src/lib.rs", GENUINE_UNSAFE_ROOT),
        ],
        "",
    );
    assert!(fired(&a, "forbid-unsafe", "crates/foo/src/lib.rs").is_empty());
    assert!(fired(&a, "forbid-unsafe", "crates/bar/src/lib.rs").is_empty());
}

// --------------------------------------------------------- branch-state clone

const BRANCH_STATE_POSITIVE: &str = r#"
pub fn branch(l: &[u32], q: &mut Vec<u32>) -> Vec<u32> {
    let ql = q.to_vec();
    let copy = l.clone();
    drop(ql);
    copy
}
"#;

const BRANCH_STATE_NEGATIVE: &str = r#"
pub struct Task { l: Vec<u32> }
pub fn split(l: &[u32], nl: &[u32], r_counts: &[u32], budget: &[u32]) -> Task {
    // Scratch state with its own name is fine.
    let _counts = r_counts.to_vec();
    let _budget = budget.clone();
    snapshot(l, nl)
}
fn snapshot(
    l: &[u32],
    nl: &[u32],
) -> Task {
    // The blessed copy-on-steal site: owned copies are the point.
    let mut owned = l.to_vec();
    owned.extend_from_slice(&nl.to_vec());
    Task { l: owned }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_clone() {
        let q = vec![1u32];
        assert_eq!(q.to_vec(), q.clone());
    }
}
"#;

#[test]
fn branch_state_fixture_positive() {
    let a = analysis(&[("crates/core/src/mbea.rs", BRANCH_STATE_POSITIVE)], "");
    let lines = fired(&a, "branch-state-clone", "crates/core/src/mbea.rs");
    // q.to_vec() and l.clone() inside a branch body.
    assert_eq!(lines, vec![3, 4]);
}

#[test]
fn branch_state_fixture_negative() {
    let a = analysis(
        &[
            ("crates/core/src/mbea.rs", BRANCH_STATE_NEGATIVE),
            // The same clones outside the walker files: not this rule's business.
            ("crates/core/src/fix.rs", BRANCH_STATE_POSITIVE),
        ],
        "",
    );
    assert!(fired(&a, "branch-state-clone", "crates/core/src/mbea.rs").is_empty());
    assert!(fired(&a, "branch-state-clone", "crates/core/src/fix.rs").is_empty());
}

// ---------------------------------------------------- metrics render symmetry

const METRICS_POSITIVE: &str = r#"
use std::sync::atomic::AtomicU64;
pub struct Metrics {
    pub queries_total: AtomicU64,
    pub orphan_counter: AtomicU64,
}
impl Metrics {
    fn counters(&self) -> [(&'static str, &AtomicU64); 1] {
        [("queries_total", &self.queries_total)]
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn naming_a_counter_in_a_test_does_not_render_it() {
        let _ = "orphan_counter";
    }
}
"#;

const METRICS_NEGATIVE: &str = r#"
use std::sync::atomic::AtomicU64;
pub struct Histogram {
    count: AtomicU64,
}
pub struct Metrics {
    pub queries_total: AtomicU64,
    pub latency: Histogram,
}
impl Metrics {
    fn counters(&self) -> [(&'static str, &AtomicU64); 1] {
        [("queries_total", &self.queries_total)]
    }
}
"#;

#[test]
fn metrics_fixture_positive() {
    let a = analysis(&[("crates/service/src/metrics.rs", METRICS_POSITIVE)], "");
    let lines = fired(
        &a,
        "metrics-render-symmetry",
        "crates/service/src/metrics.rs",
    );
    // Only the orphan: the test-module literal does not count.
    assert_eq!(lines, vec![5]);
}

#[test]
fn metrics_fixture_negative() {
    let a = analysis(
        &[
            ("crates/service/src/metrics.rs", METRICS_NEGATIVE),
            // The same orphan anywhere else is not this rule's business.
            ("crates/service/src/other.rs", METRICS_POSITIVE),
        ],
        "",
    );
    assert!(fired(
        &a,
        "metrics-render-symmetry",
        "crates/service/src/metrics.rs"
    )
    .is_empty());
    assert!(fired(&a, "metrics-render-symmetry", "crates/service/src/other.rs").is_empty());
}
