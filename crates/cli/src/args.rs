//! Hand-rolled argument parsing (no CLI dependency needed for five
//! subcommands) producing a typed [`Command`].

use fair_biclique::config::{Substrate, VertexOrder};
use fair_biclique::maximum::SizeMetric;
use fair_biclique::pipeline::{BiAlgorithm, SsAlgorithm};
use fbe_datasets::corpus::Dataset;
use std::time::Duration;

/// What the graph source of a command is.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphSource {
    /// File stem (`<stem>.edges` + attribute files) or bare edge file.
    Path {
        /// The stem or file path.
        stem: String,
        /// Attribute domain sizes (upper, lower).
        attr_domains: (u16, u16),
    },
}

/// What to generate.
#[derive(Debug, Clone, PartialEq)]
pub enum GenerateKind {
    /// A scaled corpus dataset.
    Dataset(Dataset),
    /// Uniform random bipartite graph `(n_upper, n_lower, m)`.
    Uniform {
        /// `|U|`.
        n_upper: usize,
        /// `|V|`.
        n_lower: usize,
        /// Edge count.
        m: usize,
        /// Attribute domains.
        attrs: (u16, u16),
        /// Seed.
        seed: u64,
    },
}

/// A fully parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Print usage.
    Help,
    /// `fbe generate`.
    Generate {
        /// What to generate.
        kind: GenerateKind,
        /// Output file stem.
        out: String,
    },
    /// `fbe stats`.
    Stats {
        /// Input graph.
        source: GraphSource,
    },
    /// `fbe prune`.
    Prune {
        /// Input graph.
        source: GraphSource,
        /// `α`.
        alpha: u32,
        /// `β`.
        beta: u32,
        /// Bi-side cores instead of single-side.
        bi: bool,
        /// Pruning kind (`none`, `fcore`, `colorful`).
        kind: fair_biclique::config::PruneKind,
    },
    /// `fbe enumerate`.
    Enumerate {
        /// Input graph.
        source: GraphSource,
        /// `α`.
        alpha: u32,
        /// `β`.
        beta: u32,
        /// `δ`.
        delta: u32,
        /// Optional `θ` (switches to the proportion models).
        theta: Option<f64>,
        /// Bi-side model.
        bi: bool,
        /// Single-side algorithm (ignored with `--bi`, which maps it).
        algo: SsAlgorithm,
        /// Vertex ordering.
        order: VertexOrder,
        /// Print only the count.
        count_only: bool,
        /// Print only the top-k largest results.
        top: Option<usize>,
        /// Per-run wall-clock budget.
        budget: Option<Duration>,
        /// Worker threads (>1 runs any model on the parallel engine).
        threads: usize,
        /// Sort results into the canonical deterministic order.
        sorted: bool,
        /// Candidate-set substrate for the enumeration hot path.
        substrate: Substrate,
        /// Print a per-stage span tree on stderr after the timing line.
        trace: bool,
    },
    /// `fbe serve` — run the resident query service over TCP.
    Serve {
        /// Bind host (default `127.0.0.1`).
        host: String,
        /// Bind port (0 = ephemeral; the bound port is printed).
        port: u16,
        /// Max concurrently executing queries.
        workers: usize,
        /// Max queries waiting for a worker before `ERR BUSY`.
        queue: usize,
        /// Prepared-plan cache capacity.
        plan_cache: usize,
        /// Default result cap for collecting queries.
        default_limit: u64,
        /// Confine `LOAD` stems under this directory (`ERR PARSE` for
        /// absolute stems and `..`). Absent = trusted-client mode.
        data_root: Option<String>,
        /// Shard server addresses; non-empty turns this instance into
        /// a scatter-gather coordinator.
        shards: Vec<String>,
    },
    /// `fbe batch` — run protocol lines from a file/stdin, either
    /// against an in-process engine or a live server (`--connect`).
    Batch {
        /// `host:port` of a running `fbe serve` (in-process if absent).
        connect: Option<String>,
        /// Script path (`-` or absent = stdin).
        path: Option<String>,
    },
    /// `fbe maximum`.
    Maximum {
        /// Input graph.
        source: GraphSource,
        /// `α`.
        alpha: u32,
        /// `β`.
        beta: u32,
        /// `δ`.
        delta: u32,
        /// Bi-side model.
        bi: bool,
        /// Size metric.
        metric: SizeMetric,
        /// Vertex ordering.
        order: VertexOrder,
        /// Per-run wall-clock budget.
        budget: Option<Duration>,
        /// Worker threads (>1 searches on the parallel engine).
        threads: usize,
        /// Candidate-set substrate for the search hot path.
        substrate: Substrate,
    },
}

struct Cursor<'a> {
    args: &'a [String],
    i: usize,
}

impl<'a> Cursor<'a> {
    fn next(&mut self) -> Option<&'a str> {
        let out = self.args.get(self.i).map(|s| s.as_str());
        self.i += 1;
        out
    }

    fn value(&mut self, flag: &str) -> Result<&'a str, String> {
        self.next()
            .ok_or_else(|| format!("missing value for {flag}"))
    }
}

fn parse_pair_u16(s: &str, what: &str) -> Result<(u16, u16), String> {
    let parts: Vec<&str> = s.split(',').collect();
    let [a, b] = parts.as_slice() else {
        return Err(format!(
            "{what}: expected two comma-separated values, got {s:?}"
        ));
    };
    let a = a.trim().parse().map_err(|e| format!("{what}: {e}"))?;
    let b = b.trim().parse().map_err(|e| format!("{what}: {e}"))?;
    Ok((a, b))
}

fn parse_dataset(s: &str) -> Result<Dataset, String> {
    match s.to_ascii_lowercase().as_str() {
        "youtube" => Ok(Dataset::Youtube),
        "twitter" => Ok(Dataset::Twitter),
        "imdb" => Ok(Dataset::Imdb),
        "wiki-cat" | "wikicat" | "wiki" => Ok(Dataset::WikiCat),
        "dblp" => Ok(Dataset::Dblp),
        other => Err(format!("unknown dataset {other:?}")),
    }
}

/// Parse `argv` (program name excluded).
pub fn parse(argv: &[String]) -> Result<Command, String> {
    let mut c = Cursor { args: argv, i: 0 };
    let sub = match c.next() {
        None => return Ok(Command::Help),
        Some(s) => s,
    };
    match sub {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "generate" => parse_generate(&mut c),
        "stats" => {
            let (source, rest_ok) = parse_source(&mut c)?;
            if !rest_ok {
                return Err("stats: unexpected trailing arguments".into());
            }
            Ok(Command::Stats { source })
        }
        "prune" => parse_prune(&mut c),
        "enumerate" => parse_enumerate(&mut c),
        "maximum" => parse_maximum(&mut c),
        "serve" => parse_serve(&mut c),
        "batch" => parse_batch(&mut c),
        other => Err(format!("unknown subcommand {other:?}; try `fbe help`")),
    }
}

fn parse_generate(c: &mut Cursor<'_>) -> Result<Command, String> {
    let mut dataset: Option<Dataset> = None;
    let mut uniform: Option<(usize, usize, usize)> = None;
    let mut attrs = (2u16, 2u16);
    let mut seed = 42u64;
    let mut out: Option<String> = None;
    while let Some(a) = c.next() {
        match a {
            "--dataset" => dataset = Some(parse_dataset(c.value("--dataset")?)?),
            "--uniform" => {
                let v = c.value("--uniform")?;
                let parts: Vec<&str> = v.split(',').collect();
                let [nu, nv, m] = parts.as_slice() else {
                    return Err(format!("--uniform: expected NU,NV,M, got {v:?}"));
                };
                let parse_dim = |p: &str| {
                    p.trim()
                        .parse::<usize>()
                        .map_err(|e| format!("--uniform: {e}"))
                };
                uniform = Some((parse_dim(nu)?, parse_dim(nv)?, parse_dim(m)?));
            }
            "--attrs" => attrs = parse_pair_u16(c.value("--attrs")?, "--attrs")?,
            "--seed" => {
                seed = c
                    .value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--out" => out = Some(c.value("--out")?.to_string()),
            other => return Err(format!("generate: unknown argument {other:?}")),
        }
    }
    let out = out.ok_or("generate: --out is required")?;
    let kind = match (dataset, uniform) {
        (Some(d), None) => GenerateKind::Dataset(d),
        (None, Some((nu, nv, m))) => GenerateKind::Uniform {
            n_upper: nu,
            n_lower: nv,
            m,
            attrs,
            seed,
        },
        (Some(_), Some(_)) => return Err("generate: pass --dataset OR --uniform".into()),
        (None, None) => return Err("generate: one of --dataset / --uniform required".into()),
    };
    Ok(Command::Generate { kind, out })
}

/// Parse `<stem> [--attrs AU,AV]`; returns the source and whether the
/// cursor was fully consumed.
fn parse_source(c: &mut Cursor<'_>) -> Result<(GraphSource, bool), String> {
    let stem = c.next().ok_or("missing graph path")?.to_string();
    let mut attrs = (2u16, 2u16);
    let mut consumed_all = true;
    while let Some(a) = c.next() {
        match a {
            "--attrs" => attrs = parse_pair_u16(c.value("--attrs")?, "--attrs")?,
            _ => {
                c.i -= 1;
                consumed_all = false;
                break;
            }
        }
    }
    Ok((
        GraphSource::Path {
            stem,
            attr_domains: attrs,
        },
        consumed_all,
    ))
}

fn parse_prune(c: &mut Cursor<'_>) -> Result<Command, String> {
    let (source, _) = parse_source(c)?;
    let mut alpha = None;
    let mut beta = None;
    let mut bi = false;
    let mut kind = fair_biclique::config::PruneKind::Colorful;
    while let Some(a) = c.next() {
        match a {
            "--alpha" => alpha = Some(parse_u32(c.value("--alpha")?, "--alpha")?),
            "--beta" => beta = Some(parse_u32(c.value("--beta")?, "--beta")?),
            "--bi" => bi = true,
            "--kind" => {
                kind = match c.value("--kind")? {
                    "none" => fair_biclique::config::PruneKind::None,
                    "fcore" => fair_biclique::config::PruneKind::FCore,
                    "colorful" | "cfcore" => fair_biclique::config::PruneKind::Colorful,
                    other => return Err(format!("--kind: unknown {other:?}")),
                }
            }
            other => return Err(format!("prune: unknown argument {other:?}")),
        }
    }
    Ok(Command::Prune {
        source,
        alpha: alpha.ok_or("prune: --alpha required")?,
        beta: beta.ok_or("prune: --beta required")?,
        bi,
        kind,
    })
}

fn parse_u32(s: &str, what: &str) -> Result<u32, String> {
    s.parse().map_err(|e| format!("{what}: {e}"))
}

fn parse_enumerate(c: &mut Cursor<'_>) -> Result<Command, String> {
    let (source, _) = parse_source(c)?;
    let mut alpha = None;
    let mut beta = None;
    let mut delta = None;
    let mut theta = None;
    let mut bi = false;
    let mut algo = SsAlgorithm::FairBcemPP;
    let mut order = VertexOrder::DegreeDesc;
    let mut count_only = false;
    let mut top = None;
    let mut budget = None;
    let mut threads = 1usize;
    let mut sorted = false;
    let mut substrate = Substrate::Auto;
    let mut trace = false;
    while let Some(a) = c.next() {
        match a {
            "--alpha" => alpha = Some(parse_u32(c.value("--alpha")?, "--alpha")?),
            "--beta" => beta = Some(parse_u32(c.value("--beta")?, "--beta")?),
            "--delta" => delta = Some(parse_u32(c.value("--delta")?, "--delta")?),
            "--theta" => {
                theta = Some(
                    c.value("--theta")?
                        .parse::<f64>()
                        .map_err(|e| format!("--theta: {e}"))?,
                )
            }
            "--bi" => bi = true,
            "--algo" => {
                algo = match c.value("--algo")? {
                    "nsf" => SsAlgorithm::Nsf,
                    "bcem" | "fairbcem" => SsAlgorithm::FairBcem,
                    "bcem++" | "fairbcem++" | "pp" => SsAlgorithm::FairBcemPP,
                    other => return Err(format!("--algo: unknown {other:?}")),
                }
            }
            "--order" => {
                order = match c.value("--order")? {
                    "id" => VertexOrder::IdAsc,
                    "degree" | "deg" => VertexOrder::DegreeDesc,
                    other => return Err(format!("--order: unknown {other:?}")),
                }
            }
            "--count-only" => count_only = true,
            "--top" => {
                top = Some(
                    c.value("--top")?
                        .parse::<usize>()
                        .map_err(|e| format!("--top: {e}"))?,
                )
            }
            "--budget-secs" => {
                budget = Some(Duration::from_secs(
                    c.value("--budget-secs")?
                        .parse::<u64>()
                        .map_err(|e| format!("--budget-secs: {e}"))?,
                ))
            }
            "--threads" => {
                threads = c
                    .value("--threads")?
                    .parse::<usize>()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--sorted" => sorted = true,
            "--substrate" => {
                substrate = c
                    .value("--substrate")?
                    .parse()
                    .map_err(|e| format!("--substrate: {e}"))?
            }
            "--trace" => trace = true,
            other => return Err(format!("enumerate: unknown argument {other:?}")),
        }
    }
    let alpha = alpha.ok_or("enumerate: --alpha required")?;
    if alpha == 0 {
        return Err("enumerate: alpha must be >= 1".into());
    }
    if let Some(t) = theta {
        if !(0.0..=0.5).contains(&t) {
            return Err("enumerate: theta must be in [0, 0.5]".into());
        }
    }
    Ok(Command::Enumerate {
        source,
        alpha,
        beta: beta.ok_or("enumerate: --beta required")?,
        delta: delta.ok_or("enumerate: --delta required")?,
        theta,
        bi,
        algo,
        order,
        count_only,
        top,
        budget,
        threads: threads.max(1),
        sorted,
        substrate,
        trace,
    })
}

fn parse_maximum(c: &mut Cursor<'_>) -> Result<Command, String> {
    let (source, _) = parse_source(c)?;
    let mut alpha = None;
    let mut beta = None;
    let mut delta = None;
    let mut bi = false;
    let mut metric = SizeMetric::Vertices;
    let mut order = VertexOrder::DegreeDesc;
    let mut budget = None;
    let mut threads = 1usize;
    let mut substrate = Substrate::Auto;
    while let Some(a) = c.next() {
        match a {
            "--alpha" => alpha = Some(parse_u32(c.value("--alpha")?, "--alpha")?),
            "--beta" => beta = Some(parse_u32(c.value("--beta")?, "--beta")?),
            "--delta" => delta = Some(parse_u32(c.value("--delta")?, "--delta")?),
            "--bi" => bi = true,
            "--metric" => {
                metric = match c.value("--metric")? {
                    "vertices" | "v" => SizeMetric::Vertices,
                    "edges" | "e" => SizeMetric::Edges,
                    other => return Err(format!("--metric: unknown {other:?}")),
                }
            }
            "--order" => {
                order = match c.value("--order")? {
                    "id" => VertexOrder::IdAsc,
                    "degree" | "deg" => VertexOrder::DegreeDesc,
                    other => return Err(format!("--order: unknown {other:?}")),
                }
            }
            "--budget-secs" => {
                budget = Some(Duration::from_secs(
                    c.value("--budget-secs")?
                        .parse::<u64>()
                        .map_err(|e| format!("--budget-secs: {e}"))?,
                ))
            }
            "--threads" => {
                threads = c
                    .value("--threads")?
                    .parse::<usize>()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--substrate" => {
                substrate = c
                    .value("--substrate")?
                    .parse()
                    .map_err(|e| format!("--substrate: {e}"))?
            }
            other => return Err(format!("maximum: unknown argument {other:?}")),
        }
    }
    let alpha = alpha.ok_or("maximum: --alpha required")?;
    if alpha == 0 {
        return Err("maximum: alpha must be >= 1".into());
    }
    Ok(Command::Maximum {
        source,
        alpha,
        beta: beta.ok_or("maximum: --beta required")?,
        delta: delta.ok_or("maximum: --delta required")?,
        bi,
        metric,
        order,
        budget,
        threads: threads.max(1),
        substrate,
    })
}

fn parse_serve(c: &mut Cursor<'_>) -> Result<Command, String> {
    let mut host = "127.0.0.1".to_string();
    let mut port = 7878u16;
    let mut workers = 4usize;
    let mut queue = 16usize;
    let mut plan_cache = 32usize;
    let mut default_limit = 1000u64;
    let mut data_root = None;
    let mut shards = Vec::new();
    while let Some(a) = c.next() {
        match a {
            "--host" => host = c.value("--host")?.to_string(),
            "--port" => {
                port = c
                    .value("--port")?
                    .parse()
                    .map_err(|e| format!("--port: {e}"))?
            }
            "--workers" => {
                workers = c
                    .value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--queue" => {
                queue = c
                    .value("--queue")?
                    .parse()
                    .map_err(|e| format!("--queue: {e}"))?
            }
            "--plan-cache" => {
                plan_cache = c
                    .value("--plan-cache")?
                    .parse()
                    .map_err(|e| format!("--plan-cache: {e}"))?
            }
            "--default-limit" => {
                default_limit = c
                    .value("--default-limit")?
                    .parse()
                    .map_err(|e| format!("--default-limit: {e}"))?
            }
            "--data-root" => data_root = Some(c.value("--data-root")?.to_string()),
            "--shards" => {
                shards = c
                    .value("--shards")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                if shards.is_empty() {
                    return Err("--shards: expected host:port[,host:port...]".into());
                }
            }
            other => return Err(format!("serve: unknown argument {other:?}")),
        }
    }
    Ok(Command::Serve {
        host,
        port,
        workers: workers.max(1),
        queue,
        plan_cache,
        default_limit,
        data_root,
        shards,
    })
}

fn parse_batch(c: &mut Cursor<'_>) -> Result<Command, String> {
    let mut connect = None;
    let mut path = None;
    while let Some(a) = c.next() {
        match a {
            "--connect" => connect = Some(c.value("--connect")?.to_string()),
            other if path.is_none() && !other.starts_with("--") => {
                path = Some(other.to_string());
            }
            other => return Err(format!("batch: unknown argument {other:?}")),
        }
    }
    Ok(Command::Batch { connect, path })
}

/// Map a single-side algorithm choice onto the bi-side family.
pub fn bi_algo_of(algo: SsAlgorithm) -> BiAlgorithm {
    match algo {
        SsAlgorithm::Nsf => BiAlgorithm::Bnsf,
        SsAlgorithm::FairBcem => BiAlgorithm::BFairBcem,
        SsAlgorithm::FairBcemPP => BiAlgorithm::BFairBcemPP,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_generate_dataset() {
        let cmd = parse(&sv(&["generate", "--dataset", "dblp", "--out", "/tmp/d"])).unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                kind: GenerateKind::Dataset(Dataset::Dblp),
                out: "/tmp/d".into()
            }
        );
    }

    #[test]
    fn parses_generate_uniform_with_options() {
        let cmd = parse(&sv(&[
            "generate",
            "--uniform",
            "10,20,30",
            "--attrs",
            "3,2",
            "--seed",
            "9",
            "--out",
            "x",
        ]))
        .unwrap();
        match cmd {
            Command::Generate {
                kind:
                    GenerateKind::Uniform {
                        n_upper,
                        n_lower,
                        m,
                        attrs,
                        seed,
                    },
                out,
            } => {
                assert_eq!((n_upper, n_lower, m), (10, 20, 30));
                assert_eq!(attrs, (3, 2));
                assert_eq!(seed, 9);
                assert_eq!(out, "x");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_enumerate_full() {
        let cmd = parse(&sv(&[
            "enumerate",
            "g",
            "--alpha",
            "3",
            "--beta",
            "2",
            "--delta",
            "1",
            "--theta",
            "0.4",
            "--bi",
            "--algo",
            "bcem",
            "--order",
            "id",
            "--top",
            "5",
            "--budget-secs",
            "7",
            "--threads",
            "4",
            "--sorted",
            "--substrate",
            "bitset",
            "--trace",
        ]))
        .unwrap();
        match cmd {
            Command::Enumerate {
                alpha,
                beta,
                delta,
                theta,
                bi,
                algo,
                order,
                top,
                budget,
                threads,
                sorted,
                substrate,
                trace,
                ..
            } => {
                assert_eq!((alpha, beta, delta), (3, 2, 1));
                assert_eq!(theta, Some(0.4));
                assert!(bi);
                assert_eq!(algo, SsAlgorithm::FairBcem);
                assert_eq!(order, VertexOrder::IdAsc);
                assert_eq!(top, Some(5));
                assert_eq!(budget, Some(Duration::from_secs(7)));
                assert_eq!(threads, 4);
                assert!(sorted);
                assert_eq!(substrate, Substrate::Bitset);
                assert!(trace);
            }
            other => panic!("{other:?}"),
        }
        // --trace defaults off.
        let cmd = parse(&sv(&[
            "enumerate",
            "g",
            "--alpha",
            "1",
            "--beta",
            "1",
            "--delta",
            "0",
        ]))
        .unwrap();
        match cmd {
            Command::Enumerate { trace, .. } => assert!(!trace),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_maximum() {
        let cmd = parse(&sv(&[
            "maximum",
            "g",
            "--alpha",
            "2",
            "--beta",
            "1",
            "--delta",
            "1",
            "--bi",
            "--metric",
            "edges",
            "--threads",
            "3",
            "--substrate",
            "sorted-vec",
        ]))
        .unwrap();
        match cmd {
            Command::Maximum {
                alpha,
                beta,
                delta,
                bi,
                metric,
                threads,
                substrate,
                ..
            } => {
                assert_eq!((alpha, beta, delta), (2, 1, 1));
                assert!(bi);
                assert_eq!(metric, SizeMetric::Edges);
                assert_eq!(threads, 3);
                assert_eq!(substrate, Substrate::SortedVec);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&sv(&["maximum", "g", "--beta", "1", "--delta", "0"])).is_err());
        assert!(parse(&sv(&[
            "maximum", "g", "--alpha", "1", "--beta", "1", "--delta", "0", "--metric", "bogus",
        ]))
        .is_err());
    }

    #[test]
    fn rejects_bad_values() {
        assert!(parse(&sv(&["generate", "--dataset", "nope", "--out", "x"])).is_err());
        assert!(parse(&sv(&[
            "enumerate",
            "g",
            "--alpha",
            "1",
            "--beta",
            "1",
            "--delta",
            "0",
            "--theta",
            "0.9"
        ]))
        .is_err());
        assert!(parse(&sv(&["enumerate", "g", "--beta", "1", "--delta", "0"])).is_err());
        assert!(parse(&sv(&[
            "enumerate",
            "g",
            "--alpha",
            "1",
            "--beta",
            "1",
            "--delta",
            "0",
            "--substrate",
            "bogus"
        ]))
        .is_err());
        assert!(parse(&sv(&["prune", "g", "--alpha", "1"])).is_err());
        assert!(parse(&sv(&["prune", "g", "--alpha", "x", "--beta", "1"])).is_err());
    }

    #[test]
    fn parses_serve_and_batch() {
        let cmd = parse(&sv(&["serve"])).unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                host: "127.0.0.1".into(),
                port: 7878,
                workers: 4,
                queue: 16,
                plan_cache: 32,
                default_limit: 1000,
                data_root: None,
                shards: Vec::new(),
            }
        );
        let cmd = parse(&sv(&[
            "serve",
            "--port",
            "0",
            "--workers",
            "2",
            "--queue",
            "1",
            "--plan-cache",
            "8",
            "--default-limit",
            "50",
        ]))
        .unwrap();
        match cmd {
            Command::Serve {
                port,
                workers,
                queue,
                plan_cache,
                default_limit,
                ..
            } => {
                assert_eq!(port, 0);
                assert_eq!((workers, queue, plan_cache), (2, 1, 8));
                assert_eq!(default_limit, 50);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&sv(&["serve", "--port", "x"])).is_err());

        // Coordinator / confinement flags.
        let cmd = parse(&sv(&[
            "serve",
            "--shards",
            "127.0.0.1:7001, 127.0.0.1:7002",
            "--data-root",
            "/srv/graphs",
        ]))
        .unwrap();
        match cmd {
            Command::Serve {
                shards, data_root, ..
            } => {
                assert_eq!(shards, vec!["127.0.0.1:7001", "127.0.0.1:7002"]);
                assert_eq!(data_root.as_deref(), Some("/srv/graphs"));
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&sv(&["serve", "--shards", " , "])).is_err());
        assert!(parse(&sv(&["serve", "--shards"])).is_err());

        assert_eq!(
            parse(&sv(&["batch"])).unwrap(),
            Command::Batch {
                connect: None,
                path: None
            }
        );
        assert_eq!(
            parse(&sv(&["batch", "--connect", "127.0.0.1:7878", "script.fbe"])).unwrap(),
            Command::Batch {
                connect: Some("127.0.0.1:7878".into()),
                path: Some("script.fbe".into())
            }
        );
        assert!(parse(&sv(&["batch", "a", "b"])).is_err());
    }

    #[test]
    fn dataset_aliases() {
        assert_eq!(parse_dataset("wiki").unwrap(), Dataset::WikiCat);
        assert_eq!(parse_dataset("IMDB").unwrap(), Dataset::Imdb);
    }
}
