//! The graph catalog: named graphs loaded once, queried many times.

use crate::protocol::GenSpec;
use crate::sync::{read_unpoisoned, write_unpoisoned};
use bigraph::BipartiteGraph;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// One resident graph plus its identity and summary statistics.
#[derive(Debug)]
pub struct GraphEntry {
    /// Catalog name.
    pub name: String,
    /// Monotonic load generation: re-`LOAD`ing a name bumps it, which
    /// changes every plan-cache key derived from the graph, so stale
    /// plans can never serve the new graph (they age out of the LRU).
    pub epoch: u64,
    /// The graph itself (immutable once cataloged).
    pub graph: BipartiteGraph,
    /// Where it came from (`path` or generation spec), for `GRAPHS`.
    pub source: String,
}

impl GraphEntry {
    /// One-line summary for `GRAPHS`/`LOAD` replies.
    pub fn summary(&self) -> String {
        let g = &self.graph;
        format!(
            "{} upper={} lower={} edges={} source={}",
            self.name,
            g.n_upper(),
            g.n_lower(),
            g.n_edges(),
            self.source
        )
    }
}

/// Thread-safe name → graph map.
#[derive(Debug, Default)]
pub struct GraphCatalog {
    graphs: RwLock<BTreeMap<String, Arc<GraphEntry>>>,
    epoch: AtomicU64,
}

impl GraphCatalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) `name`, returning the new entry.
    pub fn insert(&self, name: &str, graph: BipartiteGraph, source: String) -> Arc<GraphEntry> {
        let entry = Arc::new(GraphEntry {
            name: name.to_string(),
            // The epoch only needs to be unique per insert — the map's
            // write lock below is what publishes the entry to others.
            // lint: ordering: uniqueness, not synchronization
            epoch: self.epoch.fetch_add(1, Ordering::Relaxed),
            graph,
            source,
        });
        write_unpoisoned(&self.graphs).insert(name.to_string(), Arc::clone(&entry));
        entry
    }

    /// Look up `name`.
    pub fn get(&self, name: &str) -> Option<Arc<GraphEntry>> {
        read_unpoisoned(&self.graphs).get(name).cloned()
    }

    /// Remove `name`; true when it existed.
    pub fn remove(&self, name: &str) -> bool {
        write_unpoisoned(&self.graphs).remove(name).is_some()
    }

    /// Number of cataloged graphs.
    pub fn len(&self) -> usize {
        read_unpoisoned(&self.graphs).len()
    }

    /// True when no graph is loaded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Summaries in name order.
    pub fn summaries(&self) -> Vec<String> {
        read_unpoisoned(&self.graphs)
            .values()
            .map(|e| e.summary())
            .collect()
    }
}

/// Build a graph from a `GEN` spec.
pub fn generate(spec: GenSpec) -> (BipartiteGraph, String) {
    match spec {
        GenSpec::Dataset(d) => {
            let s = fbe_datasets::corpus::spec(d);
            (s.build(), format!("gen:{d}"))
        }
        GenSpec::Uniform {
            n_upper,
            n_lower,
            m,
            seed,
            attrs,
        } => (
            bigraph::generate::random_uniform(n_upper, n_lower, m, attrs.0, attrs.1, seed),
            format!("gen:uniform:{n_upper},{n_lower},{m},{seed}"),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::generate::random_uniform;

    #[test]
    fn insert_get_remove_and_epochs() {
        let c = GraphCatalog::new();
        assert!(c.is_empty());
        let g1 = c.insert("a", random_uniform(4, 4, 8, 1, 1, 0), "test".into());
        let g2 = c.insert("b", random_uniform(5, 5, 10, 1, 1, 0), "test".into());
        assert_ne!(g1.epoch, g2.epoch);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get("a").unwrap().graph.n_upper(), 4);
        assert!(c.get("zzz").is_none());

        // Replacing bumps the epoch — stale plan keys stop matching.
        let g1b = c.insert("a", random_uniform(6, 6, 12, 1, 1, 0), "test".into());
        assert!(g1b.epoch > g1.epoch);
        assert_eq!(c.len(), 2);

        assert!(c.remove("a"));
        assert!(!c.remove("a"));
        assert_eq!(c.len(), 1);
        let s = c.summaries();
        assert_eq!(s.len(), 1);
        assert!(s[0].starts_with("b upper=5"));
    }

    #[test]
    fn generate_builds_both_kinds() {
        let (g, src) = generate(GenSpec::Uniform {
            n_upper: 10,
            n_lower: 12,
            m: 30,
            seed: 3,
            attrs: (2, 2),
        });
        assert_eq!(g.n_upper(), 10);
        assert_eq!(g.n_edges(), 30);
        assert!(src.contains("uniform"));
        let (g, src) = generate(GenSpec::Dataset(fbe_datasets::corpus::Dataset::Youtube));
        assert!(g.n_edges() > 0);
        assert!(src.contains("Youtube"));
    }
}
