//! Offline batch execution and the line-protocol TCP client.
//!
//! `run_batch` feeds protocol lines from any reader to an in-process
//! [`Engine`], writing reply blocks exactly as the TCP server would —
//! the same scripts drive `fbe batch` offline and `fbe batch
//! --connect` against a live server.

use crate::engine::{Engine, Outcome, Session};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;

/// Run protocol `input` against an in-process engine, writing reply
/// blocks to `out`. Lines that are empty or start with `#` are
/// skipped (script comments). Stops early after `SHUTDOWN`.
pub fn run_batch(
    engine: &Engine,
    input: &mut dyn BufRead,
    out: &mut dyn Write,
) -> std::io::Result<()> {
    // One session per script, mirroring one-per-connection on the
    // TCP path: a TRACE line applies to the rest of the script.
    let mut session = Session::new();
    let mut line = String::new();
    loop {
        line.clear();
        if input.read_line(&mut line)? == 0 {
            return Ok(());
        }
        let cmd = line.trim();
        if cmd.is_empty() || cmd.starts_with('#') {
            continue;
        }
        match engine.handle_line_in(cmd, &mut session) {
            Outcome::Reply(reply) => reply.write_to(out)?,
            Outcome::Shutdown(reply) => {
                reply.write_to(out)?;
                return Ok(());
            }
        }
    }
}

/// Drive a live server at `addr` with the same script format: each
/// command is sent, its full reply block (through the `.` terminator)
/// is relayed to `out`. The greeting block is relayed first. Stops
/// after `SHUTDOWN`'s reply (or end of script).
pub fn run_client(addr: &str, input: &mut dyn BufRead, out: &mut dyn Write) -> std::io::Result<()> {
    let stream = TcpStream::connect(addr)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    relay_block(&mut reader, out)?; // greeting
    let mut line = String::new();
    loop {
        line.clear();
        if input.read_line(&mut line)? == 0 {
            return Ok(());
        }
        let cmd = line.trim();
        if cmd.is_empty() || cmd.starts_with('#') {
            continue;
        }
        writeln!(writer, "{cmd}")?;
        writer.flush()?;
        relay_block(&mut reader, out)?;
        if cmd.to_ascii_uppercase().starts_with("SHUTDOWN") {
            return Ok(());
        }
    }
}

/// Copy one reply block (through the terminator line) from `reader`
/// to `out`.
fn relay_block(reader: &mut dyn BufRead, out: &mut dyn Write) -> std::io::Result<()> {
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed mid-reply",
            ));
        }
        out.write_all(line.as_bytes())?;
        if line.trim_end() == crate::protocol::TERMINATOR {
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServiceConfig;
    use std::io::Cursor;

    #[test]
    fn batch_runs_a_script_with_comments() {
        let engine = Engine::new(ServiceConfig::default());
        let script = "\
# generate then query twice (second hit comes from the plan cache)
GEN g uniform:12,12,60,3

ENUM g ssfbc alpha=1 beta=1 delta=1 count-only
ENUM g ssfbc alpha=1 beta=1 delta=1 count-only
STATS
SHUTDOWN
PING
";
        let mut out = Vec::new();
        run_batch(&engine, &mut Cursor::new(script), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("cached=false"));
        assert!(text.contains("cached=true"));
        assert!(text.contains("plan_cache_hits 1"));
        assert!(text.contains("OK bye"));
        // The script stops at SHUTDOWN: the trailing PING is unanswered.
        assert!(!text.contains("pong"));
        // Every reply block is terminated.
        assert_eq!(
            text.lines().filter(|l| *l == ".").count(),
            5,
            "five reply blocks: GEN, ENUM, ENUM, STATS, SHUTDOWN\n{text}"
        );
    }

    #[test]
    fn client_relays_blocks_from_a_live_server() {
        let engine = Engine::new(ServiceConfig::default());
        let server = crate::server::Server::bind("127.0.0.1:0", engine).unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || server.run());

        let script =
            "GEN g uniform:8,8,30,1\nENUM g ssfbc alpha=1 beta=1 delta=1 count-only\nSHUTDOWN\n";
        let mut out = Vec::new();
        run_client(&addr, &mut Cursor::new(script), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("protocol=1"), "greeting relayed: {text}");
        assert!(text.contains("model=SSFBC"));
        assert!(text.contains("OK bye"));
        handle.join().unwrap().unwrap();
    }
}
