//! Colorful fair α-β core pruning (`CFCore`, Algorithm 2).
//!
//! Pipeline (fair side = lower, per the paper):
//!
//! 1. peel to the fair α-β core with [`crate::fcore::fcore`];
//! 2. build the 2-hop graph `H` on the fair side
//!    ([`bigraph::twohop::construct_2hop`], Algorithm 3) — in an SSFBC
//!    every pair of fair-side vertices shares ≥ α neighbors, so each
//!    SSFBC's fair side is a clique in `H` (Observation 1);
//! 3. drop `H`-vertices of degree `< A_n^V·β − 1` (a fair clique has at
//!    least `A_n^V·β` vertices);
//! 4. greedy-color `H` and peel to the **ego colorful β-core**
//!    (Definitions 9–10): every surviving vertex must see ≥ β distinct
//!    colors among `N(u) ∪ {u}` for *every* attribute value — a clique
//!    is rainbow, so a fair clique forces β distinct colors per
//!    attribute (Lemma 2);
//! 5. remove the peeled fair-side vertices from the bipartite graph and
//!    run `FCore` once more.
//!
//! Losslessness: a vertex removed here is in no *maximal* fair biclique
//! (Lemma 2); and any witness that would extend a candidate biclique is
//! itself inside a maximal fair biclique, hence inside this core — so
//! maximality checked on the pruned graph equals maximality on the
//! original.

use crate::config::{FairParams, PrepareCtl, StopReason};
use crate::fcore::{compose, fcore_ctl, stats_of, PruneOutcome};
use crate::obs::SpanRecorder;
use bigraph::coloring::greedy_color_by_degree;
use bigraph::subgraph::induce;
use bigraph::twohop::construct_2hop;
use bigraph::{BipartiteGraph, Side, UniGraph, VertexId};

/// Peel `h` to its ego colorful `k`-core (Definition 10), returning the
/// membership mask.
///
/// The *ego colorful degree* `ED_a(u)` is the number of distinct colors
/// among `{v ∈ N(u) ∪ {u} : v.val = a}`; a vertex survives iff
/// `min_a ED_a(u) ≥ k` in the remaining graph.
pub fn ego_colorful_core(h: &UniGraph, k: u32) -> Vec<bool> {
    let n = h.n();
    if n == 0 {
        return Vec::new();
    }
    let coloring = greedy_color_by_degree(h);
    let n_colors = (coloring.n_colors as usize).max(1);
    let n_attrs = (h.n_attr_values() as usize).max(1);

    // M[v][attr][color] = multiplicity, flattened. ED[v][attr] =
    // number of colors with non-zero multiplicity.
    let mut m = vec![0u32; n * n_attrs * n_colors];
    let mut ed = vec![0u32; n * n_attrs];
    let slot = |v: usize, a: usize, c: usize| (v * n_attrs + a) * n_colors + c;

    for v in 0..n as VertexId {
        // Ego: the vertex itself counts (Definition 9).
        let va = h.attr(v) as usize;
        let vc = coloring.color[v as usize] as usize;
        m[slot(v as usize, va, vc)] += 1;
        ed[v as usize * n_attrs + va] += 1;
        for &w in h.neighbors(v) {
            let wa = h.attr(w) as usize;
            let wc = coloring.color[w as usize] as usize;
            let s = slot(v as usize, wa, wc);
            if m[s] == 0 {
                ed[v as usize * n_attrs + wa] += 1;
            }
            m[s] += 1;
        }
    }

    let ed_min =
        |ed: &[u32], v: usize| -> u32 { *ed[v * n_attrs..(v + 1) * n_attrs].iter().min().unwrap() };

    let mut alive = vec![true; n];
    let mut stack: Vec<VertexId> = Vec::new();
    #[allow(clippy::needless_range_loop)]
    for v in 0..n {
        if ed_min(&ed, v) < k {
            alive[v] = false;
            stack.push(v as VertexId);
        }
    }
    while let Some(u) = stack.pop() {
        let ua = h.attr(u) as usize;
        let uc = coloring.color[u as usize] as usize;
        for &v in h.neighbors(u) {
            if !alive[v as usize] {
                continue;
            }
            let s = slot(v as usize, ua, uc);
            debug_assert!(m[s] > 0);
            m[s] -= 1;
            if m[s] == 0 {
                let e = v as usize * n_attrs + ua;
                ed[e] -= 1;
                if ed[e] < k {
                    alive[v as usize] = false;
                    stack.push(v);
                }
            }
        }
    }
    alive
}

/// `CFCore` (Algorithm 2): colorful fair α-β core pruning for the
/// single-side model.
pub fn cfcore(g: &BipartiteGraph, params: FairParams) -> PruneOutcome {
    cfcore_ctl(g, params, &PrepareCtl::UNBOUNDED).expect("unbounded prepare is never interrupted")
}

/// [`cfcore`] with cooperative interruption: `ctl` is threaded into the
/// `FCore` peels and probed between the cascade's stages (the 2-hop
/// projection and the coloring are the expensive phases, so each stage
/// boundary is a natural abort point).
pub fn cfcore_ctl(
    g: &BipartiteGraph,
    params: FairParams,
    ctl: &PrepareCtl,
) -> Result<PruneOutcome, StopReason> {
    cfcore_rec(g, params, ctl, &mut SpanRecorder::disabled())
}

/// [`cfcore_ctl`] with per-stage span recording: the initial peel
/// (`core-peel`), the 2-hop projection (`2hop`), the degree filter +
/// ego colorful core (`ego-core`), and the final re-peel (`re-peel`)
/// each become one span. A disabled recorder makes this identical to
/// [`cfcore_ctl`] (no clock reads, no allocation).
pub fn cfcore_rec(
    g: &BipartiteGraph,
    params: FairParams,
    ctl: &PrepareCtl,
    rec: &mut SpanRecorder,
) -> Result<PruneOutcome, StopReason> {
    // Stage 1: fair α-β core.
    let s1 = rec.timed("core-peel", || fcore_ctl(g, params, ctl))?;
    let g1 = &s1.sub.graph;
    let n_attrs = g1.n_attr_values(Side::Lower) as i64;
    if let Some(r) = ctl.interrupted() {
        return Err(r);
    }

    // Stage 2: 2-hop projection of the fair side (threaded when the
    // post-FCore graph is still large).
    let h = rec.timed("2hop", || {
        if g1.n_lower() >= 20_000 {
            let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
            bigraph::twohop::construct_2hop_par(g1, Side::Lower, params.alpha as usize, threads)
        } else {
            construct_2hop(g1, Side::Lower, params.alpha as usize)
        }
    });
    if let Some(r) = ctl.interrupted() {
        return Err(r);
    }

    // Stages 3+4: fair cliques have >= A_n * beta vertices, so each
    // member needs >= A_n * beta - 1 neighbors in H; then peel the
    // reduced 2-hop graph to its ego colorful beta-core.
    let (h2_map, ego_alive) = rec.timed("ego-core", || {
        let deg_thresh = n_attrs * params.beta as i64 - 1;
        let keep_deg: Vec<bool> = (0..h.n() as VertexId)
            .map(|v| h.degree(v) as i64 >= deg_thresh)
            .collect();
        let (h2, h2_map) = h.induce(&keep_deg);
        (h2_map, ego_colorful_core(&h2, params.beta))
    });
    if let Some(r) = ctl.interrupted() {
        return Err(r);
    }

    // Stage 5: project survivors back to the bipartite graph and
    // re-run FCore.
    let (s2, s3) = rec.timed("re-peel", || {
        let mut keep_lower = vec![false; g1.n_lower()];
        for (i, &old) in h2_map.iter().enumerate() {
            if ego_alive[i] {
                keep_lower[old as usize] = true;
            }
        }
        let s2 = induce(g1, &vec![true; g1.n_upper()], &keep_lower);
        fcore_ctl(&s2.graph, params, ctl).map(|s3| (s2, s3))
    })?;

    let total = compose(&s1.sub, compose(&s2, s3.sub));
    let stats = stats_of(g, &total);
    Ok(PruneOutcome { sub: total, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fcore::fcore;
    use bigraph::generate::{plant_bicliques, random_uniform};
    use bigraph::GraphBuilder;

    #[test]
    fn ego_core_on_fair_clique() {
        // K4 with attrs 0,0,1,1: 4 colors, ED per attr = 2 for all.
        let edges: Vec<(u32, u32)> = vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        let h = UniGraph::from_edges(2, vec![0, 0, 1, 1], &edges);
        let alive = ego_colorful_core(&h, 2);
        assert!(alive.iter().all(|&a| a), "fair K4 survives ego 2-core");
        let alive3 = ego_colorful_core(&h, 3);
        assert!(
            alive3.iter().all(|&a| !a),
            "K4 cannot give 3 colors per attr"
        );
    }

    #[test]
    fn ego_core_unbalanced_attrs_peels() {
        // Triangle 0,1,2 all attr 0, pendant 3 attr 1 on vertex 2:
        // attr-1 ego colorful degree of 0 and 1 is 0.
        let h = UniGraph::from_edges(2, vec![0, 0, 0, 1], &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let alive = ego_colorful_core(&h, 1);
        assert!(!alive[0]);
        assert!(!alive[1]);
        // After peeling 0 and 1, vertex 2-3 pair: 2 sees colors {self
        // attr0} and {3: attr1}; 3 sees {self attr1, 2 attr0}: both ok.
        assert!(alive[2]);
        assert!(alive[3]);
    }

    #[test]
    fn ego_core_k_zero_keeps_all() {
        let h = UniGraph::from_edges(2, vec![0, 1, 0], &[(0, 1)]);
        let alive = ego_colorful_core(&h, 0);
        assert!(alive.iter().all(|&a| a));
    }

    #[test]
    fn ego_core_empty_graph() {
        let h = UniGraph::from_edges(2, vec![], &[]);
        assert!(ego_colorful_core(&h, 2).is_empty());
    }

    #[test]
    fn ego_core_cascades() {
        // Path 0-1-2-3-4, alternating attrs: removal cascades fully
        // for k=2 (no vertex sees 2 colors of each attr in a path once
        // ends go).
        let h = UniGraph::from_edges(2, vec![0, 1, 0, 1, 0], &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let alive = ego_colorful_core(&h, 2);
        assert!(alive.iter().all(|&a| !a));
    }

    #[test]
    fn cfcore_prunes_at_least_as_much_as_fcore() {
        for seed in 0..6u64 {
            let base = random_uniform(40, 50, 260, 2, 2, seed);
            let g = plant_bicliques(&base, 2, 4, 6, 1.0, seed + 100);
            for (a, b) in [(2, 2), (3, 2), (2, 3)] {
                let p = FairParams::unchecked(a, b, 1);
                let f = fcore(&g, p);
                let c = cfcore(&g, p);
                assert!(
                    c.stats.remaining_vertices() <= f.stats.remaining_vertices(),
                    "seed={seed} a={a} b={b}: cfcore {} > fcore {}",
                    c.stats.remaining_vertices(),
                    f.stats.remaining_vertices()
                );
                // And the result still satisfies the fair-core property
                // (CFCore finishes with an FCore pass).
                let gg = &c.sub.graph;
                for u in 0..gg.n_upper() as u32 {
                    let ad = gg.attr_degrees(Side::Upper, u);
                    assert!(ad.iter().all(|&d| d as u32 >= b));
                }
                for v in 0..gg.n_lower() as u32 {
                    assert!(gg.degree(Side::Lower, v) as u32 >= a);
                }
            }
        }
    }

    #[test]
    fn cfcore_keeps_planted_fair_block() {
        // A complete 4x6 block with balanced attrs survives (α=3, β=2).
        let mut b = GraphBuilder::new(2, 2);
        for u in 0..4 {
            for v in 0..6 {
                b.add_edge(u, v);
            }
        }
        // fringe
        b.add_edge(4, 6);
        b.set_attrs_upper(&[0, 1, 0, 1, 0]);
        b.set_attrs_lower(&[0, 0, 0, 1, 1, 1, 0]);
        let g = b.build().unwrap();
        let out = cfcore(&g, FairParams::unchecked(3, 2, 1));
        assert_eq!(out.stats.upper_after, 4);
        assert_eq!(out.stats.lower_after, 6);
        assert_eq!(out.sub.lower_to_parent, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn cfcore_mapping_is_consistent() {
        let base = random_uniform(30, 30, 200, 2, 2, 17);
        let g = plant_bicliques(&base, 1, 4, 5, 1.0, 18);
        let out = cfcore(&g, FairParams::unchecked(2, 2, 1));
        let sg = &out.sub.graph;
        for (u, v) in sg.edges() {
            let pu = out.sub.upper_to_parent[u as usize];
            let pv = out.sub.lower_to_parent[v as usize];
            assert!(g.has_edge(pu, pv));
            assert_eq!(sg.attr(Side::Upper, u), g.attr(Side::Upper, pu));
            assert_eq!(sg.attr(Side::Lower, v), g.attr(Side::Lower, pv));
        }
    }
}
