//! `BFairBCEM` / `BFairBCEM++` (Algorithm 9): bi-side fair biclique
//! enumeration.
//!
//! Both algorithms rest on Observation 6: for any BSFBC `(A, B)`, the
//! pair `(N(B), B)` is a *single-side* fair biclique — `B` is fair, and
//! any fair extension of `B` against `N(B)` would extend `(A, B)` too.
//! So the driver enumerates SSFBCs (with `FairBCEM` or `FairBCEM++`)
//! and expands each `(L', R')`:
//!
//! 1. `Combination(L', A(U), α, δ)` yields every maximal fair subset
//!    `l' ⊆ L'` (candidate upper sides);
//! 2. `(l', R')` is a BSFBC iff `R'` is a maximal fair subset of
//!    `N(l')` (`MFSCheck`).
//!
//! Non-redundancy: an emitted pair determines its source SSFBC
//! (`L' = N(R')`), and `Combination` emits each `l'` once.

use crate::biclique::{BicliqueSink, EnumStats};
use crate::config::{
    Budget, BudgetClock, BudgetLane, FairParams, SharedBudget, Substrate, VertexOrder,
};
use crate::fairbcem::fairbcem_with_clock;
use crate::fairbcem_pp::fairbcem_pp_shared;
use crate::fairset::{for_each_max_fair_subset, is_maximal_fair_subset, AttrCounts};
use bigraph::candidate::{AdjOps, CandidateOps, CandidatePlan};
use bigraph::{BipartiteGraph, Side, VertexId};

/// The upper-side expansion step of Algorithm 9 (lines 4–8): given an
/// SSFBC `(L', R')`, emit the BSFBCs contained in it.
///
/// Holds no sink — callers pass one per call ([`BiChainSink`] wires
/// it behind an SSFBC enumerator; the parallel engine gives each
/// worker its own expander + sink pair).
pub(crate) struct BiSideExpander<'a> {
    g: &'a BipartiteGraph,
    params: FairParams,
    /// Upper-side candidate ops (`N(l')` intersects upper adjacency).
    ops: AdjOps<'a>,
    /// Budget over upper-side expansion steps (one `Combination` can
    /// be binomially large).
    clock: BudgetClock,
    /// BSFBCs emitted so far.
    pub emitted: u64,
    groups: Vec<Vec<VertexId>>,
    /// Long-lived scratch for the per-subset MFSCheck: `N(l')`, the
    /// lower counts of `R'`, and the candidate counts of `N(l') − R'`.
    nl: Vec<VertexId>,
    base: AttrCounts,
    cand: AttrCounts,
}

impl<'a> BiSideExpander<'a> {
    /// Constructor taking explicit upper-side candidate ops and a
    /// clock — the parallel engine hands every worker its own handles
    /// drawing from the shared rows and countdown.
    pub(crate) fn with_clock(
        g: &'a BipartiteGraph,
        params: FairParams,
        ops: AdjOps<'a>,
        clock: BudgetClock,
    ) -> Self {
        let n_attrs_u = (g.n_attr_values(Side::Upper) as usize).max(1);
        let n_attrs_l = (g.n_attr_values(Side::Lower) as usize).max(1);
        BiSideExpander {
            g,
            params,
            ops,
            clock,
            emitted: 0,
            groups: vec![Vec::new(); n_attrs_u],
            nl: Vec::new(),
            base: AttrCounts::zeros(n_attrs_l),
            cand: AttrCounts::zeros(n_attrs_l),
        }
    }

    /// True when the expansion budget expired (results are a subset).
    pub(crate) fn aborted(&self) -> bool {
        self.clock.exhausted
    }

    /// Why the expansion stage stopped (None while unexhausted).
    pub(crate) fn stop_reason(&self) -> Option<crate::config::StopReason> {
        self.clock.stop_reason()
    }

    pub(crate) fn expand(&mut self, l: &[VertexId], r: &[VertexId], sink: &mut dyn BicliqueSink) {
        if self.clock.exhausted {
            return;
        }
        // Group L' by upper attribute for Combination.
        let attrs_u = self.g.attrs(Side::Upper);
        let attrs_l = self.g.attrs(Side::Lower);
        for g_attr in self.groups.iter_mut() {
            g_attr.clear();
        }
        for &u in l {
            self.groups[attrs_u[u as usize] as usize].push(u);
        }

        self.base.recount(r, attrs_l);
        let params = self.params;
        let ops = &mut self.ops;
        let emitted = &mut self.emitted;
        let clock = &mut self.clock;
        let nl = &mut self.nl;
        let base = &self.base;
        let cand = &mut self.cand;
        for_each_max_fair_subset(&self.groups, params.alpha, params.delta, &mut |l_sub| {
            // Candidates for extending R': N(l_sub) \ R'.
            ops.common_neighbors_into(l_sub, nl);
            debug_assert!(bigraph::is_sorted_subset(r, nl), "R' ⊆ N(l')");
            cand.clear();
            let mut i = 0usize;
            for &v in nl.iter() {
                while i < r.len() && r[i] < v {
                    i += 1;
                }
                if i < r.len() && r[i] == v {
                    continue;
                }
                cand.inc(attrs_l[v as usize]);
            }
            if is_maximal_fair_subset(base.as_slice(), cand.as_slice(), params.beta, params.delta)
                && clock.try_result()
            {
                sink.emit(l_sub, r);
                *emitted += 1;
            }
            clock.tick()
        });
    }
}

/// [`BicliqueSink`] adapter chaining an SSFBC enumerator into
/// [`BiSideExpander::expand`] with a downstream sink.
pub(crate) struct BiChainSink<'x, 'g> {
    /// The bi-side expansion state.
    pub(crate) exp: &'x mut BiSideExpander<'g>,
    /// Where BSFBCs land.
    pub(crate) sink: &'x mut dyn BicliqueSink,
}

impl BicliqueSink for BiChainSink<'_, '_> {
    fn emit(&mut self, l: &[VertexId], r: &[VertexId]) {
        self.exp.expand(l, r, self.sink);
    }
}

/// `BFairBCEM`: bi-side enumeration driven by `FairBCEM`.
pub fn bfairbcem_on_pruned(
    g: &BipartiteGraph,
    params: FairParams,
    order: VertexOrder,
    budget: Budget,
    sink: &mut dyn BicliqueSink,
) -> EnumStats {
    bfairbcem_on_pruned_with(g, params, order, budget, Substrate::Auto, sink)
}

/// [`bfairbcem_on_pruned`] with an explicit candidate substrate for
/// the upper-side expansion stage.
pub fn bfairbcem_on_pruned_with(
    g: &BipartiteGraph,
    params: FairParams,
    order: VertexOrder,
    budget: Budget,
    substrate: Substrate,
    sink: &mut dyn BicliqueSink,
) -> EnumStats {
    // One shared budget across all stages: the SSFBC stage is
    // intermediate (exempt from the result cap — only BSFBCs are
    // final results), but any tripped limit stops the whole chain.
    let plan = CandidatePlan::build(g, substrate, true);
    let shared = SharedBudget::new(budget);
    let mut expander = BiSideExpander::with_clock(
        g,
        params,
        plan.ops(g, Side::Upper),
        shared.clock(BudgetLane::Expand),
    );
    let mut chain = BiChainSink {
        exp: &mut expander,
        sink,
    };
    let inner_clock = shared.clock(BudgetLane::Walk).exempt_results();
    let mut stats = fairbcem_with_clock(g, params, order, inner_clock, &mut chain);
    stats.emitted = expander.emitted;
    stats.aborted |= expander.aborted();
    stats.stop = stats.stop.or_else(|| expander.stop_reason());
    stats
}

/// `BFairBCEM++`: bi-side enumeration driven by `FairBCEM++`.
pub fn bfairbcem_pp_on_pruned(
    g: &BipartiteGraph,
    params: FairParams,
    order: VertexOrder,
    budget: Budget,
    sink: &mut dyn BicliqueSink,
) -> EnumStats {
    bfairbcem_pp_on_pruned_with(g, params, order, budget, Substrate::Auto, sink)
}

/// [`bfairbcem_pp_on_pruned`] with an explicit candidate substrate
/// shared by the walker, the fair-side expansion, and the upper-side
/// expansion.
pub fn bfairbcem_pp_on_pruned_with(
    g: &BipartiteGraph,
    params: FairParams,
    order: VertexOrder,
    budget: Budget,
    substrate: Substrate,
    sink: &mut dyn BicliqueSink,
) -> EnumStats {
    let plan = CandidatePlan::build(g, substrate, true);
    bfairbcem_pp_planned(g, params, order, &SharedBudget::new(budget), &plan, sink)
}

/// `BFairBCEM++` on a pre-resolved [`CandidatePlan`] (built with upper
/// rows) and an externally owned shared budget — the entry point the
/// prepared-plan cache ([`crate::prepared`]) reuses across queries.
pub(crate) fn bfairbcem_pp_planned(
    g: &BipartiteGraph,
    params: FairParams,
    order: VertexOrder,
    shared: &std::sync::Arc<SharedBudget>,
    plan: &CandidatePlan,
    sink: &mut dyn BicliqueSink,
) -> EnumStats {
    let mut expander = BiSideExpander::with_clock(
        g,
        params,
        plan.ops(g, Side::Upper),
        shared.clock(BudgetLane::Expand),
    );
    let mut chain = BiChainSink {
        exp: &mut expander,
        sink,
    };
    let mut stats = fairbcem_pp_shared(g, params, order, shared, true, plan, &mut chain);
    stats.emitted = expander.emitted;
    stats.aborted |= expander.aborted();
    stats.stop = stats.stop.or_else(|| expander.stop_reason());
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::biclique::{Biclique, CollectSink};
    use crate::verify::oracle_bsfbc;
    use bigraph::generate::random_uniform;
    use bigraph::GraphBuilder;
    use std::collections::BTreeSet;

    fn run(
        g: &BipartiteGraph,
        params: FairParams,
        order: VertexOrder,
        pp: bool,
    ) -> BTreeSet<Biclique> {
        let mut sink = CollectSink::default();
        let stats = if pp {
            bfairbcem_pp_on_pruned(g, params, order, Budget::UNLIMITED, &mut sink)
        } else {
            bfairbcem_on_pruned(g, params, order, Budget::UNLIMITED, &mut sink)
        };
        assert!(!stats.aborted);
        let set: BTreeSet<Biclique> = sink.bicliques.iter().cloned().collect();
        assert_eq!(set.len(), sink.bicliques.len(), "no duplicate emissions");
        assert_eq!(stats.emitted as usize, set.len());
        set
    }

    #[test]
    fn matches_oracle_on_block() {
        let mut b = GraphBuilder::new(2, 2);
        for u in 0..4 {
            for v in 0..5 {
                b.add_edge(u, v);
            }
        }
        b.add_edge(4, 5);
        b.set_attrs_upper(&[0, 1, 0, 1, 0]);
        b.set_attrs_lower(&[0, 0, 1, 1, 0, 1]);
        let g = b.build().unwrap();
        for params in [
            FairParams::unchecked(1, 1, 1),
            FairParams::unchecked(2, 2, 1),
            FairParams::unchecked(1, 2, 0),
        ] {
            let want = oracle_bsfbc(&g, params);
            for pp in [false, true] {
                let got = run(&g, params, VertexOrder::DegreeDesc, pp);
                assert_eq!(got, want, "params {params} pp={pp}");
            }
        }
    }

    #[test]
    fn matches_oracle_on_random_graphs() {
        for seed in 0..25u64 {
            let g = random_uniform(7, 8, 26, 2, 2, seed);
            for params in [
                FairParams::unchecked(1, 1, 1),
                FairParams::unchecked(1, 1, 0),
                FairParams::unchecked(2, 1, 1),
                FairParams::unchecked(1, 2, 2),
            ] {
                let want = oracle_bsfbc(&g, params);
                for pp in [false, true] {
                    for order in [VertexOrder::IdAsc, VertexOrder::DegreeDesc] {
                        let got = run(&g, params, order, pp);
                        assert_eq!(
                            got, want,
                            "seed {seed} params {params} pp={pp} order {order:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn bsfbc_upper_sides_are_fair() {
        let g = random_uniform(8, 8, 30, 2, 2, 99);
        let params = FairParams::unchecked(1, 1, 1);
        let got = run(&g, params, VertexOrder::DegreeDesc, true);
        for b in &got {
            let cu = AttrCounts::of(&b.upper, g.attrs(Side::Upper), 2);
            let cl = AttrCounts::of(&b.lower, g.attrs(Side::Lower), 2);
            assert!(crate::fairset::is_fair(cu.as_slice(), 1, 1), "{b}");
            assert!(crate::fairset::is_fair(cl.as_slice(), 1, 1), "{b}");
            for &u in &b.upper {
                for &v in &b.lower {
                    assert!(g.has_edge(u, v), "{b}");
                }
            }
        }
    }

    #[test]
    fn three_attrs_both_sides() {
        for seed in 0..8u64 {
            let g = random_uniform(7, 7, 28, 3, 2, seed);
            let params = FairParams::unchecked(1, 1, 2);
            let want = oracle_bsfbc(&g, params);
            let got = run(&g, params, VertexOrder::DegreeDesc, true);
            assert_eq!(got, want, "seed {seed}");
        }
    }
}
