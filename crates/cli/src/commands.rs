//! Execution of parsed [`Command`]s.

use crate::args::{bi_algo_of, Command, GenerateKind, GraphSource};
use bigraph::{BipartiteGraph, Side};
use fair_biclique::biclique::{CollectSink, CountSink, TopKSink};
use fair_biclique::config::{Budget, FairParams, ProParams, RunConfig, Substrate, VertexOrder};
use fair_biclique::pipeline::{
    prune_bi_side, prune_single_side, run_bsfbc, run_pbsfbc, run_pssfbc, run_ssfbc, SsAlgorithm,
};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Execute a command, returning the text to print.
pub fn execute(cmd: Command) -> Result<String, String> {
    match cmd {
        Command::Help => Ok(crate::HELP.to_string()),
        Command::Generate { kind, out } => generate(kind, &out),
        Command::Stats { source } => stats(&source),
        Command::Prune {
            source,
            alpha,
            beta,
            bi,
            kind,
        } => prune(&source, alpha, beta, bi, kind),
        Command::Enumerate {
            source,
            alpha,
            beta,
            delta,
            theta,
            bi,
            algo,
            order,
            count_only,
            top,
            budget,
            threads,
            sorted,
            substrate,
        } => enumerate(
            &source, alpha, beta, delta, theta, bi, algo, order, count_only, top, budget, threads,
            sorted, substrate,
        ),
        Command::Maximum {
            source,
            alpha,
            beta,
            delta,
            bi,
            metric,
            order,
            budget,
            threads,
            substrate,
        } => maximum(
            &source, alpha, beta, delta, bi, metric, order, budget, threads, substrate,
        ),
    }
}

fn stem_paths(stem: &str) -> (PathBuf, PathBuf, PathBuf) {
    let base = Path::new(stem);
    (
        base.with_extension("edges"),
        base.with_extension("uattr"),
        base.with_extension("lattr"),
    )
}

fn load(source: &GraphSource) -> Result<BipartiteGraph, String> {
    let GraphSource::Path { stem, attr_domains } = source;
    let (edges, uattr, lattr) = stem_paths(stem);
    let bare = Path::new(stem);
    if edges.exists() {
        bigraph::io::load_graph(
            &edges,
            uattr.exists().then_some(uattr.as_path()),
            lattr.exists().then_some(lattr.as_path()),
            attr_domains.0,
            attr_domains.1,
        )
        .map_err(|e| format!("loading {stem}: {e}"))
    } else if bare.exists() {
        let f = std::fs::File::open(bare).map_err(|e| format!("opening {stem}: {e}"))?;
        bigraph::io::read_edge_list(f, attr_domains.0, attr_domains.1)
            .map_err(|e| format!("parsing {stem}: {e}"))
    } else {
        Err(format!(
            "no such graph: {stem} (expected {stem}.edges or a bare edge file)"
        ))
    }
}

fn generate(kind: GenerateKind, out: &str) -> Result<String, String> {
    let (g, label) = match kind {
        GenerateKind::Dataset(d) => {
            let spec = fbe_datasets::corpus::spec(d);
            (
                spec.build(),
                format!("{d} analog (defaults: {})", spec.single_params()),
            )
        }
        GenerateKind::Uniform {
            n_upper,
            n_lower,
            m,
            attrs,
            seed,
        } => {
            if n_upper == 0 || n_lower == 0 {
                return Err("generate: sides must be non-empty".into());
            }
            (
                bigraph::generate::random_uniform(n_upper, n_lower, m, attrs.0, attrs.1, seed),
                format!("uniform({n_upper},{n_lower},{m}) seed {seed}"),
            )
        }
    };
    let (edges, uattr, lattr) = stem_paths(out);
    if let Some(dir) = edges.parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    }
    let write = |p: &Path, f: &dyn Fn(&mut Vec<u8>) -> std::io::Result<()>| -> Result<(), String> {
        let mut buf = Vec::new();
        f(&mut buf).map_err(|e| e.to_string())?;
        std::fs::write(p, buf).map_err(|e| format!("writing {}: {e}", p.display()))
    };
    write(&edges, &|w| bigraph::io::write_edge_list(&g, w))?;
    write(&uattr, &|w| bigraph::io::write_attrs(&g, Side::Upper, w))?;
    write(&lattr, &|w| bigraph::io::write_attrs(&g, Side::Lower, w))?;
    Ok(format!(
        "wrote {label}: {} / {} / {}\n{}\n",
        edges.display(),
        uattr.display(),
        lattr.display(),
        bigraph::stats::graph_stats(&g)
    ))
}

fn stats(source: &GraphSource) -> Result<String, String> {
    let g = load(source)?;
    let st = bigraph::stats::graph_stats(&g);
    let butterflies = bigraph::butterfly::count_butterflies(&g);
    let mut out = String::new();
    writeln!(out, "{st}").unwrap();
    writeln!(
        out,
        "attr counts U: {:?}  V: {:?}",
        st.upper.attr_counts, st.lower.attr_counts
    )
    .unwrap();
    writeln!(out, "butterflies: {butterflies}").unwrap();
    Ok(out)
}

fn prune(
    source: &GraphSource,
    alpha: u32,
    beta: u32,
    bi: bool,
    kind: fair_biclique::config::PruneKind,
) -> Result<String, String> {
    let g = load(source)?;
    let params = FairParams::new(alpha.max(1), beta, 0).map_err(|e| e.to_string())?;
    let out = if bi {
        prune_bi_side(&g, params, kind)
    } else {
        prune_single_side(&g, params, kind)
    };
    Ok(format!(
        "{kind:?} ({}): {} -> {} vertices remaining ({} -> {} edges)\n",
        if bi { "bi-side" } else { "single-side" },
        out.stats.upper_before + out.stats.lower_before,
        out.stats.remaining_vertices(),
        out.stats.edges_before,
        out.stats.edges_after,
    ))
}

/// Run the parallel engine for whichever model `(bi, pro)` selects,
/// streaming into per-worker sinks built by `make_sink`.
fn par_stream<S: fair_biclique::biclique::BicliqueSink + Send>(
    g: &BipartiteGraph,
    params: FairParams,
    pro: Option<ProParams>,
    bi: bool,
    cfg: &RunConfig,
    make_sink: &(dyn Fn() -> S + Sync),
) -> (
    Vec<S>,
    fair_biclique::fcore::PruneStats,
    fair_biclique::biclique::EnumStats,
) {
    use fair_biclique::parallel::{par_run_bsfbc, par_run_pbsfbc, par_run_pssfbc, par_run_ssfbc};
    match (bi, pro) {
        (false, None) => par_run_ssfbc(g, params, cfg, make_sink),
        (true, None) => par_run_bsfbc(g, params, cfg, make_sink),
        (false, Some(p)) => par_run_pssfbc(g, p, cfg, make_sink),
        (true, Some(p)) => par_run_pbsfbc(g, p, cfg, make_sink),
    }
}

#[allow(clippy::too_many_arguments)]
fn enumerate(
    source: &GraphSource,
    alpha: u32,
    beta: u32,
    delta: u32,
    theta: Option<f64>,
    bi: bool,
    algo: SsAlgorithm,
    order: VertexOrder,
    count_only: bool,
    top: Option<usize>,
    budget: Option<std::time::Duration>,
    threads: usize,
    sorted: bool,
    substrate: Substrate,
) -> Result<String, String> {
    let g = load(source)?;
    let params = FairParams::new(alpha, beta, delta).map_err(|e| e.to_string())?;
    let cfg = RunConfig {
        order,
        budget: budget.map_or(Budget::UNLIMITED, Budget::time),
        threads,
        sorted,
        substrate,
        ..RunConfig::default()
    };
    let model = match (bi, theta.is_some()) {
        (false, false) => "SSFBC",
        (false, true) => "PSSFBC",
        (true, false) => "BSFBC",
        (true, true) => "PBSFBC",
    };
    let pro = match theta {
        Some(t) => Some(ProParams::new(alpha, beta, delta, t).map_err(|e| e.to_string())?),
        None => None,
    };

    // Multi-threaded runs go through the parallel engine (it works
    // for every model); `--algo` selects among the serial algorithms
    // only, so reject non-default choices.
    if threads > 1 {
        if algo != SsAlgorithm::FairBcemPP {
            return Err("enumerate: --threads > 1 requires the default --algo bcem++".into());
        }
        // Counting and top-k stream into bounded per-worker sinks —
        // no mode materializes more than it prints.
        if count_only {
            let (_, _, stats) = par_stream(&g, params, pro, bi, &cfg, &CountSink::default);
            return Ok(render(
                model,
                stats.emitted,
                stats.aborted,
                true,
                None,
                Vec::new(),
            ));
        }
        if let Some(k) = top {
            let (sinks, _, stats) = par_stream(&g, params, pro, bi, &cfg, &|| TopKSink::new(k));
            let mut merged = TopKSink::new(k);
            for sink in sinks {
                for bc in sink.into_sorted() {
                    fair_biclique::biclique::BicliqueSink::emit(&mut merged, &bc.upper, &bc.lower);
                }
            }
            return Ok(render(
                model,
                stats.emitted,
                stats.aborted,
                false,
                Some(k),
                merged.into_sorted(),
            ));
        }
        let report = match (bi, pro) {
            (false, None) => fair_biclique::pipeline::enumerate_ssfbc(&g, params, &cfg),
            (true, None) => fair_biclique::pipeline::enumerate_bsfbc(&g, params, &cfg),
            (false, Some(p)) => fair_biclique::pipeline::enumerate_pssfbc(&g, p, &cfg),
            (true, Some(p)) => fair_biclique::pipeline::enumerate_pbsfbc(&g, p, &cfg),
        };
        let n = report.bicliques.len() as u64;
        let aborted = report.stats.aborted;
        return Ok(render(model, n, aborted, false, None, report.bicliques));
    }

    let run = |sink: &mut dyn fair_biclique::biclique::BicliqueSink| -> (u64, bool) {
        let stats = match (bi, pro) {
            (false, None) => run_ssfbc(&g, params, algo, &cfg, sink).1,
            (true, None) => run_bsfbc(&g, params, bi_algo_of(algo), &cfg, sink).1,
            (false, Some(p)) => run_pssfbc(&g, p, &cfg, sink).1,
            (true, Some(p)) => run_pbsfbc(&g, p, &cfg, sink).1,
        };
        (stats.emitted, stats.aborted)
    };

    if count_only {
        let mut sink = CountSink::default();
        let (n, aborted) = run(&mut sink);
        return Ok(render(model, n, aborted, true, None, Vec::new()));
    }
    if let Some(k) = top {
        let mut sink = TopKSink::new(k);
        let (n, aborted) = run(&mut sink);
        return Ok(render(
            model,
            n,
            aborted,
            false,
            Some(k),
            sink.into_sorted(),
        ));
    }
    let mut sink = CollectSink::default();
    let (n, aborted) = run(&mut sink);
    let mut bicliques = sink.bicliques;
    if sorted {
        fair_biclique::results::canonical_order(&mut bicliques);
    }
    Ok(render(model, n, aborted, false, None, bicliques))
}

#[allow(clippy::too_many_arguments)]
fn maximum(
    source: &GraphSource,
    alpha: u32,
    beta: u32,
    delta: u32,
    bi: bool,
    metric: fair_biclique::maximum::SizeMetric,
    order: VertexOrder,
    budget: Option<std::time::Duration>,
    threads: usize,
    substrate: Substrate,
) -> Result<String, String> {
    let g = load(source)?;
    let params = FairParams::new(alpha, beta, delta).map_err(|e| e.to_string())?;
    let cfg = RunConfig {
        order,
        budget: budget.map_or(Budget::UNLIMITED, Budget::time),
        threads,
        substrate,
        ..RunConfig::default()
    };
    let (best, _) = if bi {
        fair_biclique::maximum::max_bsfbc(&g, params, metric, &cfg)
    } else {
        fair_biclique::maximum::max_ssfbc(&g, params, metric, &cfg)
    };
    let model = if bi { "BSFBC" } else { "SSFBC" };
    Ok(match best {
        Some(bc) => format!(
            "maximum {model} ({metric:?}): |L|={} |R|={}\n  {bc}\n",
            bc.upper.len(),
            bc.lower.len()
        ),
        None => format!("maximum {model} ({metric:?}): none\n"),
    })
}

fn render(
    model: &str,
    count: u64,
    aborted: bool,
    count_only: bool,
    top: Option<usize>,
    bicliques: Vec<fair_biclique::biclique::Biclique>,
) -> String {
    let mut out = String::new();
    let suffix = if aborted {
        " (budget hit; lower bound)"
    } else {
        ""
    };
    writeln!(out, "{model} count: {count}{suffix}").unwrap();
    if count_only {
        return out;
    }
    if let Some(k) = top {
        writeln!(out, "top {k} by size:").unwrap();
    }
    for bc in bicliques {
        writeln!(out, "  {bc}").unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_rejects_missing() {
        let src = GraphSource::Path {
            stem: "/definitely/not/here".into(),
            attr_domains: (2, 2),
        };
        assert!(load(&src).is_err());
    }

    #[test]
    fn load_bare_edge_file() {
        let dir = std::env::temp_dir().join("fbe_cli_cmd_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("bare.txt");
        std::fs::write(&p, "0 0\n0 1\n1 1\n").unwrap();
        let src = GraphSource::Path {
            stem: p.to_str().unwrap().to_string(),
            attr_domains: (1, 1),
        };
        let g = load(&src).unwrap();
        assert_eq!(g.n_edges(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn render_formats() {
        let s = render("SSFBC", 3, true, true, None, Vec::new());
        assert!(s.contains("lower bound"));
        let s = render(
            "BSFBC",
            1,
            false,
            false,
            Some(2),
            vec![fair_biclique::biclique::Biclique::new(vec![0], vec![1])],
        );
        assert!(s.contains("top 2"));
        assert!(s.contains("L=[0]"));
    }
}
