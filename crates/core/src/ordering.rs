//! Vertex selection orderings (`IDOrd` / `DegOrd`, Table II of the
//! paper).
//!
//! The branch-and-bound enumerators pick candidates from `P` in a fixed
//! global order; the paper evaluates ascending-id order and
//! non-increasing-degree order and finds the latter roughly 2× faster.

use crate::config::VertexOrder;
use bigraph::{BipartiteGraph, Side, VertexId};

/// The processing order of `side`'s vertices under `order`.
pub fn side_order(g: &BipartiteGraph, side: Side, order: VertexOrder) -> Vec<VertexId> {
    let mut ids: Vec<VertexId> = (0..g.n(side) as VertexId).collect();
    match order {
        VertexOrder::IdAsc => {}
        VertexOrder::DegreeDesc => {
            ids.sort_by(|&a, &b| {
                g.degree(side, b)
                    .cmp(&g.degree(side, a))
                    .then_with(|| a.cmp(&b))
            });
        }
    }
    ids
}

/// A rank table: `rank[v]` = position of `v` in the processing order.
/// Child candidate sets are kept sorted by rank so "pick the first
/// element of `P`" respects the global ordering at every depth.
pub fn rank_table(order: &[VertexId]) -> Vec<u32> {
    let mut rank = vec![0u32; order.len()];
    for (i, &v) in order.iter().enumerate() {
        rank[v as usize] = i as u32;
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::GraphBuilder;

    fn toy() -> BipartiteGraph {
        let mut b = GraphBuilder::new(1, 1);
        // lower degrees: v0:1, v1:3, v2:2
        for (u, v) in [(0, 0), (0, 1), (1, 1), (2, 1), (1, 2), (2, 2)] {
            b.add_edge(u, v);
        }
        b.build().unwrap()
    }

    #[test]
    fn id_order() {
        let g = toy();
        assert_eq!(
            side_order(&g, Side::Lower, VertexOrder::IdAsc),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn degree_order_with_ties() {
        let g = toy();
        assert_eq!(
            side_order(&g, Side::Lower, VertexOrder::DegreeDesc),
            vec![1, 2, 0]
        );
        // Upper degrees: u0:2, u1:2, u2:2 -> ties broken by id.
        assert_eq!(
            side_order(&g, Side::Upper, VertexOrder::DegreeDesc),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn rank_roundtrip() {
        let order = vec![2u32, 0, 1];
        let rank = rank_table(&order);
        assert_eq!(rank, vec![1, 2, 0]);
        for (i, &v) in order.iter().enumerate() {
            assert_eq!(rank[v as usize] as usize, i);
        }
    }
}
