//! Execution of parsed [`Command`]s.
//!
//! Output is written through a caller-supplied [`io::Write`]
//! ([`execute_to`]), so a closed pipe (`fbe enumerate | head`)
//! surfaces as a normal `io::Error` instead of a panic; the binary
//! maps `BrokenPipe` to a clean exit. Timing lines go to stderr so
//! stdout stays byte-stable across runs.

use crate::args::{bi_algo_of, Command, GenerateKind, GraphSource};
use bigraph::{BipartiteGraph, Side};
use fair_biclique::biclique::{CollectSink, CountSink, TopKSink};
use fair_biclique::config::{
    Budget, FairParams, PrepareCtl, ProParams, RunConfig, Substrate, VertexOrder,
};
use fair_biclique::obs::SpanRecorder;
use fair_biclique::pipeline::{
    prune_bi_side, prune_single_side, run_bsfbc, run_pbsfbc, run_pssfbc, run_ssfbc, RunReport,
    SsAlgorithm,
};
use fair_biclique::prepared::{PreparedQuery, QueryModel};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Why a CLI invocation failed.
#[derive(Debug)]
pub enum CliError {
    /// Bad arguments or a failed operation; print the message, exit 1.
    Usage(String),
    /// The output stream failed (closed pipe, full disk, ...).
    Io(io::Error),
}

impl From<io::Error> for CliError {
    fn from(e: io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Usage(msg)
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) => f.write_str(m),
            CliError::Io(e) => write!(f, "{e}"),
        }
    }
}

/// Execute a command, writing its output to `out`.
pub fn execute_to(cmd: Command, out: &mut dyn Write) -> Result<(), CliError> {
    match cmd {
        Command::Help => Ok(out.write_all(crate::HELP.as_bytes())?),
        Command::Generate { kind, out: dest } => {
            let text = generate(kind, &dest)?;
            Ok(out.write_all(text.as_bytes())?)
        }
        Command::Stats { source } => stats(&source, out),
        Command::Prune {
            source,
            alpha,
            beta,
            bi,
            kind,
        } => {
            let text = prune(&source, alpha, beta, bi, kind)?;
            Ok(out.write_all(text.as_bytes())?)
        }
        Command::Enumerate {
            source,
            alpha,
            beta,
            delta,
            theta,
            bi,
            algo,
            order,
            count_only,
            top,
            budget,
            threads,
            sorted,
            substrate,
            trace,
        } => enumerate(
            out, &source, alpha, beta, delta, theta, bi, algo, order, count_only, top, budget,
            threads, sorted, substrate, trace,
        ),
        Command::Maximum {
            source,
            alpha,
            beta,
            delta,
            bi,
            metric,
            order,
            budget,
            threads,
            substrate,
        } => maximum(
            out, &source, alpha, beta, delta, bi, metric, order, budget, threads, substrate,
        ),
        Command::Serve {
            host,
            port,
            workers,
            queue,
            plan_cache,
            default_limit,
            data_root,
            shards,
        } => serve(
            out,
            &host,
            port,
            workers,
            queue,
            plan_cache,
            default_limit,
            data_root,
            shards,
        ),
        Command::Batch { connect, path } => batch(out, connect.as_deref(), path.as_deref()),
    }
}

/// Execute a command, returning the output as a string (test- and
/// library-friendly wrapper over [`execute_to`]; long-running
/// commands like `serve` should go through `execute_to`).
pub fn execute(cmd: Command) -> Result<String, String> {
    let mut buf = Vec::new();
    match execute_to(cmd, &mut buf) {
        Ok(()) => Ok(String::from_utf8_lossy(&buf).into_owned()),
        Err(e) => Err(e.to_string()),
    }
}

fn stem_paths(stem: &str) -> (PathBuf, PathBuf, PathBuf) {
    let base = Path::new(stem);
    (
        base.with_extension("edges"),
        base.with_extension("uattr"),
        base.with_extension("lattr"),
    )
}

fn load(source: &GraphSource) -> Result<BipartiteGraph, String> {
    let GraphSource::Path { stem, attr_domains } = source;
    bigraph::io::load_stem(Path::new(stem), attr_domains.0, attr_domains.1)
        .map_err(|e| format!("loading {stem}: {e}"))
}

fn generate(kind: GenerateKind, out: &str) -> Result<String, String> {
    let (g, label) = match kind {
        GenerateKind::Dataset(d) => {
            let spec = fbe_datasets::corpus::spec(d);
            (
                spec.build(),
                format!("{d} analog (defaults: {})", spec.single_params()),
            )
        }
        GenerateKind::Uniform {
            n_upper,
            n_lower,
            m,
            attrs,
            seed,
        } => {
            if n_upper == 0 || n_lower == 0 {
                return Err("generate: sides must be non-empty".into());
            }
            (
                bigraph::generate::random_uniform(n_upper, n_lower, m, attrs.0, attrs.1, seed),
                format!("uniform({n_upper},{n_lower},{m}) seed {seed}"),
            )
        }
    };
    let (edges, uattr, lattr) = stem_paths(out);
    if let Some(dir) = edges.parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    }
    let write = |p: &Path, f: &dyn Fn(&mut Vec<u8>) -> io::Result<()>| -> Result<(), String> {
        let mut buf = Vec::new();
        f(&mut buf).map_err(|e| e.to_string())?;
        std::fs::write(p, buf).map_err(|e| format!("writing {}: {e}", p.display()))
    };
    write(&edges, &|w| bigraph::io::write_edge_list(&g, w))?;
    write(&uattr, &|w| bigraph::io::write_attrs(&g, Side::Upper, w))?;
    write(&lattr, &|w| bigraph::io::write_attrs(&g, Side::Lower, w))?;
    Ok(format!(
        "wrote {label}: {} / {} / {}\n{}\n",
        edges.display(),
        uattr.display(),
        lattr.display(),
        bigraph::stats::graph_stats(&g)
    ))
}

fn stats(source: &GraphSource, out: &mut dyn Write) -> Result<(), CliError> {
    let g = load(source)?;
    let st = bigraph::stats::graph_stats(&g);
    let butterflies = bigraph::butterfly::count_butterflies(&g);
    writeln!(out, "{st}")?;
    writeln!(
        out,
        "attr counts U: {:?}  V: {:?}",
        st.upper.attr_counts, st.lower.attr_counts
    )?;
    writeln!(out, "butterflies: {butterflies}")?;
    Ok(())
}

fn prune(
    source: &GraphSource,
    alpha: u32,
    beta: u32,
    bi: bool,
    kind: fair_biclique::config::PruneKind,
) -> Result<String, String> {
    let g = load(source)?;
    let params = FairParams::new(alpha.max(1), beta, 0).map_err(|e| e.to_string())?;
    let out = if bi {
        prune_bi_side(&g, params, kind)
    } else {
        prune_single_side(&g, params, kind)
    };
    Ok(format!(
        "{kind:?} ({}): {} -> {} vertices remaining ({} -> {} edges)\n",
        if bi { "bi-side" } else { "single-side" },
        out.stats.upper_before + out.stats.lower_before,
        out.stats.remaining_vertices(),
        out.stats.edges_before,
        out.stats.edges_after,
    ))
}

/// Run the parallel engine for whichever model `(bi, pro)` selects,
/// streaming into per-worker sinks built by `make_sink`.
fn par_stream<S: fair_biclique::biclique::BicliqueSink + Send>(
    g: &BipartiteGraph,
    params: FairParams,
    pro: Option<ProParams>,
    bi: bool,
    cfg: &RunConfig,
    make_sink: &(dyn Fn() -> S + Sync),
) -> (
    Vec<S>,
    fair_biclique::fcore::PruneStats,
    fair_biclique::biclique::EnumStats,
) {
    use fair_biclique::parallel::{par_run_bsfbc, par_run_pbsfbc, par_run_pssfbc, par_run_ssfbc};
    match (bi, pro) {
        (false, None) => par_run_ssfbc(g, params, cfg, make_sink),
        (true, None) => par_run_bsfbc(g, params, cfg, make_sink),
        (false, Some(p)) => par_run_pssfbc(g, p, cfg, make_sink),
        (true, Some(p)) => par_run_pbsfbc(g, p, cfg, make_sink),
    }
}

/// Report a run's wall-clock phases on stderr (stdout stays
/// byte-stable for diffing across runs, threads, and substrates).
/// With `--trace` the recorder holds a span tree and its indented
/// `span ...` lines follow the summary, so the one-line timing and
/// the detailed breakdown read as one block.
fn report_timing(report: &RunReport, rec: &SpanRecorder) {
    eprintln!(
        "timing: total {:.3?} (prune {:.3?}, enumerate {:.3?}){}",
        report.elapsed,
        report.prune_elapsed,
        report.enumerate_elapsed,
        report
            .truncated_by
            .map(|r| format!(" truncated by {r}"))
            .unwrap_or_default(),
    );
    for line in rec.render() {
        eprintln!("{line}");
    }
}

#[allow(clippy::too_many_arguments)]
fn enumerate(
    out: &mut dyn Write,
    source: &GraphSource,
    alpha: u32,
    beta: u32,
    delta: u32,
    theta: Option<f64>,
    bi: bool,
    algo: SsAlgorithm,
    order: VertexOrder,
    count_only: bool,
    top: Option<usize>,
    budget: Option<std::time::Duration>,
    threads: usize,
    sorted: bool,
    substrate: Substrate,
    trace: bool,
) -> Result<(), CliError> {
    let g = load(source)?;
    let params = FairParams::new(alpha, beta, delta).map_err(|e| e.to_string())?;
    let cfg = RunConfig {
        order,
        budget: budget.map_or(Budget::UNLIMITED, Budget::time),
        threads,
        sorted,
        substrate,
        ..RunConfig::default()
    };
    let model = match (bi, theta.is_some()) {
        (false, false) => "SSFBC",
        (false, true) => "PSSFBC",
        (true, false) => "BSFBC",
        (true, true) => "PBSFBC",
    };
    let pro = match theta {
        Some(t) => Some(ProParams::new(alpha, beta, delta, t).map_err(|e| e.to_string())?),
        None => None,
    };
    // Span recording covers the collect paths, which run the same
    // prepare/execute pipeline the service traces; the streaming
    // modes (--count-only, --top, non-default --algo) report only the
    // total. A disabled recorder renders nothing.
    let mut rec = if trace {
        SpanRecorder::enabled()
    } else {
        SpanRecorder::disabled()
    };

    // The collected path (any thread count) goes through the
    // prepare/execute pipelines, which report per-phase timings (and,
    // with --trace, a per-stage span tree).
    let qmodel = match (bi, pro) {
        (false, None) => QueryModel::Ssfbc(params),
        (true, None) => QueryModel::Bsfbc(params),
        (false, Some(p)) => QueryModel::Pssfbc(p),
        (true, Some(p)) => QueryModel::Pbsfbc(p),
    };
    let collect = |cfg: &RunConfig, rec: &mut SpanRecorder| -> RunReport {
        let prepared = PreparedQuery::prepare_rec(
            &g,
            qmodel,
            cfg.prune,
            cfg.substrate,
            &PrepareCtl::UNBOUNDED,
            rec,
        )
        // fbe-lint: allow(no-panic-paths): PrepareCtl::UNBOUNDED never interrupts, so Err is unreachable — same contract PreparedQuery::prepare relies on
        .expect("unbounded prepare is never interrupted");
        prepared.execute_rec(cfg, rec)
    };

    // Multi-threaded runs go through the parallel engine (it works
    // for every model); `--algo` selects among the serial algorithms
    // only, so reject non-default choices.
    if threads > 1 {
        if algo != SsAlgorithm::FairBcemPP {
            return Err(CliError::Usage(
                "enumerate: --threads > 1 requires the default --algo bcem++".into(),
            ));
        }
        // Counting and top-k stream into bounded per-worker sinks —
        // no mode materializes more than it prints.
        let t0 = std::time::Instant::now();
        if count_only {
            let (_, _, stats) = par_stream(&g, params, pro, bi, &cfg, &CountSink::default);
            eprintln!("timing: total {:.3?}", t0.elapsed());
            return render(out, model, stats.emitted, stats.aborted, true, None, &[]);
        }
        if let Some(k) = top {
            let (sinks, _, stats) = par_stream(&g, params, pro, bi, &cfg, &|| TopKSink::new(k));
            let mut merged = TopKSink::new(k);
            for sink in sinks {
                for bc in sink.into_sorted() {
                    fair_biclique::biclique::BicliqueSink::emit(&mut merged, &bc.upper, &bc.lower);
                }
            }
            eprintln!("timing: total {:.3?}", t0.elapsed());
            return render(
                out,
                model,
                stats.emitted,
                stats.aborted,
                false,
                Some(k),
                &merged.into_sorted(),
            );
        }
        let report = collect(&cfg, &mut rec);
        report_timing(&report, &rec);
        let n = report.bicliques.len() as u64;
        let aborted = report.stats.aborted;
        return render(out, model, n, aborted, false, None, &report.bicliques);
    }

    let run = |sink: &mut dyn fair_biclique::biclique::BicliqueSink| -> (u64, bool) {
        let stats = match (bi, pro) {
            (false, None) => run_ssfbc(&g, params, algo, &cfg, sink).1,
            (true, None) => run_bsfbc(&g, params, bi_algo_of(algo), &cfg, sink).1,
            (false, Some(p)) => run_pssfbc(&g, p, &cfg, sink).1,
            (true, Some(p)) => run_pbsfbc(&g, p, &cfg, sink).1,
        };
        (stats.emitted, stats.aborted)
    };

    let t0 = std::time::Instant::now();
    if count_only {
        let mut sink = CountSink::default();
        let (n, aborted) = run(&mut sink);
        eprintln!("timing: total {:.3?}", t0.elapsed());
        return render(out, model, n, aborted, true, None, &[]);
    }
    if let Some(k) = top {
        let mut sink = TopKSink::new(k);
        let (n, aborted) = run(&mut sink);
        eprintln!("timing: total {:.3?}", t0.elapsed());
        return render(out, model, n, aborted, false, Some(k), &sink.into_sorted());
    }
    if algo == SsAlgorithm::FairBcemPP {
        // Default algorithm: the prepared pipeline gives phase timings.
        let report = collect(&cfg, &mut rec);
        report_timing(&report, &rec);
        return render(
            out,
            model,
            report.stats.emitted,
            report.stats.aborted,
            false,
            None,
            &report.bicliques,
        );
    }
    let mut sink = CollectSink::default();
    let (n, aborted) = run(&mut sink);
    eprintln!("timing: total {:.3?}", t0.elapsed());
    let mut bicliques = sink.bicliques;
    if sorted {
        fair_biclique::results::canonical_order(&mut bicliques);
    }
    render(out, model, n, aborted, false, None, &bicliques)
}

#[allow(clippy::too_many_arguments)]
fn maximum(
    out: &mut dyn Write,
    source: &GraphSource,
    alpha: u32,
    beta: u32,
    delta: u32,
    bi: bool,
    metric: fair_biclique::maximum::SizeMetric,
    order: VertexOrder,
    budget: Option<std::time::Duration>,
    threads: usize,
    substrate: Substrate,
) -> Result<(), CliError> {
    let g = load(source)?;
    let params = FairParams::new(alpha, beta, delta).map_err(|e| e.to_string())?;
    let cfg = RunConfig {
        order,
        budget: budget.map_or(Budget::UNLIMITED, Budget::time),
        threads,
        substrate,
        ..RunConfig::default()
    };
    let t0 = std::time::Instant::now();
    let (best, _) = if bi {
        fair_biclique::maximum::max_bsfbc(&g, params, metric, &cfg)
    } else {
        fair_biclique::maximum::max_ssfbc(&g, params, metric, &cfg)
    };
    eprintln!("timing: total {:.3?}", t0.elapsed());
    let model = if bi { "BSFBC" } else { "SSFBC" };
    match best {
        Some(bc) => writeln!(
            out,
            "maximum {model} ({metric:?}): |L|={} |R|={}\n  {bc}",
            bc.upper.len(),
            bc.lower.len()
        )?,
        None => writeln!(out, "maximum {model} ({metric:?}): none")?,
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn serve(
    out: &mut dyn Write,
    host: &str,
    port: u16,
    workers: usize,
    queue: usize,
    plan_cache: usize,
    default_limit: u64,
    data_root: Option<String>,
    shards: Vec<String>,
) -> Result<(), CliError> {
    let coordinator = !shards.is_empty();
    let engine = fbe_service::engine::Engine::new(fbe_service::ServiceConfig {
        workers,
        queue_depth: queue,
        plan_cache_capacity: plan_cache,
        default_result_limit: default_limit,
        data_root: data_root.map(std::path::PathBuf::from),
        shards,
        ..fbe_service::ServiceConfig::default()
    });
    let server = fbe_service::server::Server::bind(&format!("{host}:{port}"), engine)
        .map_err(|e| CliError::Usage(format!("serve: binding {host}:{port}: {e}")))?;
    let addr = server.local_addr()?;
    let role = if coordinator { " (coordinator)" } else { "" };
    writeln!(out, "fbe-service listening on {addr}{role}")?;
    out.flush()?;
    server.run()?;
    writeln!(out, "fbe-service stopped")?;
    Ok(())
}

fn batch(out: &mut dyn Write, connect: Option<&str>, path: Option<&str>) -> Result<(), CliError> {
    let mut input: Box<dyn io::BufRead> = match path {
        Some(p) if p != "-" => Box::new(io::BufReader::new(
            std::fs::File::open(p).map_err(|e| CliError::Usage(format!("batch: {p}: {e}")))?,
        )),
        _ => Box::new(io::BufReader::new(io::stdin())),
    };
    match connect {
        Some(addr) => fbe_service::batch::run_client(addr, &mut input, out)?,
        None => {
            let engine = fbe_service::engine::Engine::new(fbe_service::ServiceConfig::default());
            fbe_service::batch::run_batch(&engine, &mut input, out)?;
        }
    }
    Ok(())
}

fn render(
    out: &mut dyn Write,
    model: &str,
    count: u64,
    aborted: bool,
    count_only: bool,
    top: Option<usize>,
    bicliques: &[fair_biclique::biclique::Biclique],
) -> Result<(), CliError> {
    let suffix = if aborted {
        " (budget hit; lower bound)"
    } else {
        ""
    };
    writeln!(out, "{model} count: {count}{suffix}")?;
    if count_only {
        return Ok(());
    }
    if let Some(k) = top {
        writeln!(out, "top {k} by size:")?;
    }
    for bc in bicliques {
        writeln!(out, "  {bc}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_rejects_missing() {
        let src = GraphSource::Path {
            stem: "/definitely/not/here".into(),
            attr_domains: (2, 2),
        };
        assert!(load(&src).is_err());
    }

    #[test]
    fn load_bare_edge_file() {
        let dir = std::env::temp_dir().join("fbe_cli_cmd_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("bare.txt");
        std::fs::write(&p, "0 0\n0 1\n1 1\n").unwrap();
        let src = GraphSource::Path {
            stem: p.to_str().unwrap().to_string(),
            attr_domains: (1, 1),
        };
        let g = load(&src).unwrap();
        assert_eq!(g.n_edges(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_scripts_can_mutate_resident_graphs() {
        let dir = std::env::temp_dir().join("fbe_cli_batch_update_test");
        std::fs::create_dir_all(&dir).unwrap();
        let script = dir.join("session.fbe");
        std::fs::write(
            &script,
            "GEN g uniform:12,12,60,4\n\
             ENUM g ssfbc alpha=1 beta=1 delta=1 count-only\n\
             ADDVERTEX g lower attr=0\n\
             ADDEDGE g 0 12\n\
             DELEDGE g 0 12\n\
             ENUM g ssfbc alpha=1 beta=1 delta=1 count-only\n",
        )
        .unwrap();
        let mut buf = Vec::new();
        batch(&mut buf, None, Some(script.to_str().unwrap())).unwrap();
        let out = String::from_utf8(buf).unwrap();
        assert!(out.contains("vertex=12"), "{out}");
        assert!(out.contains("version=3"), "{out}");
        assert!(!out.contains("ERR"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    fn render_str(
        model: &str,
        count: u64,
        aborted: bool,
        count_only: bool,
        top: Option<usize>,
        bicliques: &[fair_biclique::biclique::Biclique],
    ) -> String {
        let mut buf = Vec::new();
        render(&mut buf, model, count, aborted, count_only, top, bicliques).unwrap();
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn render_formats() {
        let s = render_str("SSFBC", 3, true, true, None, &[]);
        assert!(s.contains("lower bound"));
        let s = render_str(
            "BSFBC",
            1,
            false,
            false,
            Some(2),
            &[fair_biclique::biclique::Biclique::new(vec![0], vec![1])],
        );
        assert!(s.contains("top 2"));
        assert!(s.contains("L=[0]"));
    }

    #[test]
    fn write_errors_surface_as_io_not_panic() {
        /// A sink that fails like a closed pipe.
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "closed"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let err = render(&mut Broken, "SSFBC", 1, false, false, None, &[]).unwrap_err();
        match err {
            CliError::Io(e) => assert_eq!(e.kind(), io::ErrorKind::BrokenPipe),
            other => panic!("expected Io, got {other:?}"),
        }
    }
}
