//! Atomic metrics registry served by `STATS` (flat `key value` lines)
//! and `METRICS` (Prometheus text exposition).
//!
//! # Units contract
//!
//! * **Latencies are recorded in microseconds**, saturating: a
//!   duration longer than `u64::MAX` µs (≈ 584 thousand years) is
//!   clamped, never wrapped. Sums (`*_sum_us`) accumulate those
//!   saturated µs values with a saturating add.
//! * **`uptime_s` truncates** toward zero ([`Duration::as_secs`]): a
//!   service 900 ms old reports `uptime_s 0`. Uptime is a gauge, not a
//!   counter.
//! * **`le` buckets are cumulative** (Prometheus semantics): the value
//!   at `le="10000"` counts every observation ≤ 10 000 µs, including
//!   those already counted at `le="1000"`, and the `+Inf` bucket
//!   always equals `*_count`. (`STATS` `latency_le_*` lines share
//!   this contract; they were per-range before PR 10 — a bug, given
//!   the `le` naming.)
//!
//! These invariants are asserted by the unit tests below.

use fair_biclique::StopReason;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Upper bounds (µs) of the latency histogram buckets; the last bucket
/// is unbounded (`+Inf`).
pub const BUCKET_BOUNDS_US: [u64; 5] = [1_000, 10_000, 100_000, 1_000_000, 10_000_000];

/// A fixed-bucket latency histogram over [`BUCKET_BOUNDS_US`].
/// Observations are stored per-range internally (one atomic increment
/// per observe, no cross-bucket contention) and rendered cumulatively
/// (Prometheus `le` semantics) by [`Histogram::cumulative`].
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; 6],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Histogram {
    /// Fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation. See the module docs' units contract:
    /// µs, saturating, never wrapping.
    pub fn observe(&self, d: Duration) {
        let us = d.as_micros().min(u64::MAX as u128) as u64;
        let idx = BUCKET_BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(BUCKET_BOUNDS_US.len());
        bump(&self.buckets[idx]);
        bump(&self.count);
        // Saturating add under contention: a CAS loop would be exact,
        // but statistics-grade accuracy doesn't justify it — clamp on
        // overflow instead of wrapping.
        let prev = self.sum_us.fetch_add(us, Ordering::Relaxed);
        if prev.checked_add(us).is_none() {
            self.sum_us.store(u64::MAX, Ordering::Relaxed);
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observed µs (saturated).
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Cumulative bucket counts, one per bound plus the final `+Inf`
    /// bucket: `cumulative()[i]` counts observations ≤ bound *i*, and
    /// the last entry equals [`Histogram::count`] (up to benign racing
    /// with concurrent `observe` calls).
    pub fn cumulative(&self) -> [u64; 6] {
        let mut out = [0u64; 6];
        let mut acc = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            acc += b.load(Ordering::Relaxed);
            out[i] = acc;
        }
        out
    }

    /// Append this histogram in Prometheus text exposition format:
    /// `# TYPE`, `_bucket{le=...}` lines ending at `le="+Inf"`, then
    /// `_sum` and `_count`. `labels` is either empty or a
    /// `key="value"` list *without* braces (composed with `le`).
    fn render_prometheus(&self, out: &mut Vec<String>, name: &str, labels: &str, typed: bool) {
        if typed {
            out.push(format!("# TYPE {name} histogram"));
        }
        let sep = if labels.is_empty() { "" } else { "," };
        let cum = self.cumulative();
        for (i, c) in cum.iter().enumerate() {
            let le = BUCKET_BOUNDS_US
                .get(i)
                .map_or("+Inf".to_string(), |us| us.to_string());
            out.push(format!("{name}_bucket{{{labels}{sep}le=\"{le}\"}} {c}"));
        }
        let suffix = if labels.is_empty() {
            String::new()
        } else {
            format!("{{{labels}}}")
        };
        out.push(format!("{name}_sum{suffix} {}", self.sum_us()));
        out.push(format!("{name}_count{suffix} {}", self.count()));
    }
}

/// Lock-free counters + latency histograms for one service instance.
/// All methods take `&self`; relaxed ordering is fine — these are
/// statistics, not synchronization.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    /// Every query received (before admission).
    pub queries_total: AtomicU64,
    /// Queries answered with `OK` (including truncated ones).
    pub queries_ok: AtomicU64,
    /// Queries answered with `ERR`.
    pub queries_err: AtomicU64,
    /// Queries refused by admission control.
    pub rejected_busy: AtomicU64,
    /// Queries truncated by their deadline.
    pub truncated_deadline: AtomicU64,
    /// Queries truncated by a result/node cap.
    pub truncated_budget: AtomicU64,
    /// Queries truncated by cancellation (shutdown).
    pub truncated_cancelled: AtomicU64,
    /// Plan-cache hits.
    pub plan_cache_hits: AtomicU64,
    /// Plan-cache misses (plans prepared).
    pub plan_cache_misses: AtomicU64,
    /// Graphs loaded or generated into the catalog.
    pub graphs_loaded: AtomicU64,
    /// Graph updates applied (`ADDEDGE` / `DELEDGE` / `ADDVERTEX`).
    pub updates_applied: AtomicU64,
    /// Coordinator requests fanned out to shard servers.
    pub shard_fanouts: AtomicU64,
    /// Shard calls that failed (connect/timeout/protocol error).
    pub shard_errors: AtomicU64,
    /// Results received from healthy shards but discarded because a
    /// sibling shard failed mid-fanout (partial-result accounting for
    /// `ERR SHARD` replies).
    pub shard_partial_results: AtomicU64,
    /// End-to-end query latency (admission → reply).
    pub latency: Histogram,
    /// Preparation-stage latency (prune + plan resolve), observed only
    /// on plan-cache misses — cache hits spend no prepare time.
    pub stage_prepare: Histogram,
    /// Enumeration-stage latency (walk + sort), observed per query.
    pub stage_enumerate: Histogram,
    /// Per-shard fan-out latency (connect + request + stream), one
    /// histogram per configured shard — empty on non-coordinators.
    /// Straggler shards show up as a fat tail at their index.
    pub shard_stream: Vec<Histogram>,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::with_shards(0)
    }
}

/// `ctr += 1`, relaxed.
pub fn bump(ctr: &AtomicU64) {
    ctr.fetch_add(1, Ordering::Relaxed);
}

impl Metrics {
    /// Fresh registry (uptime starts now).
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh registry for a coordinator fanning out to `shards` shard
    /// servers: allocates one [`Histogram`] per shard index.
    pub fn with_shards(shards: usize) -> Self {
        Metrics {
            started: Instant::now(),
            queries_total: AtomicU64::new(0),
            queries_ok: AtomicU64::new(0),
            queries_err: AtomicU64::new(0),
            rejected_busy: AtomicU64::new(0),
            truncated_deadline: AtomicU64::new(0),
            truncated_budget: AtomicU64::new(0),
            truncated_cancelled: AtomicU64::new(0),
            plan_cache_hits: AtomicU64::new(0),
            plan_cache_misses: AtomicU64::new(0),
            graphs_loaded: AtomicU64::new(0),
            updates_applied: AtomicU64::new(0),
            shard_fanouts: AtomicU64::new(0),
            shard_errors: AtomicU64::new(0),
            shard_partial_results: AtomicU64::new(0),
            latency: Histogram::new(),
            stage_prepare: Histogram::new(),
            stage_enumerate: Histogram::new(),
            shard_stream: (0..shards).map(|_| Histogram::new()).collect(),
        }
    }

    /// Name → field table of every public counter, in render order.
    /// Single source for [`Metrics::render`] and
    /// [`Metrics::render_prometheus`], so a counter added to the
    /// struct but missing here fails the `metrics-render-symmetry`
    /// lint rather than silently vanishing from both outputs.
    fn counters(&self) -> [(&'static str, &AtomicU64); 14] {
        [
            ("queries_total", &self.queries_total),
            ("queries_ok", &self.queries_ok),
            ("queries_err", &self.queries_err),
            ("rejected_busy", &self.rejected_busy),
            ("truncated_deadline", &self.truncated_deadline),
            ("truncated_budget", &self.truncated_budget),
            ("truncated_cancelled", &self.truncated_cancelled),
            ("plan_cache_hits", &self.plan_cache_hits),
            ("plan_cache_misses", &self.plan_cache_misses),
            ("graphs_loaded", &self.graphs_loaded),
            ("updates_applied", &self.updates_applied),
            ("shard_fanouts", &self.shard_fanouts),
            ("shard_errors", &self.shard_errors),
            ("shard_partial_results", &self.shard_partial_results),
        ]
    }

    /// Record one query's end-to-end latency (see the units contract
    /// in the module docs).
    pub fn observe_latency(&self, d: Duration) {
        self.latency.observe(d);
    }

    /// Record why a truncated query stopped.
    pub fn observe_truncation(&self, stop: StopReason) {
        match stop {
            StopReason::Deadline => bump(&self.truncated_deadline),
            StopReason::Cancelled => bump(&self.truncated_cancelled),
            StopReason::NodeCap | StopReason::ResultCap => bump(&self.truncated_budget),
        }
    }

    /// `STATS` payload lines (`<key> <value>`), stable order. The
    /// engine appends catalog/plan-cache gauges it owns.
    /// `latency_le_*` lines are cumulative (see the units contract).
    pub fn render(&self) -> Vec<String> {
        let mut out = vec![format!("uptime_s {}", self.started.elapsed().as_secs())];
        for (name, ctr) in self.counters() {
            out.push(format!("{name} {}", ctr.load(Ordering::Relaxed)));
        }
        out.push(format!("latency_count {}", self.latency.count()));
        out.push(format!("latency_sum_us {}", self.latency.sum_us()));
        let cum = self.latency.cumulative();
        for (i, c) in cum.iter().enumerate() {
            let label = BUCKET_BOUNDS_US
                .get(i)
                .map_or("inf".to_string(), |us| format!("{us}us"));
            out.push(format!("latency_le_{label} {c}"));
        }
        out
    }

    /// `METRICS` payload: Prometheus text exposition format. Every
    /// sample family gets a `# TYPE` line; histogram buckets are
    /// cumulative and end at `le="+Inf"`; stage and shard histograms
    /// carry `stage=` / `shard=` labels.
    pub fn render_prometheus(&self) -> Vec<String> {
        let mut out = vec![
            "# TYPE fbe_uptime_seconds gauge".to_string(),
            format!("fbe_uptime_seconds {}", self.started.elapsed().as_secs()),
        ];
        for (name, ctr) in self.counters() {
            out.push(format!("# TYPE fbe_{name} counter"));
            out.push(format!("fbe_{name} {}", ctr.load(Ordering::Relaxed)));
        }
        self.latency
            .render_prometheus(&mut out, "fbe_query_latency_us", "", true);
        for (i, (stage, h)) in [
            ("prepare", &self.stage_prepare),
            ("enumerate", &self.stage_enumerate),
        ]
        .into_iter()
        .enumerate()
        {
            h.render_prometheus(
                &mut out,
                "fbe_stage_latency_us",
                &format!("stage=\"{stage}\""),
                i == 0,
            );
        }
        for (i, h) in self.shard_stream.iter().enumerate() {
            h.render_prometheus(
                &mut out,
                "fbe_shard_latency_us",
                &format!("shard=\"{i}\""),
                i == 0,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find(lines: &[String], k: &str) -> u64 {
        lines
            .iter()
            .find_map(|l| l.strip_prefix(&format!("{k} ")))
            .unwrap_or_else(|| panic!("missing {k}"))
            .parse()
            .unwrap()
    }

    #[test]
    fn counters_and_histogram() {
        let m = Metrics::new();
        bump(&m.queries_total);
        bump(&m.queries_ok);
        m.observe_latency(Duration::from_micros(500));
        m.observe_latency(Duration::from_millis(5));
        m.observe_latency(Duration::from_secs(20));
        m.observe_truncation(StopReason::Deadline);
        m.observe_truncation(StopReason::ResultCap);
        m.observe_truncation(StopReason::Cancelled);
        let lines = m.render();
        assert_eq!(find(&lines, "queries_total"), 1);
        assert_eq!(find(&lines, "latency_count"), 3);
        // `le` buckets are CUMULATIVE: each bound counts everything at
        // or below it, and the unbounded bucket equals the count.
        assert_eq!(find(&lines, "latency_le_1000us"), 1);
        assert_eq!(find(&lines, "latency_le_10000us"), 2);
        assert_eq!(find(&lines, "latency_le_100000us"), 2);
        assert_eq!(find(&lines, "latency_le_1000000us"), 2);
        assert_eq!(find(&lines, "latency_le_10000000us"), 2);
        assert_eq!(find(&lines, "latency_le_inf"), 3);
        assert_eq!(find(&lines, "truncated_deadline"), 1);
        assert_eq!(find(&lines, "truncated_budget"), 1);
        assert_eq!(find(&lines, "truncated_cancelled"), 1);
        assert!(find(&lines, "latency_sum_us") >= 20_000_000);
    }

    #[test]
    fn units_contract_truncation_and_saturation() {
        let m = Metrics::new();
        // Truncation: a fresh registry has lived for some nanoseconds,
        // but `uptime_s` floors to 0 (never rounds up).
        assert_eq!(find(&m.render(), "uptime_s"), 0);
        // Saturation: Duration::MAX exceeds u64::MAX µs; the recorded
        // value clamps (lands in +Inf, sum pegs at u64::MAX) rather
        // than wrapping.
        let h = Histogram::new();
        h.observe(Duration::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum_us(), u64::MAX);
        assert_eq!(h.cumulative()[5], 1);
        assert_eq!(
            h.cumulative()[4],
            0,
            "clamped value stays above every bound"
        );
        // And the saturating add: a second huge observation must not
        // wrap the sum back around.
        h.observe(Duration::MAX);
        assert_eq!(h.sum_us(), u64::MAX);
    }

    #[test]
    fn prometheus_exposition_grammar() {
        let m = Metrics::with_shards(2);
        m.observe_latency(Duration::from_micros(500));
        m.stage_prepare.observe(Duration::from_micros(50));
        m.stage_enumerate.observe(Duration::from_micros(450));
        m.shard_stream[1].observe(Duration::from_millis(2));
        let lines = m.render_prometheus();
        // Every sample's family has a # TYPE line.
        let typed: Vec<&str> = lines
            .iter()
            .filter_map(|l| l.strip_prefix("# TYPE "))
            .map(|l| l.split_whitespace().next().unwrap())
            .collect();
        for l in lines.iter().filter(|l| !l.starts_with('#')) {
            let name = l
                .split(['{', ' '])
                .next()
                .unwrap()
                .trim_end_matches("_bucket")
                .trim_end_matches("_sum")
                .trim_end_matches("_count");
            assert!(typed.contains(&name), "sample {l} has no # TYPE for {name}");
        }
        // Histogram buckets: monotone non-decreasing, ending at +Inf.
        let buckets: Vec<u64> = lines
            .iter()
            .filter(|l| l.starts_with("fbe_query_latency_us_bucket"))
            .map(|l| l.split_whitespace().last().unwrap().parse().unwrap())
            .collect();
        assert_eq!(buckets.len(), 6);
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]));
        assert!(lines
            .iter()
            .any(|l| l.contains("fbe_query_latency_us_bucket{le=\"+Inf\"} 1")));
        // Labeled histograms: stage + shard labels compose with le.
        assert!(lines
            .iter()
            .any(|l| l.starts_with("fbe_stage_latency_us_bucket{stage=\"prepare\",le=\"1000\"}")));
        assert!(lines
            .iter()
            .any(|l| l.starts_with("fbe_shard_latency_us_bucket{shard=\"1\",le=\"10000\"} 1")));
        // Every counter from the table is exposed.
        for (name, _) in m.counters() {
            assert!(
                lines.iter().any(|l| l.starts_with(&format!("fbe_{name} "))),
                "counter {name} missing from exposition"
            );
        }
    }
}
