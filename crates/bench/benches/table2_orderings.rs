//! Regenerates Table II (orderings) of the paper. Run: `cargo bench --bench table2_orderings`
//! (add `-- --quick` for a reduced sweep).

fn main() {
    let opts = fbe_bench::Opts::from_args();
    println!(
        "=== Table II (orderings) (budget {:?}/run, quick={}) ===",
        opts.budget, opts.quick
    );
    for (i, t) in fbe_bench::experiments::exp2_table2(&opts)
        .into_iter()
        .enumerate()
    {
        t.print();
        t.save(&format!("table2_orderings_{i}"));
    }
}
