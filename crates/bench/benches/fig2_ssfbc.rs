//! Regenerates Fig. 2 (SSFBC runtimes) of the paper. Run: `cargo bench --bench fig2_ssfbc`
//! (add `-- --quick` for a reduced sweep).

fn main() {
    let opts = fbe_bench::Opts::from_args();
    println!(
        "=== Fig. 2 (SSFBC runtimes) (budget {:?}/run, quick={}) ===",
        opts.budget, opts.quick
    );
    for (i, t) in fbe_bench::experiments::exp2_fig2(&opts)
        .into_iter()
        .enumerate()
    {
        t.print();
        t.save(&format!("fig2_ssfbc_{i}"));
    }
}
