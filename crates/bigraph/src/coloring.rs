//! Degree-ordered greedy graph coloring.
//!
//! The colorful core pruning (§III-B of the paper) colors the 2-hop
//! graph with the classic greedy heuristic of Matula & Beck \[34\] /
//! Hasenplaugh et al. \[35\]: visit vertices in non-increasing degree
//! order and give each the smallest color absent from its already-
//! colored neighborhood. Adjacent vertices always receive different
//! colors, so every clique is rainbow — the property the ego colorful
//! degree bound exploits.

use crate::graph::VertexId;
use crate::unigraph::UniGraph;

/// Result of a greedy coloring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coloring {
    /// `color[v]` is the color (0-based) assigned to vertex `v`.
    pub color: Vec<u32>,
    /// Total number of colors used.
    pub n_colors: u32,
}

impl Coloring {
    /// Check that no edge of `g` is monochromatic.
    pub fn is_proper(&self, g: &UniGraph) -> bool {
        (0..g.n() as VertexId).all(|v| {
            g.neighbors(v)
                .iter()
                .all(|&w| self.color[v as usize] != self.color[w as usize])
        })
    }
}

/// Greedy coloring in non-increasing degree order (ties by vertex id).
///
/// Uses at most `max_degree + 1` colors. Runs in `O(n + m)` with a
/// timestamped "forbidden" array so the inner loop allocates nothing.
pub fn greedy_color_by_degree(g: &UniGraph) -> Coloring {
    let n = g.n();
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    order.sort_by(|&a, &b| g.degree(b).cmp(&g.degree(a)).then_with(|| a.cmp(&b)));

    let mut color = vec![u32::MAX; n];
    // forbidden[c] == stamp of the vertex currently being colored means
    // color c is used by a neighbor.
    let mut forbidden: Vec<u64> = vec![0; g.max_degree() + 2];
    let mut stamp = 0u64;
    let mut n_colors = 0u32;

    for &v in &order {
        stamp += 1;
        for &w in g.neighbors(v) {
            let c = color[w as usize];
            if c != u32::MAX {
                forbidden[c as usize] = stamp;
            }
        }
        let mut c = 0u32;
        while forbidden[c as usize] == stamp {
            c += 1;
        }
        color[v as usize] = c;
        n_colors = n_colors.max(c + 1);
    }
    if n == 0 {
        n_colors = 0;
    }
    Coloring { color, n_colors }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colors_triangle_with_three() {
        let g = UniGraph::from_edges(1, vec![0; 3], &[(0, 1), (1, 2), (2, 0)]);
        let c = greedy_color_by_degree(&g);
        assert_eq!(c.n_colors, 3);
        assert!(c.is_proper(&g));
    }

    #[test]
    fn colors_bipartite_like_with_two() {
        // 4-cycle: 2-colorable; degree order greedy achieves 2 here.
        let g = UniGraph::from_edges(1, vec![0; 4], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let c = greedy_color_by_degree(&g);
        assert!(c.is_proper(&g));
        assert!(c.n_colors <= 3);
    }

    #[test]
    fn star_uses_two_colors() {
        let g = UniGraph::from_edges(1, vec![0; 6], &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let c = greedy_color_by_degree(&g);
        assert_eq!(c.n_colors, 2);
        assert_eq!(c.color[0], 0); // highest degree colored first
        assert!(c.is_proper(&g));
    }

    #[test]
    fn empty_and_edgeless() {
        let e = UniGraph::from_edges(1, vec![], &[]);
        let c = greedy_color_by_degree(&e);
        assert_eq!(c.n_colors, 0);
        let iso = UniGraph::from_edges(1, vec![0; 4], &[]);
        let c = greedy_color_by_degree(&iso);
        assert_eq!(c.n_colors, 1);
        assert!(c.color.iter().all(|&x| x == 0));
    }

    #[test]
    fn proper_on_random_graphs_and_bounded() {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for trial in 0..20 {
            let n = rng.random_range(2..40usize);
            let mut edges = Vec::new();
            for a in 0..n as u32 {
                for b in (a + 1)..n as u32 {
                    if rng.random_bool(0.2) {
                        edges.push((a, b));
                    }
                }
            }
            let g = UniGraph::from_edges(1, vec![0; n], &edges);
            let c = greedy_color_by_degree(&g);
            assert!(c.is_proper(&g), "trial {trial}");
            assert!(c.n_colors as usize <= g.max_degree() + 1, "trial {trial}");
        }
    }
}
