//! Prepared queries: pay pruning + candidate-plan construction once,
//! enumerate many times.
//!
//! Every pipeline in this crate runs three phases: (1) FCore/CFCore
//! pruning (which internally builds the colorful 2-hop structure),
//! (2) [`CandidatePlan`] resolution (substrate choice + bitset-row
//! construction on the pruned core), and (3) enumeration. For a
//! one-shot CLI run the phases are fused; a resident query service
//! answering repeated queries over the same graph wants to amortize
//! (1) and (2). A [`PreparedQuery`] captures exactly that reusable
//! state — the compacted pruned core with its id maps back to the
//! original graph, and the resolved plan (rows shared by reference
//! across workers) — and can then [`PreparedQuery::execute`] any
//! number of times, serially or on the parallel engine, each run with
//! its own budget/deadline/cancellation.
//!
//! The collected pipelines in [`crate::pipeline`] are thin wrappers
//! over this module (prepare → execute), so prepared execution is
//! bit-identical to the one-shot paths by construction.

use crate::bfairbcem::bfairbcem_pp_planned;
use crate::biclique::{Biclique, BicliqueSink, CollectSink, CountSink, EnumStats, MappingSink};
use crate::config::{
    FairParams, PrepareCtl, ProParams, PruneKind, RunConfig, SharedBudget, StopReason, Substrate,
};
use crate::fairbcem_pp::fairbcem_pp_shared;
use crate::fcore::{PruneOutcome, PruneStats};
use crate::maximum::{MaxSink, SizeMetric};
use crate::obs::SpanRecorder;
use crate::parallel::{
    merge_max, par_bsfbc_workers, par_pbsfbc_workers, par_pssfbc_workers, par_ssfbc_workers,
    EngineOpts, MappedGraph,
};
use crate::pipeline::{prune_bi_side_rec, prune_single_side_rec, RunReport};
use crate::proportion::{bfairbcem_pro_pp_planned, fairbcem_pro_pp_shared};
use bigraph::candidate::CandidatePlan;
use bigraph::BipartiteGraph;
use std::time::{Duration, Instant};

/// Which fair-biclique model a query runs, with its parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryModel {
    /// Single-side fair bicliques (Definition 3), `FairBCEM++`.
    Ssfbc(FairParams),
    /// Bi-side fair bicliques (Definition 4), `BFairBCEM++`.
    Bsfbc(FairParams),
    /// Proportion single-side (Definition 5), `FairBCEMPro++`.
    Pssfbc(ProParams),
    /// Proportion bi-side (Definition 6), `BFairBCEMPro++`.
    Pbsfbc(ProParams),
}

impl QueryModel {
    /// Canonical model name (`SSFBC` / `BSFBC` / `PSSFBC` / `PBSFBC`).
    pub fn name(&self) -> &'static str {
        match self {
            QueryModel::Ssfbc(_) => "SSFBC",
            QueryModel::Bsfbc(_) => "BSFBC",
            QueryModel::Pssfbc(_) => "PSSFBC",
            QueryModel::Pbsfbc(_) => "PBSFBC",
        }
    }

    /// True for the bi-side models (both sides fairness-constrained).
    pub fn is_bi_side(&self) -> bool {
        matches!(self, QueryModel::Bsfbc(_) | QueryModel::Pbsfbc(_))
    }

    /// The absolute thresholds `(α, β, δ)` of the model.
    pub fn base(&self) -> FairParams {
        match self {
            QueryModel::Ssfbc(p) | QueryModel::Bsfbc(p) => *p,
            QueryModel::Pssfbc(p) | QueryModel::Pbsfbc(p) => p.base,
        }
    }

    /// The ratio threshold `θ` of the proportion models.
    pub fn theta(&self) -> Option<f64> {
        match self {
            QueryModel::Pssfbc(p) | QueryModel::Pbsfbc(p) => Some(p.theta),
            _ => None,
        }
    }
}

impl std::fmt::Display for QueryModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The reusable, immutable result of the preparation phases of one
/// `(graph, model, params, prune, substrate)` combination: the pruned
/// core (with id maps), and the resolved candidate plan. Safe to share
/// across threads (`execute` takes `&self`), which is what the
/// service's plan cache does via `Arc<PreparedQuery>`.
pub struct PreparedQuery {
    model: QueryModel,
    pruned: PruneOutcome,
    plan: CandidatePlan,
    prune_elapsed: Duration,
}

impl PreparedQuery {
    /// Run the preparation phases: prune `g` for `model` (single- or
    /// bi-side cores as appropriate), then resolve `substrate` against
    /// the pruned core (bi-side models also get upper-side rows).
    pub fn prepare(
        g: &BipartiteGraph,
        model: QueryModel,
        prune: PruneKind,
        substrate: Substrate,
    ) -> PreparedQuery {
        Self::prepare_bounded(g, model, prune, substrate, &PrepareCtl::UNBOUNDED)
            .expect("unbounded prepare is never interrupted")
    }

    /// [`PreparedQuery::prepare`] under a deadline/cancellation bound:
    /// the prune cascade probes `ctl` at its stage boundaries (and,
    /// counter-gated, inside the peel loops) and aborts with the
    /// interrupting [`StopReason`] instead of running to completion.
    /// No partial plan is produced on `Err` — the caller retries the
    /// prepare later (or reports the truncation) rather than caching
    /// a half-pruned core.
    pub fn prepare_bounded(
        g: &BipartiteGraph,
        model: QueryModel,
        prune: PruneKind,
        substrate: Substrate,
        ctl: &PrepareCtl,
    ) -> Result<PreparedQuery, StopReason> {
        Self::prepare_rec(
            g,
            model,
            prune,
            substrate,
            ctl,
            &mut SpanRecorder::disabled(),
        )
    }

    /// [`PreparedQuery::prepare_bounded`] with a [`SpanRecorder`]: the
    /// preparation runs under a `prepare` scope span whose children
    /// attribute wall time to the prune cascade's stages (`core-peel`,
    /// `2hop`, `ego-core`, `colorful-lower`, `colorful-upper`,
    /// `re-peel` — whichever the prune kind runs) and to
    /// `plan-resolve` (degree relabel + candidate-plan construction).
    /// A disabled recorder makes this identical to `prepare_bounded`.
    pub fn prepare_rec(
        g: &BipartiteGraph,
        model: QueryModel,
        prune: PruneKind,
        substrate: Substrate,
        ctl: &PrepareCtl,
        rec: &mut SpanRecorder,
    ) -> Result<PreparedQuery, StopReason> {
        rec.scope("prepare", |rec| {
            let t0 = Instant::now();
            let params = model.base();
            let mut pruned = if model.is_bi_side() {
                prune_bi_side_rec(g, params, prune, ctl, rec)?
            } else {
                prune_single_side_rec(g, params, prune, ctl, rec)?
            };
            if let Some(r) = ctl.interrupted() {
                return Err(r);
            }
            let plan = rec.timed("plan-resolve", || {
                // Relabel the pruned core in degree order so the hottest
                // bitset rows land on adjacent cache lines. Results are
                // mapped back through the composed parent maps, so this
                // is invisible outside the walk itself. Gated on the
                // resolved substrate: sorted-vec merges iterate CSR
                // ranges wholesale and gain nothing from the permutation
                // (it measurably perturbs their merge patterns), and
                // `resolve_for` reads only side sizes and density, which
                // relabeling preserves.
                if substrate.resolve_for(&pruned.sub.graph) == Substrate::Bitset {
                    pruned.sub = pruned.sub.relabel_degree_desc();
                }
                CandidatePlan::build(&pruned.sub.graph, substrate, model.is_bi_side())
            });
            Ok(PreparedQuery {
                model,
                pruned,
                plan,
                prune_elapsed: t0.elapsed(),
            })
        })
    }

    /// The model this plan was prepared for.
    pub fn model(&self) -> QueryModel {
        self.model
    }

    /// Pruning statistics of the preparation pass.
    pub fn prune_stats(&self) -> &PruneStats {
        &self.pruned.stats
    }

    /// The substrate the plan resolved to (never `Auto`).
    pub fn resolved_substrate(&self) -> Substrate {
        self.plan.choice()
    }

    /// Wall-clock cost of the preparation phases (pruning — including
    /// the 2-hop/coloring work of the colorful core — plus plan
    /// construction). Amortized across every execute of this plan.
    pub fn prune_elapsed(&self) -> Duration {
        self.prune_elapsed
    }

    /// Heap bytes pinned by the cached plan: the pruned core's
    /// adjacency plus the bitset rows (cache-eviction accounting).
    pub fn heap_bytes(&self) -> usize {
        // CSR adjacency is one u32 per directed edge endpoint per side
        // plus offsets; approximate with the dominant terms.
        let g = &self.pruned.sub.graph;
        let csr = 2 * g.n_edges() * std::mem::size_of::<bigraph::VertexId>();
        csr + self.plan.heap_bytes()
    }

    /// Serial enumeration on the cached core/plan, streaming
    /// original-id results into `sink`.
    fn stream_serial(&self, cfg: &RunConfig, sink: &mut dyn BicliqueSink) -> EnumStats {
        let g = &self.pruned.sub.graph;
        let shared = SharedBudget::new(cfg.budget.clone());
        let mut mapped = MappingSink::new(
            &self.pruned.sub.upper_to_parent,
            &self.pruned.sub.lower_to_parent,
            sink,
        );
        match self.model {
            QueryModel::Ssfbc(p) => {
                fairbcem_pp_shared(g, p, cfg.order, &shared, false, &self.plan, &mut mapped)
            }
            QueryModel::Bsfbc(p) => {
                bfairbcem_pp_planned(g, p, cfg.order, &shared, &self.plan, &mut mapped)
            }
            QueryModel::Pssfbc(p) => {
                fairbcem_pro_pp_shared(g, p, cfg.order, &shared, false, &self.plan, &mut mapped)
            }
            QueryModel::Pbsfbc(p) => {
                bfairbcem_pro_pp_planned(g, p, cfg.order, &shared, &self.plan, &mut mapped)
            }
        }
    }

    /// Parallel enumeration on the cached core/plan across
    /// `cfg.threads` workers, each with its own sink.
    fn stream_parallel<S: BicliqueSink + Send>(
        &self,
        cfg: &RunConfig,
        make_sink: &(dyn Fn() -> S + Sync),
    ) -> (Vec<S>, EnumStats) {
        let mg = MappedGraph::of_pruned(&self.pruned);
        let opts = EngineOpts::from_run(cfg);
        let budget = cfg.budget.clone();
        match self.model {
            QueryModel::Ssfbc(p) => {
                par_ssfbc_workers(&mg, p, cfg.order, budget, opts, &self.plan, make_sink)
            }
            QueryModel::Bsfbc(p) => {
                par_bsfbc_workers(&mg, p, cfg.order, budget, opts, &self.plan, make_sink)
            }
            QueryModel::Pssfbc(p) => {
                par_pssfbc_workers(&mg, p, cfg.order, budget, opts, &self.plan, make_sink)
            }
            QueryModel::Pbsfbc(p) => {
                par_pbsfbc_workers(&mg, p, cfg.order, budget, opts, &self.plan, make_sink)
            }
        }
    }

    fn report(
        &self,
        bicliques: Vec<Biclique>,
        stats: EnumStats,
        cfg: &RunConfig,
        enumerate_elapsed: Duration,
    ) -> RunReport {
        RunReport {
            bicliques,
            prune: self.pruned.stats,
            stats,
            threads: cfg.threads.max(1),
            truncated_by: stats.stop,
            elapsed: self.prune_elapsed + enumerate_elapsed,
            prune_elapsed: self.prune_elapsed,
            enumerate_elapsed,
        }
    }

    /// Enumerate and collect all results (original ids; honors
    /// `cfg.sorted`, `cfg.threads`, and the budget/cancellation in
    /// `cfg.budget`). `RunReport::prune_elapsed` reports the (possibly
    /// amortized) preparation cost of this plan.
    pub fn execute(&self, cfg: &RunConfig) -> RunReport {
        self.execute_rec(cfg, &mut SpanRecorder::disabled())
    }

    /// [`PreparedQuery::execute`] with a [`SpanRecorder`]: records an
    /// `enumerate` span (with the run's [`EnumStats`] attached as
    /// detail) and, when `cfg.sorted`, a `sort` span for the canonical
    /// reorder/merge. Spans are recorded only at this single-threaded
    /// orchestration boundary — never inside the parallel workers —
    /// so the recorder cannot perturb enumeration. A disabled recorder
    /// makes this identical to `execute`.
    pub fn execute_rec(&self, cfg: &RunConfig, rec: &mut SpanRecorder) -> RunReport {
        let t0 = Instant::now();
        let (mut bicliques, stats) = rec.timed("enumerate", || {
            if cfg.threads > 1 {
                let (sinks, stats) = self.stream_parallel(cfg, &CollectSink::default);
                let mut all = Vec::new();
                for s in sinks {
                    all.extend(s.bicliques);
                }
                (all, stats)
            } else {
                let mut sink = CollectSink::default();
                let stats = self.stream_serial(cfg, &mut sink);
                (sink.bicliques, stats)
            }
        });
        annotate_enumerate(rec, &stats, cfg.threads.max(1));
        if cfg.sorted {
            rec.timed("sort", || {
                crate::results::canonical_order(&mut bicliques);
            });
        }
        self.report(bicliques, stats, cfg, t0.elapsed())
    }

    /// Count results without materializing them (`stats.emitted` is
    /// the count; `bicliques` stays empty).
    pub fn count(&self, cfg: &RunConfig) -> RunReport {
        self.count_rec(cfg, &mut SpanRecorder::disabled())
    }

    /// [`PreparedQuery::count`] with a [`SpanRecorder`] (see
    /// [`PreparedQuery::execute_rec`]; counting has no `sort` span).
    pub fn count_rec(&self, cfg: &RunConfig, rec: &mut SpanRecorder) -> RunReport {
        let t0 = Instant::now();
        let stats = rec.timed("enumerate", || {
            if cfg.threads > 1 {
                let (_, stats) = self.stream_parallel(cfg, &CountSink::default);
                stats
            } else {
                let mut sink = CountSink::default();
                self.stream_serial(cfg, &mut sink)
            }
        });
        annotate_enumerate(rec, &stats, cfg.threads.max(1));
        self.report(Vec::new(), stats, cfg, t0.elapsed())
    }

    /// The single largest result under `metric` (ties broken
    /// lexicographically, matching [`crate::maximum`]). Works for all
    /// four models — the proportion maxima simply rank the proportion
    /// enumeration's output.
    pub fn maximum(&self, metric: SizeMetric, cfg: &RunConfig) -> (Option<Biclique>, EnumStats) {
        self.maximum_rec(metric, cfg, &mut SpanRecorder::disabled())
    }

    /// [`PreparedQuery::maximum`] with a [`SpanRecorder`]: records
    /// `enumerate` for the search and `sort` for the cross-worker
    /// maximum merge (parallel runs only).
    pub fn maximum_rec(
        &self,
        metric: SizeMetric,
        cfg: &RunConfig,
        rec: &mut SpanRecorder,
    ) -> (Option<Biclique>, EnumStats) {
        if cfg.threads > 1 {
            let (sinks, stats) = rec.timed("enumerate", || {
                self.stream_parallel(cfg, &|| MaxSink::new(metric))
            });
            annotate_enumerate(rec, &stats, cfg.threads.max(1));
            let best = rec.timed("sort", || merge_max(metric, sinks).best);
            (best, stats)
        } else {
            let mut sink = MaxSink::new(metric);
            let stats = rec.timed("enumerate", || self.stream_serial(cfg, &mut sink));
            annotate_enumerate(rec, &stats, cfg.threads.max(1));
            (sink.best, stats)
        }
    }
}

/// Attach the run's [`EnumStats`] as detail on the just-recorded
/// `enumerate` span (no-op when disabled).
fn annotate_enumerate(rec: &mut SpanRecorder, stats: &EnumStats, threads: usize) {
    rec.annotate_last(|| {
        format!(
            "threads={} nodes={} emitted={} aborted={} peak_bytes={}",
            threads, stats.nodes, stats.emitted, stats.aborted, stats.peak_search_bytes
        )
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Budget, CancelToken, StopReason};
    use crate::pipeline::{enumerate_bsfbc, enumerate_pbsfbc, enumerate_pssfbc, enumerate_ssfbc};
    use bigraph::generate::random_uniform;

    fn models() -> Vec<QueryModel> {
        let fair = FairParams::unchecked(2, 1, 1);
        let pro = ProParams::new(2, 1, 1, 0.3).unwrap();
        vec![
            QueryModel::Ssfbc(fair),
            QueryModel::Bsfbc(fair),
            QueryModel::Pssfbc(pro),
            QueryModel::Pbsfbc(pro),
        ]
    }

    #[test]
    fn prepared_matches_one_shot_pipelines_all_models() {
        let g = random_uniform(12, 14, 70, 2, 2, 11);
        for model in models() {
            for threads in [1usize, 3] {
                let cfg = RunConfig {
                    threads,
                    sorted: true,
                    ..RunConfig::default()
                };
                let want = match model {
                    QueryModel::Ssfbc(p) => enumerate_ssfbc(&g, p, &cfg),
                    QueryModel::Bsfbc(p) => enumerate_bsfbc(&g, p, &cfg),
                    QueryModel::Pssfbc(p) => enumerate_pssfbc(&g, p, &cfg),
                    QueryModel::Pbsfbc(p) => enumerate_pbsfbc(&g, p, &cfg),
                };
                let prepared = PreparedQuery::prepare(&g, model, cfg.prune, cfg.substrate);
                let got = prepared.execute(&cfg);
                assert_eq!(got.bicliques, want.bicliques, "{model} threads {threads}");
                assert_eq!(
                    got.stats.nodes, want.stats.nodes,
                    "{model} threads {threads}"
                );
                assert_eq!(got.prune, want.prune);
                // The same plan executes repeatedly with identical output.
                let again = prepared.execute(&cfg);
                assert_eq!(again.bicliques, got.bicliques);
                // Count mode agrees without materializing.
                let counted = prepared.count(&cfg);
                assert!(counted.bicliques.is_empty());
                assert_eq!(counted.stats.emitted as usize, got.bicliques.len());
            }
        }
    }

    #[test]
    fn prepared_maximum_matches_maximum_module() {
        let g = random_uniform(14, 14, 90, 2, 2, 5);
        let params = FairParams::unchecked(2, 1, 1);
        let cfg = RunConfig::default();
        let (want, _) = crate::maximum::max_ssfbc(&g, params, SizeMetric::Edges, &cfg);
        let prepared =
            PreparedQuery::prepare(&g, QueryModel::Ssfbc(params), cfg.prune, cfg.substrate);
        for threads in [1usize, 4] {
            let cfg = RunConfig::with_threads(threads);
            let (got, _) = prepared.maximum(SizeMetric::Edges, &cfg);
            assert_eq!(got, want, "threads {threads}");
        }
    }

    #[test]
    fn truncated_by_reports_the_tripped_limit() {
        let g = random_uniform(16, 18, 120, 2, 2, 4);
        let params = FairParams::unchecked(1, 1, 2);
        let prepared = PreparedQuery::prepare(
            &g,
            QueryModel::Ssfbc(params),
            PruneKind::default(),
            Substrate::Auto,
        );
        let full = prepared.execute(&RunConfig::default());
        assert_eq!(full.truncated_by, None);
        assert!(full.elapsed >= full.enumerate_elapsed);

        let capped = prepared.execute(&RunConfig {
            budget: Budget::results(1),
            ..RunConfig::default()
        });
        assert_eq!(capped.truncated_by, Some(StopReason::ResultCap));
        assert_eq!(capped.bicliques.len(), 1);

        // A pre-cancelled token stops the run immediately, for any
        // thread count, and the plan stays reusable afterwards.
        for threads in [1usize, 4] {
            let token = CancelToken::new();
            token.cancel();
            let cancelled = prepared.execute(&RunConfig {
                threads,
                budget: Budget::UNLIMITED.with_cancel(token),
                ..RunConfig::default()
            });
            assert_eq!(cancelled.truncated_by, Some(StopReason::Cancelled));
            assert!(cancelled.stats.aborted);
            assert!(cancelled.bicliques.len() <= full.bicliques.len());
        }
        let after = prepared.execute(&RunConfig::default());
        assert_eq!(after.bicliques.len(), full.bicliques.len());
    }

    #[test]
    fn prepare_bounded_aborts_on_expired_ctl() {
        let g = random_uniform(16, 18, 120, 2, 2, 4);
        for model in models() {
            // Expired deadline: the first probe trips before any stage
            // runs, for every prune kind including None (probed in the
            // prepare wrapper itself).
            for prune in [PruneKind::None, PruneKind::FCore, PruneKind::Colorful] {
                let ctl = PrepareCtl {
                    deadline_at: Some(Instant::now()),
                    cancel: None,
                };
                let got = PreparedQuery::prepare_bounded(&g, model, prune, Substrate::Auto, &ctl);
                assert!(
                    matches!(got, Err(StopReason::Deadline)),
                    "{model} {prune:?} should abort on expired deadline"
                );
            }
            // Pre-cancelled token wins over a live deadline.
            let token = CancelToken::new();
            token.cancel();
            let ctl = PrepareCtl {
                deadline_at: None,
                cancel: Some(token),
            };
            let got = PreparedQuery::prepare_bounded(
                &g,
                model,
                PruneKind::Colorful,
                Substrate::Auto,
                &ctl,
            );
            assert!(matches!(got, Err(StopReason::Cancelled)), "{model}");
            // An unbounded ctl prepares normally and matches `prepare`.
            let bounded = PreparedQuery::prepare_bounded(
                &g,
                model,
                PruneKind::Colorful,
                Substrate::Auto,
                &PrepareCtl::UNBOUNDED,
            )
            .unwrap();
            let plain = PreparedQuery::prepare(&g, model, PruneKind::Colorful, Substrate::Auto);
            assert_eq!(bounded.prune_stats(), plain.prune_stats(), "{model}");
        }
    }

    #[test]
    fn model_accessors() {
        let fair = FairParams::unchecked(3, 2, 1);
        let pro = ProParams::new(3, 2, 1, 0.25).unwrap();
        assert_eq!(QueryModel::Ssfbc(fair).name(), "SSFBC");
        assert_eq!(QueryModel::Pbsfbc(pro).to_string(), "PBSFBC");
        assert!(QueryModel::Bsfbc(fair).is_bi_side());
        assert!(!QueryModel::Pssfbc(pro).is_bi_side());
        assert_eq!(QueryModel::Pssfbc(pro).base(), fair);
        assert_eq!(QueryModel::Pssfbc(pro).theta(), Some(0.25));
        assert_eq!(QueryModel::Ssfbc(fair).theta(), None);

        let g = random_uniform(10, 10, 50, 2, 2, 9);
        let p = PreparedQuery::prepare(
            &g,
            QueryModel::Ssfbc(fair),
            PruneKind::Colorful,
            Substrate::Auto,
        );
        assert_eq!(p.model(), QueryModel::Ssfbc(fair));
        assert_ne!(p.resolved_substrate(), Substrate::Auto);
        assert!(p.prune_stats().upper_after <= p.prune_stats().upper_before);
        let _ = p.heap_bytes();
    }
}
