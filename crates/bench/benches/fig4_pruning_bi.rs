//! Regenerates Fig. 4 (BFCore vs BCFCore) of the paper. Run: `cargo bench --bench fig4_pruning_bi`
//! (add `-- --quick` for a reduced sweep).

fn main() {
    let opts = fbe_bench::Opts::from_args();
    println!(
        "=== Fig. 4 (BFCore vs BCFCore) (budget {:?}/run, quick={}) ===",
        opts.budget, opts.quick
    );
    for (i, t) in fbe_bench::experiments::exp1_fig4(&opts)
        .into_iter()
        .enumerate()
    {
        t.print();
        t.save(&format!("fig4_pruning_bi_{i}"));
    }
}
