//! The paper's DBLP case study (§V-C, Fig. 9): mine fair research
//! teams from scholar–paper collaboration graphs.
//!
//! * **DBDA** — database + AI papers; a single-side fair biclique with
//!   `(α=3, β=3, δ=2)` is a team of scholars with a balanced
//!   senior/junior mix who co-authored ≥ 3 papers.
//! * **DBDS** — database + systems papers; a bi-side fair biclique
//!   with `(α=1, β=2, δ=2)` additionally balances the papers across
//!   the two venue areas.
//!
//! ```text
//! cargo run -p fbe-examples --example dblp_teams
//! ```

use fair_biclique::prelude::*;
use fbe_datasets::case_studies::{dbda, dbds, CaseStudy};

fn show(cs: &CaseStudy, label: &str, bicliques: &[fair_biclique::biclique::Biclique], k: usize) {
    println!("\n=== {} ({} result(s)) ===", label, bicliques.len());
    // Show the largest few, Fig. 9-style.
    let mut ranked: Vec<_> = bicliques.iter().collect();
    ranked.sort_by_key(|b| std::cmp::Reverse(b.len()));
    for bc in ranked.into_iter().take(k) {
        println!("{}", cs.describe(bc));
    }
}

fn main() {
    // --- DBDA: single-side fair teams (paper: α=3, β=3, δ=2) ---
    let cs = dbda(2023);
    println!(
        "DBDA: {} papers x {} scholars, {} authorships",
        cs.graph.n_upper(),
        cs.graph.n_lower(),
        cs.graph.n_edges()
    );
    let params = FairParams::new(3, 3, 2).expect("valid");
    let report = enumerate_ssfbc(&cs.graph, params, &RunConfig::default());
    show(&cs, &format!("DBDA SSFBC {params}"), &report.bicliques, 2);

    // --- DBDA: bi-side fair teams (paper: α=1, β=2, δ=2) ---
    let bi = FairParams::new(1, 2, 2).expect("valid");
    let report = enumerate_bsfbc(&cs.graph, bi, &RunConfig::default());
    show(&cs, &format!("DBDA BSFBC {bi}"), &report.bicliques, 2);

    // --- DBDS: single-side (paper: α=2, β=2, δ=2) ---
    let cs = dbds(2023);
    println!(
        "\nDBDS: {} papers x {} scholars, {} authorships",
        cs.graph.n_upper(),
        cs.graph.n_lower(),
        cs.graph.n_edges()
    );
    let params = FairParams::new(2, 2, 2).expect("valid");
    let report = enumerate_ssfbc(&cs.graph, params, &RunConfig::default());
    show(&cs, &format!("DBDS SSFBC {params}"), &report.bicliques, 2);

    // --- DBDS: bi-side (paper: α=1, β=2, δ=2) ---
    let report = enumerate_bsfbc(&cs.graph, bi, &RunConfig::default());
    show(&cs, &format!("DBDS BSFBC {bi}"), &report.bicliques, 2);
}
