//! The parallel engine vs serial on corpus-scale graphs — every
//! miner — plus the attribute-skew sensitivity the skewed generator
//! enables.

use fair_biclique::biclique::Biclique;
use fair_biclique::config::{FairParams, RunConfig};
use fair_biclique::maximum::{max_bsfbc, max_ssfbc, SizeMetric};
use fair_biclique::parallel::par_enumerate_ssfbc;
use fair_biclique::pipeline::{
    enumerate_bsfbc, enumerate_pbsfbc, enumerate_pssfbc, enumerate_ssfbc,
};
use fbe_datasets::corpus::{spec, Dataset};
use std::collections::BTreeSet;

#[test]
fn parallel_matches_serial_on_youtube_corpus() {
    let s = spec(Dataset::Youtube);
    let g = s.build();
    let params = s.single_params();
    let serial: BTreeSet<Biclique> = enumerate_ssfbc(&g, params, &RunConfig::default())
        .bicliques
        .into_iter()
        .collect();
    assert!(!serial.is_empty());
    for threads in [2usize, 4, 8] {
        let par = par_enumerate_ssfbc(&g, params, &RunConfig::default(), threads);
        let got: BTreeSet<Biclique> = par.bicliques.iter().cloned().collect();
        assert_eq!(
            got.len(),
            par.bicliques.len(),
            "threads {threads}: duplicates"
        );
        assert_eq!(got, serial, "threads {threads}");
    }
}

#[test]
fn all_parallel_miners_match_serial_on_youtube_corpus() {
    let s = spec(Dataset::Youtube);
    let g = s.build();
    let params = s.single_params();
    let bi = s.bi_params();
    let pro = s.single_pro_params();
    let bi_pro = s.bi_pro_params();
    let sorted = RunConfig {
        sorted: true,
        ..RunConfig::default()
    };
    let want = (
        enumerate_ssfbc(&g, params, &sorted).bicliques,
        enumerate_bsfbc(&g, bi, &sorted).bicliques,
        enumerate_pssfbc(&g, pro, &sorted).bicliques,
        enumerate_pbsfbc(&g, bi_pro, &sorted).bicliques,
        max_ssfbc(&g, params, SizeMetric::Edges, &sorted).0,
        max_bsfbc(&g, bi, SizeMetric::Vertices, &sorted).0,
    );
    assert!(!want.0.is_empty());
    for threads in [2usize, 4, 8] {
        for split_depth in [1u32, 2] {
            let cfg = RunConfig {
                threads,
                split_depth,
                ..sorted.clone()
            };
            let got = (
                enumerate_ssfbc(&g, params, &cfg).bicliques,
                enumerate_bsfbc(&g, bi, &cfg).bicliques,
                enumerate_pssfbc(&g, pro, &cfg).bicliques,
                enumerate_pbsfbc(&g, bi_pro, &cfg).bicliques,
                max_ssfbc(&g, params, SizeMetric::Edges, &cfg).0,
                max_bsfbc(&g, bi, SizeMetric::Vertices, &cfg).0,
            );
            assert_eq!(got, want, "threads {threads} split {split_depth}");
        }
    }
}

#[test]
fn attribute_skew_starves_fair_bicliques() {
    // As the minority attribute share shrinks, fair biclique counts
    // must fall monotonically-ish and hit zero at full starvation.
    let s = spec(Dataset::Youtube);
    let base = s.build();
    let params = FairParams::unchecked(4, 3, 2);
    let mut counts = Vec::new();
    for p in [0.5, 0.2, 0.05, 0.0] {
        let g = bigraph::generate::with_skewed_lower_attrs(&base, p, 99);
        let n = enumerate_ssfbc(&g, params, &RunConfig::default())
            .bicliques
            .len();
        counts.push(n);
    }
    assert_eq!(
        *counts.last().unwrap(),
        0,
        "no minority vertices -> no fair bicliques"
    );
    assert!(
        counts[0] >= counts[2],
        "balanced attrs should allow at least as many results as 5% skew: {counts:?}"
    );
}
