//! Property tests on the substrate crate: graph construction,
//! intersections, 2-hop projections, coloring, subgraphs, and core
//! peeling invariants.

use bigraph::coloring::greedy_color_by_degree;
use bigraph::twohop::{construct_2hop, construct_2hop_biside};
use bigraph::{BipartiteGraph, GraphBuilder, Side, UniGraph, VertexId};
use proptest::prelude::*;

fn graph_strategy() -> impl Strategy<Value = BipartiteGraph> {
    (2usize..9, 2usize..9).prop_flat_map(|(nu, nv)| {
        (
            Just(nu),
            Just(nv),
            proptest::collection::vec(proptest::bool::weighted(0.35), nu * nv),
            proptest::collection::vec(0u16..2, nu),
            proptest::collection::vec(0u16..2, nv),
        )
            .prop_map(|(nu, nv, cells, ua, la)| {
                let mut b = GraphBuilder::new(2, 2);
                b.ensure_vertices(nu, nv);
                for (i, &on) in cells.iter().enumerate() {
                    if on {
                        b.add_edge((i / nv) as u32, (i % nv) as u32);
                    }
                }
                b.set_attrs_upper(&ua);
                b.set_attrs_lower(&la);
                b.build().expect("valid")
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn builder_output_validates(g in graph_strategy()) {
        prop_assert_eq!(g.validate(), Ok(()));
        // Degrees sum to edge count on both sides.
        let du: usize = (0..g.n_upper() as VertexId).map(|u| g.degree(Side::Upper, u)).sum();
        let dv: usize = (0..g.n_lower() as VertexId).map(|v| g.degree(Side::Lower, v)).sum();
        prop_assert_eq!(du, g.n_edges());
        prop_assert_eq!(dv, g.n_edges());
    }

    #[test]
    fn intersection_matches_sets(
        a in proptest::collection::btree_set(0u32..40, 0..20),
        b in proptest::collection::btree_set(0u32..40, 0..20),
    ) {
        let va: Vec<u32> = a.iter().copied().collect();
        let vb: Vec<u32> = b.iter().copied().collect();
        let mut out = Vec::new();
        bigraph::intersect_sorted_into(&va, &vb, &mut out);
        let want: Vec<u32> = a.intersection(&b).copied().collect();
        prop_assert_eq!(&out, &want);
        prop_assert_eq!(bigraph::intersect_sorted_count(&va, &vb), want.len());
        prop_assert_eq!(bigraph::is_sorted_subset(&out, &va), true);
        prop_assert_eq!(bigraph::is_sorted_subset(&out, &vb), true);
    }

    #[test]
    fn twohop_edges_iff_common_neighbors(g in graph_strategy(), alpha in 1usize..4) {
        let h = construct_2hop(&g, Side::Lower, alpha);
        prop_assert_eq!(h.n(), g.n_lower());
        for x in 0..g.n_lower() as VertexId {
            for y in (x + 1)..g.n_lower() as VertexId {
                let c = bigraph::intersect_sorted_count(
                    g.neighbors(Side::Lower, x),
                    g.neighbors(Side::Lower, y),
                );
                prop_assert_eq!(h.has_edge(x, y), c >= alpha);
            }
        }
    }

    #[test]
    fn biside_twohop_is_subgraph_of_twohop(g in graph_strategy(), alpha in 1usize..3) {
        let h = construct_2hop(&g, Side::Lower, alpha);
        let hb = construct_2hop_biside(&g, Side::Lower, alpha);
        for x in 0..hb.n() as VertexId {
            for &y in hb.neighbors(x) {
                // >= alpha per attribute implies >= alpha in total.
                prop_assert!(h.has_edge(x, y));
            }
        }
    }

    #[test]
    fn coloring_is_proper_and_bounded(
        n in 1usize..30,
        edges in proptest::collection::vec((0u32..30, 0u32..30), 0..80),
    ) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .filter(|&(a, b)| (a as usize) < n && (b as usize) < n && a != b)
            .collect();
        let g = UniGraph::from_edges(1, vec![0; n], &edges);
        let c = greedy_color_by_degree(&g);
        prop_assert!(c.is_proper(&g));
        prop_assert!((c.n_colors as usize) <= g.max_degree() + 1);
    }

    #[test]
    fn induce_preserves_exactly_internal_edges(g in graph_strategy()) {
        let keep_u: Vec<bool> = (0..g.n_upper()).map(|i| i % 2 == 0).collect();
        let keep_v: Vec<bool> = (0..g.n_lower()).map(|i| i % 3 != 0).collect();
        let sub = bigraph::subgraph::induce(&g, &keep_u, &keep_v);
        prop_assert_eq!(sub.graph.validate(), Ok(()));
        let expected = g
            .edges()
            .filter(|&(u, v)| keep_u[u as usize] && keep_v[v as usize])
            .count();
        prop_assert_eq!(sub.graph.n_edges(), expected);
    }

    #[test]
    fn fcore_mask_is_maximal_fair_core(g in graph_strategy(), alpha in 1u32..3, beta in 0u32..3) {
        use fair_biclique::fcore::{fcore_masks, is_fair_core};
        let (ku, kv) = fcore_masks(&g, alpha, beta);
        prop_assert!(is_fair_core(&g, &ku, &kv, alpha, beta));
        // Every oracle SSFBC survives the mask (Lemma 1).
        let params = fair_biclique::config::FairParams::unchecked(alpha, beta, 5);
        for bc in fair_biclique::verify::oracle_ssfbc(&g, params) {
            for &u in &bc.upper {
                prop_assert!(ku[u as usize], "upper {} of {} peeled", u, bc);
            }
            for &v in &bc.lower {
                prop_assert!(kv[v as usize], "lower {} of {} peeled", v, bc);
            }
        }
    }

    #[test]
    fn cfcore_preserves_all_ssfbcs(g in graph_strategy(), alpha in 1u32..3, beta in 1u32..3) {
        use fair_biclique::cfcore::cfcore;
        use std::collections::BTreeSet;
        let params = fair_biclique::config::FairParams::unchecked(alpha, beta, 2);
        let out = cfcore(&g, params);
        let keep_u: BTreeSet<u32> = out.sub.upper_to_parent.iter().copied().collect();
        let keep_v: BTreeSet<u32> = out.sub.lower_to_parent.iter().copied().collect();
        for bc in fair_biclique::verify::oracle_ssfbc(&g, params) {
            for &u in &bc.upper {
                prop_assert!(keep_u.contains(&u), "upper {} of {} peeled by CFCore", u, bc);
            }
            for &v in &bc.lower {
                prop_assert!(keep_v.contains(&v), "lower {} of {} peeled by CFCore", v, bc);
            }
        }
    }

    #[test]
    fn bcfcore_preserves_all_bsfbcs(g in graph_strategy(), delta in 0u32..3) {
        use fair_biclique::bfcore::bcfcore;
        use std::collections::BTreeSet;
        let params = fair_biclique::config::FairParams::unchecked(1, 1, delta);
        let out = bcfcore(&g, params);
        let keep_u: BTreeSet<u32> = out.sub.upper_to_parent.iter().copied().collect();
        let keep_v: BTreeSet<u32> = out.sub.lower_to_parent.iter().copied().collect();
        for bc in fair_biclique::verify::oracle_bsfbc(&g, params) {
            for &u in &bc.upper {
                prop_assert!(keep_u.contains(&u), "upper {} of {} peeled by BCFCore", u, bc);
            }
            for &v in &bc.lower {
                prop_assert!(keep_v.contains(&v), "lower {} of {} peeled by BCFCore", v, bc);
            }
        }
    }

    #[test]
    fn io_parsers_never_panic_on_garbage(data in ".*{0,200}") {
        // Failure injection: arbitrary input must yield Ok or a clean
        // Err, never a panic.
        let _ = bigraph::io::read_edge_list(data.as_bytes(), 2, 2);
        let _ = bigraph::io::read_attr_pairs(data.as_bytes());
        let _ = fair_biclique::results::read_tsv(data.as_bytes());
    }

    #[test]
    fn tsv_results_roundtrip(g in graph_strategy()) {
        use fair_biclique::prelude::*;
        let params = FairParams::unchecked(1, 1, 1);
        let report = enumerate_ssfbc(&g, params, &RunConfig::default());
        let mut buf = Vec::new();
        fair_biclique::results::write_tsv(&report.bicliques, &mut buf).unwrap();
        let back = fair_biclique::results::read_tsv(buf.as_slice()).unwrap();
        prop_assert_eq!(back, report.bicliques);
    }

    #[test]
    fn flipped_preserves_structure(g in graph_strategy()) {
        let f = g.flipped();
        prop_assert_eq!(f.validate(), Ok(()));
        prop_assert_eq!(f.n_edges(), g.n_edges());
        for (u, v) in g.edges() {
            prop_assert!(f.has_edge(v, u));
        }
    }
}
