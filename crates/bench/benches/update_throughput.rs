//! Dynamic-graph update throughput: incremental fair-core repair
//! (`fair_biclique::incremental::CoreTracker`) vs recomputing the
//! core from scratch after every edit, plus the full service verb
//! path (`ADDEDGE`/`DELEDGE` through the engine: CSR splice + repair
//! + surgical plan-cache sweep).
//!
//! Run: `cargo bench --bench update_throughput` (`-- --quick` for a
//! reduced iteration count).

use bigraph::generate::random_uniform;
use bigraph::{BipartiteGraph, VertexId};
use fair_biclique::fcore::fcore_masks;
use fair_biclique::incremental::CoreTracker;
use fbe_service::engine::Engine;
use fbe_service::ServiceConfig;
use std::time::Instant;

fn ups(n: u32, total: std::time::Duration) -> f64 {
    n as f64 / total.as_secs_f64().max(1e-9)
}

/// Deterministic xorshift so both strategies replay the same script.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Apply `steps` random edge flips, repairing the tracked core
/// incrementally after each one.
fn run_incremental(start: &BipartiteGraph, steps: u32, seed: u64) -> f64 {
    let mut g = start.clone();
    let mut tracker = CoreTracker::new(&g, 2, 2);
    let mut rng = seed;
    let t0 = Instant::now();
    for _ in 0..steps {
        let u = (xorshift(&mut rng) % g.n_upper() as u64) as VertexId;
        let v = (xorshift(&mut rng) % g.n_lower() as u64) as VertexId;
        if g.has_edge(u, v) {
            let g2 = g.without_edge(u, v).expect("edge removal");
            tracker.remove_edge(&g2, u, v);
            g = g2;
        } else {
            let g2 = g.with_edge(u, v).expect("edge insertion");
            tracker.add_edge(&g2, u, v);
            g = g2;
        }
    }
    ups(steps, t0.elapsed())
}

/// The same script, but peeling the core from scratch after each
/// splice — what a service without incremental maintenance pays.
fn run_scratch(start: &BipartiteGraph, steps: u32, seed: u64) -> f64 {
    let mut g = start.clone();
    let mut rng = seed;
    let t0 = Instant::now();
    for _ in 0..steps {
        let u = (xorshift(&mut rng) % g.n_upper() as u64) as VertexId;
        let v = (xorshift(&mut rng) % g.n_lower() as u64) as VertexId;
        g = if g.has_edge(u, v) {
            g.without_edge(u, v).expect("edge removal")
        } else {
            g.with_edge(u, v).expect("edge insertion")
        };
        let _ = fcore_masks(&g, 2, 2);
    }
    ups(steps, t0.elapsed())
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let steps: u32 = if quick { 100 } else { 1000 };
    println!("=== Dynamic-graph update throughput (updates/s, core at (2, 2)) ===");
    println!(
        "{:<28} {:>14} {:>14} {:>8}",
        "case", "incremental", "scratch", "speedup"
    );
    for (nu, nv, m) in [(200usize, 200usize, 2_000usize), (800, 800, 9_600)] {
        let label = format!("uniform {nu}x{nv} m={m}");
        let g = random_uniform(nu, nv, m, 2, 2, 7);
        let inc = run_incremental(&g, steps, 0xfbe7);
        let scratch = run_scratch(&g, steps.min(200), 0xfbe7);
        println!(
            "{label:<28} {inc:>14.0} {scratch:>14.0} {:>7.1}x",
            inc / scratch.max(1e-9)
        );
        fbe_bench::export_json_record(
            &format!("update_throughput/{label}"),
            &[("incremental_ups", inc), ("scratch_ups", scratch)],
        );
    }

    // Full verb path through the engine: pendant edge on a fresh
    // vertex flipped on and off. Every update is clean for the primed
    // (2, 1) plan, so this measures splice + repair + the surgical
    // sweep that keeps the plan alive.
    let engine = Engine::new(ServiceConfig::default());
    assert!(engine
        .handle_line("GEN u uniform:500,500,6000,7")
        .reply()
        .is_ok());
    assert!(engine
        .handle_line("ENUM u ssfbc alpha=2 beta=1 delta=1 count-only")
        .reply()
        .is_ok());
    assert!(engine
        .handle_line("ADDVERTEX u lower attr=0")
        .reply()
        .is_ok());
    let t0 = Instant::now();
    for i in 0..steps {
        let verb = if i % 2 == 0 { "ADDEDGE" } else { "DELEDGE" };
        let outcome = engine.handle_line(&format!("{verb} u 0 500"));
        let reply = outcome.reply();
        assert!(reply.is_ok(), "{}", reply.status);
    }
    let verb_ups = ups(steps, t0.elapsed());
    println!(
        "{:<28} {:>14.0} {:>14} {:>8}",
        "engine verb path (clean)", verb_ups, "-", "-"
    );
    fbe_bench::export_json_record(
        "update_throughput/engine verb path (clean)",
        &[("incremental_ups", verb_ups)],
    );
}
