//! Atomic metrics registry served by `STATS`.

use fair_biclique::StopReason;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Upper bounds (µs) of the latency histogram buckets; the last bucket
/// is unbounded.
const BUCKET_BOUNDS_US: [u64; 5] = [1_000, 10_000, 100_000, 1_000_000, 10_000_000];

/// Lock-free counters + coarse latency histogram for one service
/// instance. All methods take `&self`; relaxed ordering is fine —
/// these are statistics, not synchronization.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    /// Every query received (before admission).
    pub queries_total: AtomicU64,
    /// Queries answered with `OK` (including truncated ones).
    pub queries_ok: AtomicU64,
    /// Queries answered with `ERR`.
    pub queries_err: AtomicU64,
    /// Queries refused by admission control.
    pub rejected_busy: AtomicU64,
    /// Queries truncated by their deadline.
    pub truncated_deadline: AtomicU64,
    /// Queries truncated by a result/node cap.
    pub truncated_budget: AtomicU64,
    /// Queries truncated by cancellation (shutdown).
    pub truncated_cancelled: AtomicU64,
    /// Plan-cache hits.
    pub plan_cache_hits: AtomicU64,
    /// Plan-cache misses (plans prepared).
    pub plan_cache_misses: AtomicU64,
    /// Graphs loaded or generated into the catalog.
    pub graphs_loaded: AtomicU64,
    /// Graph updates applied (`ADDEDGE` / `DELEDGE` / `ADDVERTEX`).
    pub updates_applied: AtomicU64,
    /// Coordinator requests fanned out to shard servers.
    pub shard_fanouts: AtomicU64,
    /// Shard calls that failed (connect/timeout/protocol error).
    pub shard_errors: AtomicU64,
    /// Results received from healthy shards but discarded because a
    /// sibling shard failed mid-fanout (partial-result accounting for
    /// `ERR SHARD` replies).
    pub shard_partial_results: AtomicU64,
    latency_buckets: [AtomicU64; 6],
    latency_count: AtomicU64,
    latency_sum_us: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            started: Instant::now(),
            queries_total: AtomicU64::new(0),
            queries_ok: AtomicU64::new(0),
            queries_err: AtomicU64::new(0),
            rejected_busy: AtomicU64::new(0),
            truncated_deadline: AtomicU64::new(0),
            truncated_budget: AtomicU64::new(0),
            truncated_cancelled: AtomicU64::new(0),
            plan_cache_hits: AtomicU64::new(0),
            plan_cache_misses: AtomicU64::new(0),
            graphs_loaded: AtomicU64::new(0),
            updates_applied: AtomicU64::new(0),
            shard_fanouts: AtomicU64::new(0),
            shard_errors: AtomicU64::new(0),
            shard_partial_results: AtomicU64::new(0),
            latency_buckets: Default::default(),
            latency_count: AtomicU64::new(0),
            latency_sum_us: AtomicU64::new(0),
        }
    }
}

/// `ctr += 1`, relaxed.
pub fn bump(ctr: &AtomicU64) {
    ctr.fetch_add(1, Ordering::Relaxed);
}

impl Metrics {
    /// Fresh registry (uptime starts now).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one query's end-to-end latency.
    pub fn observe_latency(&self, d: Duration) {
        let us = d.as_micros().min(u64::MAX as u128) as u64;
        let idx = BUCKET_BOUNDS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(BUCKET_BOUNDS_US.len());
        bump(&self.latency_buckets[idx]);
        bump(&self.latency_count);
        self.latency_sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Record why a truncated query stopped.
    pub fn observe_truncation(&self, stop: StopReason) {
        match stop {
            StopReason::Deadline => bump(&self.truncated_deadline),
            StopReason::Cancelled => bump(&self.truncated_cancelled),
            StopReason::NodeCap | StopReason::ResultCap => bump(&self.truncated_budget),
        }
    }

    /// `STATS` payload lines (`<key> <value>`), stable order. The
    /// engine appends catalog/plan-cache gauges it owns.
    pub fn render(&self) -> Vec<String> {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let mut out = vec![
            format!("uptime_s {}", self.started.elapsed().as_secs()),
            format!("queries_total {}", g(&self.queries_total)),
            format!("queries_ok {}", g(&self.queries_ok)),
            format!("queries_err {}", g(&self.queries_err)),
            format!("rejected_busy {}", g(&self.rejected_busy)),
            format!("truncated_deadline {}", g(&self.truncated_deadline)),
            format!("truncated_budget {}", g(&self.truncated_budget)),
            format!("truncated_cancelled {}", g(&self.truncated_cancelled)),
            format!("plan_cache_hits {}", g(&self.plan_cache_hits)),
            format!("plan_cache_misses {}", g(&self.plan_cache_misses)),
            format!("graphs_loaded {}", g(&self.graphs_loaded)),
            format!("updates_applied {}", g(&self.updates_applied)),
            format!("shard_fanouts {}", g(&self.shard_fanouts)),
            format!("shard_errors {}", g(&self.shard_errors)),
            format!("shard_partial_results {}", g(&self.shard_partial_results)),
            format!("latency_count {}", g(&self.latency_count)),
            format!("latency_sum_us {}", g(&self.latency_sum_us)),
        ];
        for (i, b) in self.latency_buckets.iter().enumerate() {
            let label = BUCKET_BOUNDS_US
                .get(i)
                .map_or("inf".to_string(), |us| format!("{us}us"));
            out.push(format!("latency_le_{label} {}", b.load(Ordering::Relaxed)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_histogram() {
        let m = Metrics::new();
        bump(&m.queries_total);
        bump(&m.queries_ok);
        m.observe_latency(Duration::from_micros(500));
        m.observe_latency(Duration::from_millis(5));
        m.observe_latency(Duration::from_secs(20));
        m.observe_truncation(StopReason::Deadline);
        m.observe_truncation(StopReason::ResultCap);
        m.observe_truncation(StopReason::Cancelled);
        let lines = m.render();
        let find = |k: &str| -> u64 {
            lines
                .iter()
                .find_map(|l| l.strip_prefix(&format!("{k} ")))
                .unwrap_or_else(|| panic!("missing {k}"))
                .parse()
                .unwrap()
        };
        assert_eq!(find("queries_total"), 1);
        assert_eq!(find("latency_count"), 3);
        assert_eq!(find("latency_le_1000us"), 1);
        assert_eq!(find("latency_le_10000us"), 1);
        assert_eq!(find("latency_le_inf"), 1);
        assert_eq!(find("truncated_deadline"), 1);
        assert_eq!(find("truncated_budget"), 1);
        assert_eq!(find("truncated_cancelled"), 1);
        assert!(find("latency_sum_us") >= 20_000_000);
    }
}
