//! Criterion micro-benchmarks for the core primitives: sorted
//! intersection, 2-hop construction, greedy coloring, FCore/CFCore
//! peeling, `Combination` expansion, and the two main enumerators on
//! the pruned Youtube analog.
//!
//! Every benchmarked case builds its **own independently seeded**
//! corpus (`DatasetSpec.seed` is xored with a per-case tag). Earlier
//! versions reused one graph across cases, so later benches measured
//! allocations the earlier ones had already warmed in cache — which is
//! exactly the bias a substrate comparison cannot afford.

use criterion::{criterion_group, criterion_main, Criterion};
use fair_biclique::biclique::CountSink;
use fair_biclique::config::{Budget, PruneKind, RunConfig, VertexOrder};
use fair_biclique::fairset::max_fair_subsets;
use fair_biclique::pipeline::{prune_single_side, run_ssfbc, SsAlgorithm};
use fbe_datasets::corpus::{spec, Dataset, DatasetSpec};
use std::hint::black_box;

/// The Youtube analog reseeded per benchmark case.
fn yt(tag: u64) -> DatasetSpec {
    let mut s = spec(Dataset::Youtube);
    s.seed ^= tag;
    s
}

/// Deterministic splitmix64 stream for the intersection corpora.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn random_ascending(width: u32, density: f64, seed: u64) -> Vec<u32> {
    let mut s = seed;
    (0..width)
        .filter(|_| (splitmix64(&mut s) as f64 / u64::MAX as f64) < density)
        .collect()
}

fn bench_primitives(c: &mut Criterion) {
    // Sorted intersection at several widths, each width on freshly
    // seeded vectors (not slices of one shared allocation).
    for (width, seed) in [(1024u32, 0xB01u64), (4096, 0xB02), (16384, 0xB03)] {
        let a = random_ascending(width, 0.33, seed);
        let b = random_ascending(width, 0.25, seed ^ 0xFFFF);
        c.bench_function(&format!("intersect_sorted_count_{width}"), |bch| {
            bch.iter(|| bigraph::intersect_sorted_count(black_box(&a), black_box(&b)))
        });
    }

    {
        let s = yt(0xC01);
        let g = s.build();
        let params = s.single_params();
        c.bench_function("fcore_youtube", |bch| {
            bch.iter(|| fair_biclique::fcore::fcore_masks(black_box(&g), params.alpha, params.beta))
        });
    }

    {
        let s = yt(0xC02);
        let g = s.build();
        let params = s.single_params();
        c.bench_function("cfcore_youtube", |bch| {
            bch.iter(|| prune_single_side(black_box(&g), params, PruneKind::Colorful))
        });
    }

    {
        let s = yt(0xC03);
        let g = s.build();
        let params = s.single_params();
        let pruned = prune_single_side(&g, params, PruneKind::FCore);
        c.bench_function("twohop_on_fcore_pruned", |bch| {
            bch.iter(|| {
                bigraph::twohop::construct_2hop(
                    black_box(&pruned.sub.graph),
                    bigraph::Side::Lower,
                    params.alpha as usize,
                )
            })
        });
    }

    {
        let s = yt(0xC04);
        let g = s.build();
        let params = s.single_params();
        let pruned = prune_single_side(&g, params, PruneKind::FCore);
        let h = bigraph::twohop::construct_2hop(
            &pruned.sub.graph,
            bigraph::Side::Lower,
            params.alpha as usize,
        );
        c.bench_function("greedy_coloring", |bch| {
            bch.iter(|| bigraph::coloring::greedy_color_by_degree(black_box(&h)))
        });
    }

    let g0: Vec<u32> = (0..12).collect();
    let g1: Vec<u32> = (100..110).collect();
    c.bench_function("combination_12x10", |bch| {
        bch.iter(|| max_fair_subsets(black_box(&[&g0, &g1]), 4, 2))
    });
}

fn bench_enumeration(c: &mut Criterion) {
    // One corpus for this group: the two algorithms are compared on
    // the SAME graph by design (seeded apart from the primitives').
    let s = yt(0xD01);
    let g = s.build();
    let params = s.single_params();
    let cfg = RunConfig {
        prune: PruneKind::Colorful,
        order: VertexOrder::DegreeDesc,
        budget: Budget::UNLIMITED,
        ..RunConfig::default()
    };
    let mut group = c.benchmark_group("enumeration_youtube");
    group.sample_size(10);
    group.bench_function("fairbcem", |bch| {
        bch.iter(|| {
            let mut sink = CountSink::default();
            run_ssfbc(
                black_box(&g),
                params,
                SsAlgorithm::FairBcem,
                &cfg,
                &mut sink,
            );
            sink.count
        })
    });
    group.bench_function("fairbcem_pp", |bch| {
        bch.iter(|| {
            let mut sink = CountSink::default();
            run_ssfbc(
                black_box(&g),
                params,
                SsAlgorithm::FairBcemPP,
                &cfg,
                &mut sink,
            );
            sink.count
        })
    });
    group.finish();
}

criterion_group!(benches, bench_primitives, bench_enumeration);
criterion_main!(benches);
