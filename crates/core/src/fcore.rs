//! Fair α-β core pruning (`FCore`, Algorithm 1).
//!
//! The *fair α-β core* (Definition 8) is the maximal subgraph in which
//! every upper vertex has at least `β` neighbors of **each** lower
//! attribute value, and every lower vertex has degree at least `α`.
//! By Lemma 1 every single-side fair biclique lives inside it, so
//! peeling everything else is lossless.
//!
//! Peeling is the classic Batagelj–Zaversnik core decomposition adapted
//! to attribute degrees: initialize degrees, queue violators, cascade.
//! `O(|E| + |V|)` time, `O(|U|·A_n^V + |V|)` space.

use crate::config::{FairParams, PrepareCtl, StopReason};
use bigraph::subgraph::{induce, InducedSubgraph};
use bigraph::{BipartiteGraph, Side, VertexId};
use serde::{Deserialize, Serialize};

/// How many peel steps run between two [`PrepareCtl::interrupted`]
/// probes inside the cascades. Each step touches one adjacency list, so
/// this keeps probe overhead well under 1% while bounding overshoot.
pub(crate) const CTL_PROBE_INTERVAL: u32 = 4096;

/// Before/after sizes of a pruning stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PruneStats {
    /// `|U|` before pruning.
    pub upper_before: usize,
    /// `|V|` before pruning.
    pub lower_before: usize,
    /// `|E|` before pruning.
    pub edges_before: usize,
    /// `|U|` after pruning.
    pub upper_after: usize,
    /// `|V|` after pruning.
    pub lower_after: usize,
    /// `|E|` after pruning.
    pub edges_after: usize,
}

impl PruneStats {
    /// Total remaining vertices (the y-axis of the paper's Fig. 3/4).
    pub fn remaining_vertices(&self) -> usize {
        self.upper_after + self.lower_after
    }

    /// Total vertices removed.
    pub fn removed_vertices(&self) -> usize {
        (self.upper_before + self.lower_before) - self.remaining_vertices()
    }
}

/// A pruning result: the compacted subgraph (with maps back to the
/// *original* graph's ids) plus size statistics.
#[derive(Debug, Clone)]
pub struct PruneOutcome {
    /// Compacted pruned graph with id maps to the original graph.
    pub sub: InducedSubgraph,
    /// Size reduction statistics.
    pub stats: PruneStats,
}

pub(crate) fn stats_of(g: &BipartiteGraph, sub: &InducedSubgraph) -> PruneStats {
    PruneStats {
        upper_before: g.n_upper(),
        lower_before: g.n_lower(),
        edges_before: g.n_edges(),
        upper_after: sub.graph.n_upper(),
        lower_after: sub.graph.n_lower(),
        edges_after: sub.graph.n_edges(),
    }
}

/// Compose two induced subgraphs: `inner` was induced from
/// `outer.graph`; the result maps `inner.graph` ids straight to
/// `outer`'s parent ids.
pub(crate) fn compose(outer: &InducedSubgraph, inner: InducedSubgraph) -> InducedSubgraph {
    InducedSubgraph {
        graph: inner.graph,
        upper_to_parent: inner
            .upper_to_parent
            .iter()
            .map(|&i| outer.upper_to_parent[i as usize])
            .collect(),
        lower_to_parent: inner
            .lower_to_parent
            .iter()
            .map(|&i| outer.lower_to_parent[i as usize])
            .collect(),
    }
}

/// The identity "pruning" (`PruneKind::None`): the whole graph.
pub fn no_prune(g: &BipartiteGraph) -> PruneOutcome {
    let sub = induce(g, &vec![true; g.n_upper()], &vec![true; g.n_lower()]);
    let stats = stats_of(g, &sub);
    PruneOutcome { sub, stats }
}

/// Compute fair α-β core membership masks (Algorithm 1) without
/// materialising the subgraph.
///
/// Returns `(keep_upper, keep_lower)`.
pub fn fcore_masks(g: &BipartiteGraph, alpha: u32, beta: u32) -> (Vec<bool>, Vec<bool>) {
    fcore_masks_ctl(g, alpha, beta, &PrepareCtl::UNBOUNDED)
        .expect("unbounded prepare is never interrupted")
}

/// [`fcore_masks`] with cooperative interruption: probes `ctl` every
/// [`CTL_PROBE_INTERVAL`] peel steps and aborts with the interrupting
/// [`StopReason`]. A default (unbounded) `ctl` adds no per-step work.
pub fn fcore_masks_ctl(
    g: &BipartiteGraph,
    alpha: u32,
    beta: u32,
    ctl: &PrepareCtl,
) -> Result<(Vec<bool>, Vec<bool>), StopReason> {
    if let Some(r) = ctl.interrupted() {
        return Err(r);
    }
    let probe = !ctl.is_unbounded();
    let n_u = g.n_upper();
    let n_v = g.n_lower();
    let n_attrs = (g.n_attr_values(Side::Lower) as usize).max(1);
    let lower_attrs = g.attrs(Side::Lower);

    // Attribute degrees of upper vertices, flattened [u * n_attrs + a].
    let mut attr_deg = vec![0u32; n_u * n_attrs];
    for u in 0..n_u as VertexId {
        for &v in g.neighbors(Side::Upper, u) {
            attr_deg[u as usize * n_attrs + lower_attrs[v as usize] as usize] += 1;
        }
    }
    // Plain degrees of lower vertices.
    let mut deg: Vec<u32> = (0..n_v as VertexId)
        .map(|v| g.degree(Side::Lower, v) as u32)
        .collect();

    let mut alive_u = vec![true; n_u];
    let mut alive_v = vec![true; n_v];
    // Work stack of removed vertices awaiting neighbor updates.
    let mut stack: Vec<(Side, VertexId)> = Vec::new();

    let upper_ok = |attr_deg: &[u32], u: usize| -> bool {
        attr_deg[u * n_attrs..(u + 1) * n_attrs]
            .iter()
            .all(|&d| d >= beta)
    };

    #[allow(clippy::needless_range_loop)]
    for u in 0..n_u {
        if !upper_ok(&attr_deg, u) {
            alive_u[u] = false;
            stack.push((Side::Upper, u as VertexId));
        }
    }
    for (v, &d) in deg.iter().enumerate() {
        if d < alpha {
            alive_v[v] = false;
            stack.push((Side::Lower, v as VertexId));
        }
    }

    let mut steps: u32 = 0;
    while let Some((side, x)) = stack.pop() {
        steps = steps.wrapping_add(1);
        if probe && steps % CTL_PROBE_INTERVAL == 0 {
            if let Some(r) = ctl.interrupted() {
                return Err(r);
            }
        }
        match side {
            Side::Upper => {
                // Removing upper x lowers the degree of its lower neighbors.
                for &v in g.neighbors(Side::Upper, x) {
                    if alive_v[v as usize] {
                        deg[v as usize] -= 1;
                        if deg[v as usize] < alpha {
                            alive_v[v as usize] = false;
                            stack.push((Side::Lower, v));
                        }
                    }
                }
            }
            Side::Lower => {
                // Removing lower x lowers one attribute degree of its
                // upper neighbors.
                let a = lower_attrs[x as usize] as usize;
                for &u in g.neighbors(Side::Lower, x) {
                    if alive_u[u as usize] {
                        let slot = u as usize * n_attrs + a;
                        attr_deg[slot] -= 1;
                        if attr_deg[slot] < beta {
                            alive_u[u as usize] = false;
                            stack.push((Side::Upper, u));
                        }
                    }
                }
            }
        }
    }

    Ok((alive_u, alive_v))
}

/// `FCore` (Algorithm 1): peel to the fair α-β core and compact.
pub fn fcore(g: &BipartiteGraph, params: FairParams) -> PruneOutcome {
    fcore_ctl(g, params, &PrepareCtl::UNBOUNDED).expect("unbounded prepare is never interrupted")
}

/// [`fcore`] with cooperative interruption (see [`fcore_masks_ctl`]).
pub fn fcore_ctl(
    g: &BipartiteGraph,
    params: FairParams,
    ctl: &PrepareCtl,
) -> Result<PruneOutcome, StopReason> {
    let (ku, kv) = fcore_masks_ctl(g, params.alpha, params.beta, ctl)?;
    let sub = induce(g, &ku, &kv);
    let stats = stats_of(g, &sub);
    Ok(PruneOutcome { sub, stats })
}

/// Check that `(keep_upper, keep_lower)` induce a subgraph satisfying
/// the fair α-β core constraints (test helper; not maximality).
pub fn is_fair_core(
    g: &BipartiteGraph,
    keep_upper: &[bool],
    keep_lower: &[bool],
    alpha: u32,
    beta: u32,
) -> bool {
    let n_attrs = (g.n_attr_values(Side::Lower) as usize).max(1);
    for u in 0..g.n_upper() as VertexId {
        if !keep_upper[u as usize] {
            continue;
        }
        let mut ad = vec![0u32; n_attrs];
        for &v in g.neighbors(Side::Upper, u) {
            if keep_lower[v as usize] {
                ad[g.attr(Side::Lower, v) as usize] += 1;
            }
        }
        if ad.iter().any(|&d| d < beta) {
            return false;
        }
    }
    for v in 0..g.n_lower() as VertexId {
        if !keep_lower[v as usize] {
            continue;
        }
        let d = g
            .neighbors(Side::Lower, v)
            .iter()
            .filter(|&&u| keep_upper[u as usize])
            .count() as u32;
        if d < alpha {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigraph::generate::random_uniform;
    use bigraph::GraphBuilder;

    /// Build the Fig. 1(a)-style toy: a dense fair block plus fringe.
    fn block_with_fringe() -> BipartiteGraph {
        let mut b = GraphBuilder::new(2, 2);
        // Dense block: uppers 0..3 x lowers 0..4 complete.
        for u in 0..3 {
            for v in 0..4 {
                b.add_edge(u, v);
            }
        }
        // Fringe: upper 3 sees only lower 4; lower 5 sees only upper 0.
        b.add_edge(3, 4);
        b.add_edge(0, 5);
        b.set_attrs_upper(&[0, 1, 0, 1]);
        b.set_attrs_lower(&[0, 0, 1, 1, 0, 1]);
        b.build().unwrap()
    }

    #[test]
    fn peels_fringe_keeps_block() {
        let g = block_with_fringe();
        let out = fcore(&g, FairParams::unchecked(2, 2, 1));
        // Block survives: 3 uppers, 4 lowers.
        assert_eq!(out.stats.upper_after, 3);
        assert_eq!(out.stats.lower_after, 4);
        assert_eq!(out.stats.edges_after, 12);
        assert_eq!(out.stats.remaining_vertices(), 7);
        assert_eq!(out.stats.removed_vertices(), 3);
        // Mapped ids are the block's originals.
        assert_eq!(out.sub.upper_to_parent, vec![0, 1, 2]);
        assert_eq!(out.sub.lower_to_parent, vec![0, 1, 2, 3]);
    }

    #[test]
    fn result_satisfies_core_property() {
        for seed in 0..5u64 {
            let g = random_uniform(25, 30, 180, 2, 2, seed);
            for (a, b) in [(2, 2), (3, 2), (2, 3), (4, 4)] {
                let (ku, kv) = fcore_masks(&g, a, b);
                assert!(is_fair_core(&g, &ku, &kv, a, b), "seed={seed} a={a} b={b}");
            }
        }
    }

    #[test]
    fn core_is_maximal() {
        // No peeled vertex could have survived: adding any single
        // removed vertex back violates its own constraint (standard
        // core-decomposition maximality, checked empirically).
        let g = random_uniform(20, 20, 120, 2, 2, 3);
        let (ku, kv) = fcore_masks(&g, 2, 2);
        let n_attrs = 2;
        for u in 0..20u32 {
            if ku[u as usize] {
                continue;
            }
            // With everything alive that is alive plus u itself, u must
            // still violate (otherwise peeling removed it wrongly).
            let mut ad = vec![0u32; n_attrs];
            for &v in g.neighbors(Side::Upper, u) {
                if kv[v as usize] {
                    ad[g.attr(Side::Lower, v) as usize] += 1;
                }
            }
            assert!(ad.iter().any(|&d| d < 2), "upper {u} wrongly peeled");
        }
        for v in 0..20u32 {
            if kv[v as usize] {
                continue;
            }
            let d = g
                .neighbors(Side::Lower, v)
                .iter()
                .filter(|&&u| ku[u as usize])
                .count();
            assert!(d < 2, "lower {v} wrongly peeled");
        }
    }

    #[test]
    fn alpha_beta_monotone() {
        let g = random_uniform(30, 30, 250, 2, 2, 9);
        let mut prev = usize::MAX;
        for a in 1..6u32 {
            let out = fcore(&g, FairParams::unchecked(a, 2, 1));
            assert!(out.stats.remaining_vertices() <= prev);
            prev = out.stats.remaining_vertices();
        }
        let mut prev = usize::MAX;
        for b in 1..6u32 {
            let out = fcore(&g, FairParams::unchecked(2, b, 1));
            assert!(out.stats.remaining_vertices() <= prev);
            prev = out.stats.remaining_vertices();
        }
    }

    #[test]
    fn beta_zero_keeps_degree_only_constraint() {
        let g = block_with_fringe();
        let out = fcore(&g, FairParams::unchecked(1, 0, 0));
        // beta=0 never peels uppers; alpha=1 peels nothing with degree>=1.
        assert_eq!(out.stats.upper_after, 4);
        assert_eq!(out.stats.lower_after, 6);
    }

    #[test]
    fn everything_peeled_when_impossible() {
        let g = block_with_fringe();
        let out = fcore(&g, FairParams::unchecked(10, 10, 1));
        assert_eq!(out.stats.remaining_vertices(), 0);
        assert_eq!(out.stats.edges_after, 0);
    }

    #[test]
    fn no_prune_is_identity() {
        let g = block_with_fringe();
        let out = no_prune(&g);
        assert_eq!(out.stats.edges_after, g.n_edges());
        assert_eq!(out.sub.upper_to_parent.len(), g.n_upper());
    }
}
