//! The paper's Jobs and Movies case studies (§V-C, Fig. 10): plain
//! collaborative filtering inherits popularity/recency bias; mining
//! single-side fair bicliques from the top-k recommendation graph
//! yields balanced recommendations.
//!
//! ```text
//! cargo run -p fbe-examples --example fair_recommendation
//! ```

use bigraph::Side;
use fair_biclique::prelude::*;
use fbe_datasets::case_studies::{jobs, movies, CaseStudy};
use fbe_datasets::cf::{recommend, recommendation_graph};

/// Share of advantaged-class items (attr 0) in everyone's CF top-k.
fn biased_share(cs: &CaseStudy, k: usize) -> f64 {
    let mut advantaged = 0usize;
    let mut total = 0usize;
    for user in 0..cs.graph.n_upper() as u32 {
        for rec in recommend(&cs.graph, user, k) {
            total += 1;
            if cs.graph.attr(Side::Lower, rec.item) == 0 {
                advantaged += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        advantaged as f64 / total as f64
    }
}

fn run_case(cs: &CaseStudy, top_k: usize, params: FairParams) {
    println!(
        "\n=== {} ===\ninteractions: {} users x {} items, {} edges",
        cs.name,
        cs.graph.n_upper(),
        cs.graph.n_lower(),
        cs.graph.n_edges()
    );

    // Step 1 (paper Fig. 10 a/c/d): plain CF top-5 — measure the bias.
    let share = biased_share(cs, 5);
    println!(
        "plain CF top-5: {:.0}% of recommendations are {} items (bias)",
        share * 100.0,
        cs.lower_attr_names[0]
    );

    // Step 2: build the top-k recommendation graph and mine SSFBCs
    // with the item side fair (paper Fig. 10 b/e).
    let rg = recommendation_graph(&cs.graph, top_k);
    println!("recommendation graph (top-{top_k}): {} edges", rg.n_edges());
    let report = enumerate_ssfbc(&rg, params, &RunConfig::default());
    println!("fair bicliques ({params}): {}", report.bicliques.len());

    let mut ranked: Vec<_> = report.bicliques.iter().collect();
    ranked.sort_by_key(|b| std::cmp::Reverse(b.len()));
    for bc in ranked.into_iter().take(2) {
        println!("{}", cs.describe(bc));
        // The fairness guarantee: per-attribute item counts within delta.
        let mut tally = [0usize; 2];
        for &v in &bc.lower {
            tally[rg.attr(Side::Lower, v) as usize] += 1;
        }
        println!(
            "  -> both {} and {} items recommended together ({} vs {})",
            cs.lower_attr_names[0], cs.lower_attr_names[1], tally[0], tally[1]
        );
    }
}

fn main() {
    // Jobs: users x jobs; fair side = jobs (popular P vs unpopular U).
    // Paper parameters: alpha=2, beta=2, delta=1, top-10 rec graph.
    run_case(&jobs(2023), 10, FairParams::new(2, 2, 1).expect("valid"));

    // Movies: users x movies (old O vs new N). Same parameters.
    run_case(&movies(2023), 10, FairParams::new(2, 2, 1).expect("valid"));
}
