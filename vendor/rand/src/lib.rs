//! Minimal, self-contained stand-in for the `rand` crate (0.9 API
//! subset). The build environment has no crates.io access, so the
//! workspace vendors exactly the surface it uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::random_range`],
//! [`Rng::random_bool`], and [`seq::SliceRandom::shuffle`].
//!
//! All output is deterministic in the seed. The generator is
//! SplitMix64 — statistically solid for synthetic-graph generation and
//! tests, but *not* stream-compatible with the real `rand` crate and
//! not cryptographically secure.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of uniformly random 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (the subset the workspace uses).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive integer
    /// ranges, or a half-open `f64` range). Panics on empty ranges.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Map 64 random bits to a uniform `f64` in `[0, 1)` (53-bit mantissa).
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can be sampled from uniformly.
pub trait SampleRange<T> {
    /// Draw one uniform sample. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Multiply-shift bounded sampling (Lemire); unbiased
                // enough for the small spans this workspace draws.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(draw as $t)
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Named generators.
pub mod rngs {
    /// Deterministic SplitMix64 generator standing in for `rand`'s
    /// `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Slice sampling helpers.
pub mod seq {
    use crate::RngCore;

    /// Random slice operations (only `shuffle` is provided).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let span = i as u64 + 1;
                let j = ((rng.next_u64() as u128 * span as u128) >> 64) as usize;
                self.swap(i, j);
            }
        }
    }
}

/// One-stop imports mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SampleRange, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: u16 = rng.random_range(0..2u16);
            assert!(y < 2);
            let f: f64 = rng.random_range(0.0..2.5);
            assert!((0.0..2.5).contains(&f));
            let z: u32 = rng.random_range(5..=5u32);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn range_covers_domain() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.random_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
